//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the surface the workspace uses: [`StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], uniform sampling through
//! [`RngExt::random_range`] / [`RngExt::random`], and Fisher-Yates
//! [`seq::SliceRandom::shuffle`]. The generator is splitmix64: statistically
//! solid for simulation workloads and fully deterministic per seed, which is
//! all the experiments require.

use core::ops::{Range, RangeInclusive};

/// Minimal uniform random source: everything else is derived from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from their full domain via [`RngExt::random`].
pub trait FromRandom {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRandom for f64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl FromRandom for u64 {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRandom for bool {
    fn from_random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that support uniform sampling from a half-open or inclusive range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
            fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
    fn sample_inclusive<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Range arguments accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "random_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    fn random<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// splitmix64; the workspace's standard deterministic generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::{Rng, RngExt};

    /// Slice shuffling, the only `rand::seq` facility the workspace uses.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
