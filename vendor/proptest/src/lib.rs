//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest the workspace's property suites use:
//! the [`proptest!`] macro over range strategies (which may reference
//! previously bound arguments), `prop::collection::btree_set`,
//! [`ProptestConfig::with_cases`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case reports its inputs and panics as-is;
//! - case generation is deterministic per test (seeded from the test name),
//!   so failures reproduce exactly on re-run.

pub mod strategy {
    use core::ops::{Range, RangeInclusive};
    use rand::rngs::StdRng;
    use rand::{RngExt, SampleUniform};

    /// A source of random test inputs. Mirrors proptest's `Strategy` but
    /// samples directly instead of building a shrinkable value tree.
    pub trait Strategy {
        type Value: core::fmt::Debug + Clone;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        T: SampleUniform + core::fmt::Debug + Clone + 'static,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: SampleUniform + core::fmt::Debug + Clone + 'static,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use core::ops::Range;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::collections::BTreeSet;

    /// Strategy producing `BTreeSet`s with a size drawn from `size` whose
    /// elements come from `element`. If the element domain is too small to
    /// reach the drawn size, the set saturates at whatever was collectible.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let target = rng.random_range(self.size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(64) + 64 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// The RNG driving case generation. Re-exported so the `proptest!`
    /// expansion can name it via `$crate` without requiring downstream test
    /// crates to depend on `rand` themselves.
    pub type TestRng = rand::rngs::StdRng;

    /// Builds the deterministic per-test RNG.
    pub fn new_rng(seed: u64) -> TestRng {
        <TestRng as rand::SeedableRng>::seed_from_u64(seed)
    }

    /// Stable seed derived from the test path so every run replays the same
    /// case sequence (FNV-1a over the name).
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// `proptest::prelude::*` — everything the test suites import.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirrors proptest's `prelude::prop` shorthand module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// The `proptest!` block macro. Each contained `#[test] fn` becomes an
/// ordinary test that samples its arguments `config.cases` times and runs the
/// body once per case, printing the failing inputs before a panic unwinds.
#[macro_export]
macro_rules! proptest {
    (@fns ($config:expr) ) => {};
    (@fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::new_rng(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for _case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let case_inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg,)+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} failed for {}: {}",
                        _case + 1, config.cases, stringify!($name), case_inputs,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(
            @fns ($crate::test_runner::Config::default()) $($rest)*
        );
    };
}
