//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the surface the bench targets use: [`Criterion::default`],
//! [`Criterion::sample_size`], [`Criterion::bench_function`] with a
//! [`Bencher::iter`] closure, and the [`criterion_group!`] /
//! [`criterion_main!`] macros (both the positional and the
//! `name = ...; config = ...; targets = ...` forms).
//!
//! Instead of criterion's statistical analysis it reports a simple
//! mean/min/max over `sample_size` timed batches — enough to compare runs by
//! eye and to keep `cargo bench` meaningful without external dependencies.

use std::time::Instant;

/// Drives one benchmark body: `iter` times the closure over an
/// adaptively-sized batch and records per-iteration nanoseconds.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Calibrate the batch so one sample costs roughly a millisecond.
        let start = Instant::now();
        std::hint::black_box(body());
        let once = start.elapsed().as_nanos().max(1);
        let batch = (1_000_000 / once).clamp(1, 10_000) as usize;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(body());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / batch as f64);
        }
    }
}

/// Top-level benchmark registry, mirroring criterion's builder API.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        body(&mut bencher);
        let n = bencher.samples.len().max(1) as f64;
        let mean = bencher.samples.iter().sum::<f64>() / n;
        let min = bencher
            .samples
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = bencher
            .samples
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "bench: {id:<48} mean {} (min {}, max {}) over {} samples",
            fmt_nanos(mean),
            fmt_nanos(min),
            fmt_nanos(max),
            bencher.samples.len(),
        );
        self
    }
}

fn fmt_nanos(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Re-export so `criterion::black_box` callers work; std's hint is canonical.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
