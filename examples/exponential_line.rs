//! The super-polynomial aspect-ratio regime: the exponential line
//! `{1, 2, 4, ..., 2^(n-1)}`, the paper's canonical example of a doubling
//! metric that is *not* growth-constrained. This is where the
//! large-aspect-ratio machinery earns its keep:
//!
//! * grid dimension explodes while doubling dimension stays ~1;
//! * Theorem 3.4 labels stay small although log Delta = n - 1;
//! * the two-mode routing scheme (Theorem B.1) switches into mode M2;
//! * small-world hop counts stay O(log n), not O(log Delta) = O(n).
//!
//! Run with: `cargo run --example exponential_line`

use rings_of_neighbors::graph::{gen as ggen, Apsp};
use rings_of_neighbors::labels::CompactScheme;
use rings_of_neighbors::metric::{doubling, gen, Space};
use rings_of_neighbors::routing::{StretchStats, TwoModeScheme};
use rings_of_neighbors::smallworld::{GreedyModel, QueryStats};

fn main() {
    let n = 48;
    let space = Space::new(gen::exponential_line(n));
    println!(
        "exponential line: n = {n}, log2(aspect ratio) = {:.0}",
        space.index().aspect_ratio().log2()
    );
    println!(
        "doubling dimension ~ {:.2}, grid dimension ~ {:.2}",
        doubling::doubling_dimension(space.metric(), space.index()),
        doubling::grid_dimension(space.index())
    );

    // Compact labels: bits scale with (log n)(log log Delta), not log Delta.
    let scheme = CompactScheme::build(&space, 0.25);
    println!("Thm 3.4 labels: max {} bits", scheme.max_label_bits());

    // Two-mode routing over the exponential path graph.
    let graph = ggen::exponential_path(n);
    let apsp = Apsp::compute(&graph);
    let gspace = Space::new(apsp.to_metric().expect("path is connected"));
    let twomode = TwoModeScheme::build(&gspace, &graph, &apsp, 0.25);
    let mut modes = Default::default();
    let stats = StretchStats::over_all_pairs(&graph, &apsp, |u, v| {
        twomode.route(&graph, u, v, &mut modes)
    })
    .expect("delivery");
    println!(
        "Thm B.1 routing: stretch max {:.3}, M1 selections {}, M2 switches {}",
        stats.max_stretch, modes.m1_selections, modes.m2_switches
    );

    // Small world: O(log n) hops although distance halving alone would
    // need ~n hops.
    let model = GreedyModel::sample(&space, 3.0, 17);
    let q = QueryStats::over_all_pairs(n, |u, v| model.query(&space, u, v));
    println!(
        "Thm 5.2(a) queries: mean {:.1} hops, max {} (log2 n = {:.0}; log2 Delta = {})",
        q.mean_hops,
        q.max_hops,
        (n as f64).log2(),
        n - 1
    );
}
