//! A live `/metrics` wire over an engine under load: builds a directory
//! overlay, publishes objects, then serves lookup batches in a loop
//! while a [`MetricsServer`] answers `GET /metrics` (Prometheus text
//! format) and `GET /health` from the live registry.
//!
//! Run with: `cargo run --example obs_serve`
//!
//! Knobs:
//! - `RON_METRICS_ADDR=127.0.0.1:9184` binds the wire to a fixed
//!   address (default: a self-test on an ephemeral `127.0.0.1` port
//!   that scrapes itself once and exits);
//! - `RON_SERVE_MS=20000` keeps the load loop (and the wire) up that
//!   long (default 250 ms, so the example terminates quickly);
//! - `RON_QTRACE=16` additionally samples every 16th query into
//!   flight records (see the E-LAT table in the bench harness).
//!
//! [`MetricsServer`]: rings_of_neighbors::obs::MetricsServer

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rings_of_neighbors::location::{
    DirectoryOverlay, EngineConfig, EpochCell, ObjectId, QueryEngine, Snapshot,
};
use rings_of_neighbors::metric::{gen, Node, Space};
use rings_of_neighbors::obs;

fn main() {
    // RON_QTRACE / RON_TRACE are honored as usual; recording itself is
    // forced on — a metrics wire over a silent registry serves nothing.
    obs::init_from_env();
    obs::set_enabled(true);
    obs::reset();

    let n = 256;
    let objects = 64;
    let space = Space::new(gen::uniform_cube(n, 2, 7));
    let mut overlay = DirectoryOverlay::build(&space);
    let items: Vec<(ObjectId, Node)> = (0..objects)
        .map(|i| (ObjectId(i as u64), Node::new((i * 31 + 1) % n)))
        .collect();
    overlay.publish_batch(&space, &items);
    let cell = EpochCell::new(Snapshot::capture(&space, &overlay));
    let engine = QueryEngine::new(&space, &cell);
    let queries: Vec<(Node, ObjectId)> = (0..2048usize)
        .map(|i| {
            let origin = Node::new((i * 53 + 7) % n);
            let obj = ObjectId(((i * 97 + 13) % objects) as u64);
            (origin, obj)
        })
        .collect();

    // A fixed RON_METRICS_ADDR serves externally; the default is a
    // self-test on an ephemeral port so CI can run every example
    // unattended.
    let mut server = obs::serve_from_env()
        .unwrap_or_else(|| obs::MetricsServer::bind("127.0.0.1:0").expect("bind ephemeral port"));
    println!("serving /metrics and /health on http://{}", server.addr());

    let serve_ms: u64 = std::env::var("RON_SERVE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250);
    let deadline = Instant::now() + Duration::from_millis(serve_ms);
    let config = EngineConfig::default();
    let mut batches = 0u64;
    while Instant::now() < deadline {
        let report = engine.serve(&queries, &config);
        batches += 1;
        assert_eq!(report.failures, 0, "static overlay serves everything");
        // Scrapes run on the wire's handler threads and see the global
        // store; this loop's own records must be flushed to land there.
        obs::flush();
    }
    println!(
        "served {batches} batches x {} lookups under scrape load",
        queries.len()
    );

    // Self-scrape: fetch our own endpoints over real TCP, exactly as a
    // Prometheus agent would.
    let fetch = |path: &str| -> String {
        let mut conn = TcpStream::connect(server.addr()).expect("connect to own wire");
        write!(conn, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").expect("send request");
        let mut response = String::new();
        conn.read_to_string(&mut response).expect("read response");
        response
    };
    let health = fetch("/health");
    assert!(health.starts_with("HTTP/1.1 200"), "health: {health}");
    let metrics = fetch("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200"), "metrics: {metrics}");
    assert!(
        metrics.contains("ron_counter") && metrics.contains("ron_latency_count"),
        "the scrape must carry the engine's live metrics"
    );
    let samples = metrics
        .lines()
        .filter(|l| !l.starts_with('#') && l.contains('{'))
        .count();
    println!("self-scrape ok: {samples} samples exposed");

    server.shutdown();
    obs::reset();
    obs::set_enabled(false);
}
