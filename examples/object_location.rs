//! Object location at serving scale: publish 1000 objects on a
//! 4096-node instance, serve 10k batched lookups through the concurrent
//! query engine, then survive a 20% targeted (hub-first) churn attack.
//!
//! Run with: `cargo run --release --example object_location`
//!
//! Everything is seeded, so the printed numbers reproduce exactly.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rings_of_neighbors::location::{
    drive_churn, ChurnConfig, ChurnSchedule, DirectoryOverlay, EngineConfig, EpochCell, ObjectId,
    QueryEngine, Snapshot,
};
use rings_of_neighbors::metric::{gen, Node, Space};

const N: usize = 4096;
const OBJECTS: usize = 1000;
const LOOKUPS: usize = 10_000;
const SEED: u64 = 1105;

fn main() {
    // Observability is opt-in: RON_TRACE=chrome dumps a Chrome trace,
    // RON_OBS=1 prints the metrics registry at the end. Off by default,
    // and provably non-perturbing either way.
    rings_of_neighbors::obs::init_from_env();

    // 1. A 4096-point doubling metric and the directory overlay: nested
    //    nets, factor-2 publish rings, empty pointer tables.
    let t0 = Instant::now();
    let space = Space::new(gen::uniform_cube(N, 2, SEED));
    let mut overlay = DirectoryOverlay::build(&space);
    println!(
        "built overlay: n = {}, levels = {}, ring factor = {} ({:.1?})",
        overlay.len(),
        overlay.levels(),
        overlay.ring_factor(),
        t0.elapsed()
    );
    let hist = overlay.rings().neighbor_count_histogram();
    let max_degree = hist.len() - 1;
    println!(
        "overlay degrees: max = {max_degree}, median = {}",
        median_of_histogram(&hist)
    );

    // 2. Publish: every object installs pointers up the net ladder along
    //    its home's zooming sequence.
    let t0 = Instant::now();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut writes = 0usize;
    for i in 0..OBJECTS {
        let home = Node::new(rng.random_range(0..N));
        writes += overlay.publish(&space, ObjectId(i as u64), home);
    }
    println!(
        "published {OBJECTS} objects: {writes} pointer entries ({:.1?})",
        t0.elapsed()
    );

    // 3. Serve a 10k batch through the worker pool. Half the traffic is
    //    hot — 128 gateway origins asking for 32 popular objects — so the
    //    LRU result cache earns its keep; the rest is uniform.
    let queries: Vec<(Node, ObjectId)> = (0..LOOKUPS)
        .map(|_| {
            if rng.random_bool(0.5) {
                let origin = Node::new((rng.random_range(0..128usize) * 31) % N);
                let obj = ObjectId(rng.random_range(0..32u64));
                (origin, obj)
            } else {
                let origin = Node::new(rng.random_range(0..N));
                let obj = ObjectId(rng.random_range(0..OBJECTS as u64));
                (origin, obj)
            }
        })
        .collect();
    let directory = EpochCell::new(Snapshot::capture(&space, &overlay));
    let engine = QueryEngine::new(&space, &directory);
    let config = EngineConfig {
        workers: 4,
        cache_capacity: 4096,
        cache_shards: 8,
    };
    let report = engine.serve(&queries, &config);
    println!(
        "served {} lookups on {} workers: {:.0} lookups/s, p50 = {:.1} us, p99 = {:.1} us, \
         cache hits = {}",
        report.served,
        config.workers,
        report.throughput(),
        report.latency.p50_us,
        report.latency.p99_us,
        report.cache_hits,
    );
    println!(
        "success = {:.1}%, mean stretch = {:.3}, max stretch = {:.3}, max hops = {}",
        report.success_rate() * 100.0,
        report.paths.mean_stretch(),
        report.paths.max_stretch,
        report.paths.max_hops,
    );
    assert_eq!(
        report.successes, LOOKUPS,
        "static snapshot must serve every lookup"
    );
    // 4. Adversarial churn: remove the 20% highest-degree nodes (coarse
    //    net hubs first), in 4 steps, repairing after each. The driver
    //    samples lookups before and after every repair.
    println!("\ntargeted churn (hub-first, 20% of {N} nodes, 4 steps):");
    let t0 = Instant::now();
    let churn = drive_churn(
        &space,
        &mut overlay,
        ChurnSchedule::Targeted { fraction: 0.2 },
        &ChurnConfig {
            steps: 4,
            queries_per_step: 500,
            seed: SEED,
        },
    );
    for (i, step) in churn.steps.iter().enumerate() {
        println!(
            "  step {}: -{} nodes ({} alive) | success {:>5.1}% -> repair \
             ({} writes, {} promotions, {} rehomed) -> {:>5.1}%",
            i + 1,
            step.removed,
            step.alive_after,
            step.before_repair.success_rate() * 100.0,
            step.repair.pointer_writes,
            step.repair.promotions,
            step.repair.rehomed,
            step.after_repair.success_rate() * 100.0,
        );
    }
    let totals = churn.total_repair();
    println!(
        "churn done ({:.1?}): removed {} nodes, repair bill = {} writes + {} deletes, \
         {} promotions, {} objects rehomed",
        t0.elapsed(),
        churn.total_removed(),
        totals.pointer_writes,
        totals.pointer_deletes,
        totals.promotions,
        totals.rehomed,
    );
    assert_eq!(
        churn.final_success_rate(),
        1.0,
        "repair must restore 100% lookup success"
    );

    // 5. Re-verify through a fresh snapshot: the repaired overlay serves
    //    the full batch again (dead origins remapped to a survivor).
    let alive_origin = (0..N)
        .map(Node::new)
        .find(|&v| overlay.is_alive(v))
        .expect("survivors exist");
    let survivors: Vec<(Node, ObjectId)> = queries
        .iter()
        .map(|&(origin, obj)| {
            if overlay.is_alive(origin) {
                (origin, obj)
            } else {
                (alive_origin, obj)
            }
        })
        .collect();
    // Publishing the repaired snapshot swaps the serving state under the
    // same engine — no rebuild, readers just see the new epoch.
    overlay.publish_snapshot(&space, &directory);
    let report = engine.serve(&survivors, &config);
    println!(
        "\npost-repair serve: success = {:.1}%, {:.0} lookups/s, p50 = {:.1} us, p99 = {:.1} us",
        report.success_rate() * 100.0,
        report.throughput(),
        report.latency.p50_us,
        report.latency.p99_us,
    );
    assert_eq!(
        report.successes, report.served,
        "repaired overlay must serve every lookup"
    );

    // 6. Export what observability collected, if it was on.
    if rings_of_neighbors::obs::enabled() {
        println!("\nobservability registry:");
        print!("{}", rings_of_neighbors::obs::drain().render());
    }
    if rings_of_neighbors::obs::chrome_enabled() {
        let path =
            std::env::var("RON_TRACE_PATH").unwrap_or_else(|_| String::from("ron_trace.json"));
        match rings_of_neighbors::obs::write_chrome_trace(std::path::Path::new(&path)) {
            Ok(events) => println!("wrote {events} trace events to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

/// Median out-degree from a degree histogram.
fn median_of_histogram(hist: &[usize]) -> usize {
    let total: usize = hist.iter().sum();
    let mut seen = 0usize;
    for (degree, &count) in hist.iter().enumerate() {
        seen += count;
        if seen * 2 >= total {
            return degree;
        }
    }
    0
}
