//! The rings protocols as a distributed system: a 4096-node clustered
//! "Internet latency" metric, publishes and lookups running as real
//! message rounds through the deterministic simulator, a crash burst
//! mid-run, a leave/join wave with distributed repair (success dips,
//! repair epochs run as message rounds, success recovers to 100%), and
//! greedy small-world routing as message chains.
//!
//! Run with: `cargo run --release --example simulate`
//! (`RON_SIM_N=512` shrinks the instance for smoke runs.)
//!
//! Everything is seeded — the printed reports, including the event-trace
//! fingerprints, reproduce exactly.

use std::time::Instant;

use rings_of_neighbors::location::{DirectoryOverlay, ObjectId};
use rings_of_neighbors::metric::{gen, Node, Space};
use rings_of_neighbors::sim::directory::{DirectoryMsg, DirectoryNode};
use rings_of_neighbors::sim::greedy::{GreedyNode, GreedyPacket};
use rings_of_neighbors::sim::{
    state_entries, ChurnSchedule, LognormalLatency, MetricLatency, Percentiles, SimConfig,
    Simulator,
};
use rings_of_neighbors::smallworld::GreedyModel;

const SEED: u64 = 1105;

fn sim_n() -> usize {
    const DEFAULT: usize = 4096;
    match std::env::var("RON_SIM_N") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 64 => n,
            _ => {
                eprintln!(
                    "warning: ignoring RON_SIM_N={raw:?} (need an integer >= 64); \
                     running at the default n = {DEFAULT}"
                );
                DEFAULT
            }
        },
        Err(_) => DEFAULT,
    }
}

fn main() {
    let n = sim_n();
    let objects = (n / 4).clamp(16, 1000);
    let lookups = if n >= 4096 { 10_000 } else { (2 * n).max(1000) };
    let routes = if n >= 4096 { 2_000 } else { (n / 2).max(500) };

    // 1. A clustered Internet-latency-like metric and the (empty)
    //    directory overlay, partitioned into per-node slices.
    let t0 = Instant::now();
    let space = Space::new(gen::clustered(n, 2, (n / 64).max(4), 0.01, SEED));
    let mut overlay = DirectoryOverlay::build(&space);
    let fleet = DirectoryNode::fleet(&space, &overlay);
    println!(
        "built + partitioned overlay: n = {n}, levels = {} ({:.1?})",
        overlay.levels(),
        t0.elapsed()
    );

    // The WAN model: latency proportional to the metric with lognormal
    // queueing jitter.
    let wan = LognormalLatency {
        scale: 50.0,
        floor: 0.5,
        sigma: 0.3,
    };

    // 2. Publish phase: each object's home fans its pointer entries out
    //    over the net ladder as install messages.
    let mut publish = Simulator::new(
        fleet,
        |u, v| space.dist(u, v),
        wan,
        SimConfig {
            seed: SEED,
            drop_prob: 0.0,
            timeout: None,
        },
    );
    for i in 0..objects {
        let home = Node::new((i * 31 + 1) % n);
        publish.inject(
            i as f64,
            home,
            DirectoryMsg::Publish {
                obj: ObjectId(i as u64),
            },
        );
    }
    let report = publish.run();
    println!("\n{}", report.render(&format!("publish {objects} objects")));
    assert_eq!(report.completed, objects, "publishes must all acknowledge");

    // The per-node *state* load after the installs — the static
    // counterpart of the message-load histograms below.
    let nodes = publish.into_nodes();
    let static_load = Percentiles::of(state_entries(&nodes).iter().map(|&e| e as f64).collect());
    println!(
        "per-node directory entries: p50 {:.0} / p99 {:.0} / max {:.0}\n",
        static_load.p50, static_load.p99, static_load.max
    );

    // 3. Lookup phase over the installed tables: 10k lookups with a
    //    crash burst mid-run (2% of the nodes die while queries are in
    //    flight) and a per-query deadline.
    let mut lookup = Simulator::new(
        nodes,
        |u, v| space.dist(u, v),
        wan,
        SimConfig {
            seed: SEED ^ 0x100,
            drop_prob: 0.0,
            timeout: Some(2000.0),
        },
    );
    let spread = lookups as f64 * 0.05;
    let burst = (n / 50).max(1);
    for k in 0..burst {
        lookup.crash_at(spread * 0.6 + k as f64 * 0.01, Node::new((k * 101 + 3) % n));
    }
    for q in 0..lookups {
        let origin = Node::new((q * 53 + 7) % n);
        let obj = ObjectId((q * 97 + 13) as u64 % objects as u64);
        lookup.inject(q as f64 * 0.05, origin, DirectoryMsg::Lookup { obj });
    }
    let report = lookup.run();
    println!(
        "{}",
        report.render(&format!(
            "{lookups} lookups, crash burst of {burst} nodes mid-run"
        ))
    );
    assert!(
        report.success_rate().unwrap_or(0.0) > 0.5,
        "a 2% crash burst must not take down the directory"
    );
    assert!(
        report.completed < lookups,
        "the burst should cost at least one in-flight query"
    );

    // 4. Churn lifecycle: the same lookup workload while ~2% of the
    //    nodes (including the top-level hub) *leave* — state conceded,
    //    directory damaged — a coordinator runs distributed repair as
    //    message rounds (promotion announcements, reconciliation grams,
    //    acks), and half the leavers rejoin fresh with backfill. Lookup
    //    success dips while the directory is damaged and recovers to
    //    100% once the epochs complete.
    //
    //    The fleet comes from an in-process publish of the same objects
    //    (property-tested byte-identical to the simulated installs), so
    //    the repair coordinator's control plane knows the registry.
    let items: Vec<(ObjectId, Node)> = (0..objects)
        .map(|i| (ObjectId(i as u64), Node::new((i * 31 + 1) % n)))
        .collect();
    overlay.publish_batch(&space, &items);
    let top = overlay.levels() - 1;
    let hub = space
        .nodes()
        .find(|&v| overlay.is_net_member(top, v))
        .expect("a top-level hub exists");
    let mut victims = vec![hub];
    for k in 0..(n / 50).max(4) {
        let v = Node::new((k * 101 + 3) % n);
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    let coordinator = space
        .nodes()
        .find(|v| !victims.contains(v))
        .expect("somebody stays alive");
    let rejoiners: Vec<Node> = victims.iter().step_by(2).copied().collect();
    let mut churn = Simulator::new(
        DirectoryNode::fleet_with_coordinator(&space, &overlay, coordinator),
        |u, v| space.dist(u, v),
        wan,
        SimConfig {
            seed: SEED ^ 0x200,
            drop_prob: 0.0,
            timeout: Some(2000.0),
        },
    );
    let mut schedule = ChurnSchedule::new();
    for &v in &victims {
        schedule.leave_at(300.0, v);
    }
    schedule.repair_at(500.0);
    for &v in &rejoiners {
        schedule.join_at(700.0, v);
    }
    schedule.repair_at(750.0);
    schedule.apply(&mut churn, coordinator);
    // Phase boundaries leave slack for in-flight lookups and for the
    // repair rounds (two message hops each) to ack under WAN jitter.
    churn.mark_phase(0.0, "steady");
    churn.mark_phase(250.0, "churned");
    churn.mark_phase(1200.0, "recovered");
    let span = 1400.0;
    for q in 0..lookups {
        // Origins avoid the victims: the dip below measures directory
        // damage, not dead origins.
        let mut origin = Node::new((q * 53 + 7) % n);
        while victims.contains(&origin) {
            origin = Node::new((origin.index() + 1) % n);
        }
        let obj = ObjectId((q * 97 + 13) as u64 % objects as u64);
        churn.inject(
            q as f64 * span / lookups as f64,
            origin,
            DirectoryMsg::Lookup { obj },
        );
    }
    let report = churn.run();
    println!(
        "{}",
        report.render(&format!(
            "churn lifecycle: {} leave (incl. the top hub), {} rejoin, 2 repair epochs",
            victims.len(),
            rejoiners.len()
        ))
    );
    print!("{}", report.render_phases());
    for (i, repair) in churn.node(coordinator).repair_history().iter().enumerate() {
        println!(
            "repair {}: promotions {}, pointer writes {}, deletes {}, rehomed {}",
            i + 1,
            repair.promotions,
            repair.pointer_writes,
            repair.pointer_deletes,
            repair.rehomed
        );
    }
    // The same run sliced by *injection time* instead of phase marks:
    // the per-bucket availability timeline through the waves and repair
    // epochs.
    print!("{}", report.render_availability(12));
    println!();
    let timeline = report.availability_timeline(12);
    assert_eq!(
        timeline.iter().map(|b| b.injected).sum::<usize>(),
        report.queries,
        "every lookup lands in exactly one timeline bucket"
    );
    let rates: Vec<f64> = timeline.iter().filter_map(|b| b.success_rate()).collect();
    assert!(
        rates.iter().all(|&r| r > 0.0),
        "no bucket may go fully dark: the directory keeps an availability \
         floor even while repair epochs run"
    );
    assert_eq!(
        rates.last(),
        Some(&1.0),
        "the last bucket with traffic must serve everything"
    );
    let phases = report.phase_breakdown();
    assert!(
        phases[0].success_rate().unwrap_or(0.0) > 0.99,
        "the steady phase must serve (in-flight boundary tail aside)"
    );
    assert!(
        phases[1].success_rate().unwrap_or(1.0) < 1.0,
        "the leave wave must dent lookup success"
    );
    assert_eq!(
        phases[2].success_rate(),
        Some(1.0),
        "lookups after the repair epochs must recover to 100%"
    );

    // 5. Greedy small-world routing (Theorem 5.2): 2k routes as message
    //    chains; every route completes in O(log n) messages.
    let t0 = Instant::now();
    let model = GreedyModel::sample(&space, 2.0, SEED);
    println!(
        "sampled greedy contacts: max degree {} ({:.1?})",
        model.contacts().max_out_degree(),
        t0.elapsed()
    );
    let budget = model.hop_budget() as u32;
    let mut greedy = Simulator::new(
        GreedyNode::fleet(model.contacts()),
        |u, v| space.dist(u, v),
        MetricLatency {
            scale: 50.0,
            floor: 0.5,
        },
        SimConfig {
            seed: SEED ^ 0x9,
            drop_prob: 0.0,
            timeout: None,
        },
    );
    for q in 0..routes {
        let src = Node::new((q * 131 + 7) % n);
        let tgt = Node::new((q * 197 + 89) % n);
        greedy.inject(
            q as f64 * 0.05,
            src,
            GreedyPacket {
                target: tgt,
                hops_left: budget,
            },
        );
    }
    let report = greedy.run();
    println!("{}", report.render(&format!("{routes} greedy routes")));
    assert_eq!(report.completed, routes, "greedy routes must all complete");
    let log2n = (n as f64).log2();
    assert!(
        report.hops.max <= 4.0 * log2n + 8.0,
        "greedy message chains must stay O(log n): max {} vs log2 n = {log2n:.1}",
        report.hops.max
    );
    println!("done: all phases deterministic; re-run to see identical fingerprints");
}
