//! Internet-latency-style distance estimation (the motivation of [33, 50]
//! and of Meridian [57]): a clustered metric mimicking inter/intra-AS
//! latencies, estimated three ways —
//!
//! 1. shared random beacons (the (eps, delta) baseline, which leaves a
//!    fraction of pairs uncertified),
//! 2. per-node beacon sets from Theorem 3.2 (zero failures),
//! 3. compact labels of Theorem 3.4 (same accuracy, no global ids).
//!
//! Run with: `cargo run --example internet_latency`

use rings_of_neighbors::labels::{
    CompactScheme, GlobalIdDls, SharedBeaconTriangulation, Triangulation,
};
use rings_of_neighbors::metric::{gen, Node, Space};

fn main() {
    // 90 "hosts" in 9 clusters: intra-cluster distances ~1000x smaller
    // than inter-cluster ones, like LAN vs WAN latency.
    let space = Space::new(gen::clustered(90, 2, 9, 0.005, 13));
    println!(
        "latency space: n = {}, aspect ratio = {:.0}",
        space.len(),
        space.index().aspect_ratio()
    );
    let delta = 0.2;

    // Baseline: 8 shared beacons for everyone.
    let baseline = SharedBeaconTriangulation::build(&space, 8, 1);
    let failing = baseline.failing_fraction(3.0 * delta);
    println!(
        "shared-beacon baseline: {} beacons, {:.1}% of pairs uncertified",
        baseline.beacons().len(),
        failing * 100.0
    );

    // Theorem 3.2: per-node beacons, every pair certified.
    let tri = Triangulation::build(&space, delta);
    println!(
        "(0,delta)-triangulation: order {}, worst D+/D- = {:.3} (bound {:.3})",
        tri.order(),
        tri.max_ratio(),
        (1.0 + 2.0 * delta) / (1.0 - 2.0 * delta)
    );

    // Label sizes: global-id DLS vs compact labels.
    let dls = GlobalIdDls::from_triangulation(&space, &tri);
    let compact = CompactScheme::build(&space, delta);
    println!("global-id labels: max {} bits", dls.max_label_bits());
    println!(
        "compact labels (Thm 3.4): max {} bits",
        compact.max_label_bits()
    );

    // Spot-check estimates across a cluster boundary and inside one.
    for (u, v, what) in [
        (Node::new(0), Node::new(9), "intra-cluster"),
        (Node::new(0), Node::new(1), "inter-cluster"),
    ] {
        let d = space.dist(u, v);
        let est = compact.estimate(u, v);
        println!(
            "{what}: true {d:.5}, compact estimate {est:.5} ({:.2}x)",
            est / d
        );
    }
}
