//! Compact routing on a doubling graph: the full-table baseline vs
//! Theorem 2.1 vs Theorem 4.1 vs Theorem 4.2/B.1 on a k-NN geometric
//! network (an overlay-network shape).
//!
//! Run with: `cargo run --example compact_routing`

use rings_of_neighbors::graph::{gen, Apsp};
use rings_of_neighbors::metric::{Node, Space};
use rings_of_neighbors::routing::{
    BasicScheme, FullTableBaseline, SimpleScheme, StretchStats, TwoModeScheme,
};

fn main() {
    let (graph, _points) = gen::knn_geometric(96, 2, 3, 21);
    let apsp = Apsp::compute(&graph);
    let space = Space::new(apsp.to_metric().expect("knn graphs are connected"));
    let delta = 0.25;
    println!(
        "network: n = {}, arcs = {}, Dout = {}, aspect ratio = {:.1}",
        graph.len(),
        graph.arc_count(),
        graph.max_out_degree(),
        space.index().aspect_ratio()
    );

    let baseline = FullTableBaseline::build(&graph, &apsp);
    let basic = BasicScheme::build(&space, &graph, &apsp, delta);
    let simple = SimpleScheme::build(&space, &graph, &apsp, delta);
    let twomode = TwoModeScheme::build(&space, &graph, &apsp, delta);

    let b_stats = StretchStats::over_all_pairs(&graph, &apsp, |u, v| baseline.route(&graph, u, v))
        .expect("baseline routes");
    println!(
        "full table : stretch max {:.3}, table {} bits, header {} bits",
        b_stats.max_stretch,
        baseline.table_bits().total_bits(),
        baseline.header_bits()
    );

    let s_stats = StretchStats::over_all_pairs(&graph, &apsp, |u, v| basic.route(&graph, u, v))
        .expect("Thm 2.1 routes");
    println!(
        "Thm 2.1    : stretch max {:.3}, table {} bits, header {} bits",
        s_stats.max_stretch,
        basic.max_table_bits(),
        basic.header_bits()
    );

    let p_stats = StretchStats::over_all_pairs(&graph, &apsp, |u, v| simple.route(&graph, u, v))
        .expect("Thm 4.1 routes");
    println!(
        "Thm 4.1    : stretch max {:.3}, table {} bits, header {} bits",
        p_stats.max_stretch,
        simple.max_table_bits(),
        simple.header_bits()
    );

    let mut mode_stats = Default::default();
    let t_stats = StretchStats::over_all_pairs(&graph, &apsp, |u, v| {
        twomode.route(&graph, u, v, &mut mode_stats)
    })
    .expect("Thm B.1 routes");
    println!(
        "Thm 4.2/B.1: stretch max {:.3}, table {} bits, header {} bits",
        t_stats.max_stretch,
        twomode.max_table_bits(),
        twomode.header_bits()
    );
    println!(
        "             mode usage: {} M1 selections, {} M2 switches",
        mode_stats.m1_selections, mode_stats.m2_switches
    );

    // One concrete route end to end.
    let (u, v) = (Node::new(0), Node::new(95));
    let trace = basic.route(&graph, u, v).expect("delivery");
    println!(
        "example route {u} -> {v}: {} hops, stretch {:.3}",
        trace.hops(),
        trace.stretch(apsp.dist(u, v))
    );
}
