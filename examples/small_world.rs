//! Searchable small worlds: Kleinberg's grid [30] side by side with the
//! paper's doubling-metric models (Theorem 5.2) and the single-link model
//! (Theorem 5.5).
//!
//! Run with: `cargo run --example small_world`

use rings_of_neighbors::graph::{gen as ggen, Apsp};
use rings_of_neighbors::metric::{gen, Space};
use rings_of_neighbors::smallworld::{
    GreedyModel, KleinbergGrid, PrunedModel, QueryStats, SingleLinkModel,
};

fn main() {
    // Kleinberg's 2-D grid with one inverse-square contact per node.
    let grid = KleinbergGrid::sample(12, 1, 3).expect("valid grid");
    let g_stats = QueryStats::over_all_pairs(grid.space().len(), |u, v| grid.query(u, v));
    println!(
        "Kleinberg grid 12x12 : degree <= {}, hops mean {:.1} / max {} ({}% done)",
        grid.contacts().max_out_degree(),
        g_stats.mean_hops,
        g_stats.max_hops,
        (g_stats.completion_rate() * 100.0) as u32
    );

    // Theorem 5.2(a) on random points (doubling, poly aspect ratio).
    let cube = Space::new(gen::uniform_cube(144, 2, 9));
    let model_a = GreedyModel::sample(&cube, 2.0, 4);
    let a_stats = QueryStats::over_all_pairs(cube.len(), |u, v| model_a.query(&cube, u, v));
    println!(
        "Thm 5.2(a) cube      : degree <= {}, hops mean {:.1} / max {} ({}% done)",
        model_a.contacts().max_out_degree(),
        a_stats.mean_hops,
        a_stats.max_hops,
        (a_stats.completion_rate() * 100.0) as u32
    );

    // Theorem 5.2(b) on the exponential line (super-poly aspect ratio):
    // pruned contacts, non-greedy jumps, still O(log n) hops.
    let line = Space::new(gen::exponential_line(64));
    let model_b = PrunedModel::sample(&line, 3.0, 5);
    let b_stats = QueryStats::over_all_pairs(line.len(), |u, v| model_b.query(&line, u, v));
    println!(
        "Thm 5.2(b) exp line  : degree <= {}, hops mean {:.1} / max {} ({}% done)",
        model_b.contacts().max_out_degree(),
        b_stats.mean_hops,
        b_stats.max_hops,
        (b_stats.completion_rate() * 100.0) as u32
    );

    // Theorem 5.5: one long link per node over a grid graph.
    let graph = ggen::grid_graph(12, 2);
    let apsp = Apsp::compute(&graph);
    let space = Space::new(apsp.to_metric().expect("grid is connected"));
    let single = SingleLinkModel::sample(&space, &graph, 11);
    let s_stats =
        QueryStats::over_all_pairs(space.len(), |u, v| single.query(&space, &graph, u, v));
    println!(
        "Thm 5.5 single link  : degree <= {}, hops mean {:.1} / max {} ({}% done)",
        graph.max_out_degree() + 1,
        s_stats.mean_hops,
        s_stats.max_hops,
        (s_stats.completion_rate() * 100.0) as u32
    );
}
