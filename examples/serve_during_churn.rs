//! Serving *through* repair: reader threads hammer lookups against the
//! epoch-published directory while a churn wave lands and a full repair
//! runs — and never notice. The leave wave and the repaired successor
//! are each built off to the side on the mutable overlay and swapped in
//! atomically through the [`EpochCell`], so the serving path keeps its
//! availability floor (answers within a 5 ms deadline) through both
//! epochs; only the *success rate* dips while the published state is
//! damaged, and it returns to 100% the instant the repair is published.
//!
//! Run with: `cargo run --release --example serve_during_churn`
//!
//! [`EpochCell`]: rings_of_neighbors::location::EpochCell

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use rings_of_neighbors::location::{
    DirectoryOverlay, EngineConfig, EpochCell, ObjectId, QueryEngine, Snapshot,
};
use rings_of_neighbors::metric::{gen, Node, Space};

const N: usize = 2048;
const OBJECTS: usize = 256;
const READERS: usize = 2;
/// Wall-clock width of each serving window (ms).
const WINDOW_MS: u64 = 20;
/// Service deadline: a lookup answered slower than this counts against
/// the availability floor.
const DEADLINE_MS: f64 = 5.0;
/// The floor itself: every window must answer at least this fraction of
/// its lookups within the deadline, repair epochs included.
const FLOOR: f64 = 0.95;

fn main() {
    // 1. A clustered metric, the overlay, and a batch of published
    //    objects; the initial snapshot goes into the epoch cell.
    let space = Space::new(gen::clustered(N, 2, N / 64, 0.01, 1105));
    let mut overlay = DirectoryOverlay::build(&space);
    let items: Vec<(ObjectId, Node)> = (0..OBJECTS)
        .map(|i| (ObjectId(i as u64), Node::new((i * 31 + 1) % N)))
        .collect();
    overlay.publish_batch(&space, &items);
    let cell = EpochCell::new(Snapshot::capture(&space, &overlay));
    println!(
        "overlay: n = {N}, levels = {}, {OBJECTS} objects published (epoch {})",
        overlay.levels(),
        cell.epoch()
    );

    // The churn wave: the top-level hub (worst case for the climb) plus
    // a spread of victims. Query origins avoid them, so success measures
    // directory damage, not dead origins.
    let top = overlay.levels() - 1;
    let hub = space
        .nodes()
        .find(|&v| overlay.is_net_member(top, v))
        .expect("a hub exists");
    let mut victims = vec![hub];
    for k in 0..N / 32 {
        let v = Node::new((k * 11 + 3) % N);
        if !victims.contains(&v) {
            victims.push(v);
        }
    }

    // 2. Reader threads sample lookups (start offset, success, service
    //    latency) while the writer scripts: wave published, repair
    //    published, stop. Nobody ever waits on the writer.
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let ms_now = || start.elapsed().as_secs_f64() * 1e3;
    let (samples, t_wave, t_done, t_stop, repair) = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let (cell, stop, space, victims) = (&cell, &stop, &space, &victims);
                scope.spawn(move || {
                    let mut out: Vec<(f64, bool, f64)> = Vec::new();
                    let mut q = r;
                    // ordering: Acquire -- pairs with the Release
                    // store that ends the sampling window.
                    while !stop.load(Ordering::Acquire) {
                        let mut origin = Node::new((q * 53 + 7) % N);
                        while victims.contains(&origin) {
                            origin = Node::new((origin.index() + 1) % N);
                        }
                        let obj = ObjectId((q % OBJECTS) as u64);
                        let at = ms_now();
                        let t0 = Instant::now();
                        let ok = cell.load().lookup(space, origin, obj).is_ok();
                        out.push((at, ok, t0.elapsed().as_secs_f64() * 1e3));
                        q += READERS;
                    }
                    out
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(WINDOW_MS));
        let t_wave = ms_now();
        for &v in &victims {
            overlay.leave(v);
        }
        overlay.publish_snapshot(&space, &cell);
        std::thread::sleep(Duration::from_millis(WINDOW_MS));
        let repair = overlay.repair_published(&space, &cell);
        let t_done = ms_now();
        std::thread::sleep(Duration::from_millis(WINDOW_MS));
        // ordering: Release -- ends the sampling window; pairs with
        // the readers' Acquire loads.
        stop.store(true, Ordering::Release);
        let t_stop = ms_now();

        let mut samples: Vec<(f64, bool, f64)> = readers
            .into_iter()
            .flat_map(|r| r.join().expect("reader panicked"))
            .collect();
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        (samples, t_wave, t_done, t_stop, repair)
    });
    assert_eq!(cell.epoch(), 2, "wave + repair = two published epochs");
    println!(
        "churn wave: -{} nodes (incl. the top hub); repair: {} pointer writes, \
         {} promotions, {} rehomed — all behind the readers' backs",
        victims.len(),
        repair.pointer_writes,
        repair.promotions,
        repair.rehomed
    );

    // 3. Slice the samples into the three windows by lookup start time
    //    and check the availability floor everywhere.
    println!("\nwindow    lookups  success %  within {DEADLINE_MS} ms  p99 ms");
    for (name, lo, hi) in [
        ("steady", 0.0, t_wave),
        ("damaged", t_wave, t_done),
        ("repaired", t_done, t_stop),
    ] {
        let window: Vec<_> = samples.iter().filter(|s| s.0 >= lo && s.0 < hi).collect();
        let lookups = window.len();
        assert!(lookups > 0, "{name}: the window must see traffic");
        let successes = window.iter().filter(|s| s.1).count();
        let within = window.iter().filter(|s| s.2 <= DEADLINE_MS).count();
        let mut latencies: Vec<f64> = window.iter().map(|s| s.2).collect();
        latencies.sort_by(f64::total_cmp);
        let availability = within as f64 / lookups as f64;
        println!(
            "{name:<9} {lookups:<8} {:<10.1} {:<13.1} {:.3}",
            successes as f64 / lookups as f64 * 100.0,
            availability * 100.0,
            latencies[((latencies.len() as f64 * 0.99).ceil() as usize).min(latencies.len()) - 1],
        );
        assert!(
            availability >= FLOOR,
            "{name}: availability {availability:.3} fell below the {FLOOR} floor"
        );
        if name != "damaged" {
            assert_eq!(successes, lookups, "{name}: every lookup must succeed");
        }
    }

    // 4. The batched engine over the same cell sees the repaired epoch:
    //    the full query mix serves at 100%.
    let engine = QueryEngine::new(&space, &cell);
    let queries: Vec<(Node, ObjectId)> = (0..4000usize)
        .map(|q| {
            let mut origin = Node::new((q * 53 + 7) % N);
            while victims.contains(&origin) {
                origin = Node::new((origin.index() + 1) % N);
            }
            (origin, ObjectId((q % OBJECTS) as u64))
        })
        .collect();
    let report = engine.serve(&queries, &EngineConfig::default());
    println!(
        "\npost-repair engine batch: {} lookups, success = {:.1}%, {:.0} lookups/s",
        report.served,
        report.success_rate() * 100.0,
        report.throughput()
    );
    assert_eq!(
        report.successes, report.served,
        "the repaired epoch must serve the full batch"
    );
    println!("done: the directory served at full rate through the repair");
}
