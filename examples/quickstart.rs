//! Quickstart: build a doubling metric, estimate distances from labels,
//! and run a small-world query — the three faces of rings of neighbors.
//!
//! Run with: `cargo run --example quickstart`

use rings_of_neighbors::labels::Triangulation;
use rings_of_neighbors::metric::{gen, Node, Space};
use rings_of_neighbors::smallworld::GreedyModel;

fn main() {
    // 1. A doubling metric: 128 random points in the unit square.
    let space = Space::new(gen::uniform_cube(128, 2, 7));
    println!(
        "space: n = {}, aspect ratio = {:.1}",
        space.len(),
        space.index().aspect_ratio()
    );

    // 2. Distance estimation via (0, delta)-triangulation (Theorem 3.2):
    //    every node stores ~order beacons; any pair gets a certified
    //    estimate D- <= d <= D+ from labels alone.
    let tri = Triangulation::build(&space, 0.2);
    println!("triangulation order (beacons/node): {}", tri.order());
    let (u, v) = (Node::new(3), Node::new(97));
    let est = tri.estimate(u, v);
    let d = space.dist(u, v);
    println!(
        "pair ({u}, {v}): true d = {d:.4}, D- = {:.4}, D+ = {:.4}, ratio = {:.3}",
        est.lower,
        est.upper,
        est.ratio()
    );
    assert!(est.lower <= d && d <= est.upper);

    // 3. Object location via a searchable small world (Theorem 5.2a):
    //    greedy routing over sampled rings finds any target in O(log n)
    //    hops.
    let model = GreedyModel::sample(&space, 2.0, 42);
    let outcome = model.query(&space, u, v).expect("query completes w.h.p.");
    println!(
        "small world: out-degree <= {}, query {u} -> {v} took {} hops",
        model.contacts().max_out_degree(),
        outcome.hops()
    );
    println!("path: {:?}", outcome.path);
}
