//! # Rings of Neighbors
//!
//! Umbrella crate for the reproduction of Aleksandrs Slivkins,
//! *"Distance Estimation and Object Location via Rings of Neighbors"*
//! (PODC 2005; full version 2006).
//!
//! Re-exports every sub-crate under a stable path. See the README for the
//! architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! ```
//! use rings_of_neighbors::metric::{gen, Space};
//!
//! let space = Space::new(gen::uniform_cube(32, 2, 1));
//! assert_eq!(space.len(), 32);
//! ```

pub use ron_core as core;
pub use ron_graph as graph;
pub use ron_labels as labels;
pub use ron_location as location;
pub use ron_measure as measure;
pub use ron_metric as metric;
pub use ron_nets as nets;
pub use ron_obs as obs;
pub use ron_routing as routing;
pub use ron_sim as sim;
pub use ron_smallworld as smallworld;
