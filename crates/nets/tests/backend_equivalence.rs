//! Cross-backend and cross-thread-count guarantees for the net layer:
//! the same greedy net falls out of the dense and the sparse oracle, and
//! ladder construction is deterministic under any worker count.

use ron_metric::{gen, par, BallOracle, LineMetric, Node, Space};
use ron_nets::{NestedNets, Net};

/// `Net::build` at a fixed radius is a pure function of the oracle's
/// answers, so the dense and sparse backends must produce the identical
/// member set.
#[test]
fn nets_identical_across_backends() {
    let dense = Space::new(gen::uniform_cube(72, 2, 19));
    let sparse = Space::new_sparse(gen::uniform_cube(72, 2, 19));
    let min_dist = dense.index().min_distance();
    assert_eq!(min_dist, sparse.index().min_distance());
    let mut radius = min_dist;
    while radius < dense.index().diameter() * 2.0 {
        let a = Net::build(&dense, radius, &[]);
        let b = Net::build(&sparse, radius, &[]);
        assert_eq!(a.members(), b.members(), "radius {radius}");
        let seeds = [Node::new(0)];
        let a = Net::build(&dense, radius, &seeds);
        let b = Net::build(&sparse, radius, &seeds);
        assert_eq!(a.members(), b.members(), "seeded, radius {radius}");
        radius *= 2.0;
    }
}

/// The sparse-backend ladder satisfies every net invariant on all four
/// generator families (its level count may exceed the dense ladder's by
/// one — the sparse diameter is an upper bound — but each level must be a
/// valid net and the ladder must stay nested).
#[test]
fn sparse_ladder_is_valid_on_every_family() {
    fn check<M: ron_metric::Metric, I: BallOracle>(space: &Space<M, I>) {
        let nets = NestedNets::build(space);
        assert_eq!(nets.net(0).len(), space.len(), "G_0 = V");
        assert_eq!(nets.net(nets.levels() - 1).len(), 1, "singleton top");
        for (j, net) in nets.iter() {
            net.verify(space)
                .unwrap_or_else(|e| panic!("level {j}: {e}"));
        }
        for j in 0..nets.levels() - 1 {
            let finer = nets.net(j);
            for &m in nets.net(j + 1).members() {
                assert!(finer.contains(m), "nesting broken at {j}");
            }
        }
    }
    check(&Space::new_sparse(gen::uniform_cube(64, 2, 3)));
    check(&Space::new_sparse(gen::clustered(48, 2, 5, 0.02, 9)));
    check(&Space::new_sparse(gen::perturbed_grid(6, 2, 0.2, 4)));
    check(&Space::new_sparse(LineMetric::exponential(24).unwrap()));
}

/// Ladder construction under the parallel executor is byte-identical to
/// single-threaded construction, on both backends.
#[test]
fn parallel_ladders_are_identical() {
    let dense = Space::new(gen::uniform_cube(64, 2, 27));
    let sparse = Space::new_sparse(gen::uniform_cube(64, 2, 27));
    let d1 = par::with_threads(1, || NestedNets::build(&dense));
    let d4 = par::with_threads(4, || NestedNets::build(&dense));
    let s1 = par::with_threads(1, || NestedNets::build(&sparse));
    let s4 = par::with_threads(4, || NestedNets::build(&sparse));
    assert_eq!(d1.levels(), d4.levels());
    assert_eq!(s1.levels(), s4.levels());
    for j in 0..d1.levels() {
        assert_eq!(d1.net(j).members(), d4.net(j).members(), "dense level {j}");
    }
    for j in 0..s1.levels() {
        assert_eq!(s1.net(j).members(), s4.net(j).members(), "sparse level {j}");
    }
}
