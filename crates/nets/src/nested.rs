use ron_metric::mem::vec_capacity_bytes;
use ron_metric::{distance_levels, BallOracle, HeapBytes, Metric, Node, Space};

use crate::Net;

/// The nested net ladder `G_L ⊆ ... ⊆ G_1 ⊆ G_0` of Theorem 3.2.
///
/// Level `j` is a `(min_dist * 2^j)`-net — `j` is the paper's *scale
/// exponent* after normalizing the minimum distance to 1. The ladder is
/// built coarsest-first, seeding each level with the members of the level
/// above, so `G_(j+1) ⊆ G_j` (a coarser net is a subset of every finer
/// net). Consequences used throughout the library:
///
/// * `G_0` contains **all** nodes (everything is `min_dist`-separated), so
///   zooming sequences can always terminate at the target itself;
/// * `G_L` covers the whole space with a single ball.
///
/// The paper also indexes nets top-down as `Delta/2^j`-nets (Theorem 2.1);
/// [`NestedNets::level_for_scale`] converts a distance scale to the ladder
/// level with the matching radius, which callers use for either convention.
///
/// # Example
///
/// ```
/// use ron_metric::{LineMetric, Space};
/// use ron_nets::NestedNets;
///
/// let space = Space::new(LineMetric::uniform(64)?);
/// let nets = NestedNets::build(&space);
/// assert_eq!(nets.net(0).len(), 64); // G_0 = V
/// assert!(nets.net(nets.levels() - 1).len() <= 2);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NestedNets {
    min_dist: f64,
    nets: Vec<Net>,
}

impl NestedNets {
    /// Builds the full ladder: levels `0..=L` with
    /// `L = ceil(log2(aspect_ratio))` — `O(n^2 log Delta)` on the dense
    /// backend, `O(n log^2 Delta)`-ish on the sparse one (each level is
    /// one marking pass of [`Net::build`]).
    ///
    /// Note the sparse backend reports an upper-bound
    /// [`diameter_ub`](BallOracle::diameter_ub), so its ladder may carry one
    /// extra (coarser) level than the dense ladder over the same metric;
    /// both satisfy every net invariant.
    #[must_use]
    pub fn build<M: Metric, I: BallOracle>(space: &Space<M, I>) -> Self {
        let _stage = ron_obs::stage("nets");
        let _span = ron_obs::span("construct.nets");
        let min_dist = space.index().min_distance();
        let top = distance_levels(space.index().aspect_ratio());
        let mut nets_rev: Vec<Net> = Vec::with_capacity(top + 1);
        let mut seeds: Vec<Node> = Vec::new();
        for j in (0..=top).rev() {
            let radius = min_dist * (2.0f64).powi(j as i32);
            let net = Net::build(space, radius, &seeds);
            seeds = net.members().to_vec();
            nets_rev.push(net);
        }
        nets_rev.reverse();
        NestedNets {
            min_dist,
            nets: nets_rev,
        }
    }

    /// Number of levels `L + 1` (level indices `0..levels()`).
    #[must_use]
    pub fn levels(&self) -> usize {
        self.nets.len()
    }

    /// The minimum distance used for scale normalization.
    #[must_use]
    pub fn min_distance(&self) -> f64 {
        self.min_dist
    }

    /// The net at scale exponent `j` (radius `min_dist * 2^j`).
    ///
    /// # Panics
    ///
    /// Panics if `j >= levels()`.
    #[must_use]
    pub fn net(&self, j: usize) -> &Net {
        &self.nets[j]
    }

    /// Radius of the level-`j` net.
    ///
    /// # Panics
    ///
    /// Panics if `j >= levels()`.
    #[must_use]
    pub fn radius(&self, j: usize) -> f64 {
        self.nets[j].radius()
    }

    /// Ladder level whose radius is the largest not exceeding `scale`
    /// (clamped to the ladder): the paper's `G_(floor(log2 scale))` after
    /// normalization.
    ///
    /// For `scale` below the minimum distance this returns 0 (the all-nodes
    /// net); for `scale` above the top radius it returns the top level.
    #[must_use]
    pub fn level_for_scale(&self, scale: f64) -> usize {
        if !(scale.is_finite() && scale > 0.0) {
            return 0;
        }
        let normalized = scale / self.min_dist;
        if normalized < 1.0 {
            return 0;
        }
        let j = normalized.log2().floor() as usize;
        j.min(self.levels() - 1)
    }

    /// Iterates over `(level, net)` pairs from finest (0) to coarsest.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Net)> {
        self.nets.iter().enumerate()
    }
}

impl HeapBytes for NestedNets {
    fn heap_bytes(&self) -> usize {
        vec_capacity_bytes(&self.nets) + self.nets.iter().map(HeapBytes::heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    fn ladder() -> (Space<LineMetric>, NestedNets) {
        let space = Space::new(LineMetric::uniform(64).unwrap());
        let nets = NestedNets::build(&space);
        (space, nets)
    }

    #[test]
    fn all_levels_are_valid_nets() {
        let (space, nets) = ladder();
        for (j, net) in nets.iter() {
            net.verify(&space)
                .unwrap_or_else(|e| panic!("level {j}: {e}"));
        }
    }

    #[test]
    fn levels_are_nested() {
        let (_, nets) = ladder();
        for j in 0..nets.levels() - 1 {
            let finer = nets.net(j);
            for &m in nets.net(j + 1).members() {
                assert!(
                    finer.contains(m),
                    "level {} member {m} missing at level {j}",
                    j + 1
                );
            }
        }
    }

    #[test]
    fn bottom_level_is_everything() {
        let (space, nets) = ladder();
        assert_eq!(nets.net(0).len(), space.len());
    }

    #[test]
    fn top_level_covers_with_one_ball() {
        let (space, nets) = ladder();
        let top = nets.net(nets.levels() - 1);
        assert!(top.radius() >= space.index().diameter_ub());
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn radii_double() {
        let (_, nets) = ladder();
        for j in 0..nets.levels() - 1 {
            assert!((nets.radius(j + 1) / nets.radius(j) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn level_for_scale_brackets() {
        let (_, nets) = ladder();
        assert_eq!(nets.level_for_scale(0.5), 0);
        assert_eq!(nets.level_for_scale(1.0), 0);
        assert_eq!(nets.level_for_scale(2.0), 1);
        assert_eq!(nets.level_for_scale(3.0), 1);
        assert_eq!(nets.level_for_scale(4.0), 2);
        assert_eq!(nets.level_for_scale(1e18), nets.levels() - 1);
        assert_eq!(nets.level_for_scale(f64::NAN), 0);
    }

    #[test]
    fn works_on_exponential_line() {
        let space = Space::new(LineMetric::exponential(20).unwrap());
        let nets = NestedNets::build(&space);
        assert_eq!(nets.levels(), 20); // L = ceil(log2(2^19 - 1)) = 19
        for (j, net) in nets.iter() {
            net.verify(&space)
                .unwrap_or_else(|e| panic!("level {j}: {e}"));
        }
        assert_eq!(nets.net(0).len(), 20);
    }

    #[test]
    fn works_on_random_points() {
        let space = Space::new(gen::uniform_cube(96, 2, 13));
        let nets = NestedNets::build(&space);
        for (j, net) in nets.iter() {
            net.verify(&space)
                .unwrap_or_else(|e| panic!("level {j}: {e}"));
        }
        // Net sizes shrink (weakly) with coarseness.
        for j in 0..nets.levels() - 1 {
            assert!(nets.net(j).len() >= nets.net(j + 1).len());
        }
    }
}
