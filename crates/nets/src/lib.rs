//! r-nets and nested net hierarchies (Section 1.1 of the paper).
//!
//! An *r-net* on a metric is a set `S` such that (i) every point is within
//! `r` of `S` (covering) and (ii) any two points of `S` are at distance at
//! least `r` (separation). Nets are the skeleton of every construction in
//! the paper: the rings `Y_uj = B_u(r_j) ∩ G_j` of Theorem 2.1, the
//! Y-neighbors of Theorem 3.2, the Z-sets of Theorem 3.4 and the level
//! neighbors of Theorem 4.1 all intersect balls with nets at geometric
//! scales.
//!
//! [`Net`] is a single net built greedily (the construction in Section 1.1,
//! which also proves existence); [`NestedNets`] is the ladder
//! `G_L ⊂ ... ⊂ G_1 ⊂ G_0` of Theorem 3.2, where `G_j` is a
//! `(min_dist * 2^j)`-net — index `j` is the paper's scale exponent, with
//! `G_0 = V` (all nodes) and `G_L` a single point covering everything.
//!
//! Lemma 1.4 (`|net ∩ B(u, r')| <= (4 r'/r)^alpha`) is exposed as
//! [`net_cardinality_bound`] and checked in tests.

mod nested;
mod net;

pub use nested::NestedNets;
pub use net::{net_cardinality_bound, Net, NetError};
