use std::error::Error;
use std::fmt;

use ron_metric::mem::vec_capacity_bytes;
use ron_metric::{BallOracle, HeapBytes, Metric, Node, Space};

/// Errors raised when validating an [`Net`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NetError {
    /// Two net members are closer than the net radius.
    SeparationViolated {
        /// First member.
        a: Node,
        /// Second member.
        b: Node,
        /// Their distance.
        dist: f64,
        /// Required minimum separation.
        radius: f64,
    },
    /// Some node is farther than the net radius from every member.
    CoveringViolated {
        /// The uncovered node.
        u: Node,
        /// Distance to the nearest member.
        nearest: f64,
        /// Required covering radius.
        radius: f64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::SeparationViolated { a, b, dist, radius } => write!(
                f,
                "net members {a} and {b} are at distance {dist} < radius {radius}"
            ),
            NetError::CoveringViolated { u, nearest, radius } => write!(
                f,
                "node {u} is at distance {nearest} > radius {radius} from the net"
            ),
        }
    }
}

impl Error for NetError {}

/// An `r`-net over a metric space: an `r`-separated, `r`-covering node set.
///
/// Built greedily per Section 1.1: starting from any `r`-separated seed
/// set, scan the nodes in id order and add each node that is at distance at
/// least `r` from every member so far. The result covers the space (any
/// uncovered node would have been added) and is `r`-separated by
/// construction.
///
/// # Example
///
/// ```
/// use ron_metric::{LineMetric, Node, Space};
/// use ron_nets::Net;
///
/// let space = Space::new(LineMetric::uniform(16)?);
/// let net = Net::build(&space, 4.0, &[]);
/// net.verify(&space)?;
/// assert!(net.len() >= 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Net {
    radius: f64,
    members: Vec<Node>,
    is_member: Vec<bool>,
}

impl Net {
    /// Greedily builds an `r`-net, starting from `seeds` (which must be
    /// pairwise at distance at least `r`; this is debug-asserted).
    ///
    /// Passing the members of a coarser net as `seeds` yields the *nested*
    /// nets of Theorem 3.2 — see [`NestedNets`](crate::NestedNets).
    ///
    /// The construction is the *marking* formulation of the greedy scan:
    /// each accepted member marks the open ball `B_m(r)` through one
    /// oracle ball query, and a node joins exactly when no earlier member
    /// has marked it — the same net as the nearest-member scan, in
    /// `O(sum over members of |B_m(r)|)` work, which the packing bound
    /// keeps near-linear per level on doubling metrics. It runs unchanged
    /// on the dense and the sparse backend.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    #[must_use]
    pub fn build<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        radius: f64,
        seeds: &[Node],
    ) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "net radius must be nonnegative"
        );
        let n = space.len();
        let oracle = space.index();
        let mut is_member = vec![false; n];
        let mut covered = vec![false; n];
        let mut members = Vec::new();
        let add = |m: Node, is_member: &mut Vec<bool>, covered: &mut Vec<bool>| {
            is_member[m.index()] = true;
            oracle.for_each_in_ball(m, radius, &mut |d, v| {
                if d < radius {
                    covered[v.index()] = true;
                }
            });
        };
        for &s in seeds {
            // A seed already covered by an earlier seed's open ball means
            // the seed set is not r-separated: an O(1) check per seed
            // derived from the oracle's ball marks (previously an
            // O(|seeds|^2) pairwise-distance pass).
            debug_assert!(
                is_member[s.index()] || !covered[s.index()],
                "seed set is not {radius}-separated"
            );
            if !is_member[s.index()] {
                members.push(s);
                add(s, &mut is_member, &mut covered);
            }
        }
        for u in space.nodes() {
            // `u` joins unless an existing member is strictly within
            // radius, i.e. unless some earlier member marked it.
            if !is_member[u.index()] && !covered[u.index()] {
                members.push(u);
                add(u, &mut is_member, &mut covered);
            }
        }
        members.sort_unstable();
        Net {
            radius,
            members,
            is_member,
        }
    }

    /// The net radius `r`.
    #[must_use]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the net has no members (only possible for an empty space).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members in ascending node order.
    #[must_use]
    pub fn members(&self) -> &[Node] {
        &self.members
    }

    /// Whether `u` is a member.
    #[must_use]
    pub fn contains(&self, u: Node) -> bool {
        self.is_member[u.index()]
    }

    /// The member nearest to `u` and its distance (ties by node id).
    ///
    /// # Panics
    ///
    /// Panics if the net is empty.
    #[must_use]
    pub fn nearest_member<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
        u: Node,
    ) -> (f64, Node) {
        space
            .index()
            .nearest_where(u, &mut |v| self.contains(v))
            .expect("net is nonempty and covers the space")
    }

    /// Members inside the closed ball `B_u(r)`, sorted by distance from `u`.
    ///
    /// This is the ring `B_u(r) ∩ G` the paper builds everywhere.
    #[must_use]
    pub fn members_in_ball<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
        u: Node,
        r: f64,
    ) -> Vec<Node> {
        let mut members = Vec::new();
        space.index().for_each_in_ball(u, r, &mut |_, v| {
            if self.contains(v) {
                members.push(v);
            }
        });
        members
    }

    /// Checks the separation and covering properties exhaustively.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn verify<M: Metric, I: BallOracle>(&self, space: &Space<M, I>) -> Result<(), NetError> {
        for (i, &a) in self.members.iter().enumerate() {
            for &b in &self.members[i + 1..] {
                let d = space.dist(a, b);
                if d < self.radius {
                    return Err(NetError::SeparationViolated {
                        a,
                        b,
                        dist: d,
                        radius: self.radius,
                    });
                }
            }
        }
        for u in space.nodes() {
            let (nearest, _) = self.nearest_member(space, u);
            if nearest > self.radius {
                return Err(NetError::CoveringViolated {
                    u,
                    nearest,
                    radius: self.radius,
                });
            }
        }
        Ok(())
    }
}

impl HeapBytes for Net {
    fn heap_bytes(&self) -> usize {
        vec_capacity_bytes(&self.members) + vec_capacity_bytes(&self.is_member)
    }
}

/// Lemma 1.4: an `r`-net has at most `(4 r'/r)^alpha` members in any ball
/// of radius `r' >= r`, for a metric of doubling dimension `alpha`.
///
/// Returns the bound value; tests compare it against measured counts.
///
/// # Panics
///
/// Panics if `r_prime < r` (the lemma's hypothesis) or `r <= 0`.
#[must_use]
pub fn net_cardinality_bound(r: f64, r_prime: f64, alpha: f64) -> f64 {
    assert!(r > 0.0, "net radius must be positive for the bound");
    assert!(r_prime >= r, "Lemma 1.4 requires r' >= r");
    (4.0 * r_prime / r).powf(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    #[test]
    fn greedy_net_is_valid() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        for r in [1.0, 2.0, 5.0, 31.0, 100.0] {
            let net = Net::build(&space, r, &[]);
            net.verify(&space)
                .unwrap_or_else(|e| panic!("radius {r}: {e}"));
        }
    }

    #[test]
    fn radius_zero_net_is_everything() {
        let space = Space::new(LineMetric::uniform(8).unwrap());
        let net = Net::build(&space, 0.0, &[]);
        assert_eq!(net.len(), 8);
    }

    #[test]
    fn at_most_min_dist_net_is_everything() {
        let space = Space::new(LineMetric::uniform(8).unwrap());
        let net = Net::build(&space, 1.0, &[]);
        assert_eq!(net.len(), 8, "a min-distance net must contain every node");
    }

    #[test]
    fn large_radius_net_is_single_point() {
        let space = Space::new(LineMetric::uniform(8).unwrap());
        let net = Net::build(&space, 100.0, &[]);
        assert_eq!(net.len(), 1);
        assert!(net.contains(Node::new(0)));
    }

    #[test]
    fn seeds_are_kept() {
        let space = Space::new(LineMetric::uniform(16).unwrap());
        let seeds = [Node::new(5), Node::new(15)];
        let net = Net::build(&space, 4.0, &seeds);
        assert!(net.contains(Node::new(5)));
        assert!(net.contains(Node::new(15)));
        net.verify(&space).unwrap();
    }

    #[test]
    fn nearest_member_and_ball_queries() {
        let space = Space::new(LineMetric::uniform(16).unwrap());
        let net = Net::build(&space, 4.0, &[]);
        let (d, m) = net.nearest_member(&space, Node::new(7));
        assert!(d <= 4.0);
        assert!(net.contains(m));
        let ring = net.members_in_ball(&space, Node::new(7), 6.0);
        for &v in &ring {
            assert!(net.contains(v));
            assert!(space.dist(Node::new(7), v) <= 6.0);
        }
    }

    #[test]
    fn lemma_1_4_on_random_points() {
        let space = Space::new(gen::uniform_cube(128, 2, 5));
        let r = 0.1;
        let net = Net::build(&space, r, &[]);
        // The plane has doubling dimension ~2; allow alpha = 2.5 for the
        // finite-sample estimate.
        let alpha = 2.5;
        for rp_mult in [1.0, 2.0, 4.0] {
            let rp = r * rp_mult;
            let bound = net_cardinality_bound(r, rp, alpha);
            for u in space.nodes() {
                let count = net.members_in_ball(&space, u, rp).len() as f64;
                assert!(
                    count <= bound,
                    "Lemma 1.4 violated: {count} members in B({u}, {rp}), bound {bound}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "r' >= r")]
    fn bound_requires_large_ball() {
        let _ = net_cardinality_bound(2.0, 1.0, 2.0);
    }

    #[test]
    fn verify_detects_separation_violation() {
        let space = Space::new(LineMetric::uniform(4).unwrap());
        // Hand-build a bogus net: members 0 and 1 are at distance 1 < 2.
        let net = Net {
            radius: 2.0,
            members: vec![Node::new(0), Node::new(1)],
            is_member: vec![true, true, false, false],
        };
        assert!(matches!(
            net.verify(&space),
            Err(NetError::SeparationViolated { .. })
        ));
    }

    #[test]
    fn verify_detects_covering_violation() {
        let space = Space::new(LineMetric::uniform(8).unwrap());
        let net = Net {
            radius: 1.0,
            members: vec![Node::new(0)],
            is_member: {
                let mut v = vec![false; 8];
                v[0] = true;
                v
            },
        };
        assert!(matches!(
            net.verify(&space),
            Err(NetError::CoveringViolated { .. })
        ));
    }
}
