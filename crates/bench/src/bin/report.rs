//! Prints every table and figure of the reproduction in one run.
//!
//! `cargo run --release -p ron-bench --bin report`
//!
//! EXPERIMENTS.md records a snapshot of this output next to the paper's
//! stated bounds.

fn main() {
    let delta = 0.25;
    println!(
        "{}",
        ron_bench::table1(&["grid-8x8", "exp-path-24"], delta).render()
    );
    println!("{}", ron_bench::table2(delta).render());
    println!("{}", ron_bench::table3(delta).render());
    println!("{}", ron_bench::fig_scaling().render());
    println!("{}", ron_bench::fig_triangulation(0.2).render());
    println!("{}", ron_bench::fig_labels(0.25).render());
    println!("{}", ron_bench::fig_smallworld().render());
    println!("{}", ron_bench::fig_structures().render());
    println!("{}", ron_bench::table_location().render());
}
