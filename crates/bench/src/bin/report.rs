//! Prints every table and figure of the reproduction in one run, and
//! writes the same tables (plus per-table build wall time) to
//! `BENCH_report.json` at the workspace root so the perf trajectory is
//! tracked across PRs.
//!
//! `cargo run --release -p ron-bench --bin report`
//!
//! EXPERIMENTS.md records a snapshot of the text output next to the
//! paper's stated bounds. The construction-scaling table runs at
//! `RON_SCALING_N` nodes when set, else a CI-friendly 4096 here (the
//! `fig_build_scaling` bench target defaults to the full 65 536); the
//! message-passing simulation table runs at `RON_SIM_N` nodes, else 1024
//! (the `fig_sim` bench target defaults to 4096). `RON_THREADS`
//! overrides the worker count of the parallel build loops.

use std::time::Instant;

fn main() {
    let delta = 0.25;
    let scaling_n = ron_bench::scaling_n_or(4096);
    let sim_n = ron_bench::sim_n_or(1024);
    let mut tables: Vec<(ron_bench::Table, f64)> = Vec::new();
    let mut run = |build: &mut dyn FnMut() -> ron_bench::Table| {
        let start = Instant::now();
        let table = build();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!("{}", table.render());
        tables.push((table, ms));
    };

    run(&mut || ron_bench::table1(&["grid-8x8", "exp-path-24"], delta));
    run(&mut || ron_bench::table2(delta));
    run(&mut || ron_bench::table3(delta));
    run(&mut ron_bench::fig_scaling);
    run(&mut || ron_bench::fig_triangulation(0.2));
    run(&mut || ron_bench::fig_labels(0.25));
    run(&mut ron_bench::fig_smallworld);
    run(&mut ron_bench::fig_structures);
    run(&mut ron_bench::table_location);
    run(&mut || ron_bench::fig_sim(sim_n));
    run(&mut || ron_bench::fig_churn(sim_n));
    run(&mut || ron_bench::fig_avail(sim_n));
    run(&mut || ron_bench::fig_build_scaling(scaling_n));
    let curve = ron_bench::scaling_curve();
    if !curve.is_empty() {
        run(&mut || ron_bench::fig_build_scaling_curve(&curve));
    }

    // E-LAT just before E-OBS: both toggle the recording flag around
    // their own passes, and fig_obs resets the registry (and with it
    // the time series) when it starts — so the flight-recorder run
    // takes its telemetry points first.
    let start = Instant::now();
    let (lat_table, series) = ron_bench::fig_lat_with_series(sim_n);
    let lat_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{}", lat_table.render());
    tables.push((lat_table, lat_ms));
    let series_json = ron_obs::timeseries_json(&series);
    let csv_path = ron_bench::timeseries_csv_path();
    match std::fs::write(&csv_path, ron_obs::timeseries_csv(&series)) {
        Ok(()) => println!("wrote {csv_path} ({} telemetry points)", series.len()),
        Err(e) => eprintln!("could not write {csv_path}: {e}"),
    }

    // E-OBS last: its drained registry rides into the JSON as the
    // "obs" block.
    let start = Instant::now();
    let (obs_table, registry) = ron_bench::fig_obs_with_registry(sim_n);
    let obs_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{}", obs_table.render());
    tables.push((obs_table, obs_ms));
    let obs_json = registry.to_json();

    let path = ron_bench::report_json_path();
    match ron_bench::write_report_json_full(&path, &tables, Some(&obs_json), Some(&series_json)) {
        Ok(()) => println!(
            "wrote {path} ({} tables + obs and timeseries blocks)",
            tables.len()
        ),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
