//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each `table_*` / `fig_*` function builds the instances, measures the
//! quantities the paper's tables bound (bits, degrees, stretch, hops) and
//! returns formatted rows. The Criterion benches under `benches/` print
//! these tables and then time one representative operation each; the
//! `report` binary prints everything at once (EXPERIMENTS.md is generated
//! from its output).
//!
//! Asymptotic competitor columns (Talwar \[52], Chan et al. \[14], Abraham
//! et al. \[7]) are *formulas evaluated with unit constants* — exactly how
//! the paper's tables cite them — marked with `~` in the output.

use std::time::Instant;

use ron_core::{par, RingFamily};
use ron_graph::{gen as ggen, Apsp, Graph};
use ron_labels::{CompactScheme, GlobalIdDls, SharedBeaconTriangulation, Triangulation};
use ron_location::{
    ChurnConfig, ChurnSchedule, DirectoryOverlay, EngineConfig, EpochCell, ObjectId, QueryEngine,
    Snapshot,
};
use ron_metric::{gen, BallOracle, HeapBytes, LineMetric, Metric, NetTreeIndex, Node, Space};
use ron_nets::NestedNets;
use ron_routing::{BasicScheme, FullTableBaseline, SimpleScheme, StretchStats, TwoModeScheme};
use ron_smallworld::{
    GreedyModel, KleinbergGrid, PrunedModel, QueryStats, SingleLinkModel, Structures,
};

/// A formatted output table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (paper artifact id).
    pub title: String,
    /// Which ball-query backend produced the rows (`"dense"`,
    /// `"sparse"`, or `"per-row"` when a backend column in the rows
    /// carries it). Recorded in `BENCH_report.json` so perf trajectories
    /// compare like with like.
    pub backend: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as one JSON object
    /// `{title, backend, header, rows}` (cells stay strings, exactly as
    /// printed; an unset backend is recorded as `"dense"`, the default
    /// `Space::new` path).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"title\":");
        out.push_str(&json_string(&self.title));
        out.push_str(",\"backend\":");
        out.push_str(&json_string(if self.backend.is_empty() {
            "dense"
        } else {
            &self.backend
        }));
        out.push_str(",\"header\":");
        out.push_str(&json_string_array(&self.header));
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string_array(row));
        }
        out.push_str("]}");
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string_array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(item));
    }
    out.push(']');
    out
}

/// Serializes tables (with the wall-clock milliseconds each took to
/// build) into the machine-readable `BENCH_report.json` document that the
/// `report` binary and the `fig_build_scaling` bench emit, so the perf
/// trajectory of every table — n, build ms, query p50/p99, stretch — is
/// tracked across PRs by CI artifacts instead of eyeballs.
#[must_use]
pub fn report_json(tables: &[(Table, f64)]) -> String {
    report_json_with_obs(tables, None)
}

/// [`report_json`] with an optional `"obs"` block: the JSON export of a
/// drained [`ron_obs::Registry`] (see [`fig_obs_with_registry`]), so
/// the raw metrics ride in `BENCH_report.json` next to the tables they
/// summarize.
#[must_use]
pub fn report_json_with_obs(tables: &[(Table, f64)], obs: Option<&str>) -> String {
    report_json_full(tables, obs, None)
}

/// [`report_json`] with both optional trailing blocks: `"obs"` (a
/// drained [`ron_obs::Registry`] as JSON) and `"timeseries"` (the
/// captured [`ron_obs::timeseries_json`] array from
/// [`fig_lat_with_series`]), so one document carries the tables, the
/// final metric totals and the telemetry trajectory that led there.
#[must_use]
pub fn report_json_full(
    tables: &[(Table, f64)],
    obs: Option<&str>,
    timeseries: Option<&str>,
) -> String {
    let mut out = String::from("{\"schema\":\"ron-bench/1\",\"threads\":");
    out.push_str(&par::num_threads().to_string());
    out.push_str(",\"tables\":[");
    for (i, (table, ms)) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let body = table.to_json();
        out.push_str("{\"build_ms\":");
        out.push_str(&format!("{ms:.3}"));
        out.push(',');
        // Splice the table object's fields into this one.
        out.push_str(body.strip_prefix('{').unwrap_or(&body));
    }
    out.push(']');
    if let Some(obs) = obs {
        out.push_str(",\"obs\":");
        out.push_str(obs);
    }
    if let Some(series) = timeseries {
        out.push_str(",\"timeseries\":");
        out.push_str(series);
    }
    out.push('}');
    out
}

/// Writes [`report_json`] to `path` (`BENCH_report.json` by convention).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_report_json(path: &str, tables: &[(Table, f64)]) -> std::io::Result<()> {
    std::fs::write(path, report_json(tables) + "\n")
}

/// [`write_report_json`] with the optional `"obs"` registry block.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_report_json_with_obs(
    path: &str,
    tables: &[(Table, f64)],
    obs: Option<&str>,
) -> std::io::Result<()> {
    std::fs::write(path, report_json_with_obs(tables, obs) + "\n")
}

/// [`write_report_json`] with both optional trailing blocks (`"obs"`
/// and `"timeseries"`); see [`report_json_full`].
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_report_json_full(
    path: &str,
    tables: &[(Table, f64)],
    obs: Option<&str>,
    timeseries: Option<&str>,
) -> std::io::Result<()> {
    std::fs::write(path, report_json_full(tables, obs, timeseries) + "\n")
}

/// Workspace-root path for `BENCH_report.json`, independent of the
/// working directory (`cargo bench` runs benches from the crate dir, the
/// `report` binary usually runs from the root — CI uploads one path).
#[must_use]
pub fn report_json_path() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json").to_string()
}

/// Workspace-root path for `BENCH_timeseries.csv`, the spreadsheet-ready
/// dump of the telemetry time series captured during the report run
/// (see [`ron_obs::timeseries_csv`] for the schema).
#[must_use]
pub fn timeseries_csv_path() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_timeseries.csv").to_string()
}

fn f(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

/// Renders an optional success rate as a bare-percent table cell under
/// a "success %" header: `"87.5"`, or `"n/a"` for a query-less run.
fn rate_cell(rate: Option<f64>) -> String {
    rate.map_or_else(|| "n/a".into(), |s| format!("{:.1}", s * 100.0))
}

/// A connected doubling graph family instance for the routing tables.
pub struct GraphInstance {
    /// Family name.
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// All-pairs shortest paths.
    pub apsp: Apsp,
    /// Its shortest-path metric.
    pub space: Space<ron_metric::ExplicitMetric>,
}

/// Builds the named graph instance.
///
/// # Panics
///
/// Panics on an unknown instance name.
#[must_use]
pub fn graph_instance(name: &str) -> GraphInstance {
    let graph = match name {
        "grid-8x8" => ggen::grid_graph(8, 2),
        "grid-12x12" => ggen::grid_graph(12, 2),
        "knn-128" => ggen::knn_geometric(128, 2, 3, 9).0,
        "exp-path-24" => ggen::exponential_path(24),
        "exp-path-40" => ggen::exponential_path(40),
        other => panic!("unknown graph instance {other}"),
    };
    let apsp = Apsp::compute(&graph);
    let space = Space::new(apsp.to_metric().expect("instances are connected"));
    GraphInstance {
        name: name.to_string(),
        graph,
        apsp,
        space,
    }
}

/// Builds the named metric instance.
///
/// # Panics
///
/// Panics on an unknown instance name.
#[must_use]
pub fn metric_instance(name: &str) -> Space<Box<dyn Metric>> {
    let metric: Box<dyn Metric> = match name {
        "cube-64" => Box::new(gen::uniform_cube(64, 2, 1)),
        "cube-128" => Box::new(gen::uniform_cube(128, 2, 1)),
        "cube-256" => Box::new(gen::uniform_cube(256, 2, 1)),
        "clusters-120" => Box::new(gen::clustered(120, 2, 10, 0.01, 2)),
        "exp-line-24" => Box::new(LineMetric::exponential(24).expect("valid")),
        "exp-line-32" => Box::new(LineMetric::exponential(32).expect("valid")),
        "exp-line-48" => Box::new(LineMetric::exponential(48).expect("valid")),
        "exp-line-64" => Box::new(LineMetric::exponential(64).expect("valid")),
        "pgrid-10" => Box::new(gen::perturbed_grid(10, 2, 0.2, 6)),
        other => panic!("unknown metric instance {other}"),
    };
    Space::new(metric)
}

/// Table 1: (1+delta)-stretch routing schemes on doubling **graphs** —
/// measured table/header bits and stretch for Theorems 2.1 and 4.1 next to
/// the competitors' formulas.
#[must_use]
pub fn table1(instances: &[&str], delta: f64) -> Table {
    let mut t = Table {
        title: format!("Table 1: (1+d)-stretch routing on doubling graphs (delta = {delta})"),
        header: [
            "graph",
            "n",
            "logDelta",
            "scheme",
            "table bits",
            "header bits",
            "max stretch",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
        backend: "dense".into(),
    };
    for name in instances {
        let inst = graph_instance(name);
        let n = inst.graph.len();
        let log_delta = inst.space.index().aspect_ratio().log2();
        let log_n = (n as f64).log2();
        let dout = inst.graph.max_out_degree() as f64;

        let baseline = FullTableBaseline::build(&inst.graph, &inst.apsp);
        let b_stats = StretchStats::over_all_pairs(&inst.graph, &inst.apsp, |u, v| {
            baseline.route(&inst.graph, u, v)
        })
        .expect("baseline");
        t.rows.push(vec![
            name.to_string(),
            n.to_string(),
            f(log_delta),
            "full table (stretch 1)".into(),
            baseline.table_bits().total_bits().to_string(),
            baseline.header_bits().to_string(),
            f(b_stats.max_stretch),
        ]);

        let basic = BasicScheme::build(&inst.space, &inst.graph, &inst.apsp, delta);
        let s = StretchStats::over_all_pairs(&inst.graph, &inst.apsp, |u, v| {
            basic.route(&inst.graph, u, v)
        })
        .expect("thm 2.1");
        t.rows.push(vec![
            name.to_string(),
            n.to_string(),
            f(log_delta),
            "Thm 2.1 (measured)".into(),
            basic.max_table_bits().to_string(),
            basic.header_bits().to_string(),
            f(s.max_stretch),
        ]);

        let simple = SimpleScheme::build(&inst.space, &inst.graph, &inst.apsp, delta);
        let s = StretchStats::over_all_pairs(&inst.graph, &inst.apsp, |u, v| {
            simple.route(&inst.graph, u, v)
        })
        .expect("thm 4.1");
        t.rows.push(vec![
            name.to_string(),
            n.to_string(),
            f(log_delta),
            "Thm 4.1 (measured)".into(),
            simple.max_table_bits().to_string(),
            simple.header_bits().to_string(),
            f(s.max_stretch),
        ]);

        // Competitor formulas with unit constants (the paper's Table 1
        // cites asymptotics; '~' marks formula evaluation, not
        // measurement).
        let inv = 1.0 / delta;
        let talwar_table = inv * (log_delta + 2.0).powi(2);
        let talwar_header = (log_delta + 2.0) * inv.log2().max(1.0);
        t.rows.push(vec![
            name.to_string(),
            n.to_string(),
            f(log_delta),
            "~Talwar'04 formula".into(),
            format!("~{talwar_table:.0}"),
            format!("~{talwar_header:.0}"),
            String::from("1+d"),
        ]);
        let chan_table = inv * (log_delta + 2.0) * dout.log2().max(1.0);
        t.rows.push(vec![
            name.to_string(),
            n.to_string(),
            f(log_delta),
            "~Chan+'05 formula".into(),
            format!("~{chan_table:.0}"),
            format!("~{talwar_header:.0}"),
            String::from("1+d"),
        ]);
        let abraham_table = inv * (log_delta + 2.0) * log_n;
        t.rows.push(vec![
            name.to_string(),
            n.to_string(),
            f(log_delta),
            "~Abraham+'06 formula".into(),
            format!("~{abraham_table:.0}"),
            format!("~{:.0}", log_n.ceil()),
            String::from("1+d"),
        ]);
    }
    t
}

/// Table 2: (1+delta)-stretch routing schemes on **metrics** (§4.1) —
/// overlay out-degree, table bits, header bits.
#[must_use]
pub fn table2(delta: f64) -> Table {
    let mut t = Table {
        title: format!("Table 2: (1+d)-stretch routing on doubling metrics (delta = {delta})"),
        header: [
            "metric",
            "n",
            "logDelta",
            "scheme",
            "out-degree",
            "table bits",
            "header bits",
            "max stretch",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
        backend: "dense".into(),
    };
    for name in ["cube-128", "exp-line-32"] {
        let space = metric_instance(name);
        let n = space.len();
        let log_delta = space.index().aspect_ratio().log2();
        let basic = BasicScheme::build_overlay(&space, delta);
        let mut worst = 1.0f64;
        for u in space.nodes() {
            for v in space.nodes() {
                if u == v {
                    continue;
                }
                let trace = basic.route_overlay(u, v).expect("delivery");
                worst = worst.max(trace.stretch(space.dist(u, v)));
            }
        }
        t.rows.push(vec![
            name.to_string(),
            n.to_string(),
            f(log_delta),
            "Thm 2.1 overlay".into(),
            basic.overlay_out_degree().to_string(),
            basic.max_table_bits().to_string(),
            basic.header_bits().to_string(),
            f(worst),
        ]);

        let simple = SimpleScheme::build_overlay(&space, delta);
        let mut worst = 1.0f64;
        for u in space.nodes() {
            for v in space.nodes() {
                if u == v {
                    continue;
                }
                let trace = simple.route_overlay(&space, u, v).expect("delivery");
                worst = worst.max(trace.stretch(space.dist(u, v)));
            }
        }
        t.rows.push(vec![
            name.to_string(),
            n.to_string(),
            f(log_delta),
            "Thm 4.1 overlay".into(),
            simple.overlay_out_degree().to_string(),
            simple.max_table_bits().to_string(),
            simple.header_bits().to_string(),
            f(worst),
        ]);
    }
    t
}

/// Table 3: the M1/M2 space split of the two-mode scheme (Theorem B.1).
#[must_use]
pub fn table3(delta: f64) -> Table {
    let mut t = Table {
        title: format!("Table 3: two-mode scheme space requirements (delta = {delta})"),
        header: [
            "graph",
            "n",
            "logDelta",
            "component",
            "bits (max over nodes)",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
        backend: "dense".into(),
    };
    for name in ["grid-8x8", "exp-path-24"] {
        let inst = graph_instance(name);
        let scheme = TwoModeScheme::build(&inst.space, &inst.graph, &inst.apsp, delta);
        let log_delta = inst.space.index().aspect_ratio().log2();
        // Aggregate per-component maxima over nodes.
        let mut maxima: Vec<(String, u64)> = Vec::new();
        for i in 0..inst.graph.len() {
            let report = scheme.table_bits(Node::new(i));
            for (part, bits) in report.parts() {
                match maxima.iter_mut().find(|(p, _)| p == part) {
                    Some(entry) => entry.1 = entry.1.max(*bits),
                    None => maxima.push((part.clone(), *bits)),
                }
            }
        }
        for (part, bits) in &maxima {
            t.rows.push(vec![
                name.to_string(),
                inst.graph.len().to_string(),
                f(log_delta),
                part.clone(),
                bits.to_string(),
            ]);
        }
        t.rows.push(vec![
            name.to_string(),
            inst.graph.len().to_string(),
            f(log_delta),
            "header total".into(),
            scheme.header_bits().to_string(),
        ]);
    }
    t
}

/// Figure E-3.2: triangulation order and quality vs n, with the
/// shared-beacon baseline's failing fraction.
#[must_use]
pub fn fig_triangulation(delta: f64) -> Table {
    let mut t = Table {
        title: format!("E-3.2: (0,delta)-triangulation (delta = {delta})"),
        header: [
            "metric",
            "n",
            "order",
            "worst D+/D-",
            "bound",
            "baseline eps (8 beacons)",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
        backend: "dense".into(),
    };
    let bound = (1.0 + 2.0 * delta) / (1.0 - 2.0 * delta);
    for name in [
        "cube-64",
        "cube-128",
        "cube-256",
        "clusters-120",
        "exp-line-32",
    ] {
        let space = metric_instance(name);
        let tri = Triangulation::build(&space, delta);
        let baseline = SharedBeaconTriangulation::build(&space, 8.min(space.len()), 7);
        t.rows.push(vec![
            name.to_string(),
            space.len().to_string(),
            tri.order().to_string(),
            f(tri.max_ratio()),
            f(bound),
            format!("{:.3}", baseline.failing_fraction(3.0 * delta)),
        ]);
    }
    t
}

/// Figure E-3.4: label sizes, compact (Thm 3.4) vs global-id DLS, vs n and
/// vs Delta.
#[must_use]
pub fn fig_labels(delta: f64) -> Table {
    let mut t = Table {
        title: format!("E-3.4: distance-label bits (delta = {delta})"),
        header: [
            "metric",
            "n",
            "loglogDelta",
            "global-id bits",
            "compact bits",
            "worst est/d",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
        backend: "dense".into(),
    };
    for name in ["cube-64", "cube-128", "exp-line-24", "exp-line-48"] {
        let space = metric_instance(name);
        let tri = Triangulation::build(&space, delta);
        let dls = GlobalIdDls::from_triangulation(&space, &tri);
        let compact = CompactScheme::build(&space, delta);
        let mut worst = 1.0f64;
        for u in space.nodes() {
            for v in space.nodes() {
                if u >= v {
                    continue;
                }
                worst = worst.max(compact.estimate(u, v) / space.dist(u, v));
            }
        }
        let llog = (space.index().aspect_ratio().log2() + 2.0).log2();
        t.rows.push(vec![
            name.to_string(),
            space.len().to_string(),
            f(llog),
            dls.max_label_bits().to_string(),
            compact.max_label_bits().to_string(),
            f(worst),
        ]);
    }
    t
}

/// Figure E-5.2/E-5.5: small-world hop counts and degrees across models.
#[must_use]
pub fn fig_smallworld() -> Table {
    let mut t = Table {
        title: "E-5.2/E-5.5: small-world models (hops over all pairs)".into(),
        header: [
            "model",
            "instance",
            "n",
            "log2 n",
            "degree max",
            "hops mean",
            "hops max",
            "done %",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
        backend: "dense".into(),
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |model: &str, instance: &str, n: usize, deg: usize, q: &QueryStats| {
        rows.push(vec![
            model.into(),
            instance.into(),
            n.to_string(),
            f((n as f64).log2()),
            deg.to_string(),
            f(q.mean_hops),
            q.max_hops.to_string(),
            format!("{:.0}", q.completion_rate() * 100.0),
        ]);
    };
    for name in ["cube-128", "exp-line-64"] {
        let space = metric_instance(name);
        let n = space.len();
        let a = GreedyModel::sample(&space, 2.0, 21);
        let qa = QueryStats::over_all_pairs(n, |u, v| a.query(&space, u, v));
        push("Thm 5.2(a)", name, n, a.contacts().max_out_degree(), &qa);
        let b = PrunedModel::sample(&space, 2.0, 22);
        let qb = QueryStats::over_all_pairs(n, |u, v| b.query(&space, u, v));
        push("Thm 5.2(b)", name, n, b.contacts().max_out_degree(), &qb);
    }
    let grid = KleinbergGrid::sample(11, 1, 23).expect("valid grid");
    let qg = QueryStats::over_all_pairs(121, |u, v| grid.query(u, v));
    push(
        "Kleinberg grid",
        "grid-11x11",
        121,
        grid.contacts().max_out_degree(),
        &qg,
    );
    for name in ["grid-8x8", "exp-path-24"] {
        let inst = graph_instance(name);
        let model = SingleLinkModel::sample(&inst.space, &inst.graph, 24);
        let q = QueryStats::over_all_pairs(inst.graph.len(), |u, v| {
            model.query(&inst.space, &inst.graph, u, v)
        });
        push(
            "Thm 5.5 single link",
            name,
            inst.graph.len(),
            inst.graph.max_out_degree() + 1,
            &q,
        );
    }
    t.rows = rows;
    t
}

/// Figure E-5.4: STRUCTURES vs Theorem 5.2 models on a UL-constrained
/// metric (perturbed grid).
#[must_use]
pub fn fig_structures() -> Table {
    let mut t = Table {
        title: "E-5.4: STRUCTURES on a UL-constrained metric".into(),
        header: [
            "model",
            "n",
            "degree max",
            "log2(n)^2",
            "hops mean",
            "hops max",
            "done %",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
        backend: "dense".into(),
    };
    let space = metric_instance("pgrid-10");
    let n = space.len();
    let log2n = (n as f64).log2();
    let st = Structures::sample(&space, 1.0, 31);
    let qs = QueryStats::over_all_pairs(n, |u, v| st.query(&space, u, v));
    t.rows.push(vec![
        "STRUCTURES [32]".into(),
        n.to_string(),
        st.contacts().max_out_degree().to_string(),
        f(log2n * log2n),
        f(qs.mean_hops),
        qs.max_hops.to_string(),
        format!("{:.0}", qs.completion_rate() * 100.0),
    ]);
    let a = GreedyModel::sample(&space, 1.0, 32);
    let qa = QueryStats::over_all_pairs(n, |u, v| a.query(&space, u, v));
    t.rows.push(vec![
        "Thm 5.2(a)".into(),
        n.to_string(),
        a.contacts().max_out_degree().to_string(),
        f(log2n * log2n),
        f(qa.mean_hops),
        qa.max_hops.to_string(),
        format!("{:.0}", qa.completion_rate() * 100.0),
    ]);
    t
}

/// E-OL: the object-location engine — static serving through the
/// concurrent query engine, then targeted churn with per-step
/// degradation and post-repair recovery.
///
/// Engine phases report throughput and latency percentiles; churn phases
/// report the sampled success rate and the repair bill. Instances are
/// built concretely (not via [`metric_instance`]) because the worker
/// pool needs `Sync` metrics.
#[must_use]
pub fn table_location() -> Table {
    let mut t = Table {
        title: "E-OL: object location via rings (publish/lookup, targeted churn)".into(),
        header: [
            "metric",
            "n",
            "objs",
            "phase",
            "success %",
            "mean stretch",
            "max stretch",
            "k-lookups/s",
            "p50 us",
            "p99 us",
            "repair writes",
            "cache h/m/st",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
        backend: "dense".into(),
    };
    location_rows(&mut t, "cube-256", Space::new(gen::uniform_cube(256, 2, 1)));
    location_rows(
        &mut t,
        "exp-line-32",
        Space::new(LineMetric::exponential(32).expect("valid")),
    );
    t
}

fn location_rows<M: Metric + Sync>(t: &mut Table, name: &str, space: Space<M>) {
    let n = space.len();
    let objects = (n / 4).max(8);
    let mut overlay = DirectoryOverlay::build(&space);
    for i in 0..objects {
        overlay.publish(&space, ObjectId(i as u64), Node::new((i * 31 + 1) % n));
    }
    // Static serving through the engine: deterministic batch mixing all
    // origins and a skewed object distribution (squaring favours low ids,
    // so the LRU cache sees repeats).
    let queries: Vec<(Node, ObjectId)> = (0..4000usize)
        .map(|i| {
            let origin = Node::new((i * 53 + 7) % n);
            let frac = ((i * 97 + 13) % 1000) as f64 / 1000.0;
            let obj = ObjectId(((frac * frac * objects as f64) as usize % objects) as u64);
            (origin, obj)
        })
        .collect();
    let directory = EpochCell::new(Snapshot::capture(&space, &overlay));
    let engine = QueryEngine::new(&space, &directory);
    // Same batch under one lock vs the default shard count: the
    // throughput column is the cache-sharding delta of the satellite.
    for (phase, config) in [
        (
            "static (engine, 1 lock)",
            EngineConfig {
                cache_shards: 1,
                ..EngineConfig::default()
            },
        ),
        ("static (engine, 8 shards)", EngineConfig::default()),
    ] {
        let report = engine.serve(&queries, &config);
        t.rows.push(vec![
            name.to_string(),
            n.to_string(),
            objects.to_string(),
            phase.into(),
            format!("{:.1}", report.success_rate() * 100.0),
            f(report.paths.mean_stretch()),
            f(report.paths.max_stretch),
            f(report.throughput() / 1000.0),
            f(report.latency.p50_us),
            f(report.latency.p99_us),
            "-".into(),
            report.render_cache_shards(),
        ]);
    }
    // Targeted (hub-first) churn, DRFE-R style: degrade, repair, recover.
    let churn = ron_location::drive_churn(
        &space,
        &mut overlay,
        ChurnSchedule::Targeted { fraction: 0.2 },
        &ChurnConfig {
            steps: 2,
            queries_per_step: 400,
            seed: 1105,
        },
    );
    for (i, step) in churn.steps.iter().enumerate() {
        t.rows.push(vec![
            name.to_string(),
            step.alive_after.to_string(),
            objects.to_string(),
            format!("churn step {} (-{})", i + 1, step.removed),
            format!("{:.1}", step.before_repair.success_rate() * 100.0),
            f(step.before_repair.paths.mean_stretch()),
            f(step.before_repair.paths.max_stretch),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
        t.rows.push(vec![
            name.to_string(),
            step.alive_after.to_string(),
            objects.to_string(),
            format!("  + repair {}", i + 1),
            format!("{:.1}", step.after_repair.success_rate() * 100.0),
            f(step.after_repair.paths.mean_stretch()),
            f(step.after_repair.paths.max_stretch),
            "-".into(),
            "-".into(),
            "-".into(),
            (step.repair.pointer_writes + step.repair.pointer_deletes).to_string(),
            "-".into(),
        ]);
    }
}

/// Figure F1: stretch of every routing scheme as delta varies (the
/// theorem-level claim behind Figure 1's idea flow).
#[must_use]
pub fn fig_scaling() -> Table {
    let mut t = Table {
        title: "F1: measured stretch vs delta (grid-8x8)".into(),
        header: ["delta", "Thm 2.1", "Thm 4.1", "Thm B.1", "bound 1+8d"]
            .iter()
            .map(ToString::to_string)
            .collect(),
        rows: Vec::new(),
        backend: "dense".into(),
    };
    let inst = graph_instance("grid-8x8");
    for delta in [0.5, 0.25, 0.125] {
        let basic = BasicScheme::build(&inst.space, &inst.graph, &inst.apsp, delta);
        let simple = SimpleScheme::build(&inst.space, &inst.graph, &inst.apsp, delta);
        let twomode = TwoModeScheme::build(&inst.space, &inst.graph, &inst.apsp, delta);
        let sb = StretchStats::over_all_pairs(&inst.graph, &inst.apsp, |u, v| {
            basic.route(&inst.graph, u, v)
        })
        .expect("basic");
        let ss = StretchStats::over_all_pairs(&inst.graph, &inst.apsp, |u, v| {
            simple.route(&inst.graph, u, v)
        })
        .expect("simple");
        let mut modes = Default::default();
        let st = StretchStats::over_all_pairs(&inst.graph, &inst.apsp, |u, v| {
            twomode.route(&inst.graph, u, v, &mut modes)
        })
        .expect("twomode");
        t.rows.push(vec![
            f(delta),
            f(sb.max_stretch),
            f(ss.max_stretch),
            f(st.max_stretch),
            f(1.0 + 8.0 * delta),
        ]);
    }
    t
}

/// Largest `n` the dense backend is allowed in the scaling experiment:
/// past this the `O(n^2)` sorted index is pointless to time (and at the
/// target `n = 65_536` it would need ~69 GB), so the dense row *refuses*
/// and says so instead of thrashing.
pub const DENSE_NODE_CAP: usize = 8192;

/// Largest `n` at which [`fig_build_scaling`] times the one-node-at-a-time
/// incremental tree growth as its own row: each insert is cheap, but a
/// from-scratch incremental build is strictly worse than the batch pass
/// (that is not its job — it exists so churn does not pay for a rebuild),
/// so past this size the row would only stretch the wall clock.
pub const INCREMENTAL_TIMING_CAP: usize = 16_384;

/// Heap budget for the built structures — sparse index plus directory
/// overlay with its nets, rings and pointer tables — in bytes per node.
/// The compact-id arenas hold the whole ladder within this on the 2-d
/// uniform cube at every benchmarked size up to `2^20`; the scaling
/// figures assert it so a layout regression fails loudly instead of
/// silently doubling the footprint.
pub const BYTES_PER_NODE_BUDGET: usize = 4096;

/// The instance size for [`fig_build_scaling`]: `RON_SCALING_N` when set,
/// else the acceptance target of 65 536 nodes.
#[must_use]
pub fn scaling_n() -> usize {
    scaling_n_or(65_536)
}

/// [`scaling_n`] with a caller-chosen fallback (the `report` binary uses
/// a CI-friendly default).
#[must_use]
pub fn scaling_n_or(default: usize) -> usize {
    std::env::var("RON_SCALING_N")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(default)
}

/// The extra instance sizes for [`fig_build_scaling_curve`]:
/// `RON_SCALING_CURVE` as a comma-separated list of node counts
/// (`"131072,262144,524288,1048576"`), empty when unset — the curve is
/// opt-in because its larger sizes take minutes, not seconds.
#[must_use]
pub fn scaling_curve() -> Vec<usize> {
    std::env::var("RON_SCALING_CURVE")
        .ok()
        .map(|raw| {
            raw.split(',')
                .filter_map(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n >= 2)
                .collect()
        })
        .unwrap_or_default()
}

/// One timed construction pass over a 2-d uniform cube of `n` points:
/// ball index, net ladder, publish rings, directory assembly, and a
/// batched publish of `n / 16` objects.
struct BuildTimings {
    index_ms: f64,
    nets_ms: f64,
    rings_ms: f64,
    directory_ms: f64,
    publish_ms: f64,
    struct_bytes: usize,
    fingerprint: u64,
}

impl BuildTimings {
    fn total_ms(&self) -> f64 {
        self.index_ms + self.nets_ms + self.rings_ms + self.directory_ms + self.publish_ms
    }
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn fnv(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= u64::from(byte);
        *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Order-sensitive digest of the built structures: ring contents, pointer
/// tables and homes. Two builds with the same digest placed every pointer
/// identically — the bit-identity check between thread counts.
fn fingerprint_overlay(rings: &RingFamily, overlay: &DirectoryOverlay) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for i in 0..rings.len() {
        let u = Node::new(i);
        for ring in rings.rings_of(u) {
            fnv(&mut hash, ring.level as u64);
            fnv(&mut hash, ring.radius.to_bits());
            for &m in ring.members() {
                fnv(&mut hash, m.index() as u64);
            }
        }
        fnv(&mut hash, overlay.entries_at(u) as u64);
    }
    fnv(&mut hash, overlay.total_entries() as u64);
    for &obj in overlay.objects() {
        fnv(&mut hash, obj.0);
        fnv(
            &mut hash,
            overlay.home_of(obj).map_or(u64::MAX, |h| h.index() as u64),
        );
    }
    hash
}

fn timed_build<M, I>(space: &Space<M, I>, index_ms: f64) -> BuildTimings
where
    M: Metric,
    I: BallOracle + HeapBytes,
{
    let n = space.len();
    let start = Instant::now();
    let nets = NestedNets::build(space);
    let nets_ms = ms(start);

    let start = Instant::now();
    let rings = RingFamily::from_nets(space, &nets, |_, r| {
        Some(ron_location::DEFAULT_RING_FACTOR * r)
    });
    let rings_ms = ms(start);

    let start = Instant::now();
    let mut overlay = DirectoryOverlay::from_structures(
        n,
        nets,
        rings.clone(),
        ron_location::DEFAULT_RING_FACTOR,
    );
    let directory_ms = ms(start);

    // Cap the batch: each publish walks one zoom chain whose coarse
    // levels cost ~|B| probes, so the object count — not n — sets this
    // stage's wall time.
    let objects: Vec<(ObjectId, Node)> = (0..(n / 16).clamp(4, 256))
        .map(|i| (ObjectId(i as u64), Node::new((i * 31 + 1) % n)))
        .collect();
    let start = Instant::now();
    overlay.publish_batch(space, &objects);
    let publish_ms = ms(start);

    BuildTimings {
        index_ms,
        nets_ms,
        rings_ms,
        directory_ms,
        publish_ms,
        // The overlay owns its net ladder, ring arena and pointer
        // tables, so index + overlay is the whole resident structure.
        struct_bytes: space.index().heap_bytes() + overlay.heap_bytes(),
        fingerprint: fingerprint_overlay(&rings, &overlay),
    }
}

/// E-BS: construction scaling under the pluggable ball-query backends.
///
/// Builds nets + rings + directory (+ a batched publish) over a 2-d
/// uniform cube of `n` points, on the sparse [`NetTreeIndex`] backend at
/// one thread and at every available thread, and on the dense
/// [`MetricIndex`] backend while `n <= DENSE_NODE_CAP` (above the cap the
/// dense row refuses — that is the point of the sparse backend). The two
/// sparse passes must produce bit-identical structures; the row prints
/// both fingerprints and the function asserts they agree.
///
/// [`NetTreeIndex`]: ron_metric::NetTreeIndex
/// [`MetricIndex`]: ron_metric::MetricIndex
#[must_use]
pub fn fig_build_scaling(n: usize) -> Table {
    let mut t = Table {
        title: format!("E-BS: construction scaling, nets+rings+directory (n = {n})"),
        header: [
            "backend",
            "n",
            "threads",
            "index ms",
            "nets ms",
            "rings ms",
            "directory ms",
            "publish ms",
            "total ms",
            "bytes/node",
            "fingerprint",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
        backend: "per-row".into(),
    };
    let push = |t: &mut Table, backend: &str, threads: usize, b: &BuildTimings| {
        t.rows.push(vec![
            backend.to_string(),
            n.to_string(),
            threads.to_string(),
            f(b.index_ms),
            f(b.nets_ms),
            f(b.rings_ms),
            f(b.directory_ms),
            f(b.publish_ms),
            f(b.total_ms()),
            (b.struct_bytes / n).to_string(),
            format!("{:016x}", b.fingerprint),
        ]);
    };

    let threads = par::num_threads();
    let serial = par::with_threads(1, || {
        let start = Instant::now();
        let space = Space::new_sparse(gen::uniform_cube(n, 2, 42));
        let index_ms = ms(start);
        let timings = timed_build(&space, index_ms);
        push(&mut t, "sparse net-tree", 1, &timings);
        timings
    });
    if threads > 1 {
        let parallel = par::with_threads(threads, || {
            let start = Instant::now();
            let space = Space::new_sparse(gen::uniform_cube(n, 2, 42));
            let index_ms = ms(start);
            timed_build(&space, index_ms)
        });
        assert_eq!(
            parallel.fingerprint, serial.fingerprint,
            "parallel construction must be bit-identical to single-threaded"
        );
        push(&mut t, "sparse net-tree", threads, &parallel);
        t.rows.push(vec![
            "speedup (1 -> all)".into(),
            n.to_string(),
            threads.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:.2}x", serial.total_ms() / parallel.total_ms().max(1e-9)),
            "-".into(),
            "bit-identical".into(),
        ]);
    }

    if n <= INCREMENTAL_TIMING_CAP {
        // Grow the net tree one insert at a time instead of batch-building
        // it; the index column is the sum of all n inserts. The grown tree
        // must answer every oracle query identically, so the pass ends in
        // the same rings, pointers and homes — the fingerprint proves it.
        let incremental = par::with_threads(1, || {
            let metric = gen::uniform_cube(n, 2, 42);
            let start = Instant::now();
            let mut tree = NetTreeIndex::incremental(metric.clone());
            for i in 0..n {
                tree.insert(Node::new(i));
            }
            let index_ms = ms(start);
            let space = Space::from_parts(metric, tree);
            timed_build(&space, index_ms)
        });
        assert_eq!(
            incremental.fingerprint, serial.fingerprint,
            "incrementally grown tree must place every pointer identically"
        );
        push(&mut t, "sparse incremental", 1, &incremental);
    }

    if n <= DENSE_NODE_CAP {
        let start = Instant::now();
        let space = Space::new(gen::uniform_cube(n, 2, 42));
        let index_ms = ms(start);
        let dense = timed_build(&space, index_ms);
        push(&mut t, "dense index", threads, &dense);
    } else {
        t.rows.push(vec![
            "dense index".into(),
            n.to_string(),
            "-".into(),
            format!("refused: n > {DENSE_NODE_CAP} needs O(n^2) memory"),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    t
}

/// E-BSC: the sparse-backend scaling curve — one row per instance size,
/// up to the million-node target `2^20`.
///
/// Each size runs the full construction pipeline single-threaded, then
/// again under a forced two-worker split (so the check runs even on a
/// one-core box), asserts the two fingerprints are bit-identical, and
/// asserts the resident structures fit [`BYTES_PER_NODE_BUDGET`]. The
/// row reports the serial per-stage times and the measured bytes per
/// node. Opt in through `RON_SCALING_CURVE` (see [`scaling_curve`]).
#[must_use]
pub fn fig_build_scaling_curve(ns: &[usize]) -> Table {
    let mut t = Table {
        title: "E-BSC: sparse construction curve, build time and bytes per node".into(),
        header: [
            "n",
            "index ms",
            "nets ms",
            "rings ms",
            "directory ms",
            "publish ms",
            "total ms",
            "bytes/node",
            "fingerprint",
            "2-worker check",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
        backend: "sparse net-tree".into(),
    };
    for &n in ns {
        let serial = par::with_threads(1, || {
            let start = Instant::now();
            let space = Space::new_sparse(gen::uniform_cube(n, 2, 42));
            let index_ms = ms(start);
            timed_build(&space, index_ms)
        });
        let dual = par::with_threads(2, || {
            let start = Instant::now();
            let space = Space::new_sparse(gen::uniform_cube(n, 2, 42));
            let index_ms = ms(start);
            timed_build(&space, index_ms)
        });
        assert_eq!(
            dual.fingerprint, serial.fingerprint,
            "n = {n}: two-worker construction must be bit-identical to single-threaded"
        );
        let bytes_per_node = serial.struct_bytes / n;
        assert!(
            bytes_per_node <= BYTES_PER_NODE_BUDGET,
            "n = {n}: {bytes_per_node} bytes/node exceeds the {BYTES_PER_NODE_BUDGET}-byte budget"
        );
        t.rows.push(vec![
            n.to_string(),
            f(serial.index_ms),
            f(serial.nets_ms),
            f(serial.rings_ms),
            f(serial.directory_ms),
            f(serial.publish_ms),
            f(serial.total_ms()),
            bytes_per_node.to_string(),
            format!("{:016x}", serial.fingerprint),
            "bit-identical".into(),
        ]);
    }
    t
}

/// The instance size for [`fig_sim`]: `RON_SIM_N` when set, else the
/// caller's default (the `report` binary uses a CI-friendly 1024, the
/// `fig_sim` bench 4096).
#[must_use]
pub fn sim_n_or(default: usize) -> usize {
    std::env::var("RON_SIM_N")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n >= 16)
        .unwrap_or(default)
}

/// E-SIM: the protocols as message-passing systems (`ron-sim`) over a
/// clustered Internet-latency metric — message counts, per-query message
/// chains, simulated latency percentiles and the **per-node
/// message-load histogram** (the §5 STRUCTURES uniform-load claim,
/// measured at message level).
///
/// Three phases: directory lookups on a failure-free network, greedy
/// small-world routes (Theorem 5.2 hops as message chains), and the same
/// directory workload with a mid-run crash burst plus per-query
/// timeouts, showing the degradation the repair machinery exists for.
/// Everything is seeded; `n` is clamped to [`DENSE_NODE_CAP`].
#[must_use]
pub fn fig_sim(n: usize) -> Table {
    use ron_sim::directory::{DirectoryMsg, DirectoryNode};
    use ron_sim::greedy::{GreedyNode, GreedyPacket};
    use ron_sim::{MetricLatency, SimConfig, SimReport, Simulator};

    let n = n.clamp(16, DENSE_NODE_CAP);
    let mut t = Table {
        title: format!("E-SIM: message-passing simulation (clustered metric, n = {n})"),
        backend: "dense".into(),
        header: [
            "driver",
            "queries",
            "success %",
            "msgs sent",
            "msgs dropped+lost",
            "hops mean",
            "hops max",
            "lat p50",
            "lat p99",
            "load p99",
            "load max",
            "load histogram (per-node msgs received)",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
    };
    let push = |t: &mut Table, driver: &str, queries: usize, r: &SimReport| {
        let load = r.load_percentiles();
        t.rows.push(vec![
            driver.to_string(),
            queries.to_string(),
            rate_cell(r.success_rate()),
            r.messages.sent.to_string(),
            (r.messages.dropped + r.messages.lost_to_crash).to_string(),
            f(r.hops.mean),
            f(r.hops.max),
            f(r.latency.p50),
            f(r.latency.p99),
            f(load.p99),
            f(load.max),
            r.load_histogram_rendered(),
        ]);
    };

    let space = Space::new(gen::clustered(n, 2, (n / 64).max(4), 0.01, 42));
    let objects = (n / 8).clamp(8, 512);
    let mut overlay = DirectoryOverlay::build(&space);
    let items: Vec<(ObjectId, Node)> = (0..objects)
        .map(|i| (ObjectId(i as u64), Node::new((i * 31 + 1) % n)))
        .collect();
    overlay.publish_batch(&space, &items);
    let lookups = (4 * n).min(8192);
    let latency = MetricLatency {
        scale: 1.0,
        floor: 0.01,
    };
    let inject_lookups = |sim: &mut Simulator<'_, DirectoryNode>| {
        for q in 0..lookups {
            let origin = Node::new((q * 53 + 7) % n);
            let obj = ObjectId((q * 97 + 13) as u64 % objects as u64);
            sim.inject(q as f64 * 0.05, origin, DirectoryMsg::Lookup { obj });
        }
    };

    // Phase 1: failure-free directory lookups.
    let mut sim = Simulator::new(
        DirectoryNode::fleet(&space, &overlay),
        |u, v| space.dist(u, v),
        latency,
        SimConfig::default(),
    );
    inject_lookups(&mut sim);
    let clean = sim.run();
    assert_eq!(
        clean.completed, lookups,
        "failure-free lookups must all complete"
    );
    push(&mut t, "directory lookup", lookups, &clean);

    // Phase 2: greedy small-world routes.
    let model = GreedyModel::sample(&space, 2.0, 21);
    let budget = model.hop_budget() as u32;
    let mut sim = Simulator::new(
        GreedyNode::fleet(model.contacts()),
        |u, v| space.dist(u, v),
        latency,
        SimConfig::default(),
    );
    let routes = n.min(2048);
    for q in 0..routes {
        let src = Node::new((q * 131 + 7) % n);
        let tgt = Node::new((q * 197 + 89) % n);
        sim.inject(
            q as f64 * 0.05,
            src,
            GreedyPacket {
                target: tgt,
                hops_left: budget,
            },
        );
    }
    push(&mut t, "greedy route (Thm 5.2)", routes, &sim.run());

    // Phase 3: the directory workload again, with 2% of the nodes
    // crashing mid-run and a per-query deadline.
    let mut sim = Simulator::new(
        DirectoryNode::fleet(&space, &overlay),
        |u, v| space.dist(u, v),
        latency,
        SimConfig {
            seed: 7,
            drop_prob: 0.0,
            timeout: Some(64.0),
        },
    );
    let burst = (n / 50).max(1);
    let mid = lookups as f64 * 0.05 / 2.0;
    for k in 0..burst {
        sim.crash_at(mid + k as f64 * 0.01, Node::new((k * 101 + 3) % n));
    }
    inject_lookups(&mut sim);
    let churned = sim.run();
    push(
        &mut t,
        &format!("directory lookup (crash burst -{burst})"),
        lookups,
        &churned,
    );
    t
}

/// E-CHURN: the full churn→repair→recovery lifecycle as a distributed
/// protocol (`ron-sim`): lookups flow continuously while a leave wave
/// (including the top-level hub) damages the directory, a coordinator
/// runs the repair epoch as message rounds (promotion announcements,
/// pointer-reconciliation grams, re-homing adoptions), half the leavers
/// rejoin fresh and a second epoch backfills them. One row per phase
/// (success rate and per-node message load) plus one row per repair
/// epoch (the repair bill) and the run's trace fingerprint.
///
/// The steady phase must serve 100% and the post-repair phases must
/// *recover* to 100% — asserted, not just printed (zero-latency
/// failure-free repair is property-tested byte-equal to the in-process
/// `DirectoryOverlay::repair` in `ron-sim`'s test suite). Everything is
/// seeded; `n` is clamped to `[64, DENSE_NODE_CAP]`.
#[must_use]
pub fn fig_churn(n: usize) -> Table {
    use ron_sim::directory::{DirectoryMsg, DirectoryNode};
    use ron_sim::{ChurnSchedule, MetricLatency, SimConfig, Simulator};

    let n = n.clamp(64, DENSE_NODE_CAP);
    let mut t = Table {
        title: format!("E-CHURN: distributed churn & repair (clustered metric, n = {n})"),
        backend: "dense".into(),
        header: [
            "phase",
            "queries",
            "success %",
            "msgs sent",
            "load p99",
            "load max",
            "detail",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
    };

    let space = Space::new(gen::clustered(n, 2, (n / 64).max(4), 0.01, 42));
    let objects = (n / 8).clamp(8, 512);
    let mut overlay = DirectoryOverlay::build(&space);
    let items: Vec<(ObjectId, Node)> = (0..objects)
        .map(|i| (ObjectId(i as u64), Node::new((i * 31 + 1) % n)))
        .collect();
    overlay.publish_batch(&space, &items);

    // Victims: the top-level hub (worst case for the climb) plus a
    // deterministic spread; the coordinator never churns.
    let top = overlay.levels() - 1;
    let hub = space
        .nodes()
        .find(|&v| overlay.is_net_member(top, v))
        .expect("a hub exists");
    let mut victims = vec![hub];
    for k in 0..(n / 16).max(2) {
        let v = Node::new((k * 11 + 3) % n);
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    let coordinator = space
        .nodes()
        .find(|v| !victims.contains(v))
        .expect("somebody stays");
    let rejoiners: Vec<Node> = victims.iter().step_by(2).copied().collect();

    let lookups = (4 * n).min(8192);
    let span = (lookups as f64 * 0.05).max(400.0);
    let dt = span / lookups as f64;
    let t_wave = 0.30 * span;
    let t_repair = 0.50 * span;
    let t_join = 0.65 * span;
    let t_repair2 = 0.70 * span;

    let mut sim = Simulator::new(
        DirectoryNode::fleet_with_coordinator(&space, &overlay, coordinator),
        |u, v| space.dist(u, v),
        MetricLatency {
            scale: 1.0,
            floor: 0.01,
        },
        SimConfig {
            seed: 1105,
            drop_prob: 0.0,
            timeout: Some(64.0),
        },
    );
    let mut schedule = ChurnSchedule::new();
    for &v in &victims {
        schedule.leave_at(t_wave, v);
    }
    schedule.repair_at(t_repair);
    for &v in &rejoiners {
        schedule.join_at(t_join, v);
    }
    schedule.repair_at(t_repair2);
    schedule.apply(&mut sim, coordinator);
    // Phase boundaries leave slack for in-flight lookups (a climb plus
    // a descent under this latency model stays well under 30 time
    // units) and for the repair rounds to ack.
    sim.mark_phase(0.0, "steady");
    sim.mark_phase(t_wave - 30.0, "churned");
    sim.mark_phase(t_repair + 20.0, "repaired");
    sim.mark_phase(t_join - 30.0, "join wave");
    sim.mark_phase(t_repair2 + 20.0, "rejoined");
    for q in 0..lookups {
        // Origins avoid the victims so the measured dip is directory
        // damage, not OriginDown.
        let mut origin = Node::new((q * 53 + 7) % n);
        while victims.contains(&origin) {
            origin = Node::new((origin.index() + 1) % n);
        }
        let obj = ObjectId((q * 97 + 13) as u64 % objects as u64);
        sim.inject(q as f64 * dt, origin, DirectoryMsg::Lookup { obj });
    }
    let report = sim.run();
    let history = sim.node(coordinator).repair_history().to_vec();

    for phase in report.phase_breakdown() {
        let success = phase.success_rate();
        match phase.name.as_str() {
            "steady" => assert_eq!(success, Some(1.0), "steady phase must serve everything"),
            "repaired" | "rejoined" => assert_eq!(
                success,
                Some(1.0),
                "{} phase must recover to 100%",
                phase.name
            ),
            _ => {}
        }
        t.rows.push(vec![
            phase.name.clone(),
            phase.queries.to_string(),
            rate_cell(success),
            "-".into(),
            f(phase.load.p99),
            f(phase.load.max),
            format!("[{:.0}, {:.0})", phase.start, phase.end),
        ]);
    }
    assert_eq!(history.len(), 2, "both repair epochs must complete");
    for (i, repair) in history.iter().enumerate() {
        t.rows.push(vec![
            format!("repair {}", i + 1),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!(
                "promotions {}, writes {}, deletes {}, rehomed {} (of {} objects)",
                repair.promotions,
                repair.pointer_writes,
                repair.pointer_deletes,
                repair.rehomed,
                repair.objects_touched
            ),
        ]);
    }
    t.rows.push(vec![
        "whole run".into(),
        report.queries.to_string(),
        rate_cell(report.success_rate()),
        report.messages.sent.to_string(),
        f(report.load_percentiles().p99),
        f(report.load_percentiles().max),
        format!(
            "wave -{} (+{} rejoined), trace {:016x}",
            victims.len(),
            rejoiners.len(),
            report.trace_fingerprint
        ),
    ]);
    t
}

/// Wall-clock width of each scripted serving window in [`fig_avail`]'s
/// threaded comparison.
const AVAIL_WINDOW_MS: u64 = 30;

/// Service deadline for the availability column: a lookup that takes
/// longer than this (because it sat blocked behind a repair) counts as
/// unavailable even if it eventually answered.
const AVAIL_DEADLINE_MS: f64 = 5.0;

/// Reader threads hammering lookups in [`fig_avail`].
const AVAIL_READERS: usize = 2;

/// One wall-clock sample from a [`fig_avail`] reader: offset from run
/// start (ms), whether the lookup succeeded, its service latency (ms),
/// and a tag identifying which published state served it (the snapshot
/// epoch under blocking, the cell epoch under epoch publication) — the
/// tag, not the wall clock, is what the success assertions key on.
type AvailSample = (f64, bool, f64, u64);

/// Timestamps and repair accounting from one [`fig_avail`] mode run.
struct AvailRun {
    samples: Vec<AvailSample>,
    /// Window boundaries (ms from start): wave applied, repair began,
    /// repair visible, run stopped.
    t_wave: f64,
    t_repair: f64,
    t_done: f64,
    t_stop: f64,
    /// Wall time the repair + successor capture took (for blocking mode,
    /// the time the write lock was held).
    repair_ms: f64,
    repair: ron_location::RepairReport,
}

/// Summary of one window of an [`fig_avail`] mode run.
struct AvailWindow {
    name: &'static str,
    lo: f64,
    hi: f64,
    lookups: usize,
    successes: usize,
    within_deadline: usize,
    p99_ms: f64,
}

impl AvailWindow {
    fn success_rate(&self) -> Option<f64> {
        (self.lookups > 0).then(|| self.successes as f64 / self.lookups as f64)
    }

    fn availability(&self) -> Option<f64> {
        (self.lookups > 0).then(|| self.within_deadline as f64 / self.lookups as f64)
    }
}

/// The deterministic query stream the [`fig_avail`] readers draw from
/// (same shape as [`location_rows`]: striding origins, squared-skew
/// objects), skipping victim origins so failures measure directory
/// damage, not dead origins.
fn avail_query(q: usize, n: usize, objects: usize, victims: &[Node]) -> (Node, ObjectId) {
    let mut origin = Node::new((q * 53 + 7) % n);
    while victims.contains(&origin) {
        origin = Node::new((origin.index() + 1) % n);
    }
    let frac = ((q * 97 + 13) % 1000) as f64 / 1000.0;
    let obj = ObjectId(((frac * frac * objects as f64) as usize % objects) as u64);
    (origin, obj)
}

/// Runs one [`fig_avail`] serving mode: reader threads hammer lookups
/// through `serve` while the writer applies a churn wave and a repair.
/// `blocking: true` emulates the pre-epoch stop-the-world path (every
/// read holds a `RwLock` read guard; the wave and the whole
/// repair-plus-capture hold the write guard); `false` serves through an
/// [`EpochCell`], building the successor off to the side and swapping it
/// in.
fn avail_run<M: Metric + Sync>(
    space: &Space<M>,
    mut overlay: DirectoryOverlay,
    victims: &[Node],
    objects: usize,
    blocking: bool,
) -> AvailRun {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::RwLock;

    let n = space.len();
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let ms_now = || start.elapsed().as_secs_f64() * 1e3;
    let window = std::time::Duration::from_millis(AVAIL_WINDOW_MS);

    // The sampling loop every reader runs, generic over the serve path.
    let sample_loop = |serve: &(dyn Fn(Node, ObjectId) -> (bool, u64) + Sync), reader: usize| {
        let mut out = Vec::new();
        let mut q = reader;
        // ordering: Acquire -- pairs with the Release store when the
        // window closes; samples taken before the flag are complete.
        while !stop.load(Ordering::Acquire) {
            let (origin, obj) = avail_query(q, n, objects, victims);
            let at = ms_now();
            let t0 = Instant::now();
            let (ok, tag) = serve(origin, obj);
            out.push((at, ok, t0.elapsed().as_secs_f64() * 1e3, tag));
            q += AVAIL_READERS;
        }
        out
    };

    let snapshot = Snapshot::capture(space, &overlay);
    let lock = RwLock::new(snapshot.clone());
    let cell = EpochCell::new(snapshot);
    let serve_blocking = |origin: Node, obj: ObjectId| {
        let guard = lock.read().expect("snapshot lock");
        (guard.lookup(space, origin, obj).is_ok(), guard.epoch())
    };
    let serve_epoch = |origin: Node, obj: ObjectId| {
        let published = cell.load();
        (
            published.lookup(space, origin, obj).is_ok(),
            published.epoch(),
        )
    };
    let serve: &(dyn Fn(Node, ObjectId) -> (bool, u64) + Sync) = if blocking {
        &serve_blocking
    } else {
        &serve_epoch
    };

    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..AVAIL_READERS)
            .map(|r| scope.spawn(move || sample_loop(serve, r)))
            .collect();

        // The writer script: steady, churn wave, churned, repair,
        // repaired, stop.
        std::thread::sleep(window);
        let t_wave = ms_now();
        if blocking {
            let mut guard = lock.write().expect("snapshot lock");
            for &v in victims {
                overlay.leave(v);
            }
            *guard = Snapshot::capture(space, &overlay);
        } else {
            for &v in victims {
                overlay.leave(v);
            }
            overlay.publish_snapshot(space, &cell);
        }
        std::thread::sleep(window);
        // The repair-window boundaries are taken while the writer still
        // owns the story: for the blocking baseline, inside the write
        // guard (acquisition is microseconds; a `ms_now()` taken after
        // the drop could trail the release by a scheduler quantum while
        // the woken readers run, smuggling post-release lookups into the
        // window); for the epoch path, around the off-lock build + swap.
        let (repair, t_repair, t_done) = if blocking {
            let mut guard = lock.write().expect("snapshot lock");
            let t_repair = ms_now();
            let repair = overlay.repair(space);
            *guard = Snapshot::capture(space, &overlay);
            let t_done = ms_now();
            drop(guard);
            (repair, t_repair, t_done)
        } else {
            let t_repair = ms_now();
            let repair = overlay.repair_published(space, &cell);
            (repair, t_repair, ms_now())
        };
        std::thread::sleep(window);
        // ordering: Release -- closes the sampling window; pairs with
        // the readers' Acquire loads.
        stop.store(true, Ordering::Release);
        let t_stop = ms_now();

        let mut samples = Vec::new();
        for r in readers {
            samples.extend(r.join().expect("reader panicked"));
        }
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        AvailRun {
            samples,
            t_wave,
            t_repair,
            t_done,
            t_stop,
            repair_ms: t_done - t_repair,
            repair,
        }
    })
}

impl AvailRun {
    /// Buckets the samples into the four scripted windows by the
    /// *midpoint* of each lookup's service interval. Midpoints partition
    /// the samples like start times would, but a lookup that sat blocked
    /// behind the repair (started a breath before the write lock, served
    /// only after it released) is charged to the repair window it
    /// actually spent its life in, not to the window it was born in.
    fn windows(&self) -> Vec<AvailWindow> {
        [
            ("steady", 0.0, self.t_wave),
            ("churned", self.t_wave, self.t_repair),
            ("repair", self.t_repair, self.t_done),
            ("repaired", self.t_done, self.t_stop),
        ]
        .into_iter()
        .map(|(name, lo, hi)| {
            let in_window = |s: &&AvailSample| {
                let mid = s.0 + s.2 / 2.0;
                mid >= lo && mid < hi
            };
            let mut latencies: Vec<f64> = Vec::new();
            let (mut lookups, mut successes, mut within) = (0usize, 0usize, 0usize);
            for s in self.samples.iter().filter(in_window) {
                lookups += 1;
                successes += usize::from(s.1);
                within += usize::from(s.2 <= AVAIL_DEADLINE_MS);
                latencies.push(s.2);
            }
            latencies.sort_by(f64::total_cmp);
            let p99_ms = if latencies.is_empty() {
                0.0
            } else {
                ron_core::stats::nearest_rank(&latencies, 0.99)
            };
            AvailWindow {
                name,
                lo,
                hi,
                lookups,
                successes,
                within_deadline: within,
                p99_ms,
            }
        })
        .collect()
    }
}

/// E-AVAIL: serving availability through a churn wave — the epoch
/// publication path against the stop-the-world blocking baseline it
/// replaced, plus the simulator's per-time-bucket availability timeline.
///
/// The threaded half scripts the same wave against both serving modes:
/// reader threads hammer lookups while a writer applies a leave wave and
/// then a full repair. Under `blocking` every repair holds the snapshot
/// write lock through plan + apply + capture, so in-flight lookups stall
/// past the service deadline; under `epoch` the successor is built off
/// to the side and swapped in, so the repair window serves at full rate.
/// The simulator half replays a churn wave as message rounds and reports
/// [`ron_sim::SimReport::availability_timeline`] — lookup success and
/// p99 per time bucket, with lookups injected *through* the repair
/// epochs.
///
/// # Panics
///
/// Panics if a lookup served by the pre-wave or post-repair published
/// state of either mode fails, or (when the repair is long enough that
/// a blocked lookup must blow the deadline) if the epoch path's
/// repair-window availability falls below the blocking baseline's.
#[must_use]
pub fn fig_avail(n: usize) -> Table {
    use ron_sim::directory::{DirectoryMsg, DirectoryNode};
    use ron_sim::{ChurnSchedule, MetricLatency, SimConfig, Simulator};

    let n = n.clamp(64, DENSE_NODE_CAP);
    let mut t = Table {
        title: format!(
            "E-AVAIL: lookup availability through a churn wave (blocking vs epoch, n = {n})"
        ),
        backend: "dense".into(),
        header: [
            "mode",
            "window",
            "lookups",
            "success %",
            "avail %",
            "k-lookups/s",
            "p99 ms",
            "detail",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        rows: Vec::new(),
    };

    let space = Space::new(gen::clustered(n, 2, (n / 64).max(4), 0.01, 42));
    let objects = (n / 8).clamp(8, 512);
    let mut overlay = DirectoryOverlay::build(&space);
    let items: Vec<(ObjectId, Node)> = (0..objects)
        .map(|i| (ObjectId(i as u64), Node::new((i * 31 + 1) % n)))
        .collect();
    overlay.publish_batch(&space, &items);
    let top = overlay.levels() - 1;
    let hub = space
        .nodes()
        .find(|&v| overlay.is_net_member(top, v))
        .expect("a hub exists");
    let mut victims = vec![hub];
    for k in 0..(n / 16).max(2) {
        let v = Node::new((k * 11 + 3) % n);
        if !victims.contains(&v) {
            victims.push(v);
        }
    }

    // Threaded half: the same scripted wave under both serving modes.
    let mut repair_window = Vec::new();
    for (mode, blocking) in [("blocking", true), ("epoch", false)] {
        let run = avail_run(&space, overlay.clone(), &victims, objects, blocking);
        // Correctness keys on the published state that served each
        // lookup, not on wall-clock windows (a sample can straddle a
        // boundary by a scheduler quantum): the pre-wave and post-repair
        // states must serve every lookup they answered.
        let mut tags: Vec<u64> = run.samples.iter().map(|s| s.3).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(
            tags.len(),
            3,
            "{mode}: the readers must observe all three published states"
        );
        for s in &run.samples {
            if s.3 != tags[1] {
                assert!(
                    s.1,
                    "{mode}: a lookup served by the {} state failed",
                    if s.3 == tags[0] {
                        "pre-wave"
                    } else {
                        "post-repair"
                    }
                );
            }
        }
        for w in run.windows() {
            let detail = if w.name == "repair" {
                if blocking {
                    format!("write lock held {:.1} ms", run.repair_ms)
                } else {
                    format!(
                        "successor built off-lock in {:.1} ms, swap atomic; {} writes",
                        run.repair_ms, run.repair.pointer_writes
                    )
                }
            } else {
                format!("[{:.0}, {:.0}) ms", w.lo, w.hi)
            };
            if w.name == "repair" {
                repair_window.push((w.availability(), run.repair_ms));
            }
            t.rows.push(vec![
                mode.into(),
                w.name.into(),
                w.lookups.to_string(),
                rate_cell(w.success_rate()),
                rate_cell(w.availability()),
                f(w.lookups as f64 / (w.hi - w.lo).max(1e-9)),
                f(w.p99_ms),
                detail,
            ]);
        }
    }
    // The acceptance check: when the repair is long enough that a
    // blocked lookup must blow the deadline, the epoch path's
    // repair-window availability cannot be worse than the blocking
    // baseline's (at smoke sizes the repair finishes inside the deadline
    // and the dip is not measurable — skip rather than flake).
    if let [(Some(block_avail), block_ms), (Some(epoch_avail), _)] = repair_window[..] {
        if block_ms > 2.0 * AVAIL_DEADLINE_MS {
            assert!(
                epoch_avail + 0.05 >= block_avail,
                "epoch repair-window availability {epoch_avail:.3} fell below \
                 the blocking baseline {block_avail:.3}"
            );
        }
    }

    // Simulator half: the wave as message rounds, lookups injected
    // through the coordinator's repair epochs, reported per time bucket.
    let coordinator = space
        .nodes()
        .find(|v| !victims.contains(v))
        .expect("somebody stays");
    let lookups = (2 * n).min(4096);
    let span = (lookups as f64 * 0.05).max(400.0);
    let t_wave = 0.35 * span;
    let t_repair = 0.55 * span;
    let mut sim = Simulator::new(
        DirectoryNode::fleet_with_coordinator(&space, &overlay, coordinator),
        |u, v| space.dist(u, v),
        MetricLatency {
            scale: 1.0,
            floor: 0.01,
        },
        SimConfig {
            seed: 1105,
            drop_prob: 0.0,
            timeout: Some(64.0),
        },
    );
    let mut schedule = ChurnSchedule::new();
    for &v in &victims {
        schedule.leave_at(t_wave, v);
    }
    schedule.repair_at(t_repair);
    schedule.apply(&mut sim, coordinator);
    // Marks make the timeline self-describing: the rendered buckets say
    // which window held the wave and which held the repair epoch.
    sim.mark_phase(t_wave, "wave");
    sim.mark_phase(t_repair, "repair");
    for q in 0..lookups {
        let (origin, obj) = avail_query(q, n, objects, &victims);
        sim.inject(
            q as f64 * span / lookups as f64,
            origin,
            DirectoryMsg::Lookup { obj },
        );
    }
    let report = sim.run();
    // Trimmed: the repair epoch's trailing acks stretch end_time past
    // the last injection, and those all-zero windows are noise.
    let timeline = report.availability_timeline_trimmed(10);
    assert_eq!(
        timeline.iter().map(|b| b.injected).sum::<usize>(),
        report.queries,
        "every query lands in exactly one timeline bucket"
    );
    assert_eq!(
        timeline.iter().map(|b| b.completed).sum::<usize>(),
        report.completed
    );
    let width = timeline[0].end - timeline[0].start;
    for (k, b) in timeline.iter().enumerate() {
        let marks: Vec<&str> = report
            .phases
            .iter()
            .filter(|m| {
                let at = ((m.start / width) as usize).min(timeline.len() - 1);
                at == k
            })
            .map(|m| m.name.as_str())
            .collect();
        t.rows.push(vec![
            "sim".into(),
            format!("[{:.0}, {:.0})", b.start, b.end),
            b.injected.to_string(),
            rate_cell(b.success_rate()),
            "-".into(),
            "-".into(),
            f(b.p99_latency),
            if marks.is_empty() {
                "-".into()
            } else {
                format!("<- {}", marks.join(", "))
            },
        ]);
    }
    t.rows.push(vec![
        "sim".into(),
        "whole run".into(),
        report.queries.to_string(),
        rate_cell(report.success_rate()),
        "-".into(),
        "-".into(),
        f(report.latency.p99),
        format!(
            "wave -{} at {:.0}, repair at {:.0}, trace {:016x}",
            victims.len(),
            t_wave,
            t_repair,
            report.trace_fingerprint
        ),
    ]);
    t
}

/// [`fig_obs`] returning the drained registry too, so the `report`
/// binary can fold the raw metrics into `BENCH_report.json` as an
/// `"obs"` block next to the rendered table.
///
/// The function runs the whole pipeline once with recording off (the
/// throughput baseline) and once with recording on: dense and sparse
/// index construction, nets/rings/directory assembly, a batched
/// publish, engine serving over the sharded cache, a leave wave plus
/// repair, and a small message-passing sim slice with phase marks. The
/// drained registry then carries oracle calls per construction stage,
/// lookup hop/probe histograms, per-shard cache hit ratios, repair
/// phase timings and sim gram counts — the table is a readable
/// projection of it.
///
/// # Panics
///
/// Panics if a layer failed to record (missing oracle, lookup, repair
/// or sim keys) or if the obs-on serve throughput collapses to less
/// than half the obs-off baseline — the instrumentation is supposed to
/// cost ~nothing, and the report row shows the measured ratio.
#[must_use]
pub fn fig_obs_with_registry(n: usize) -> (Table, ron_obs::Registry) {
    use ron_sim::directory::{DirectoryMsg, DirectoryNode};
    use ron_sim::{MetricLatency, SimConfig, Simulator};

    let n = n.clamp(64, DENSE_NODE_CAP);
    let mut t = Table {
        title: format!("E-OBS: observability across construction, serving, repair, sim (n = {n})"),
        backend: "per-row".into(),
        header: ["metric", "kind", "count", "mean/value", "p99~", "detail"]
            .iter()
            .map(ToString::to_string)
            .collect(),
        rows: Vec::new(),
    };

    let objects = (n / 4).max(8);
    let queries: Vec<(Node, ObjectId)> = (0..4000usize)
        .map(|i| {
            let origin = Node::new((i * 53 + 7) % n);
            let frac = ((i * 97 + 13) % 1000) as f64 / 1000.0;
            let obj = ObjectId(((frac * frac * objects as f64) as usize % objects) as u64);
            (origin, obj)
        })
        .collect();
    let config = EngineConfig::default();
    let publish_items: Vec<(ObjectId, Node)> = (0..objects)
        .map(|i| (ObjectId(i as u64), Node::new((i * 31 + 1) % n)))
        .collect();

    // Baseline: the E-OL serving pass with recording off. One warm-up
    // serve fills the cache so both measured passes run warm.
    let was_enabled = ron_obs::enabled();
    ron_obs::set_enabled(false);
    let base_space = Space::new(gen::uniform_cube(n, 2, 1));
    let mut base_overlay = DirectoryOverlay::build(&base_space);
    base_overlay.publish_batch(&base_space, &publish_items);
    let base_cell = EpochCell::new(Snapshot::capture(&base_space, &base_overlay));
    let base_engine = QueryEngine::new(&base_space, &base_cell);
    let _warm = base_engine.serve(&queries, &config);
    let off = base_engine.serve(&queries, &config);

    // Observed pass: the same pipeline, every layer recording.
    ron_obs::set_enabled(true);
    ron_obs::reset();

    // Construction — dense backend end to end, sparse backend through
    // the net ladder, so the oracle rows compare the two per stage.
    let space = Space::new(gen::uniform_cube(n, 2, 1));
    let sparse = Space::new_sparse(gen::uniform_cube(n, 2, 1));
    let _sparse_nets = NestedNets::build(&sparse);
    let mut overlay = DirectoryOverlay::build(&space);
    overlay.publish_batch(&space, &publish_items);

    // Serving through the engine (worker latency, cache shards, lookup
    // hop/probe histograms).
    let cell = EpochCell::new(Snapshot::capture(&space, &overlay));
    let engine = QueryEngine::new(&space, &cell);
    let _warm = engine.serve(&queries, &config);
    let on = engine.serve(&queries, &config);

    // A leave wave and the repair epoch (plan-phase timings).
    for k in 0..(n / 16).max(2) {
        overlay.leave(Node::new((k * 11 + 3) % n));
    }
    let _repair = overlay.repair(&space);

    // A small sim slice: gram-type counts, per-phase deliveries, the
    // event-queue depth high-water mark.
    let mut sim = Simulator::new(
        DirectoryNode::fleet(&space, &overlay),
        |u, v| space.dist(u, v),
        MetricLatency {
            scale: 1.0,
            floor: 0.01,
        },
        SimConfig::default(),
    );
    sim.mark_phase(0.0, "steady");
    let sim_lookups = n.min(512);
    for q in 0..sim_lookups {
        let origin = Node::new((q * 53 + 7) % n);
        let obj = ObjectId((q * 97 + 13) as u64 % objects as u64);
        sim.inject(q as f64 * 0.05, origin, DirectoryMsg::Lookup { obj });
    }
    let _sim_report = sim.run();

    let registry = ron_obs::drain();
    ron_obs::set_enabled(was_enabled);

    // Every layer must actually have landed in the registry.
    assert!(
        registry
            .histograms
            .keys()
            .any(|k| k.starts_with("oracle.") && k.contains(".dense")),
        "dense oracle calls must record"
    );
    assert!(
        registry
            .histograms
            .keys()
            .any(|k| k.starts_with("oracle.") && k.contains(".sparse")),
        "sparse oracle calls must record"
    );
    assert!(
        registry.histogram("lookup.hops").is_some(),
        "engine lookups must record hop histograms"
    );
    assert!(
        registry.histogram("repair.plan.covering/repair").is_some()
            || registry.histogram("repair.plan.covering").is_some(),
        "repair plan phases must record"
    );
    assert!(
        registry.counter_prefix_sum("sim.gram") > 0,
        "sim gram counts must record"
    );
    assert!(
        on.throughput() >= off.throughput() * 0.5,
        "obs-on throughput {:.0}/s collapsed against obs-off {:.0}/s",
        on.throughput(),
        off.throughput()
    );

    // The throughput overhead row first: the claim the tentpole makes
    // ("cheap when on, free when off"), measured.
    let ratio = on.throughput() / off.throughput().max(1e-9);
    t.rows.push(vec![
        "engine.serve.throughput".into(),
        "k-lookups/s off -> on".into(),
        queries.len().to_string(),
        f(off.throughput() / 1000.0),
        f(on.throughput() / 1000.0),
        format!("obs-on/off ratio {ratio:.3}"),
    ]);

    // Histogram rows, one per composed key, restricted to the metric
    // families the acceptance list names (construction oracles and
    // stage spans, lookups, engine, repair).
    let shown = [
        "construct.",
        "directory.",
        "engine.",
        "lookup.",
        "oracle.",
        "publish.",
        "repair.",
    ];
    for (key, h) in &registry.histograms {
        if !shown.iter().any(|p| key.starts_with(p)) {
            continue;
        }
        t.rows.push(vec![
            key.clone(),
            "hist".into(),
            h.count().to_string(),
            f(h.mean()),
            h.quantile_lower_bound(0.99).unwrap_or(0).to_string(),
            h.render_compact(),
        ]);
    }

    // Per-shard cache hit ratios, derived from the counter triples the
    // engine publishes.
    let hit_keys: Vec<String> = registry
        .counters
        .keys()
        .filter(|k| k.starts_with("engine.cache.hit/"))
        .cloned()
        .collect();
    for key in hit_keys {
        let shard = key.trim_start_matches("engine.cache.hit/").to_string();
        let hits = registry.counter(&key);
        let misses = registry.counter(&format!("engine.cache.miss/{shard}"));
        let stale = registry.counter(&format!("engine.cache.stale/{shard}"));
        let probes = hits + misses + stale;
        t.rows.push(vec![
            format!("engine.cache.ratio/{shard}"),
            "ratio".into(),
            probes.to_string(),
            format!("{:.1}%", hits as f64 / probes.max(1) as f64 * 100.0),
            "-".into(),
            format!("{hits} hit / {misses} miss / {stale} stale-epoch"),
        ]);
    }

    // Counter and gauge rows: lookups that missed, sim gram types,
    // per-phase deliveries, queue depth.
    for (key, v) in &registry.counters {
        if key.starts_with("lookup.") || key.starts_with("sim.") {
            t.rows.push(vec![
                key.clone(),
                "counter".into(),
                v.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    }
    for (key, v) in &registry.gauges {
        t.rows.push(vec![
            key.clone(),
            "gauge (max)".into(),
            v.to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    (t, registry)
}

/// E-OBS: the observability layer exercised across all four
/// instrumented layers, rendered as a table (see
/// [`fig_obs_with_registry`]).
#[must_use]
pub fn fig_obs(n: usize) -> Table {
    fig_obs_with_registry(n).0
}

/// E-LAT: per-query latency attribution from sampled flight records,
/// plus the captured telemetry time series. Returns the table and the
/// [`ron_obs::TimePoint`]s so the report binary can dump them as the
/// `"timeseries"` block and `BENCH_timeseries.csv`.
///
/// The run is self-asserting on the tentpole's determinism claims:
///
/// - the same batch served with 1 worker and 4 workers drains
///   *structurally* bit-identical flight records (ids, epochs, shards,
///   cache outcomes, levels, probes, hops — everything but wall time),
///   because sampling is by batch index and shard choice is a pure
///   key hash;
/// - a doubled batch on one worker turns its entire second half into
///   deterministic cache hits, so exactly half the traced records
///   probe warm;
/// - every traced lookup serves the same publication epoch (the one
///   snapshot the engine pinned).
///
/// # Panics
///
/// Panics if any of those invariants fails, or if no telemetry points
/// were captured.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn fig_lat_with_series(n: usize) -> (Table, Vec<ron_obs::TimePoint>) {
    use ron_sim::directory::{DirectoryMsg, DirectoryNode};
    use ron_sim::{MetricLatency, SimConfig, Simulator};

    let n = n.clamp(64, DENSE_NODE_CAP);
    let mut t = Table {
        title: format!(
            "E-LAT: per-query latency attribution from sampled flight records (n = {n})"
        ),
        backend: "dense".into(),
        header: ["metric", "kind", "count", "mean/value", "p99~", "detail"]
            .iter()
            .map(ToString::to_string)
            .collect(),
        rows: Vec::new(),
    };

    let objects = (n / 4).max(8);
    // Every (origin, object) pair distinct, so every cache probe in a
    // single pass is a miss no matter how workers interleave inserts —
    // the cold passes are deterministic by construction.
    let q_count = 1024usize;
    assert!(n * objects >= q_count, "unique query pool too small");
    let queries: Vec<(Node, ObjectId)> = (0..q_count)
        .map(|i| (Node::new(i % n), ObjectId((i / n) as u64)))
        .collect();
    let publish_items: Vec<(ObjectId, Node)> = (0..objects)
        .map(|i| (ObjectId(i as u64), Node::new((i * 31 + 1) % n)))
        .collect();

    let was_enabled = ron_obs::enabled();
    let was_rate = ron_obs::qtrace_rate();
    ron_obs::set_enabled(true);
    ron_obs::reset();
    ron_obs::set_qtrace(2);

    // Construction ticks the time series on every stage exit; the
    // publish batch leaves one flight record per sampled item.
    let space = Space::new(gen::uniform_cube(n, 2, 1));
    let mut overlay = DirectoryOverlay::build(&space);
    overlay.publish_batch(&space, &publish_items);
    let publish_traces = ron_obs::drain_query_traces();
    assert!(
        publish_traces.iter().all(|tr| tr.kind == "publish") && !publish_traces.is_empty(),
        "sampled publishes must leave flight records"
    );

    let snapshot = Snapshot::capture(&space, &overlay);
    ron_obs::gauge_max("mem.snapshot.bytes", snapshot.heap_bytes() as u64);
    let snapshot_bytes = snapshot.heap_bytes();
    let cell = EpochCell::new(snapshot);
    let engine = QueryEngine::new(&space, &cell);
    // Per-shard capacity covers the whole batch, so the doubled pass
    // below cannot evict and its second half hits deterministically.
    let config = |workers: usize| EngineConfig {
        workers,
        cache_capacity: 8 * q_count,
        cache_shards: 8,
    };

    // The determinism proof: one worker vs four, same batch, fresh
    // cache each serve. Wall-clock differs; structure may not.
    let _serial = engine.serve(&queries, &config(1));
    let serial_traces = ron_obs::drain_query_traces();
    let _split = engine.serve(&queries, &config(4));
    let split_traces = ron_obs::drain_query_traces();
    let serial_structural: Vec<ron_obs::QueryTrace> = serial_traces
        .iter()
        .map(ron_obs::QueryTrace::structural)
        .collect();
    let split_structural: Vec<ron_obs::QueryTrace> = split_traces
        .iter()
        .map(ron_obs::QueryTrace::structural)
        .collect();
    assert_eq!(
        serial_structural, split_structural,
        "flight records must be structurally identical across worker splits"
    );
    assert_eq!(
        serial_traces.len(),
        q_count / 2,
        "rate-2 sampling traces half the batch"
    );
    assert!(
        serial_traces
            .iter()
            .all(|tr| tr.cache == ron_obs::CacheOutcome::Miss),
        "unique cold queries all miss"
    );
    let epoch = serial_traces[0].epoch;
    assert!(serial_traces.iter().all(|tr| tr.epoch == epoch));

    // The cache-hit pass: the same batch twice on one worker. The
    // second half's probes are warm, so traced ids >= q_count all hit.
    let doubled: Vec<(Node, ObjectId)> = queries.iter().chain(queries.iter()).copied().collect();
    let _warmed = engine.serve(&doubled, &config(1));
    let doubled_traces = ron_obs::drain_query_traces();
    let hits = doubled_traces
        .iter()
        .filter(|tr| tr.cache == ron_obs::CacheOutcome::Hit)
        .count();
    let misses = doubled_traces
        .iter()
        .filter(|tr| tr.cache == ron_obs::CacheOutcome::Miss)
        .count();
    assert_eq!(
        (misses, hits),
        (q_count / 2, q_count / 2),
        "the doubled batch's second half must hit the warm cache"
    );
    assert!(
        doubled_traces
            .iter()
            .filter(|tr| tr.cache == ron_obs::CacheOutcome::Hit)
            .all(|tr| tr.found_level.is_none() && tr.probes == 0),
        "cache hits skip the walk"
    );

    // A sim slice marks its phase in the time series too.
    let mut sim = Simulator::new(
        DirectoryNode::fleet(&space, &overlay),
        |u, v| space.dist(u, v),
        MetricLatency {
            scale: 1.0,
            floor: 0.01,
        },
        SimConfig::default(),
    );
    sim.mark_phase(0.0, "steady");
    for q in 0..n.min(256) {
        let origin = Node::new((q * 53 + 7) % n);
        let obj = ObjectId((q * 97 + 13) as u64 % objects as u64);
        sim.inject(q as f64 * 0.05, origin, DirectoryMsg::Lookup { obj });
    }
    let _sim_report = sim.run();

    let series = ron_obs::take_timeseries();
    ron_obs::set_qtrace(was_rate);
    ron_obs::reset();
    ron_obs::set_enabled(was_enabled);

    assert!(!series.is_empty(), "telemetry ticks must capture points");
    assert!(
        series.iter().any(|p| p.label.starts_with("stage:")),
        "construction stage exits must tick the series"
    );
    assert!(
        series.iter().any(|p| p.label == "engine:batch"),
        "served batches must tick the series"
    );
    assert!(
        series.iter().any(|p| p.label.starts_with("sim:phase:")),
        "sim phases must tick the series"
    );

    // The attribution aggregate over every flight record the run left.
    let mut traces = publish_traces;
    traces.extend(serial_traces);
    traces.extend(split_traces);
    traces.extend(doubled_traces);
    let lat = ron_obs::LatencyAttribution::from_traces(&traces);
    assert!(lat.owner("lookup", 0.5).is_some() && lat.owner("publish", 0.99).is_some());

    t.rows.push(vec![
        "elat.determinism".into(),
        "workers 1 vs 4".into(),
        (q_count / 2).to_string(),
        "-".into(),
        "-".into(),
        "structural flight records bit-identical across worker splits".into(),
    ]);
    t.rows.push(vec![
        "elat.sampling".into(),
        "rate".into(),
        traces.len().to_string(),
        "2".into(),
        "-".into(),
        "every 2nd query by batch index (RON_QTRACE), no RNG".into(),
    ]);
    for kind in lat.kinds().collect::<Vec<_>>() {
        let total = lat.total(kind).expect("kind has a total histogram");
        t.rows.push(vec![
            format!("elat.{kind}.total_ns"),
            "hist".into(),
            total.count().to_string(),
            f(total.mean()),
            total.quantile_lower_bound(0.99).unwrap_or(0).to_string(),
            total.render_compact(),
        ]);
        t.rows.push(vec![
            format!("elat.{kind}.owner"),
            "attribution".into(),
            total.count().to_string(),
            lat.owner(kind, 0.5).unwrap_or("-").into(),
            lat.owner(kind, 0.99).unwrap_or("-").into(),
            "stage owning p50 / p99~".into(),
        ]);
    }
    for (kind, stage, h) in lat.stages() {
        t.rows.push(vec![
            format!("elat.{kind}.{stage}_ns"),
            "stage".into(),
            h.count().to_string(),
            f(h.mean()),
            h.quantile_lower_bound(0.99).unwrap_or(0).to_string(),
            format!("{:.1}% of {kind} time", lat.share_percent(kind, stage)),
        ]);
    }
    let lookup_traced = traces.iter().filter(|tr| tr.kind == "lookup").count();
    let outcome_count = |o: ron_obs::CacheOutcome| traces.iter().filter(|tr| tr.cache == o).count();
    let shards: std::collections::BTreeSet<u32> =
        traces.iter().filter_map(|tr| tr.cache_shard).collect();
    t.rows.push(vec![
        "elat.lookup.cache".into(),
        "outcomes".into(),
        lookup_traced.to_string(),
        "-".into(),
        "-".into(),
        format!(
            "{} hit / {} miss / {} stale across {} shards, epoch {epoch}",
            outcome_count(ron_obs::CacheOutcome::Hit),
            outcome_count(ron_obs::CacheOutcome::Miss),
            outcome_count(ron_obs::CacheOutcome::Stale),
            shards.len()
        ),
    ]);
    t.rows.push(vec![
        "mem.snapshot.bytes".into(),
        "gauge (max)".into(),
        snapshot_bytes.to_string(),
        "-".into(),
        "-".into(),
        "published snapshot heap, sampled into every telemetry point".into(),
    ]);

    // The telemetry trajectory, compressed to sparkline rows: served
    // probes and recorded hop counts per captured point.
    let probe_curve: Vec<u64> = series
        .iter()
        .map(|p| p.registry.counter_prefix_sum("engine.cache."))
        .collect();
    let hops_curve: Vec<u64> = series
        .iter()
        .map(|p| {
            p.registry
                .histogram("lookup.hops")
                .map_or(0, ron_obs::Pow2Histogram::count)
        })
        .collect();
    let labels: std::collections::BTreeSet<&str> =
        series.iter().map(|p| p.label.as_str()).collect();
    t.rows.push(vec![
        "series.points".into(),
        "timeseries".into(),
        series.len().to_string(),
        "-".into(),
        "-".into(),
        format!(
            "{} distinct tick labels, exponentially thinned",
            labels.len()
        ),
    ]);
    t.rows.push(vec![
        "series.engine.cache.probes".into(),
        "sparkline".into(),
        probe_curve.len().to_string(),
        probe_curve.last().copied().unwrap_or(0).to_string(),
        "-".into(),
        ron_obs::sparkline(&probe_curve),
    ]);
    t.rows.push(vec![
        "series.lookup.hops.count".into(),
        "sparkline".into(),
        hops_curve.len().to_string(),
        hops_curve.last().copied().unwrap_or(0).to_string(),
        "-".into(),
        ron_obs::sparkline(&hops_curve),
    ]);

    (t, series)
}

/// E-LAT: per-query latency attribution, rendered as a table (see
/// [`fig_lat_with_series`]).
#[must_use]
pub fn fig_lat(n: usize) -> Table {
    fig_lat_with_series(n).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t = Table {
            title: "test".into(),
            header: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "22".into()]],
            backend: "dense".into(),
        };
        let s = t.render();
        assert!(s.contains("test"));
        assert!(s.contains("22"));
    }

    #[test]
    fn graph_instances_build() {
        let inst = graph_instance("grid-8x8");
        assert_eq!(inst.graph.len(), 64);
        assert!(inst.graph.is_connected());
    }

    #[test]
    fn metric_instances_build() {
        assert_eq!(metric_instance("cube-64").len(), 64);
        assert_eq!(metric_instance("exp-line-24").len(), 24);
    }

    #[test]
    fn json_records_the_backend() {
        let mut t = Table {
            title: "b".into(),
            header: vec!["h".into()],
            rows: Vec::new(),
            backend: String::new(),
        };
        assert!(t.to_json().contains("\"backend\":\"dense\""));
        t.backend = "per-row".into();
        assert!(t.to_json().contains("\"backend\":\"per-row\""));
    }

    #[test]
    fn fig_build_scaling_smoke() {
        // fig_build_scaling asserts its own bit-identity invariants
        // (parallel and incremental fingerprints equal the serial one);
        // here we pin the extended table shape: the bytes/node column,
        // the incremental row below the cap, and the dense row.
        let t = fig_build_scaling(192);
        assert_eq!(t.header[9], "bytes/node");
        let sparse = &t.rows[0];
        assert_eq!(sparse[0], "sparse net-tree");
        let bytes: usize = sparse[9].parse().expect("bytes/node is an integer");
        assert!(
            0 < bytes && bytes <= BYTES_PER_NODE_BUDGET,
            "{bytes} bytes/node out of budget"
        );
        let inc = t
            .rows
            .iter()
            .find(|r| r[0] == "sparse incremental")
            .expect("incremental row below INCREMENTAL_TIMING_CAP");
        assert_eq!(inc[10], sparse[10], "fingerprints must match");
        assert!(t.rows.iter().any(|r| r[0] == "dense index"));
    }

    #[test]
    fn fig_build_scaling_curve_smoke() {
        // The curve asserts its own invariants (two-worker bit-identity
        // and the bytes/node budget at every size); here we pin one row
        // per requested size and that bytes/node is populated.
        let t = fig_build_scaling_curve(&[96, 160]);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let bytes: usize = row[7].parse().expect("bytes/node is an integer");
            assert!(bytes > 0);
            assert_eq!(row[9], "bit-identical");
        }
        assert_eq!(t.rows[0][0], "96");
        assert_eq!(t.rows[1][0], "160");
    }

    #[test]
    fn fig_sim_smoke() {
        let t = fig_sim(64);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.backend, "dense");
        // Failure-free phases serve everything.
        assert_eq!(t.rows[0][2], "100.0");
        assert_eq!(t.rows[1][2], "100.0");
    }

    #[test]
    fn fig_churn_smoke() {
        // fig_churn asserts its own recovery invariants (steady and
        // post-repair phases at 100%); here we pin the table shape:
        // 5 phases + 2 repair bills + the whole-run summary.
        let t = fig_churn(64);
        assert_eq!(t.rows.len(), 8);
        assert!(t.rows.iter().any(|r| r[0] == "repair 2"));
        assert_eq!(t.rows[0][0], "steady");
        assert_eq!(t.rows[0][2], "100.0");
    }

    /// `fig_obs` and `fig_lat` both toggle the process-global obs
    /// state (enabled flag, registry, qtrace rate, time series); the
    /// harness runs tests concurrently, so they serialize here.
    fn obs_figs_lock() -> std::sync::MutexGuard<'static, ()> {
        static OBS_FIGS: std::sync::Mutex<()> = std::sync::Mutex::new(());
        OBS_FIGS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn fig_lat_smoke() {
        // fig_lat asserts its own tentpole invariants (worker-split
        // determinism, deterministic cache hits, epoch pinning, series
        // coverage); here we pin the projection and the exports.
        let _lock = obs_figs_lock();
        let (t, series) = fig_lat_with_series(64);
        assert_eq!(t.rows[0][0], "elat.determinism");
        for family in [
            "elat.lookup.total_ns",
            "elat.lookup.owner",
            "elat.publish.total_ns",
            "elat.lookup.cache",
            "series.points",
            "series.engine.cache.probes",
        ] {
            assert!(
                t.rows.iter().any(|r| r[0].starts_with(family)),
                "no {family} row in E-LAT"
            );
        }
        let csv = ron_obs::timeseries_csv(&series);
        assert!(csv.starts_with("tick,label,kind,name,value\n"));
        assert!(csv.lines().count() > series.len(), "every point dumps rows");
        assert!(ron_obs::timeseries_json(&series).starts_with('['));
        // The run restores the disabled defaults (tests share the
        // flags).
        assert!(!ron_obs::enabled());
        assert_eq!(ron_obs::qtrace_rate(), 0);
    }

    #[test]
    fn fig_obs_smoke() {
        // fig_obs asserts its own wiring invariants (every layer's keys
        // present, throughput sane); here we pin the projection: the
        // overhead row leads, and each acceptance family has rows.
        let _lock = obs_figs_lock();
        let (t, registry) = fig_obs_with_registry(64);
        assert_eq!(t.rows[0][0], "engine.serve.throughput");
        for family in [
            "oracle.",
            "construct.",
            "lookup.",
            "engine.cache.ratio/",
            "repair.",
            "sim.gram/",
        ] {
            assert!(
                t.rows.iter().any(|r| r[0].starts_with(family)),
                "no {family} row in E-OBS"
            );
        }
        assert!(!registry.is_empty());
        assert!(registry.to_json().starts_with("{\"counters\":{"));
        // The run restores the disabled default (tests share the flag).
        assert!(!ron_obs::enabled());
    }

    #[test]
    fn fig_avail_smoke() {
        // fig_avail asserts its own invariants (the pre-wave and
        // post-repair states serve at 100%, epoch availability >=
        // blocking when measurable, timeline sums matching run totals);
        // here we pin the table shape: 2 modes x 4 windows + at most 10
        // sim timeline buckets (empty tail trimmed) + the whole-run
        // summary.
        let t = fig_avail(64);
        assert!(t.rows.len() > 2 * 4 + 1 && t.rows.len() <= 2 * 4 + 10 + 1);
        assert_eq!(t.rows[0][0], "blocking");
        assert_eq!(t.rows[0][1], "steady");
        assert_eq!(t.rows[4][0], "epoch");
        assert_eq!(t.rows[8][0], "sim");
        assert_eq!(t.rows.last().unwrap()[1], "whole run");
        assert_eq!(t.header[4], "avail %");
        // The last timeline bucket has lookups — the empty tail the
        // repair acks used to append is suppressed.
        let last_bucket = &t.rows[t.rows.len() - 2];
        assert_eq!(last_bucket[0], "sim");
        assert_ne!(last_bucket[2], "0", "trailing empty buckets must go");
        // The wave and repair marks label the buckets they land in.
        let details: Vec<&str> = t.rows[8..].iter().map(|r| r[7].as_str()).collect();
        assert!(details.iter().any(|d| d.contains("wave")), "{details:?}");
        assert!(details.iter().any(|d| d.contains("repair")), "{details:?}");
    }
}
