//! Regenerates Table 3 (two-mode space split) and times two-mode routing
//! in the large-aspect-ratio regime.

use criterion::{criterion_group, criterion_main, Criterion};
use ron_metric::Node;
use ron_routing::TwoModeScheme;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", ron_bench::table3(0.25).render());

    let inst = ron_bench::graph_instance("exp-path-24");
    let scheme = TwoModeScheme::build(&inst.space, &inst.graph, &inst.apsp, 0.25);
    c.bench_function("table3/thmB1_route_exp_path24", |b| {
        b.iter(|| {
            let mut stats = Default::default();
            black_box(
                scheme
                    .route(&inst.graph, Node::new(0), Node::new(23), &mut stats)
                    .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
