//! E-AVAIL: lookup availability *through* a churn wave and repair.
//!
//! Runs `ron_bench::fig_avail` at `RON_SIM_N` nodes (default 4096):
//! reader threads hammer lookups while a writer applies a leave wave and
//! a full repair, once through the stop-the-world blocking baseline and
//! once through the epoch-published `EpochCell` path — the repair-window
//! availability dip narrows to nothing under epoch publication. The
//! simulator half injects lookups through a churn wave run as message
//! rounds and reports the per-time-bucket availability timeline. The
//! table is written to `BENCH_report.json`. A smaller timed probe gives
//! the criterion-style sample loop something quick to repeat.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ron_location::{DirectoryOverlay, EpochCell, ObjectId, Snapshot};
use ron_metric::{gen, Node, Space};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = ron_bench::sim_n_or(4096);
    let start = Instant::now();
    let table = ron_bench::fig_avail(n);
    let table_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{}", table.render());
    let path = ron_bench::report_json_path();
    if let Err(e) = ron_bench::write_report_json(&path, &[(table, table_ms)]) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }

    // Timed probe: one capture-and-publish swap of a 256-node snapshot —
    // the epoch path's entire serving-side cost of a repair.
    let space = Space::new(gen::uniform_cube(256, 2, 9));
    let mut overlay = DirectoryOverlay::build(&space);
    for i in 0..32u64 {
        overlay.publish(&space, ObjectId(i), Node::new((i as usize * 31 + 1) % 256));
    }
    let cell = EpochCell::new(Snapshot::capture(&space, &overlay));
    c.bench_function("fig_avail/publish_snapshot_256", |b| {
        b.iter(|| black_box(overlay.publish_snapshot(&space, &cell)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
