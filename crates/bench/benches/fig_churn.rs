//! E-CHURN: the churn→repair→recovery lifecycle as a distributed
//! protocol.
//!
//! Runs `ron_bench::fig_churn` at `RON_SIM_N` nodes (default 4096): a
//! leave wave including the top-level hub, a coordinator-driven repair
//! epoch as message rounds, a rejoin wave with backfill, and lookups
//! flowing throughout — success dips and recovers to 100% in the table,
//! which is written to `BENCH_report.json`. A smaller timed probe gives
//! the criterion-style sample loop something quick to repeat.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ron_location::{DirectoryOverlay, ObjectId};
use ron_metric::{gen, Node, Space};
use ron_sim::directory::DirectoryNode;
use ron_sim::{ChurnSchedule, ConstantLatency, SimConfig, Simulator};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = ron_bench::sim_n_or(4096);
    let start = Instant::now();
    let table = ron_bench::fig_churn(n);
    let table_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{}", table.render());
    let path = ron_bench::report_json_path();
    if let Err(e) = ron_bench::write_report_json(&path, &[(table, table_ms)]) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }

    // Timed probe: one zero-latency repair epoch over a 128-node
    // overlay with a 6-node leave wave.
    let space = Space::new(gen::uniform_cube(128, 2, 9));
    let mut overlay = DirectoryOverlay::build(&space);
    for i in 0..16u64 {
        overlay.publish(&space, ObjectId(i), Node::new((i as usize * 31 + 1) % 128));
    }
    let coordinator = Node::new(0);
    let fleet = DirectoryNode::fleet_with_coordinator(&space, &overlay, coordinator);
    c.bench_function("fig_churn/repair_epoch_128x6", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                fleet.clone(),
                |u, v| space.dist(u, v),
                ConstantLatency(0.0),
                SimConfig::default(),
            );
            let mut schedule = ChurnSchedule::new();
            for k in 0..6usize {
                schedule.leave_at(0.0, Node::new(k * 17 + 3));
            }
            schedule.repair_at(1.0);
            schedule.apply(&mut sim, coordinator);
            let report = sim.run();
            black_box((report.completed, report.trace_fingerprint))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
