//! Regenerates Table 2 (routing on metrics) and times overlay routing.

use criterion::{criterion_group, criterion_main, Criterion};
use ron_metric::Node;
use ron_routing::BasicScheme;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", ron_bench::table2(0.25).render());

    let space = ron_bench::metric_instance("cube-128");
    let scheme = BasicScheme::build_overlay(&space, 0.25);
    c.bench_function("table2/thm2.1_overlay_route_cube128", |b| {
        b.iter(|| black_box(scheme.route_overlay(Node::new(0), Node::new(127)).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
