//! Regenerates the E-5.2/E-5.5 series and times small-world queries.

use criterion::{criterion_group, criterion_main, Criterion};
use ron_metric::Node;
use ron_smallworld::GreedyModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", ron_bench::fig_smallworld().render());

    let space = ron_bench::metric_instance("cube-128");
    let model = GreedyModel::sample(&space, 2.0, 5);
    c.bench_function("fig_smallworld/greedy_query_cube128", |b| {
        b.iter(|| black_box(model.query(&space, Node::new(0), Node::new(127))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
