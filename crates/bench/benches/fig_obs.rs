//! E-OBS: the observability layer across construction, serving, repair
//! and the simulator.
//!
//! Runs `ron_bench::fig_obs_with_registry` at `RON_SIM_N` nodes
//! (default 1024): every instrumented layer once with recording off
//! (the throughput baseline) and once with it on, rendering the drained
//! registry as the E-OBS table and folding the raw metrics into
//! `BENCH_report.json` as the `"obs"` block. The timed probe measures
//! the disabled-path cost directly — the single relaxed atomic load an
//! instrumentation point costs when observability is off.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = ron_bench::sim_n_or(1024);
    let start = Instant::now();
    let (table, registry) = ron_bench::fig_obs_with_registry(n);
    let table_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{}", table.render());
    let obs_json = registry.to_json();
    let path = ron_bench::report_json_path();
    if let Err(e) =
        ron_bench::write_report_json_with_obs(&path, &[(table, table_ms)], Some(&obs_json))
    {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }

    // Timed probe: the off-hot-path guarantee. With recording disabled
    // a record call is one relaxed load and a branch.
    ron_obs::set_enabled(false);
    c.bench_function("fig_obs/disabled_record_calls_x1024", |b| {
        b.iter(|| {
            for i in 0..1024u64 {
                ron_obs::count("bench.disabled.counter", i);
                ron_obs::observe("bench.disabled.hist", i);
            }
            black_box(ron_obs::enabled())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
