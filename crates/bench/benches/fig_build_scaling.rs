//! E-BS: construction scaling under the sparse ball-query backend.
//!
//! Builds nets + rings + directory (+ a batched publish) at
//! `RON_SCALING_N` nodes (default 65 536 — a size whose dense `O(n^2)`
//! index cannot be held, which is the point), once single-threaded and
//! once on every available core, asserts the outputs are bit-identical,
//! and prints the per-stage wall times plus the resident bytes per node.
//! `RON_THREADS` overrides the parallel worker count; set
//! `RON_SCALING_CURVE=131072,262144,...` to append the sparse-only
//! scaling-curve table (two-worker bit-identity and the bytes-per-node
//! budget asserted at every size).
//!
//! The table is also written to `BENCH_report.json` so CI can archive the
//! perf trajectory; a smaller timed probe (nets + rings at n = 4096)
//! gives the criterion-style sample loop something quick to repeat.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ron_core::RingFamily;
use ron_metric::{gen, Space};
use ron_nets::NestedNets;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = ron_bench::scaling_n();
    let start = Instant::now();
    let table = ron_bench::fig_build_scaling(n);
    let table_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{}", table.render());
    let mut tables = vec![(table, table_ms)];
    let curve = ron_bench::scaling_curve();
    if !curve.is_empty() {
        let start = Instant::now();
        let curve_table = ron_bench::fig_build_scaling_curve(&curve);
        let curve_ms = start.elapsed().as_secs_f64() * 1e3;
        println!("{}", curve_table.render());
        tables.push((curve_table, curve_ms));
    }
    let path = ron_bench::report_json_path();
    if let Err(e) = ron_bench::write_report_json(&path, &tables) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }

    let probe = Space::new_sparse(gen::uniform_cube(4096, 2, 42));
    c.bench_function("fig_build_scaling/nets+rings_sparse_4096", |b| {
        b.iter(|| {
            let nets = NestedNets::build(&probe);
            let rings = RingFamily::from_nets(&probe, &nets, |_, r| Some(2.0 * r));
            black_box((nets.levels(), rings.total_pointers()))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
