//! Regenerates the E-3.2 series (Theorem 3.2) and times triangulation
//! construction and estimation.

use criterion::{criterion_group, criterion_main, Criterion};
use ron_labels::Triangulation;
use ron_metric::Node;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", ron_bench::fig_triangulation(0.2).render());

    let space = ron_bench::metric_instance("cube-128");
    c.bench_function("fig_triangulation/build_cube128", |b| {
        b.iter(|| black_box(Triangulation::build(&space, 0.2)))
    });
    let tri = Triangulation::build(&space, 0.2);
    c.bench_function("fig_triangulation/estimate_cube128", |b| {
        b.iter(|| black_box(tri.estimate(Node::new(0), Node::new(127))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
