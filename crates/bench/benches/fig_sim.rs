//! E-SIM: the protocols as message-passing systems.
//!
//! Runs `ron_bench::fig_sim` at `RON_SIM_N` nodes (default 4096): the
//! directory and greedy drivers of `ron-sim` over a clustered
//! Internet-latency metric, failure-free and under a crash burst, with
//! the per-node message-load histogram in the table. The table is
//! written to `BENCH_report.json` so CI archives the load-balance claim
//! next to the perf numbers; a smaller timed probe gives the
//! criterion-style sample loop something quick to repeat.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ron_location::{DirectoryOverlay, ObjectId};
use ron_metric::{gen, Node, Space};
use ron_sim::directory::{DirectoryMsg, DirectoryNode};
use ron_sim::{ConstantLatency, SimConfig, Simulator};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = ron_bench::sim_n_or(4096);
    let start = Instant::now();
    let table = ron_bench::fig_sim(n);
    let table_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{}", table.render());
    let path = ron_bench::report_json_path();
    if let Err(e) = ron_bench::write_report_json(&path, &[(table, table_ms)]) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }

    // Timed probe: 512 zero-latency lookups over a 256-node overlay.
    let space = Space::new(gen::uniform_cube(256, 2, 9));
    let mut overlay = DirectoryOverlay::build(&space);
    for i in 0..32u64 {
        overlay.publish(&space, ObjectId(i), Node::new((i as usize * 31 + 1) % 256));
    }
    let fleet = DirectoryNode::fleet(&space, &overlay);
    c.bench_function("fig_sim/directory_lookups_256x512", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                fleet.clone(),
                |u, v| space.dist(u, v),
                ConstantLatency(0.0),
                SimConfig::default(),
            );
            for q in 0..512usize {
                sim.inject(
                    0.0,
                    Node::new((q * 53 + 7) % 256),
                    DirectoryMsg::Lookup {
                        obj: ObjectId((q % 32) as u64),
                    },
                );
            }
            let report = sim.run();
            black_box((report.completed, report.trace_fingerprint))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
