//! Regenerates Table 1 and times Theorem 2.1 construction and routing.

use criterion::{criterion_group, criterion_main, Criterion};
use ron_metric::Node;
use ron_routing::BasicScheme;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        ron_bench::table1(&["grid-8x8", "exp-path-24"], 0.25).render()
    );

    let inst = ron_bench::graph_instance("grid-8x8");
    c.bench_function("table1/thm2.1_build_grid8x8", |b| {
        b.iter(|| {
            black_box(BasicScheme::build(
                &inst.space,
                &inst.graph,
                &inst.apsp,
                0.25,
            ))
        })
    });
    let scheme = BasicScheme::build(&inst.space, &inst.graph, &inst.apsp, 0.25);
    c.bench_function("table1/thm2.1_route_grid8x8", |b| {
        b.iter(|| {
            black_box(
                scheme
                    .route(&inst.graph, Node::new(0), Node::new(63))
                    .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
