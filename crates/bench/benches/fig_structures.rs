//! Regenerates the E-5.4 comparison (STRUCTURES vs Theorem 5.2) and times
//! STRUCTURES sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use ron_smallworld::Structures;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", ron_bench::fig_structures().render());

    let space = ron_bench::metric_instance("pgrid-10");
    c.bench_function("fig_structures/sample_pgrid10", |b| {
        b.iter(|| black_box(Structures::sample(&space, 1.0, 3)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
