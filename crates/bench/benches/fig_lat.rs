//! E-LAT: per-query latency attribution from sampled flight records.
//!
//! Runs `ron_bench::fig_lat_with_series` at `RON_SIM_N` nodes (default
//! 1024): constructs, publishes and serves with query tracing sampled
//! at rate 2, proves the flight records structurally identical across
//! worker splits, renders the E-LAT attribution table and folds the
//! captured telemetry time series into `BENCH_report.json` as the
//! `"timeseries"` block (plus `BENCH_timeseries.csv`). The timed probe
//! measures the sampling gate itself — the single relaxed atomic load
//! an untraced query pays when `RON_QTRACE` is unset.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = ron_bench::sim_n_or(1024);
    let start = Instant::now();
    let (table, series) = ron_bench::fig_lat_with_series(n);
    let table_ms = start.elapsed().as_secs_f64() * 1e3;
    println!("{}", table.render());
    let series_json = ron_obs::timeseries_json(&series);
    let path = ron_bench::report_json_path();
    if let Err(e) =
        ron_bench::write_report_json_full(&path, &[(table, table_ms)], None, Some(&series_json))
    {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
    let csv_path = ron_bench::timeseries_csv_path();
    if let Err(e) = std::fs::write(&csv_path, ron_obs::timeseries_csv(&series)) {
        eprintln!("could not write {csv_path}: {e}");
    } else {
        println!("wrote {csv_path} ({} telemetry points)", series.len());
    }

    // Timed probe: the untraced-query guarantee. With sampling off the
    // gate is one relaxed load and a branch.
    ron_obs::set_qtrace(0);
    c.bench_function("fig_lat/unsampled_gate_checks_x1024", |b| {
        b.iter(|| {
            let mut sampled = 0u32;
            for i in 0..1024u64 {
                sampled += u32::from(ron_obs::qtrace_sampled(i));
            }
            black_box(sampled)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
