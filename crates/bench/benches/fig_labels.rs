//! Regenerates the E-3.4 series (Theorem 3.4) and times label decoding.

use criterion::{criterion_group, criterion_main, Criterion};
use ron_labels::CompactScheme;
use ron_metric::Node;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", ron_bench::fig_labels(0.25).render());

    let space = ron_bench::metric_instance("cube-64");
    let scheme = CompactScheme::build(&space, 0.25);
    c.bench_function("fig_labels/compact_estimate_cube64", |b| {
        b.iter(|| black_box(scheme.estimate(Node::new(0), Node::new(63))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
