//! Regenerates the object-location table (E-OL) and times the two hot
//! paths of the serving stack: a single dynamic lookup and a batched
//! engine round through the snapshot + LRU cache.

use criterion::{criterion_group, criterion_main, Criterion};
use ron_location::{DirectoryOverlay, EngineConfig, EpochCell, ObjectId, QueryEngine, Snapshot};
use ron_metric::{gen, Node, Space};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", ron_bench::table_location().render());

    let space = Space::new(gen::uniform_cube(256, 2, 1));
    let mut overlay = DirectoryOverlay::build(&space);
    for i in 0..64u64 {
        overlay.publish(&space, ObjectId(i), Node::new((i as usize * 31 + 1) % 256));
    }
    c.bench_function("object_location/lookup_cube256", |b| {
        b.iter(|| black_box(overlay.lookup(&space, Node::new(200), ObjectId(3)).unwrap()))
    });

    let directory = EpochCell::new(Snapshot::capture(&space, &overlay));
    let engine = QueryEngine::new(&space, &directory);
    let queries: Vec<(Node, ObjectId)> = (0..1024usize)
        .map(|i| (Node::new((i * 53 + 7) % 256), ObjectId((i % 64) as u64)))
        .collect();
    let config = EngineConfig::default();
    c.bench_function("object_location/engine_batch_1024", |b| {
        b.iter(|| black_box(engine.serve(&queries, &config)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
