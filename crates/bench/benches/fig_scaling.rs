//! Regenerates the F1 stretch-vs-delta series and times the Theorem 4.1
//! scheme construction (the heaviest per-delta artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use ron_routing::SimpleScheme;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", ron_bench::fig_scaling().render());

    let inst = ron_bench::graph_instance("grid-8x8");
    c.bench_function("fig_scaling/thm4.1_build_grid8x8", |b| {
        b.iter(|| {
            black_box(SimpleScheme::build(
                &inst.space,
                &inst.graph,
                &inst.apsp,
                0.25,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
