//! Property-based tests for the metric substrate.

use proptest::prelude::*;
use ron_metric::{cover, gen, EuclideanMetric, LineMetric, Metric, MetricExt, MetricIndex, Node};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated cube metric satisfies the metric axioms.
    #[test]
    fn uniform_cube_satisfies_axioms(n in 2usize..24, dim in 1usize..4, seed in 0u64..1000) {
        let m = gen::uniform_cube(n, dim, seed);
        prop_assert!(m.validate().is_ok());
    }

    /// Clustered metrics satisfy the metric axioms.
    #[test]
    fn clustered_satisfies_axioms(n in 2usize..24, clusters in 1usize..5, seed in 0u64..1000) {
        let m = gen::clustered(n, 2, clusters, 0.05, seed);
        prop_assert!(m.validate().is_ok());
    }

    /// Arbitrary distinct reals form a valid line metric.
    #[test]
    fn line_metric_axioms(points in prop::collection::btree_set(-1000i64..1000, 2..32)) {
        let coords: Vec<f64> = points.iter().map(|&p| p as f64).collect();
        let line = LineMetric::new(coords).unwrap();
        prop_assert!(line.validate().is_ok());
    }

    /// Ball sizes are monotone in the radius and the counting radii invert them.
    #[test]
    fn ball_size_monotone_and_inverse(
        n in 2usize..32,
        seed in 0u64..500,
        r1 in 0.0f64..2.0,
        r2 in 0.0f64..2.0,
    ) {
        let m = gen::uniform_cube(n, 2, seed);
        let idx = MetricIndex::build(&m);
        let u = Node::new(0);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(idx.ball_size(u, lo) <= idx.ball_size(u, hi));
        for k in 1..=n {
            let r = idx.radius_for_count(u, k);
            prop_assert!(idx.ball_size(u, r) >= k);
            if r > 0.0 {
                // Slightly smaller radius must hold fewer than k nodes, as r is
                // the distance of the k-th nearest node.
                prop_assert!(idx.ball_size(u, r * (1.0 - 1e-12)) < k);
            }
        }
    }

    /// Greedy cover: full coverage and center separation on random inputs.
    #[test]
    fn greedy_cover_properties(n in 2usize..32, seed in 0u64..500, r in 0.01f64..1.5) {
        let m = gen::uniform_cube(n, 2, seed);
        let all: Vec<Node> = (0..n).map(Node::new).collect();
        let centers = cover::greedy_cover(&m, &all, r);
        for &u in &all {
            prop_assert!(centers.iter().any(|&c| m.dist(u, c) <= r));
        }
        for (i, &a) in centers.iter().enumerate() {
            for &b in &centers[i + 1..] {
                prop_assert!(m.dist(a, b) > r);
            }
        }
    }

    /// The annulus plus the inner ball equals the outer ball.
    #[test]
    fn annulus_partitions_ball(n in 2usize..32, seed in 0u64..500, r in 0.1f64..1.0) {
        let m = gen::uniform_cube(n, 2, seed);
        let idx = MetricIndex::build(&m);
        let u = Node::new(n / 2);
        let inner = idx.ball_size(u, r);
        let ring = idx.annulus(u, r, 2.0 * r).len();
        let outer = idx.ball_size(u, 2.0 * r);
        prop_assert_eq!(inner + ring, outer);
    }

    /// `r_fraction` is non-increasing as eps shrinks by halving.
    #[test]
    fn cardinality_radii_monotone(n in 2usize..48, seed in 0u64..500) {
        let m = gen::uniform_cube(n, 3, seed);
        let idx = MetricIndex::build(&m);
        for i in 0..n {
            let radii = idx.cardinality_radii(Node::new(i), 5);
            for w in radii.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }
    }

    /// Euclidean distances agree with an explicitly materialized matrix.
    #[test]
    fn explicit_snapshot_agrees(n in 2usize..16, seed in 0u64..200) {
        let m = gen::uniform_cube(n, 2, seed);
        let e = ron_metric::ExplicitMetric::from_metric(&m).unwrap();
        for i in 0..n {
            for j in 0..n {
                let (u, v) = (Node::new(i), Node::new(j));
                prop_assert!((m.dist(u, v) - e.dist(u, v)).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn euclidean_triangle_inequality_dense_check() {
    let m = EuclideanMetric::new(
        (0..20)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.71).cos()])
            .collect(),
    )
    .unwrap();
    assert!(m.validate().is_ok());
}
