//! Property-based tests for the metric substrate.

use proptest::prelude::*;
use ron_metric::{cover, gen, EuclideanMetric, LineMetric, Metric, MetricExt, MetricIndex, Node};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated cube metric satisfies the metric axioms.
    #[test]
    fn uniform_cube_satisfies_axioms(n in 2usize..24, dim in 1usize..4, seed in 0u64..1000) {
        let m = gen::uniform_cube(n, dim, seed);
        prop_assert!(m.validate().is_ok());
    }

    /// Clustered metrics satisfy the metric axioms.
    #[test]
    fn clustered_satisfies_axioms(n in 2usize..24, clusters in 1usize..5, seed in 0u64..1000) {
        let m = gen::clustered(n, 2, clusters, 0.05, seed);
        prop_assert!(m.validate().is_ok());
    }

    /// Arbitrary distinct reals form a valid line metric.
    #[test]
    fn line_metric_axioms(points in prop::collection::btree_set(-1000i64..1000, 2..32)) {
        let coords: Vec<f64> = points.iter().map(|&p| p as f64).collect();
        let line = LineMetric::new(coords).unwrap();
        prop_assert!(line.validate().is_ok());
    }

    /// Ball sizes are monotone in the radius and the counting radii invert them.
    #[test]
    fn ball_size_monotone_and_inverse(
        n in 2usize..32,
        seed in 0u64..500,
        r1 in 0.0f64..2.0,
        r2 in 0.0f64..2.0,
    ) {
        let m = gen::uniform_cube(n, 2, seed);
        let idx = MetricIndex::build(&m);
        let u = Node::new(0);
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(idx.ball_size(u, lo) <= idx.ball_size(u, hi));
        for k in 1..=n {
            let r = idx.radius_for_count(u, k);
            prop_assert!(idx.ball_size(u, r) >= k);
            if r > 0.0 {
                // Slightly smaller radius must hold fewer than k nodes, as r is
                // the distance of the k-th nearest node.
                prop_assert!(idx.ball_size(u, r * (1.0 - 1e-12)) < k);
            }
        }
    }

    /// Greedy cover: full coverage and center separation on random inputs.
    #[test]
    fn greedy_cover_properties(n in 2usize..32, seed in 0u64..500, r in 0.01f64..1.5) {
        let m = gen::uniform_cube(n, 2, seed);
        let all: Vec<Node> = (0..n).map(Node::new).collect();
        let centers = cover::greedy_cover(&m, &all, r);
        for &u in &all {
            prop_assert!(centers.iter().any(|&c| m.dist(u, c) <= r));
        }
        for (i, &a) in centers.iter().enumerate() {
            for &b in &centers[i + 1..] {
                prop_assert!(m.dist(a, b) > r);
            }
        }
    }

    /// The annulus plus the inner ball equals the outer ball.
    #[test]
    fn annulus_partitions_ball(n in 2usize..32, seed in 0u64..500, r in 0.1f64..1.0) {
        let m = gen::uniform_cube(n, 2, seed);
        let idx = MetricIndex::build(&m);
        let u = Node::new(n / 2);
        let inner = idx.ball_size(u, r);
        let ring = idx.annulus(u, r, 2.0 * r).len();
        let outer = idx.ball_size(u, 2.0 * r);
        prop_assert_eq!(inner + ring, outer);
    }

    /// `r_fraction` is non-increasing as eps shrinks by halving.
    #[test]
    fn cardinality_radii_monotone(n in 2usize..48, seed in 0u64..500) {
        let m = gen::uniform_cube(n, 3, seed);
        let idx = MetricIndex::build(&m);
        for i in 0..n {
            let radii = idx.cardinality_radii(Node::new(i), 5);
            for w in radii.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }
    }

    /// Euclidean distances agree with an explicitly materialized matrix.
    #[test]
    fn explicit_snapshot_agrees(n in 2usize..16, seed in 0u64..200) {
        let m = gen::uniform_cube(n, 2, seed);
        let e = ron_metric::ExplicitMetric::from_metric(&m).unwrap();
        for i in 0..n {
            for j in 0..n {
                let (u, v) = (Node::new(i), Node::new(j));
                prop_assert!((m.dist(u, v) - e.dist(u, v)).abs() < 1e-12);
            }
        }
    }
}

#[test]
fn euclidean_triangle_inequality_dense_check() {
    let m = EuclideanMetric::new(
        (0..20)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.71).cos()])
            .collect(),
    )
    .unwrap();
    assert!(m.validate().is_ok());
}

/// The sparse backend must answer every oracle query exactly like the
/// dense index: same balls (order included), same cardinalities, same
/// nearest-where results and call sequences, same radius-for-count, same
/// exact minimum distance — on every generator family the experiments
/// use. The diameter is allowed its documented factor-2 upper bound.
fn assert_oracle_equivalence<M: Metric + Clone>(metric: M) {
    use ron_metric::{BallOracle, NetTreeIndex};
    let n = metric.len();
    let dense = MetricIndex::build(&metric);
    let tree = NetTreeIndex::build(metric);
    assert_eq!(BallOracle::len(&tree), n);
    assert_eq!(tree.min_distance(), dense.min_distance(), "min distance");
    assert!(BallOracle::diameter_ub(&tree) >= dense.diameter());
    assert!(BallOracle::diameter_ub(&tree) <= 2.0 * dense.diameter() + 1e-12);
    for i in 0..n {
        let u = Node::new(i);
        for k in 1..=n {
            assert_eq!(
                tree.radius_for_count(u, k),
                dense.radius_for_count(u, k),
                "radius_for_count({u}, {k})"
            );
        }
        let radii = [
            0.0,
            dense.min_distance(),
            dense.min_distance() * 1.5,
            dense.diameter() / 3.0,
            dense.diameter() / 2.0,
            dense.diameter(),
            dense.diameter() * 2.0,
        ];
        for r in radii {
            assert_eq!(
                BallOracle::ball(&tree, u, r),
                BallOracle::ball(&dense, u, r),
                "ball({u}, {r})"
            );
            assert_eq!(
                BallOracle::ball_size(&tree, u, r),
                dense.ball_size(u, r),
                "ball_size({u}, {r})"
            );
        }
        for eps in [0.1, 0.5, 1.0] {
            assert_eq!(
                BallOracle::r_fraction(&tree, u, eps),
                dense.r_fraction(u, eps)
            );
        }
        // nearest_where: same answer AND the same predicate call sequence
        // (each candidate offered once, in (distance, id) order).
        let mut dense_calls = Vec::new();
        let dense_hit = dense.nearest_where(u, |v| {
            dense_calls.push(v);
            v.index() % 7 == 3
        });
        let mut tree_calls = Vec::new();
        let tree_hit = BallOracle::nearest_where(&tree, u, &mut |v| {
            tree_calls.push(v);
            v.index() % 7 == 3
        });
        assert_eq!(tree_hit, dense_hit, "nearest_where({u})");
        assert_eq!(tree_calls, dense_calls, "predicate call order at {u}");
        assert_eq!(BallOracle::nearest_where(&tree, u, &mut |_| false), None);
    }
}

#[test]
fn net_tree_matches_dense_on_uniform_cube() {
    for (n, seed) in [(2usize, 9u64), (37, 1), (64, 5)] {
        assert_oracle_equivalence(gen::uniform_cube(n, 2, seed));
    }
    assert_oracle_equivalence(gen::uniform_cube(48, 3, 11));
}

#[test]
fn net_tree_matches_dense_on_clusters() {
    for (n, clusters, seed) in [(40usize, 4usize, 3u64), (56, 7, 8)] {
        assert_oracle_equivalence(gen::clustered(n, 2, clusters, 0.02, seed));
    }
}

#[test]
fn net_tree_matches_dense_on_perturbed_grid() {
    assert_oracle_equivalence(gen::perturbed_grid(7, 2, 0.2, 6));
    assert_oracle_equivalence(gen::perturbed_grid(4, 3, 0.3, 2));
}

#[test]
fn net_tree_matches_dense_on_exponential_line() {
    // The super-polynomial aspect-ratio regime: a deep, skinny ladder.
    for n in [2usize, 3, 17, 32] {
        assert_oracle_equivalence(LineMetric::exponential(n).unwrap());
    }
    assert_oracle_equivalence(LineMetric::uniform(33).unwrap());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized cross-check of the two backends on random cubes.
    #[test]
    fn net_tree_matches_dense_randomized(n in 2usize..28, seed in 0u64..400) {
        use ron_metric::{BallOracle, NetTreeIndex};
        let metric = gen::uniform_cube(n, 2, seed);
        let dense = MetricIndex::build(&metric);
        let tree = NetTreeIndex::build(metric);
        prop_assert_eq!(tree.min_distance(), dense.min_distance());
        for i in 0..n {
            let u = Node::new(i);
            for k in 1..=n {
                prop_assert_eq!(tree.radius_for_count(u, k), dense.radius_for_count(u, k));
            }
            let r = dense.diameter() * 0.4;
            prop_assert_eq!(BallOracle::ball(&tree, u, r), BallOracle::ball(&dense, u, r));
        }
    }

    /// The dense index build is bit-identical for every worker count.
    #[test]
    fn parallel_index_build_is_deterministic(n in 2usize..40, seed in 0u64..300) {
        use ron_metric::par;
        let metric = gen::uniform_cube(n, 2, seed);
        let one = par::with_threads(1, || MetricIndex::build(&metric));
        let many = par::with_threads(5, || MetricIndex::build(&metric));
        prop_assert_eq!(one.diameter(), many.diameter());
        prop_assert_eq!(one.min_distance(), many.min_distance());
        for i in 0..n {
            prop_assert_eq!(one.sorted_from(Node::new(i)), many.sorted_from(Node::new(i)));
        }
    }
}
