//! Greedy ball covers (Lemma 1.1).
//!
//! Lemma 1.1: in a metric of doubling dimension `alpha`, any set of diameter
//! `d` can be covered by `2^(alpha k)` balls of radius `d / 2^k`, and the
//! cover can be built greedily: pick any remaining node, open a ball of the
//! target radius around it, delete the covered nodes, repeat.
//!
//! The greedy cover doubles as a maximal `r`-separated subset of the input
//! (the centers are pairwise more than `r` apart), which is what both the
//! net construction and the doubling-dimension estimator build on.

use crate::{Metric, Node};

/// Greedily covers `set` with closed balls of radius `r` centered at
/// members of `set`, returning the chosen centers in selection order.
///
/// The centers are pairwise at distance greater than `r`, and every node of
/// `set` is within `r` of some center — exactly the construction in the
/// proof of Lemma 1.1.
///
/// Runs in `O(|set| * |centers|)` distance evaluations.
///
/// # Example
///
/// ```
/// use ron_metric::{cover, LineMetric, Metric, Node};
///
/// let line = LineMetric::uniform(10)?;
/// let all: Vec<Node> = (0..10).map(Node::new).collect();
/// let centers = cover::greedy_cover(&line, &all, 2.0);
/// // Every node is within 2 of a center.
/// for &u in &all {
///     assert!(centers.iter().any(|&c| line.dist(u, c) <= 2.0));
/// }
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[must_use]
pub fn greedy_cover<M: Metric + ?Sized>(metric: &M, set: &[Node], r: f64) -> Vec<Node> {
    debug_assert!(r >= 0.0);
    let mut centers = Vec::new();
    let mut covered = vec![false; metric.len()];
    for &u in set {
        if covered[u.index()] {
            continue;
        }
        centers.push(u);
        for &v in set {
            if !covered[v.index()] && metric.dist(u, v) <= r {
                covered[v.index()] = true;
            }
        }
    }
    centers
}

/// Number of balls of radius `r` needed by the greedy cover of `set`.
///
/// Convenience wrapper over [`greedy_cover`] used by the dimension
/// estimators.
#[must_use]
pub fn greedy_cover_size<M: Metric + ?Sized>(metric: &M, set: &[Node], r: f64) -> usize {
    greedy_cover(metric, set, r).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineMetric, Metric};

    #[test]
    fn covers_all_nodes() {
        let line = LineMetric::uniform(20).unwrap();
        let all: Vec<Node> = (0..20).map(Node::new).collect();
        for r in [0.0, 1.0, 3.0, 100.0] {
            let centers = greedy_cover(&line, &all, r);
            for &u in &all {
                assert!(
                    centers.iter().any(|&c| line.dist(u, c) <= r),
                    "node {u} not covered at radius {r}"
                );
            }
        }
    }

    #[test]
    fn centers_are_separated() {
        let line = LineMetric::uniform(20).unwrap();
        let all: Vec<Node> = (0..20).map(Node::new).collect();
        let r = 2.0;
        let centers = greedy_cover(&line, &all, r);
        for (i, &a) in centers.iter().enumerate() {
            for &b in &centers[i + 1..] {
                assert!(line.dist(a, b) > r, "centers {a} and {b} too close");
            }
        }
    }

    #[test]
    fn radius_zero_selects_every_node() {
        let line = LineMetric::uniform(5).unwrap();
        let all: Vec<Node> = (0..5).map(Node::new).collect();
        assert_eq!(greedy_cover(&line, &all, 0.0).len(), 5);
    }

    #[test]
    fn huge_radius_selects_one() {
        let line = LineMetric::uniform(5).unwrap();
        let all: Vec<Node> = (0..5).map(Node::new).collect();
        assert_eq!(greedy_cover_size(&line, &all, 10.0), 1);
    }

    #[test]
    fn subset_cover_only_uses_subset() {
        let line = LineMetric::uniform(10).unwrap();
        let subset: Vec<Node> = [2, 3, 7].iter().map(|&i| Node::new(i)).collect();
        let centers = greedy_cover(&line, &subset, 1.0);
        for c in &centers {
            assert!(subset.contains(c));
        }
        assert_eq!(centers.len(), 2); // {2,3} together, {7} alone
    }
}
