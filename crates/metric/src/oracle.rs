//! The pluggable ball-query backend of the construction pipeline.
//!
//! Every structure in the reproduction — nets, rings, triangulation
//! labels, routing tables, the location directory — only ever asks four
//! kinds of questions about the metric: *who is in the ball `B_u(r)`*,
//! *how many nodes is that*, *who is the nearest node satisfying a
//! predicate*, and *how large must a ball around `u` be to hold `k`
//! nodes* (`r_u(eps)` after normalization). None of them need a
//! materialized distance matrix.
//!
//! [`BallOracle`] captures exactly that interface. Two backends implement
//! it:
//!
//! * [`MetricIndex`](crate::MetricIndex) — the dense per-node sorted
//!   index: `O(n^2)` memory, `O(log n)` queries, exact everything;
//! * [`NetTreeIndex`](crate::NetTreeIndex) — a memory-sparse hierarchy of
//!   coarse nets (cover-tree style): `O(n log Delta)` memory, queries by
//!   descending the net ladder, built without ever holding `n^2` numbers.
//!
//! [`Space`](crate::Space) is generic over the backend
//! (`Space<M, I = MetricIndex>`), so construction code written against
//! `I: BallOracle` runs unchanged on either; tests pin that the sparse
//! backend's answers match the dense one's bit for bit.

use crate::Node;

/// Ball membership, ball cardinality, nearest-member and
/// radius-for-count queries over a finite metric — the complete query
/// surface the paper's constructions need (Section 1.1).
///
/// Contracts every implementation upholds (property-tested):
///
/// * [`for_each_in_ball`](BallOracle::for_each_in_ball) visits the closed
///   ball `B_u(r)` in ascending `(distance, node id)` order, starting at
///   `(0.0, u)` for `r >= 0`;
/// * [`nearest_where`](BallOracle::nearest_where) calls the predicate on
///   nodes in that same global order, each node at most once, and returns
///   the first match;
/// * [`radius_for_count`](BallOracle::radius_for_count) is exact: the
///   `(k-1)`-th smallest distance from `u` under the same tie order;
/// * [`min_distance`](BallOracle::min_distance) is the exact smallest
///   positive pairwise distance (`1.0` for a single node, matching the
///   dense index's convention); [`diameter_ub`](BallOracle::diameter_ub)
///   may be an **upper bound** within a factor of 2 of the true diameter
///   (exact for the dense backend) — every use in the pipeline only needs
///   a radius that covers the space.
pub trait BallOracle: Sync {
    /// Number of nodes in the indexed space.
    fn len(&self) -> usize;

    /// Whether the indexed space is empty (never true: backends reject
    /// empty metrics at construction).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest pairwise distance, or an upper bound within a factor of 2
    /// (exact for [`MetricIndex`](crate::MetricIndex); see the trait
    /// docs). The `_ub` suffix is the contract: callers may only rely on
    /// this covering the space, never on it being attained by a pair.
    fn diameter_ub(&self) -> f64;

    /// Former name of [`diameter_ub`](BallOracle::diameter_ub).
    ///
    /// The old name suggested an exact diameter, but the sparse backend
    /// reports `2 * ecc(v0)`; the rename makes the upper-bound contract
    /// visible at every call site.
    #[deprecated(
        since = "0.8.0",
        note = "renamed to `diameter_ub`: the value may be an upper bound within a factor of 2, not the exact diameter"
    )]
    fn diameter(&self) -> f64 {
        self.diameter_ub()
    }

    /// Exact smallest positive pairwise distance (`1.0` for a single
    /// node).
    fn min_distance(&self) -> f64;

    /// Aspect ratio `Delta = diameter / min_distance`, at least `1.0`
    /// (inherits [`diameter_ub`](BallOracle::diameter_ub)'s upper-bound
    /// slack).
    fn aspect_ratio(&self) -> f64 {
        if self.len() < 2 {
            1.0
        } else {
            (self.diameter_ub() / self.min_distance()).max(1.0)
        }
    }

    /// Visits every node of the closed ball `B_u(r)` as `(distance, node)`
    /// in ascending `(distance, id)` order. Includes `u` itself for
    /// `r >= 0`.
    fn for_each_in_ball(&self, u: Node, r: f64, visit: &mut dyn FnMut(f64, Node));

    /// The closed ball `B_u(r)` as an owned, `(distance, id)`-sorted
    /// vector.
    fn ball(&self, u: Node, r: f64) -> Vec<(f64, Node)> {
        let mut out = Vec::new();
        self.for_each_in_ball(u, r, &mut |d, v| out.push((d, v)));
        out
    }

    /// Cardinality of the closed ball `B_u(r)`.
    fn ball_size(&self, u: Node, r: f64) -> usize {
        let mut count = 0usize;
        self.for_each_in_ball(u, r, &mut |_, _| count += 1);
        count
    }

    /// Nearest node to `u` (inclusive of `u`) satisfying `pred`, with its
    /// distance; ties broken by node id. The predicate is called on each
    /// candidate at most once, in ascending `(distance, id)` order.
    fn nearest_where(&self, u: Node, pred: &mut dyn FnMut(Node) -> bool) -> Option<(f64, Node)>;

    /// Radius of the smallest closed ball around `u` containing at least
    /// `k` nodes (including `u`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > len()`.
    fn radius_for_count(&self, u: Node, k: usize) -> f64;

    /// `r_u(eps)` under the counting measure: radius of the smallest
    /// closed ball around `u` containing at least `ceil(eps * n)` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1]`.
    fn r_fraction(&self, u: Node, eps: f64) -> f64 {
        assert!(eps > 0.0 && eps <= 1.0, "eps {eps} out of range (0, 1]");
        let n = self.len();
        let k = ((eps * n as f64).ceil() as usize).clamp(1, n);
        self.radius_for_count(u, k)
    }
}

impl BallOracle for crate::MetricIndex {
    fn len(&self) -> usize {
        crate::MetricIndex::len(self)
    }

    fn diameter_ub(&self) -> f64 {
        crate::MetricIndex::diameter(self)
    }

    fn min_distance(&self) -> f64 {
        crate::MetricIndex::min_distance(self)
    }

    fn aspect_ratio(&self) -> f64 {
        crate::MetricIndex::aspect_ratio(self)
    }

    fn for_each_in_ball(&self, u: Node, r: f64, visit: &mut dyn FnMut(f64, Node)) {
        let t = ron_obs::start();
        for &(d, v) in crate::MetricIndex::ball(self, u, r) {
            visit(d, v);
        }
        ron_obs::finish("oracle.ball.dense", t);
    }

    fn ball(&self, u: Node, r: f64) -> Vec<(f64, Node)> {
        let t = ron_obs::start();
        let out = crate::MetricIndex::ball(self, u, r).to_vec();
        ron_obs::finish("oracle.ball.dense", t);
        out
    }

    fn ball_size(&self, u: Node, r: f64) -> usize {
        let t = ron_obs::start();
        let out = crate::MetricIndex::ball_size(self, u, r);
        ron_obs::finish("oracle.ball_size.dense", t);
        out
    }

    fn nearest_where(&self, u: Node, pred: &mut dyn FnMut(Node) -> bool) -> Option<(f64, Node)> {
        let t = ron_obs::start();
        let out = crate::MetricIndex::nearest_where(self, u, pred);
        ron_obs::finish("oracle.nearest.dense", t);
        out
    }

    fn radius_for_count(&self, u: Node, k: usize) -> f64 {
        let t = ron_obs::start();
        let out = crate::MetricIndex::radius_for_count(self, u, k);
        ron_obs::finish("oracle.radius.dense", t);
        out
    }

    fn r_fraction(&self, u: Node, eps: f64) -> f64 {
        crate::MetricIndex::r_fraction(self, u, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineMetric, MetricIndex};

    fn oracle() -> MetricIndex {
        MetricIndex::build(&LineMetric::uniform(10).unwrap())
    }

    fn generic_probe<O: BallOracle>(o: &O) -> (usize, usize, f64, Option<(f64, Node)>) {
        let u = Node::new(0);
        (
            o.len(),
            o.ball_size(u, 3.0),
            o.radius_for_count(u, 4),
            o.nearest_where(u, &mut |v| v.index() >= 4),
        )
    }

    #[test]
    fn dense_index_is_an_oracle() {
        let idx = oracle();
        let (n, ball, r4, hit) = generic_probe(&idx);
        assert_eq!(n, 10);
        assert_eq!(ball, 4);
        assert_eq!(r4, 3.0);
        assert_eq!(hit, Some((4.0, Node::new(4))));
        assert!(!BallOracle::is_empty(&idx));
        assert_eq!(BallOracle::aspect_ratio(&idx), 9.0);
    }

    #[test]
    fn trait_ball_matches_inherent_slice() {
        let idx = oracle();
        let u = Node::new(3);
        let trait_ball = BallOracle::ball(&idx, u, 2.5);
        assert_eq!(trait_ball, MetricIndex::ball(&idx, u, 2.5).to_vec());
        let mut visited = Vec::new();
        idx.for_each_in_ball(u, 2.5, &mut |d, v| visited.push((d, v)));
        assert_eq!(visited, trait_ball);
    }

    #[test]
    fn default_r_fraction_matches_dense() {
        let idx = oracle();
        for u in 0..10 {
            let u = Node::new(u);
            for eps in [0.1, 0.5, 1.0] {
                assert_eq!(
                    BallOracle::r_fraction(&idx, u, eps),
                    MetricIndex::r_fraction(&idx, u, eps)
                );
            }
        }
    }
}
