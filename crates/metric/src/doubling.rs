//! Doubling and grid dimension estimators (Section 1 of the paper).
//!
//! The *doubling dimension* of a metric is the infimum `alpha` such that
//! every set of diameter `d` can be covered by `2^alpha` sets of diameter
//! `d/2`. Computing it exactly is NP-hard in general; the standard
//! 2-approximation covers balls with balls of half the radius (Lemma 1.1
//! style), which is what [`doubling_dimension`] measures.
//!
//! The *grid dimension* (footnote 2) is the smallest `alpha` such that
//! `|B_u(2r)| <= 2^alpha * |B_u(r)|` for every ball; grids have it bounded,
//! while the exponential line does not — the paper's motivating separation
//! between growth-constrained and doubling metrics.

use crate::cover::greedy_cover_size;
use crate::{Metric, MetricIndex, Node};

/// Estimates the doubling dimension: the maximum over sampled balls
/// `B_u(r)` of `log2(cover size)` where the cover uses balls of radius
/// `r/2` (greedy, Lemma 1.1).
///
/// This is the usual constant-factor approximation of the true doubling
/// dimension: it never underestimates the "cover balls by half-radius
/// balls" variant of the dimension and is within a factor 2 of the
/// diameter-based definition.
///
/// Radii are swept over the distance scales `min_dist * 2^j`; all `n` nodes
/// are tried as centers, so the estimate is deterministic. `O(n^2 log
/// Delta)` distance evaluations overall.
///
/// # Example
///
/// ```
/// use ron_metric::{doubling, GridMetric, Space};
///
/// let space = Space::new(GridMetric::new(8, 2)?);
/// let alpha = doubling::doubling_dimension(&space.metric(), space.index());
/// assert!(alpha <= 4.0, "2-D grid should have small doubling dimension");
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[must_use]
pub fn doubling_dimension<M: Metric + ?Sized>(metric: &M, index: &MetricIndex) -> f64 {
    let n = index.len();
    if n <= 1 {
        return 0.0;
    }
    let mut worst = 1usize;
    let mut r = index.min_distance();
    while r <= index.diameter() * 2.0 {
        for i in 0..n {
            let u = Node::new(i);
            let ball: Vec<Node> = index.ball(u, r).iter().map(|&(_, v)| v).collect();
            if ball.len() > worst {
                let cover = greedy_cover_size(metric, &ball, r / 2.0);
                worst = worst.max(cover);
            }
        }
        r *= 2.0;
    }
    (worst as f64).log2()
}

/// Estimates the grid dimension: `max_u,r log2(|B_u(2r)| / |B_u(r)|)`,
/// sweeping `r` over the distance scales.
///
/// For metrics with unbounded growth (like the exponential line) this grows
/// with `n` while [`doubling_dimension`] stays bounded; the pair of
/// estimators reproduces the paper's separation example.
#[must_use]
pub fn grid_dimension(index: &MetricIndex) -> f64 {
    let n = index.len();
    if n <= 1 {
        return 0.0;
    }
    let mut worst = 1.0f64;
    let mut r = index.min_distance();
    while r <= index.diameter() {
        for i in 0..n {
            let u = Node::new(i);
            let small = index.ball_size(u, r) as f64;
            let big = index.ball_size(u, 2.0 * r) as f64;
            worst = worst.max(big / small);
        }
        r *= 2.0;
    }
    worst.log2()
}

/// Checks Lemma 1.2: `1 + log2(Delta) >= log2(n) / alpha`.
///
/// Returns the slack `(1 + log Delta) - (log n) / alpha`; nonnegative for
/// any correct `(Delta, n, alpha)` triple. Tests use it as a sanity check
/// tying the three quantities together.
#[must_use]
pub fn aspect_ratio_lower_bound_slack(n: usize, aspect_ratio: f64, alpha: f64) -> f64 {
    debug_assert!(n >= 1 && aspect_ratio >= 1.0 && alpha > 0.0);
    (1.0 + aspect_ratio.log2()) - (n as f64).log2() / alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridMetric, LineMetric, Space};

    #[test]
    fn line_has_dimension_about_one() {
        let space = Space::new(LineMetric::uniform(64).unwrap());
        let alpha = doubling_dimension(space.metric(), space.index());
        assert!((0.9..=3.0).contains(&alpha), "got alpha = {alpha}");
    }

    #[test]
    fn grid_has_dimension_about_two() {
        let space = Space::new(GridMetric::new(8, 2).unwrap());
        let alpha = doubling_dimension(space.metric(), space.index());
        assert!((1.5..=4.5).contains(&alpha), "got alpha = {alpha}");
    }

    #[test]
    fn exponential_line_is_doubling_but_not_growth_constrained() {
        let space = Space::new(LineMetric::exponential(24).unwrap());
        let alpha = doubling_dimension(space.metric(), space.index());
        let grid = grid_dimension(space.index());
        // Doubling dimension stays small...
        assert!(alpha <= 3.5, "doubling dim too large: {alpha}");
        // ...but grid dimension reveals the unbounded growth:
        // B_u(2r) can catch many points at once on the exponential line.
        assert!(
            grid >= alpha,
            "expected grid dim ({grid}) >= doubling dim ({alpha})"
        );
    }

    #[test]
    fn singleton_dimensions_are_zero() {
        let space = Space::new(LineMetric::new(vec![3.0]).unwrap());
        assert_eq!(doubling_dimension(space.metric(), space.index()), 0.0);
        assert_eq!(grid_dimension(space.index()), 0.0);
    }

    #[test]
    fn lemma_1_2_holds_on_generated_metrics() {
        for n in [8usize, 32, 64] {
            let space = Space::new(LineMetric::uniform(n).unwrap());
            let alpha = doubling_dimension(space.metric(), space.index()).max(1.0);
            let slack = aspect_ratio_lower_bound_slack(n, space.index().aspect_ratio(), alpha);
            assert!(
                slack >= -1e-9,
                "Lemma 1.2 violated: slack {slack} for n={n}"
            );
        }
    }
}
