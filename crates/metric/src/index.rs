use crate::{HeapBytes, Metric, MetricError, Node};

/// Largest node count the dense backend indexes: `n^2` stored distances
/// get out of hand past this (8192 nodes is already 512 MB of rows).
/// Larger spaces go through the sparse
/// [`NetTreeIndex`](crate::NetTreeIndex) via
/// [`Space::new_sparse`](crate::Space::new_sparse).
pub const DENSE_NODE_CAP: usize = 8192;

/// Per-node sorted-by-distance index over a finite metric.
///
/// The paper's constructions repeatedly ask for the closed ball `B_u(r)`,
/// its cardinality, and the radius `r_u(eps)` of the smallest ball around
/// `u` containing at least an `eps`-fraction of the nodes (Section 1.1).
/// `MetricIndex` precomputes, for every node, all other nodes sorted by
/// distance (`O(n^2 log n)` build, `O(n^2)` memory), after which each query
/// is a binary search or a slice.
///
/// Ties are broken by node id, which implements the paper's
/// "all distances are distinct" convention (Section 5.1) deterministically.
///
/// # Example
///
/// ```
/// use ron_metric::{LineMetric, MetricIndex, Node};
///
/// let line = LineMetric::uniform(8)?;
/// let idx = MetricIndex::build(&line);
/// let u = Node::new(0);
/// assert_eq!(idx.ball_size(u, 2.0), 3); // {0, 1, 2}
/// assert_eq!(idx.radius_for_count(u, 4), 3.0);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug)]
pub struct MetricIndex {
    n: usize,
    by_dist: Vec<Vec<(f64, Node)>>,
    diameter: f64,
    min_dist: f64,
}

impl MetricIndex {
    /// Builds the index for `metric` in `O(n^2 log n)` work, with the rows
    /// computed in parallel on the [`par`](crate::par) executor (the
    /// output is identical for every thread count: rows are independent
    /// and merged in node order).
    ///
    /// # Panics
    ///
    /// Panics if the metric is empty.
    #[must_use]
    pub fn build<M: Metric + ?Sized>(metric: &M) -> Self {
        let n = metric.len();
        assert!(n > 0, "cannot index an empty metric");
        Self::build_unchecked(metric, n)
    }

    /// Builds the index only if `metric` fits under [`DENSE_NODE_CAP`];
    /// the typed refusal names the sparse backend as the fix.
    ///
    /// # Errors
    ///
    /// [`MetricError::Empty`] for an empty metric,
    /// [`MetricError::TooLarge`] when `len() > DENSE_NODE_CAP`.
    pub fn try_build<M: Metric + ?Sized>(metric: &M) -> Result<Self, MetricError> {
        let n = metric.len();
        if n == 0 {
            return Err(MetricError::Empty);
        }
        if n > DENSE_NODE_CAP {
            return Err(MetricError::TooLarge {
                n,
                cap: DENSE_NODE_CAP,
                hint: "use Space::new_sparse (NetTreeIndex) for large spaces",
            });
        }
        Ok(Self::build_unchecked(metric, n))
    }

    fn build_unchecked<M: Metric + ?Sized>(metric: &M, n: usize) -> Self {
        let by_dist: Vec<Vec<(f64, Node)>> = crate::par::map(n, |i| {
            let u = Node::new(i);
            let mut row: Vec<(f64, Node)> = (0..n)
                .map(|j| (metric.dist(u, Node::new(j)), Node::new(j)))
                .collect();
            row.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            row
        });
        let mut diameter = 0.0f64;
        let mut min_dist = f64::INFINITY;
        for row in &by_dist {
            let far = row.last().expect("nonempty row").0;
            diameter = diameter.max(far);
            if n > 1 {
                // row[0] is u itself at distance 0; row[1] is the closest other node.
                min_dist = min_dist.min(row[1].0);
            }
        }
        if n == 1 {
            min_dist = 1.0;
        }
        MetricIndex {
            n,
            by_dist,
            diameter,
            min_dist,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the indexed space is empty (never true: construction panics).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Largest pairwise distance.
    #[must_use]
    pub fn diameter(&self) -> f64 {
        self.diameter
    }

    /// Smallest positive pairwise distance (`1.0` for a single node).
    #[must_use]
    pub fn min_distance(&self) -> f64 {
        self.min_dist
    }

    /// Aspect ratio `Delta = diameter / min_distance` (at least `1.0`).
    #[must_use]
    pub fn aspect_ratio(&self) -> f64 {
        if self.n < 2 {
            1.0
        } else {
            (self.diameter / self.min_dist).max(1.0)
        }
    }

    /// All nodes sorted by distance from `u`; the first entry is `(0.0, u)`.
    #[must_use]
    pub fn sorted_from(&self, u: Node) -> &[(f64, Node)] {
        &self.by_dist[u.index()]
    }

    /// The closed ball `B_u(r)`: all nodes within distance `r` of `u`,
    /// sorted by distance. Includes `u` itself for `r >= 0`.
    #[must_use]
    pub fn ball(&self, u: Node, r: f64) -> &[(f64, Node)] {
        let row = self.sorted_from(u);
        let end = row.partition_point(|&(d, _)| d <= r);
        &row[..end]
    }

    /// Cardinality of the closed ball `B_u(r)`.
    #[must_use]
    pub fn ball_size(&self, u: Node, r: f64) -> usize {
        self.ball(u, r).len()
    }

    /// The open ball: all nodes at distance strictly less than `r`.
    #[must_use]
    pub fn open_ball(&self, u: Node, r: f64) -> &[(f64, Node)] {
        let row = self.sorted_from(u);
        let end = row.partition_point(|&(d, _)| d < r);
        &row[..end]
    }

    /// Nodes in the annulus `(inner, outer]` around `u`, sorted by distance.
    ///
    /// The half-open convention matches Section 5.1's annuli
    /// `B_u(rho_j) \ B_u(rho_{j-1})`.
    #[must_use]
    pub fn annulus(&self, u: Node, inner: f64, outer: f64) -> &[(f64, Node)] {
        let row = self.sorted_from(u);
        let start = row.partition_point(|&(d, _)| d <= inner);
        let end = row.partition_point(|&(d, _)| d <= outer);
        &row[start..end]
    }

    /// Radius of the smallest closed ball around `u` containing at least
    /// `k` nodes (including `u`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    #[must_use]
    pub fn radius_for_count(&self, u: Node, k: usize) -> f64 {
        assert!(
            k >= 1 && k <= self.n,
            "count {k} out of range 1..={}",
            self.n
        );
        self.sorted_from(u)[k - 1].0
    }

    /// `r_u(eps)` under the counting measure: radius of the smallest closed
    /// ball around `u` containing at least `ceil(eps * n)` nodes.
    ///
    /// This is the quantity the paper writes `r_u(eps)`; with
    /// `eps = 2^-i` it yields the radii `r_ui` of Theorem 3.2.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1]`.
    #[must_use]
    pub fn r_fraction(&self, u: Node, eps: f64) -> f64 {
        assert!(eps > 0.0 && eps <= 1.0, "eps {eps} out of range (0, 1]");
        let k = ((eps * self.n as f64).ceil() as usize).clamp(1, self.n);
        self.radius_for_count(u, k)
    }

    /// The radii `r_ui = r_u(2^-i)` for `i in [levels]`, per Theorem 3.2.
    ///
    /// `r_u0` is the radius containing all `n` nodes; radii are
    /// non-increasing in `i`.
    #[must_use]
    pub fn cardinality_radii(&self, u: Node, levels: usize) -> Vec<f64> {
        (0..levels)
            .map(|i| self.r_fraction(u, (0.5f64).powi(i as i32)))
            .collect()
    }

    /// Nearest node to `u` (inclusive of `u`) satisfying `pred`, together
    /// with its distance. Linear scan in distance order.
    #[must_use]
    pub fn nearest_where(
        &self,
        u: Node,
        mut pred: impl FnMut(Node) -> bool,
    ) -> Option<(f64, Node)> {
        self.sorted_from(u).iter().copied().find(|&(_, v)| pred(v))
    }

    /// `k`-th nearest neighbor of `u` (`k = 0` is `u` itself).
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`.
    #[must_use]
    pub fn kth_nearest(&self, u: Node, k: usize) -> (f64, Node) {
        self.sorted_from(u)[k]
    }
}

impl HeapBytes for MetricIndex {
    fn heap_bytes(&self) -> usize {
        crate::mem::nested_vec_bytes(&self.by_dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineMetric;

    fn idx() -> MetricIndex {
        MetricIndex::build(&LineMetric::uniform(10).unwrap())
    }

    #[test]
    fn sorted_from_starts_at_self() {
        let idx = idx();
        for i in 0..10 {
            let u = Node::new(i);
            assert_eq!(idx.sorted_from(u)[0], (0.0, u));
        }
    }

    #[test]
    fn ball_closed_vs_open() {
        let idx = idx();
        let u = Node::new(0);
        assert_eq!(idx.ball_size(u, 3.0), 4);
        assert_eq!(idx.open_ball(u, 3.0).len(), 3);
        assert_eq!(idx.ball_size(u, 2.5), 3);
    }

    #[test]
    fn annulus_half_open() {
        let idx = idx();
        let u = Node::new(0);
        let ring: Vec<usize> = idx
            .annulus(u, 2.0, 5.0)
            .iter()
            .map(|&(_, v)| v.index())
            .collect();
        assert_eq!(ring, vec![3, 4, 5]);
    }

    #[test]
    fn radius_for_count_monotone() {
        let idx = idx();
        let u = Node::new(5);
        let mut prev = 0.0;
        for k in 1..=10 {
            let r = idx.radius_for_count(u, k);
            assert!(r >= prev);
            prev = r;
        }
        assert_eq!(idx.radius_for_count(u, 1), 0.0);
    }

    #[test]
    fn r_fraction_matches_counts() {
        let idx = idx();
        let u = Node::new(0);
        // eps = 1.0 needs all 10 nodes -> radius 9.
        assert_eq!(idx.r_fraction(u, 1.0), 9.0);
        // eps = 0.5 needs 5 nodes -> radius 4.
        assert_eq!(idx.r_fraction(u, 0.5), 4.0);
    }

    #[test]
    fn cardinality_radii_non_increasing() {
        let idx = idx();
        let radii = idx.cardinality_radii(Node::new(3), 4);
        for w in radii.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn aspect_ratio_and_extremes() {
        let idx = idx();
        assert_eq!(idx.diameter(), 9.0);
        assert_eq!(idx.min_distance(), 1.0);
        assert_eq!(idx.aspect_ratio(), 9.0);
    }

    #[test]
    fn nearest_where_finds_first_match() {
        let idx = idx();
        let u = Node::new(0);
        let hit = idx.nearest_where(u, |v| v.index() >= 4).unwrap();
        assert_eq!(hit, (4.0, Node::new(4)));
        assert!(idx.nearest_where(u, |_| false).is_none());
    }

    #[test]
    fn tie_break_by_node_id() {
        // Node 1 is equidistant from 0 and 2.
        let idx = MetricIndex::build(&LineMetric::uniform(3).unwrap());
        let row = idx.sorted_from(Node::new(1));
        assert_eq!(row[1].1, Node::new(0));
        assert_eq!(row[2].1, Node::new(2));
    }

    #[test]
    fn singleton_space() {
        let idx = MetricIndex::build(&LineMetric::new(vec![5.0]).unwrap());
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.aspect_ratio(), 1.0);
        assert_eq!(idx.ball_size(Node::new(0), 0.0), 1);
    }

    #[test]
    fn try_build_accepts_small_spaces() {
        let idx = MetricIndex::try_build(&LineMetric::uniform(16).unwrap()).unwrap();
        assert_eq!(idx.len(), 16);
        assert!(idx.heap_bytes() >= 16 * 16 * std::mem::size_of::<(f64, Node)>());
    }

    #[test]
    fn try_build_refuses_past_the_cap_with_the_sparse_hint() {
        struct Huge;
        impl Metric for Huge {
            fn len(&self) -> usize {
                DENSE_NODE_CAP + 1
            }
            fn dist(&self, u: Node, v: Node) -> f64 {
                (u.index() as f64 - v.index() as f64).abs()
            }
        }
        let err = MetricIndex::try_build(&Huge).unwrap_err();
        match err {
            MetricError::TooLarge { n, cap, hint } => {
                assert_eq!(n, DENSE_NODE_CAP + 1);
                assert_eq!(cap, DENSE_NODE_CAP);
                assert!(hint.contains("Space::new_sparse"));
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert!(err.to_string().contains("Space::new_sparse"));
    }
}
