//! Finite metric space substrate for the rings-of-neighbors library.
//!
//! Everything in Slivkins' paper (PODC 2005) operates on a finite metric
//! space `(V, d)`, usually of low [doubling dimension]. This crate provides:
//!
//! * the [`Metric`] trait and concrete metrics: [`ExplicitMetric`],
//!   [`EuclideanMetric`], [`GridMetric`], [`LineMetric`];
//! * [`MetricIndex`]: a per-node sorted-by-distance index answering the ball
//!   queries the paper uses throughout (`B_u(r)`, ball cardinalities, and the
//!   radii `r_u(eps)` of the smallest ball around `u` holding an
//!   `eps`-fraction of the nodes);
//! * [`BallOracle`]: the pluggable ball-query backend those queries go
//!   through, with two implementations — the dense [`MetricIndex`] and the
//!   memory-sparse [`NetTreeIndex`] (`O(n log Delta)` memory, the backend
//!   that scales past ~10^4 nodes);
//! * [`Space`]: a metric bundled with a backend (`Space<M, I>`, dense by
//!   default), the common input type of the higher-level crates;
//! * [`par`]: the scoped-thread executor the construction pipeline uses
//!   for its embarrassingly-parallel loops (re-exported as
//!   `ron_core::par`; thread count overridable via `RON_THREADS`);
//! * greedy ball covers (Lemma 1.1) in [`cover`], and estimators for the
//!   doubling and grid dimensions in [`doubling`];
//! * random instance generators in [`gen`] covering both regimes the paper
//!   distinguishes: polynomial aspect ratio (cubes, grids, clustered
//!   Internet-latency-like metrics) and super-polynomial aspect ratio (the
//!   exponential line `{1, 2, 4, ..., 2^n}` from the paper's introduction).
//!
//! # Example
//!
//! ```
//! use ron_metric::{gen, Metric, Space};
//!
//! let metric = gen::uniform_cube(64, 2, 7);
//! let space = Space::new(metric);
//! let (u, v) = (ron_metric::Node::new(0), ron_metric::Node::new(1));
//! assert!(space.dist(u, v) > 0.0);
//! assert!(space.index().aspect_ratio() >= 1.0);
//! ```
//!
//! [doubling dimension]: doubling

pub mod cover;
pub mod doubling;
mod error;
mod euclidean;
mod explicit;
pub mod gen;
mod grid;
mod index;
mod line;
pub mod mem;
mod nettree;
mod node;
mod oracle;
pub mod par;
mod space;
mod traits;

pub use error::MetricError;
pub use euclidean::EuclideanMetric;
pub use explicit::ExplicitMetric;
pub use grid::GridMetric;
pub use index::{MetricIndex, DENSE_NODE_CAP};
pub use line::LineMetric;
pub use mem::HeapBytes;
pub use nettree::NetTreeIndex;
pub use node::{CompactId, Node};
pub use oracle::BallOracle;
pub use space::Space;
pub use traits::{Metric, MetricExt};

/// Number of distance scales `ceil(log2(aspect_ratio))`, at least 1.
///
/// The paper indexes rings by `j in [log Delta]`; this helper fixes the
/// count of levels consistently across crates. The result is clamped to at
/// least 1 so degenerate (uniform) metrics still get one scale.
#[must_use]
pub fn distance_levels(aspect_ratio: f64) -> usize {
    debug_assert!(aspect_ratio >= 1.0);
    (aspect_ratio.log2().ceil() as usize).max(1)
}

/// Number of cardinality scales `ceil(log2 n)`, at least 1.
///
/// The paper indexes cardinality rings by `i in [log n]`.
#[must_use]
pub fn cardinality_levels(n: usize) -> usize {
    debug_assert!(n >= 1);
    let mut levels = 0usize;
    while (1usize << levels) < n {
        levels += 1;
    }
    levels.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_levels_basics() {
        assert_eq!(distance_levels(1.0), 1);
        assert_eq!(distance_levels(2.0), 1);
        assert_eq!(distance_levels(4.0), 2);
        assert_eq!(distance_levels(1000.0), 10);
    }

    #[test]
    fn cardinality_levels_basics() {
        assert_eq!(cardinality_levels(1), 1);
        assert_eq!(cardinality_levels(2), 1);
        assert_eq!(cardinality_levels(3), 2);
        assert_eq!(cardinality_levels(4), 2);
        assert_eq!(cardinality_levels(1024), 10);
        assert_eq!(cardinality_levels(1025), 11);
    }
}
