use crate::{Metric, MetricError, Node};

/// A one-dimensional point set under `d(x, y) = |x - y|`.
///
/// One-dimensional sets are doubling (dimension at most ~1 plus rounding),
/// yet can have arbitrarily large aspect ratio — the paper's running example
/// of a doubling metric with *super-constant grid dimension* is the
/// exponential line `{1, 2, 4, ..., 2^n}` (Section 1). Use
/// [`LineMetric::exponential`] to build it.
///
/// Points are stored sorted ascending; node `i` is the `i`-th smallest point.
///
/// # Example
///
/// ```
/// use ron_metric::{LineMetric, Metric, MetricExt, Node};
///
/// let line = LineMetric::exponential(10)?;
/// assert_eq!(line.len(), 10);
/// assert_eq!(line.dist(Node::new(0), Node::new(1)), 1.0); // |2 - 1|
/// assert_eq!(line.aspect_ratio(), 511.0); // (2^9 - 1) / 1
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LineMetric {
    points: Vec<f64>,
}

impl LineMetric {
    /// Builds a line metric from arbitrary distinct finite points.
    ///
    /// The points are sorted internally, so node ids follow the order on the
    /// line regardless of input order.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::InvalidDistance`] for non-finite coordinates
    /// and [`MetricError::ZeroDistance`] for duplicates.
    pub fn new(mut points: Vec<f64>) -> Result<Self, MetricError> {
        for (i, &p) in points.iter().enumerate() {
            if !p.is_finite() {
                return Err(MetricError::InvalidDistance {
                    u: Node::new(i),
                    v: Node::new(i),
                    value: p,
                });
            }
        }
        points.sort_by(f64::total_cmp);
        for i in 1..points.len() {
            if points[i] == points[i - 1] {
                return Err(MetricError::ZeroDistance {
                    u: Node::new(i - 1),
                    v: Node::new(i),
                });
            }
        }
        Ok(LineMetric { points })
    }

    /// The exponential line `{2^0, 2^1, ..., 2^(n-1)}`.
    ///
    /// Aspect ratio `2^(n-1) - 1`: exponential in `n`, which is exactly the
    /// "super-polynomial aspect ratio" regime where Theorems 3.4, 4.2 and
    /// 5.2 improve on earlier bounds.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::Empty`] if `n == 0`; `n` must be at most 1023
    /// so points stay finite in `f64`.
    pub fn exponential(n: usize) -> Result<Self, MetricError> {
        if n == 0 {
            return Err(MetricError::Empty);
        }
        assert!(n <= 1023, "exponential line overflows f64 beyond 2^1023");
        Self::new((0..n).map(|i| (2.0f64).powi(i as i32)).collect())
    }

    /// The uniform line `{0, 1, ..., n-1}` (aspect ratio `n - 1`).
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::Empty`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self, MetricError> {
        if n == 0 {
            return Err(MetricError::Empty);
        }
        Self::new((0..n).map(|i| i as f64).collect())
    }

    /// Coordinate of node `u` on the line.
    #[must_use]
    pub fn point(&self, u: Node) -> f64 {
        self.points[u.index()]
    }
}

impl Metric for LineMetric {
    fn len(&self) -> usize {
        self.points.len()
    }

    fn dist(&self, u: Node, v: Node) -> f64 {
        (self.points[u.index()] - self.points[v.index()]).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricExt;

    #[test]
    fn sorts_input() {
        let line = LineMetric::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(line.point(Node::new(0)), 1.0);
        assert_eq!(line.point(Node::new(2)), 3.0);
    }

    #[test]
    fn rejects_duplicates() {
        assert!(matches!(
            LineMetric::new(vec![1.0, 1.0]),
            Err(MetricError::ZeroDistance { .. })
        ));
    }

    #[test]
    fn exponential_line_aspect_ratio() {
        let line = LineMetric::exponential(8).unwrap();
        // diameter = 2^7 - 1 = 127, min distance = 2 - 1 = 1.
        assert_eq!(line.aspect_ratio(), 127.0);
        assert!(line.validate().is_ok());
    }

    #[test]
    fn uniform_line() {
        let line = LineMetric::uniform(5).unwrap();
        assert_eq!(line.dist(Node::new(0), Node::new(4)), 4.0);
        assert_eq!(line.min_distance(), 1.0);
    }

    #[test]
    fn empty_is_error() {
        assert!(LineMetric::exponential(0).is_err());
        assert!(LineMetric::uniform(0).is_err());
    }
}
