use std::fmt;

/// Identifier of a node in a finite metric space or graph.
///
/// Nodes are dense indices `0..n`; the newtype prevents accidentally mixing
/// node ids with ring indices, level indices or enumeration indices, all of
/// which are plain `usize` in the paper's notation.
///
/// # Example
///
/// ```
/// use ron_metric::Node;
///
/// let u = Node::new(3);
/// assert_eq!(u.index(), 3);
/// assert_eq!(format!("{u}"), "v3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[repr(transparent)]
pub struct Node(u32);

impl Node {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (the library supports up to
    /// 2^32 - 1 nodes, far beyond what the `O(n^2)` index structures allow).
    #[must_use]
    pub fn new(index: usize) -> Self {
        Node(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all node ids `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = Node> + Clone {
        (0..n).map(Node::new)
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Compact 4-byte node id used inside arena-backed structures.
///
/// Everything below the [`Space`](crate::Space) API line — net-tree
/// levels, ring arenas, directory pointer tables — stores node ids as
/// `CompactId` in struct-of-arrays / CSR layouts, keeping hot structures
/// at 4 bytes per entry. Both `CompactId` and [`Node`] are
/// `repr(transparent)` over `u32`, so a compact arena slice can be viewed
/// as a `&[Node]` without copying (see [`CompactId::as_nodes`]); the
/// separate type keeps arena positions and public node ids from mixing.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[repr(transparent)]
pub struct CompactId(u32);

impl CompactId {
    /// Creates a compact id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    #[must_use]
    pub fn new(index: usize) -> Self {
        CompactId(u32::try_from(index).expect("compact id exceeds u32::MAX"))
    }

    /// Returns the dense index of this id.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The public [`Node`] this id denotes.
    #[must_use]
    pub const fn node(self) -> Node {
        Node(self.0)
    }

    /// Views a compact-id arena slice as public node ids, without
    /// copying.
    ///
    /// Sound because both types are `repr(transparent)` wrappers over
    /// `u32` with identical layout and no invalid bit patterns.
    #[must_use]
    pub fn as_nodes(ids: &[CompactId]) -> &[Node] {
        // SAFETY: `CompactId` and `Node` are both `#[repr(transparent)]`
        // newtypes over `u32` (checked at compile time by the layout
        // assertions below), every `u32` bit pattern is a valid value of
        // both, and the returned slice borrows `ids` — same length, same
        // provenance, no mutation. The cast is exercised under Miri by
        // `tests::compact_slice_cast_is_miri_clean` and CI's miri job.
        unsafe { &*(std::ptr::from_ref::<[CompactId]>(ids) as *const [Node]) }
    }
}

// Compile-time guarantee backing `CompactId::as_nodes`: if either
// newtype ever loses `repr(transparent)` or changes its payload, the
// size/alignment equalities below stop holding and the build fails
// here, next to the cast they license.
const _: () = {
    assert!(std::mem::size_of::<CompactId>() == std::mem::size_of::<Node>());
    assert!(std::mem::align_of::<CompactId>() == std::mem::align_of::<Node>());
    assert!(std::mem::size_of::<CompactId>() == std::mem::size_of::<u32>());
    assert!(std::mem::align_of::<CompactId>() == std::mem::align_of::<u32>());
};

impl From<Node> for CompactId {
    fn from(value: Node) -> Self {
        CompactId(value.0)
    }
}

impl From<CompactId> for Node {
    fn from(value: CompactId) -> Self {
        Node(value.0)
    }
}

impl From<u32> for CompactId {
    fn from(value: u32) -> Self {
        CompactId(value)
    }
}

impl From<CompactId> for u32 {
    fn from(value: CompactId) -> Self {
        value.0
    }
}

impl fmt::Display for CompactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for Node {
    fn from(value: u32) -> Self {
        Node(value)
    }
}

impl From<Node> for u32 {
    fn from(value: Node) -> Self {
        value.0
    }
}

impl From<Node> for usize {
    fn from(value: Node) -> Self {
        value.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let u = Node::new(42);
        assert_eq!(u.index(), 42);
        assert_eq!(u32::from(u), 42);
        assert_eq!(usize::from(u), 42);
        assert_eq!(Node::from(42u32), u);
    }

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<usize> = Node::all(4).map(Node::index).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Node::new(0)), "v0");
        assert_eq!(format!("{:?}", Node::new(1)), "Node(1)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Node::new(1) < Node::new(2));
    }

    #[test]
    fn compact_id_round_trips_with_node() {
        let c = CompactId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c.node(), Node::new(7));
        assert_eq!(CompactId::from(Node::new(7)), c);
        assert_eq!(Node::from(c), Node::new(7));
        assert_eq!(u32::from(c), 7);
        assert_eq!(CompactId::from(7u32), c);
        assert_eq!(format!("{c}"), "c7");
    }

    /// Run under Miri by CI's miri job: the borrow must carry the
    /// original allocation's provenance (a view, not a copy) and stay
    /// in-bounds for every element including the extremes.
    #[test]
    fn compact_slice_cast_is_miri_clean() {
        let ids = vec![
            CompactId::new(0),
            CompactId::new(1),
            CompactId::new(u32::MAX as usize),
        ];
        let nodes = CompactId::as_nodes(&ids);
        assert_eq!(nodes.len(), ids.len());
        assert_eq!(nodes[2].index(), u32::MAX as usize);
        // Same allocation, same address: a borrow, not a copy.
        assert!(std::ptr::eq(
            nodes.as_ptr().cast::<u32>(),
            ids.as_ptr().cast::<u32>()
        ));
        // Every element readable through the new type.
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(v, ids[i].node());
        }
    }

    #[test]
    fn compact_slice_views_as_nodes() {
        let ids: Vec<CompactId> = (0..5).map(CompactId::new).collect();
        let nodes = CompactId::as_nodes(&ids);
        assert_eq!(nodes.len(), 5);
        for (i, &v) in nodes.iter().enumerate() {
            assert_eq!(v, Node::new(i));
        }
        assert!(CompactId::as_nodes(&[]).is_empty());
    }
}
