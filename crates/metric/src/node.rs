use std::fmt;

/// Identifier of a node in a finite metric space or graph.
///
/// Nodes are dense indices `0..n`; the newtype prevents accidentally mixing
/// node ids with ring indices, level indices or enumeration indices, all of
/// which are plain `usize` in the paper's notation.
///
/// # Example
///
/// ```
/// use ron_metric::Node;
///
/// let u = Node::new(3);
/// assert_eq!(u.index(), 3);
/// assert_eq!(format!("{u}"), "v3");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Node(u32);

impl Node {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` (the library supports up to
    /// 2^32 - 1 nodes, far beyond what the `O(n^2)` index structures allow).
    #[must_use]
    pub fn new(index: usize) -> Self {
        Node(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all node ids `0..n`.
    pub fn all(n: usize) -> impl Iterator<Item = Node> + Clone {
        (0..n).map(Node::new)
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for Node {
    fn from(value: u32) -> Self {
        Node(value)
    }
}

impl From<Node> for u32 {
    fn from(value: Node) -> Self {
        value.0
    }
}

impl From<Node> for usize {
    fn from(value: Node) -> Self {
        value.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let u = Node::new(42);
        assert_eq!(u.index(), 42);
        assert_eq!(u32::from(u), 42);
        assert_eq!(usize::from(u), 42);
        assert_eq!(Node::from(42u32), u);
    }

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<usize> = Node::all(4).map(Node::index).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Node::new(0)), "v0");
        assert_eq!(format!("{:?}", Node::new(1)), "Node(1)");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Node::new(1) < Node::new(2));
    }
}
