//! Memory-sparse ball-query backend: a hierarchy of coarse nets.
//!
//! [`NetTreeIndex`] answers the [`BallOracle`](crate::BallOracle) queries
//! by descending a ladder of greedy nets at geometrically shrinking radii
//! (cover-tree / navigating-nets style, after Lemma 1.4's net-ball
//! cardinality bound): level 0 is a net at the eccentricity of node 0
//! (a handful of members), each level halves the radius, and the last
//! level contains every node. Each member of level `k+1` is linked to a
//! level-`k` parent within the level-`k` radius, so the nodes reachable
//! below a level-`k` member all lie within `2 r_k` of it — the pruning
//! bound of every query.
//!
//! Costs on a doubling metric of aspect ratio `Delta`:
//!
//! * build: `O(n log Delta)` distance evaluations (each level is built by
//!   *marking* the open ball of every accepted member, with candidate
//!   nodes located through the already-built coarser levels — no
//!   all-pairs pass anywhere);
//! * memory: `O(n log Delta)` words — no `n^2` anything;
//! * queries: `O(|B_u(r)| + log Delta)`-ish, by descent with the `2 r_k`
//!   slack.
//!
//! The answers are **exact** and match the dense
//! [`MetricIndex`](crate::MetricIndex) bit for bit (property-tested on
//! every generator family): the hierarchy only steers the search, every
//! reported distance is a fresh `metric.dist` evaluation, and ties are
//! broken by node id exactly like the dense index. The one deliberate
//! approximation is [`diameter`](crate::BallOracle::diameter), reported
//! as the upper bound `2 * ecc(v0)` (computing the exact diameter needs
//! `Omega(n^2)` in general); every consumer only needs a covering radius.

use crate::{BallOracle, Metric, Node};

/// One net of the hierarchy.
#[derive(Clone, Debug)]
struct TreeLevel {
    /// Net radius at this level (halves per level).
    radius: f64,
    /// Net members, in the order the greedy construction accepted them.
    members: Vec<Node>,
    /// CSR offsets into `children`; empty for the last (all-nodes) level.
    child_start: Vec<u32>,
    /// Positions into the **next** level's `members`: the members assigned
    /// to each member of this level (each within this level's radius).
    children: Vec<u32>,
}

/// The sparse ball-query backend (see the module-level docs above for
/// the hierarchy and its cost model).
///
/// Owns a copy of the metric (distances are evaluated on demand instead of
/// stored), so the usual entry point is
/// [`Space::new_sparse`](crate::Space::new_sparse), which clones the
/// metric into the index.
///
/// # Example
///
/// ```
/// use ron_metric::{BallOracle, LineMetric, NetTreeIndex, Node};
///
/// let tree = NetTreeIndex::build(LineMetric::uniform(64)?);
/// let u = Node::new(0);
/// assert_eq!(tree.ball_size(u, 2.0), 3); // {0, 1, 2}
/// assert_eq!(tree.radius_for_count(u, 4), 3.0);
/// assert_eq!(tree.min_distance(), 1.0);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NetTreeIndex<M> {
    metric: M,
    n: usize,
    diameter_ub: f64,
    min_dist: f64,
    levels: Vec<TreeLevel>,
}

impl<M: Metric> NetTreeIndex<M> {
    /// Builds the hierarchy for `metric` without ever materializing a
    /// distance matrix.
    ///
    /// # Panics
    ///
    /// Panics if the metric is empty.
    #[must_use]
    pub fn build(metric: M) -> Self {
        let n = metric.len();
        assert!(n > 0, "cannot index an empty metric");
        let v0 = Node::new(0);
        let mut ecc0 = 0.0f64;
        for j in 1..n {
            ecc0 = ecc0.max(metric.dist(v0, Node::new(j)));
        }

        // Top level: greedy net at radius ecc(v0) over all nodes, brute
        // force — its cardinality is bounded by the doubling constant.
        let top_radius = ecc0;
        let mut members: Vec<Node> = Vec::new();
        for j in 0..n {
            let u = Node::new(j);
            if members.iter().all(|&m| metric.dist(m, u) >= top_radius) {
                members.push(u);
            }
        }
        // First accepted member within the radius, per node.
        let mut assign: Vec<u32> = (0..n)
            .map(|j| {
                let u = Node::new(j);
                members
                    .iter()
                    .position(|&m| metric.dist(m, u) <= top_radius)
                    .expect("greedy net covers the space") as u32
            })
            .collect();
        let mut levels = vec![TreeLevel {
            radius: top_radius,
            members,
            child_start: Vec::new(),
            children: Vec::new(),
        }];

        // Halve the radius until every node is a member.
        while levels.last().expect("nonempty").members.len() < n {
            assert!(
                levels.len() < 4096,
                "net-tree ladder failed to terminate (radius underflow?)"
            );
            let (next_members, next_assign) = build_level(&metric, n, &levels, &assign);
            link_children(&metric, &mut levels, &next_members, &assign);
            let radius = levels.last().expect("nonempty").radius / 2.0;
            assign = next_assign;
            levels.push(TreeLevel {
                radius,
                members: next_members,
                child_start: Vec::new(),
                children: Vec::new(),
            });
        }

        let mut tree = NetTreeIndex {
            metric,
            n,
            diameter_ub: 2.0 * ecc0,
            min_dist: 1.0,
            levels,
        };
        if n >= 2 {
            let nearest = crate::par::map(n, |i| {
                let u = Node::new(i);
                tree.nearest_where(u, &mut |v| v != u)
                    .expect("n >= 2 has a nearest other node")
                    .0
            });
            tree.min_dist = nearest.into_iter().fold(f64::INFINITY, f64::min);
        }
        tree
    }

    /// The metric the index answers queries about.
    #[must_use]
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Number of net levels in the hierarchy (`O(log Delta)`).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total stored member slots across all levels — the index's memory
    /// footprint in words, `O(n log Delta)` (versus the dense backend's
    /// `n^2`).
    #[must_use]
    pub fn stored_entries(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.members.len() + l.children.len())
            .sum()
    }

    /// Descends the hierarchy and emits `(d, v)` for every node of the
    /// closed ball `B_q(r)`, in **unsorted** order.
    fn descend(&self, q: Node, r: f64, emit: &mut impl FnMut(f64, Node)) {
        let last = self.levels.len() - 1;
        let top = &self.levels[0];
        let mut cands: Vec<u32> = Vec::new();
        for (pos, &m) in top.members.iter().enumerate() {
            let d = self.metric.dist(q, m);
            if last == 0 {
                if d <= r {
                    emit(d, m);
                }
            } else if d <= r + 2.0 * top.radius {
                cands.push(pos as u32);
            }
        }
        for k in 0..last {
            let level = &self.levels[k];
            let next = &self.levels[k + 1];
            let at_leaf = k + 1 == last;
            let slack = 2.0 * next.radius;
            let mut next_cands = Vec::new();
            for &pos in &cands {
                let lo = level.child_start[pos as usize] as usize;
                let hi = level.child_start[pos as usize + 1] as usize;
                for &cpos in &level.children[lo..hi] {
                    let m = next.members[cpos as usize];
                    let d = self.metric.dist(q, m);
                    if at_leaf {
                        if d <= r {
                            emit(d, m);
                        }
                    } else if d <= r + slack {
                        next_cands.push(cpos);
                    }
                }
            }
            cands = next_cands;
        }
    }

    /// The closed ball `B_q(r)` sorted by `(distance, id)` — the exact
    /// dense-index order.
    fn sorted_ball(&self, q: Node, r: f64) -> Vec<(f64, Node)> {
        let mut out = Vec::new();
        self.descend(q, r, &mut |d, v| out.push((d, v)));
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }
}

/// Builds the next (half-radius) net level by greedy marking: members of
/// the previous level seed the net (nesting), then nodes join in id order
/// unless an accepted member has already marked them as strictly within
/// the new radius. Candidate nodes near a new member are located through
/// the previous level's coverage buckets, found by descending the
/// completed levels.
fn build_level<M: Metric>(
    metric: &M,
    n: usize,
    levels: &[TreeLevel],
    assign: &[u32],
) -> (Vec<Node>, Vec<u32>) {
    let prev = levels.last().expect("at least the top level exists");
    let radius = prev.radius / 2.0;
    // Coverage buckets of the previous level: the nodes each previous
    // member is responsible for (every node, exactly once).
    let mut buckets: Vec<Vec<Node>> = vec![Vec::new(); prev.members.len()];
    for (j, &p) in assign.iter().enumerate() {
        buckets[p as usize].push(Node::new(j));
    }

    let mut members: Vec<Node> = Vec::new();
    let mut is_member = vec![false; n];
    let mut covered = vec![false; n];
    let mut next_assign: Vec<u32> = vec![u32::MAX; n];
    let reach = radius + prev.radius;
    let add = |m: Node,
               members: &mut Vec<Node>,
               is_member: &mut Vec<bool>,
               covered: &mut Vec<bool>,
               next_assign: &mut Vec<u32>| {
        let pos = members.len() as u32;
        is_member[m.index()] = true;
        members.push(m);
        for p in coarse_members_within(metric, levels, m, reach) {
            for &v in &buckets[p as usize] {
                let d = metric.dist(m, v);
                if d <= radius {
                    if d < radius {
                        covered[v.index()] = true;
                    }
                    if next_assign[v.index()] == u32::MAX {
                        next_assign[v.index()] = pos;
                    }
                }
            }
        }
    };
    // Seeds: the previous level's members are pairwise >= 2 * radius
    // apart, so they all belong to the finer net (nesting).
    for &s in &prev.members {
        add(
            s,
            &mut members,
            &mut is_member,
            &mut covered,
            &mut next_assign,
        );
    }
    for j in 0..n {
        let u = Node::new(j);
        if !is_member[j] && !covered[j] {
            add(
                u,
                &mut members,
                &mut is_member,
                &mut covered,
                &mut next_assign,
            );
        }
    }
    debug_assert!(
        next_assign.iter().all(|&p| p != u32::MAX),
        "greedy marking must cover every node"
    );
    (members, next_assign)
}

/// Positions of the finest *completed* level's members within `x` of `q`,
/// by descent over the completed levels.
fn coarse_members_within<M: Metric>(metric: &M, levels: &[TreeLevel], q: Node, x: f64) -> Vec<u32> {
    let last = levels.len() - 1;
    let top = &levels[0];
    let mut cands: Vec<u32> = Vec::new();
    let mut out: Vec<u32> = Vec::new();
    for (pos, &m) in top.members.iter().enumerate() {
        let d = metric.dist(q, m);
        if last == 0 {
            if d <= x {
                out.push(pos as u32);
            }
        } else if d <= x + 2.0 * top.radius {
            cands.push(pos as u32);
        }
    }
    for k in 0..last {
        let level = &levels[k];
        let next = &levels[k + 1];
        let at_leaf = k + 1 == last;
        let slack = 2.0 * next.radius;
        let mut next_cands = Vec::new();
        for &pos in &cands {
            let lo = level.child_start[pos as usize] as usize;
            let hi = level.child_start[pos as usize + 1] as usize;
            for &cpos in &level.children[lo..hi] {
                let d = metric.dist(q, next.members[cpos as usize]);
                if at_leaf {
                    if d <= x {
                        out.push(cpos);
                    }
                } else if d <= x + slack {
                    next_cands.push(cpos);
                }
            }
        }
        cands = next_cands;
    }
    out
}

/// Fills the previous level's child CSR: each new member is attached to
/// the previous-level member that covers it (within the previous radius).
fn link_children<M: Metric>(
    metric: &M,
    levels: &mut [TreeLevel],
    next_members: &[Node],
    assign: &[u32],
) {
    let prev = levels.last_mut().expect("at least the top level exists");
    let mut counts = vec![0u32; prev.members.len() + 1];
    for &m in next_members {
        counts[assign[m.index()] as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    let child_start = counts.clone();
    let mut cursor = counts;
    let mut children = vec![0u32; next_members.len()];
    for (pos, &m) in next_members.iter().enumerate() {
        let p = assign[m.index()] as usize;
        children[cursor[p] as usize] = pos as u32;
        cursor[p] += 1;
    }
    debug_assert!(next_members.iter().enumerate().all(|(pos, &m)| {
        let p = assign[m.index()] as usize;
        let _ = pos;
        metric.dist(prev.members[p], m) <= prev.radius * (1.0 + 1e-12)
    }));
    prev.child_start = child_start;
    prev.children = children;
}

impl<M: Metric> BallOracle for NetTreeIndex<M> {
    fn len(&self) -> usize {
        self.n
    }

    fn diameter(&self) -> f64 {
        self.diameter_ub
    }

    fn min_distance(&self) -> f64 {
        self.min_dist
    }

    fn for_each_in_ball(&self, u: Node, r: f64, visit: &mut dyn FnMut(f64, Node)) {
        let t = ron_obs::start();
        for (d, v) in self.sorted_ball(u, r) {
            visit(d, v);
        }
        ron_obs::finish("oracle.ball.sparse", t);
    }

    fn ball(&self, u: Node, r: f64) -> Vec<(f64, Node)> {
        let t = ron_obs::start();
        let out = self.sorted_ball(u, r);
        ron_obs::finish("oracle.ball.sparse", t);
        out
    }

    fn ball_size(&self, u: Node, r: f64) -> usize {
        let t = ron_obs::start();
        let mut count = 0usize;
        self.descend(u, r, &mut |_, _| count += 1);
        ron_obs::finish("oracle.ball_size.sparse", t);
        count
    }

    fn nearest_where(&self, u: Node, pred: &mut dyn FnMut(Node) -> bool) -> Option<(f64, Node)> {
        let t = ron_obs::start();
        let leaf_radius = self.levels.last().expect("nonempty").radius;
        let mut r = leaf_radius;
        let mut prev_r = -1.0f64;
        let out = loop {
            let ball = self.sorted_ball(u, r);
            let mut found = None;
            for &(d, v) in &ball {
                // Nodes at d <= prev_r were already offered to the
                // predicate in an earlier (smaller) ring.
                if d > prev_r && pred(v) {
                    found = Some((d, v));
                    break;
                }
            }
            if found.is_some() {
                break found;
            }
            if ball.len() == self.n {
                break None;
            }
            prev_r = r;
            r *= 2.0;
        };
        ron_obs::finish("oracle.nearest.sparse", t);
        out
    }

    fn radius_for_count(&self, u: Node, k: usize) -> f64 {
        assert!(
            k >= 1 && k <= self.n,
            "count {k} out of range 1..={}",
            self.n
        );
        let t = ron_obs::start();
        let mut r = self.levels.last().expect("nonempty").radius;
        let mut size = 0usize;
        loop {
            // Inlined ball_size so the inner probes do not double-count
            // as oracle calls of their own.
            self.descend(u, r, &mut |_, _| size += 1);
            if size >= k {
                break;
            }
            size = 0;
            r *= 2.0;
        }
        let out = self.sorted_ball(u, r)[k - 1].0;
        ron_obs::finish("oracle.radius.sparse", t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, LineMetric, MetricIndex};

    fn both(n: usize) -> (MetricIndex, NetTreeIndex<LineMetric>) {
        let line = LineMetric::uniform(n).unwrap();
        (MetricIndex::build(&line), NetTreeIndex::build(line))
    }

    #[test]
    fn ball_matches_dense_on_the_line() {
        let (dense, tree) = both(32);
        for i in 0..32 {
            let u = Node::new(i);
            for r in [0.0, 1.0, 2.5, 7.0, 100.0] {
                assert_eq!(
                    BallOracle::ball(&tree, u, r),
                    BallOracle::ball(&dense, u, r),
                    "ball({u}, {r})"
                );
                assert_eq!(tree.ball_size(u, r), dense.ball_size(u, r));
            }
        }
    }

    #[test]
    fn radius_for_count_matches_dense() {
        let (dense, tree) = both(17);
        for i in 0..17 {
            let u = Node::new(i);
            for k in 1..=17 {
                assert_eq!(
                    tree.radius_for_count(u, k),
                    MetricIndex::radius_for_count(&dense, u, k)
                );
            }
        }
    }

    #[test]
    fn nearest_where_matches_dense() {
        let (dense, tree) = both(24);
        for i in 0..24 {
            let u = Node::new(i);
            let t = BallOracle::nearest_where(&tree, u, &mut |v| v.index() % 5 == 3);
            let d = MetricIndex::nearest_where(&dense, u, |v| v.index() % 5 == 3);
            assert_eq!(t, d);
            assert_eq!(BallOracle::nearest_where(&tree, u, &mut |_| false), None);
        }
    }

    #[test]
    fn extremes_match_dense_conventions() {
        let (dense, tree) = both(40);
        assert_eq!(tree.min_distance(), dense.min_distance());
        assert!(BallOracle::diameter(&tree) >= MetricIndex::diameter(&dense));
        assert!(BallOracle::diameter(&tree) <= 2.0 * MetricIndex::diameter(&dense));
        assert!(!BallOracle::is_empty(&tree));
        assert_eq!(BallOracle::len(&tree), 40);
    }

    #[test]
    fn singleton_space() {
        let tree = NetTreeIndex::build(LineMetric::new(vec![5.0]).unwrap());
        assert_eq!(BallOracle::len(&tree), 1);
        assert_eq!(tree.min_distance(), 1.0);
        assert_eq!(tree.aspect_ratio(), 1.0);
        assert_eq!(tree.ball_size(Node::new(0), 0.0), 1);
        assert_eq!(tree.radius_for_count(Node::new(0), 1), 0.0);
    }

    #[test]
    fn exponential_line_deep_ladder() {
        let line = LineMetric::exponential(20).unwrap();
        let dense = MetricIndex::build(&line);
        let tree = NetTreeIndex::build(line);
        assert!(tree.depth() >= 18, "depth {} too shallow", tree.depth());
        for i in 0..20 {
            let u = Node::new(i);
            for k in 1..=20 {
                assert_eq!(
                    tree.radius_for_count(u, k),
                    MetricIndex::radius_for_count(&dense, u, k)
                );
            }
        }
        assert_eq!(tree.min_distance(), dense.min_distance());
    }

    #[test]
    fn memory_is_subquadratic_on_a_cube() {
        let cube = gen::uniform_cube(512, 2, 7);
        let tree = NetTreeIndex::build(cube);
        // The dense index stores n^2 = 262144 entries; the tree must stay
        // an order of magnitude below that.
        assert!(
            tree.stored_entries() < 512 * 512 / 10,
            "stored {} entries",
            tree.stored_entries()
        );
    }

    #[test]
    fn metric_accessor_returns_the_metric() {
        let tree = NetTreeIndex::build(LineMetric::uniform(4).unwrap());
        assert_eq!(tree.metric().len(), 4);
    }
}
