//! Memory-sparse ball-query backend: a hierarchy of coarse nets.
//!
//! [`NetTreeIndex`] answers the [`BallOracle`](crate::BallOracle) queries
//! by descending a ladder of greedy nets at geometrically shrinking radii
//! (cover-tree / navigating-nets style, after Lemma 1.4's net-ball
//! cardinality bound): level 0 is a net at the eccentricity of node 0
//! (a handful of members), each level halves the radius, and the last
//! level contains every node. Each member of level `k+1` is linked to a
//! level-`k` parent within the level-`k` radius, so the nodes reachable
//! below a level-`k` member all lie within `2 r_k` of it — the pruning
//! bound of every query.
//!
//! Costs on a doubling metric of aspect ratio `Delta`:
//!
//! * build: `O(n log Delta)` distance evaluations (each level is built by
//!   *marking* the open ball of every accepted member, with candidate
//!   nodes located through the already-built coarser levels — no
//!   all-pairs pass anywhere);
//! * memory: `O(n log Delta)` **words of 4 bytes** — members, parents and
//!   child links are all [`CompactId`]/`u32` arenas in struct-of-arrays
//!   CSR layout, accounted exactly by
//!   [`HeapBytes`](crate::HeapBytes)::`heap_bytes`;
//! * queries: `O(|B_u(r)| + log Delta)`-ish, by descent with the `2 r_k`
//!   slack. Descent reuses thread-local scratch frontiers (no per-query
//!   allocation), and the doubling searches behind
//!   [`nearest_where`](crate::BallOracle::nearest_where) and
//!   [`radius_for_count`](crate::BallOracle::radius_for_count) keep
//!   per-level heaps across rounds so each `(level, member)` distance is
//!   evaluated **at most once per query**.
//!
//! The answers are **exact** and match the dense
//! [`MetricIndex`](crate::MetricIndex) bit for bit (property-tested on
//! every generator family): the hierarchy only steers the search, every
//! reported distance is a fresh `metric.dist` evaluation, and ties are
//! broken by node id exactly like the dense index. The one deliberate
//! approximation is [`diameter_ub`](crate::BallOracle::diameter_ub),
//! reported as the upper bound `2 * ecc(v0)` (computing the exact
//! diameter needs `Omega(n^2)` in general); every consumer only needs a
//! covering radius.
//!
//! # Canonical levels
//!
//! Every level stores its members **sorted by node id**, and membership
//! of level `k` is exactly the insertion-order-free rule: a node is a
//! member iff it is a member of level `k-1` (a *seed* — nets are nested),
//! or no seed lies strictly within the radius and no smaller-id non-seed
//! member lies strictly within the radius. The batch marking construction
//! implements this rule directly, which is what lets the incremental
//! [`insert`](NetTreeIndex::insert) path reproduce batch membership
//! bit-for-bit under any insertion order.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};

use crate::mem::vec_capacity_bytes;
use crate::{BallOracle, CompactId, HeapBytes, Metric, Node};

/// One net of the hierarchy. All arrays are compact (4-byte entries) and
/// `members` is always sorted by node id (see the module docs).
#[derive(Clone, Debug)]
struct TreeLevel {
    /// Net radius at this level (halves per level).
    radius: f64,
    /// Net members, sorted by node id.
    members: Vec<CompactId>,
    /// Parent **node id** in the previous level for each member; empty at
    /// level 0. The covering invariant `d(parent, member) <= r_{k-1}`
    /// always holds.
    parent: Vec<CompactId>,
    /// CSR offsets into `children`; empty for the last (all-nodes) level.
    child_start: Vec<u32>,
    /// Positions into the **next** level's `members`: the members
    /// assigned to each member of this level (each within this level's
    /// radius), ascending within each parent's range.
    children: Vec<u32>,
}

impl TreeLevel {
    /// Position of `v` in this level's id-sorted members, if a member.
    fn position_of(&self, v: Node) -> Option<u32> {
        self.members
            .binary_search(&CompactId::from(v))
            .ok()
            .map(|p| p as u32)
    }
}

/// Min-heap entry of the expanding query frontier: a member of some level
/// at distance `d` from the query point, identified by its position in
/// that level's member array.
#[derive(Copy, Clone, PartialEq)]
struct Cand {
    d: f64,
    pos: u32,
}

impl Eq for Cand {}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap pops the smallest (distance, position)
        // first. Position order equals id order (members are id-sorted),
        // so ties break exactly like the dense index.
        other
            .d
            .total_cmp(&self.d)
            .then_with(|| other.pos.cmp(&self.pos))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

thread_local! {
    /// Reusable descent frontiers: ball queries at every level of the
    /// pipeline are hot (see the `oracle.ball.sparse` histograms), so the
    /// candidate vectors are kept per thread instead of allocated per
    /// query. Taken out (not borrowed across) the descent so re-entrant
    /// queries from inside a visitor stay sound.
    static SCRATCH: RefCell<(Vec<u32>, Vec<u32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The sparse ball-query backend (see the module-level docs above for
/// the hierarchy and its cost model).
///
/// Owns a copy of the metric (distances are evaluated on demand instead of
/// stored), so the usual entry point is
/// [`Space::new_sparse`](crate::Space::new_sparse), which clones the
/// metric into the index.
///
/// # Example
///
/// ```
/// use ron_metric::{BallOracle, LineMetric, NetTreeIndex, Node};
///
/// let tree = NetTreeIndex::build(LineMetric::uniform(64)?);
/// let u = Node::new(0);
/// assert_eq!(tree.ball_size(u, 2.0), 3); // {0, 1, 2}
/// assert_eq!(tree.radius_for_count(u, 4), 3.0);
/// assert_eq!(tree.min_distance(), 1.0);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NetTreeIndex<M> {
    metric: M,
    /// Number of nodes currently indexed (equals `metric.len()` after a
    /// batch build; grows one per [`insert`](NetTreeIndex::insert) on the
    /// incremental path).
    n: usize,
    diameter_ub: f64,
    min_dist: f64,
    /// Which nodes of the metric's universe are indexed.
    present: Vec<bool>,
    levels: Vec<TreeLevel>,
}

impl<M: Metric> NetTreeIndex<M> {
    /// Builds the hierarchy for `metric` without ever materializing a
    /// distance matrix.
    ///
    /// # Panics
    ///
    /// Panics if the metric is empty.
    #[must_use]
    pub fn build(metric: M) -> Self {
        let n = metric.len();
        assert!(n > 0, "cannot index an empty metric");
        let ecc0 = eccentricity_of_v0(&metric);

        // Top level: greedy net at radius ecc(v0) over all nodes, brute
        // force in id order — its cardinality is bounded by the doubling
        // constant, and id-order acceptance makes it id-sorted for free.
        let top_radius = ecc0;
        let mut members: Vec<CompactId> = Vec::new();
        for j in 0..n {
            let u = Node::new(j);
            if members
                .iter()
                .all(|&m| metric.dist(m.node(), u) >= top_radius)
            {
                members.push(CompactId::from(u));
            }
        }
        // First member (in canonical id order) within the radius, per node.
        let mut assign: Vec<u32> = (0..n)
            .map(|j| {
                let u = Node::new(j);
                members
                    .iter()
                    .position(|&m| metric.dist(m.node(), u) <= top_radius)
                    .expect("greedy net covers the space") as u32
            })
            .collect();
        let mut levels = vec![TreeLevel {
            radius: top_radius,
            members,
            parent: Vec::new(),
            child_start: Vec::new(),
            children: Vec::new(),
        }];

        // Halve the radius until every node is a member.
        while levels.last().expect("nonempty").members.len() < n {
            assert!(
                levels.len() < 4096,
                "net-tree ladder failed to terminate (radius underflow?)"
            );
            let (members_acc, assign_acc) = build_level(&metric, n, &levels, &assign);
            // Canonicalize: re-sort the accepted members by id and remap
            // the coverage assignment through the permutation.
            let mut perm: Vec<u32> = (0..members_acc.len() as u32).collect();
            perm.sort_unstable_by_key(|&p| members_acc[p as usize]);
            let mut inv = vec![0u32; perm.len()];
            for (newpos, &oldpos) in perm.iter().enumerate() {
                inv[oldpos as usize] = newpos as u32;
            }
            let next_members: Vec<CompactId> = perm
                .iter()
                .map(|&p| CompactId::from(members_acc[p as usize]))
                .collect();
            let next_assign: Vec<u32> = assign_acc.iter().map(|&a| inv[a as usize]).collect();

            let prev = levels.last_mut().expect("nonempty");
            // Parent of each new member: the previous-level member that
            // covers it (within the previous radius).
            let parent_pos: Vec<u32> = next_members.iter().map(|&m| assign[m.index()]).collect();
            let parent: Vec<CompactId> = parent_pos
                .iter()
                .map(|&p| prev.members[p as usize])
                .collect();
            debug_assert!(next_members.iter().zip(&parent).all(|(&m, &p)| {
                metric.dist(p.node(), m.node()) <= prev.radius * (1.0 + 1e-12)
            }));
            fill_csr(prev, &parent_pos);
            let radius = prev.radius / 2.0;
            assign = next_assign;
            levels.push(TreeLevel {
                radius,
                members: next_members,
                parent,
                child_start: Vec::new(),
                children: Vec::new(),
            });
        }

        let mut tree = NetTreeIndex {
            metric,
            n,
            diameter_ub: 2.0 * ecc0,
            min_dist: 1.0,
            present: vec![true; n],
            levels,
        };
        if n >= 2 {
            let nearest = crate::par::map(n, |i| {
                let u = Node::new(i);
                tree.nearest_where(u, &mut |v| v != u)
                    .expect("n >= 2 has a nearest other node")
                    .0
            });
            tree.min_dist = nearest.into_iter().fold(f64::INFINITY, f64::min);
        }
        tree
    }

    /// Starts an **incremental** index over `metric`'s node universe with
    /// no nodes inserted yet; grow it one node at a time with
    /// [`insert`](NetTreeIndex::insert).
    ///
    /// The ladder radii are anchored at the eccentricity of node 0 over
    /// the *full* universe (one linear pass here), so inserting every
    /// node — in **any order** — converges to exactly the canonical
    /// per-level membership the batch [`build`](NetTreeIndex::build)
    /// produces, and all oracle answers (including predicate call order)
    /// match bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the metric is empty.
    #[must_use]
    pub fn incremental(metric: M) -> Self {
        let universe = metric.len();
        assert!(universe > 0, "cannot index an empty metric");
        let ecc0 = eccentricity_of_v0(&metric);
        NetTreeIndex {
            metric,
            n: 0,
            diameter_ub: 2.0 * ecc0,
            min_dist: 1.0,
            present: vec![false; universe],
            levels: Vec::new(),
        }
    }

    /// Whether `v` has been inserted (always true after a batch build).
    #[must_use]
    pub fn contains(&self, v: Node) -> bool {
        self.present.get(v.index()).copied().unwrap_or(false)
    }

    /// Inserts `v` by threading it down the existing ladder: only the
    /// levels (and members) actually perturbed are touched, instead of
    /// rebuilding from scratch. Each level's membership is re-decided by
    /// the canonical id-order rule on an ascending-id worklist seeded
    /// from the previous level's changes, so the resulting tree answers
    /// queries identically to a batch build over the same node set.
    ///
    /// Cost per insert on a doubling metric: `O(polylog)` distance
    /// evaluations for the membership cascade, plus `O(|level|)` word
    /// work per touched level to splice the compact arrays — far below
    /// the `O(n log Delta)` distance evaluations of a full rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the metric's universe or already
    /// inserted.
    pub fn insert(&mut self, v: Node) {
        assert!(
            v.index() < self.metric.len(),
            "{v} outside the metric universe"
        );
        assert!(!self.present[v.index()], "{v} already inserted");
        if self.n == 0 {
            self.levels.push(TreeLevel {
                radius: self.diameter_ub / 2.0,
                members: vec![CompactId::from(v)],
                parent: Vec::new(),
                child_start: Vec::new(),
                children: Vec::new(),
            });
            self.present[v.index()] = true;
            self.n = 1;
            return;
        }
        // Nearest already-inserted node, before the tree mutates.
        let dmin = self
            .nearest_where(v, &mut |_| true)
            .expect("tree is nonempty")
            .0;
        self.min_dist = if self.n == 1 {
            dmin
        } else {
            self.min_dist.min(dmin)
        };

        let mut changed_prev: Vec<u32> = Vec::new();
        let mut leaf_drops: Vec<CompactId> = Vec::new();
        for k in 0..self.levels.len() {
            let (adds, drops) = self.decide_level(k, v, &changed_prev);
            changed_prev = adds
                .iter()
                .chain(drops.iter())
                .map(|&c| c.index() as u32)
                .collect();
            changed_prev.sort_unstable();
            if k + 1 == self.levels.len() {
                leaf_drops.clone_from(&drops);
            }
            self.apply_level(k, &adds, &drops);
        }
        self.present[v.index()] = true;
        self.n += 1;

        // Extend the ladder until the leaf level holds every inserted
        // node again (v and any members the insert displaced).
        let mut missing: Vec<u32> = leaf_drops.iter().map(|&c| c.index() as u32).collect();
        if self
            .levels
            .last()
            .expect("nonempty")
            .position_of(v)
            .is_none()
        {
            missing.push(v.index() as u32);
        }
        missing.sort_unstable();
        while !missing.is_empty() {
            missing = self.extend_level(&missing);
        }
    }

    /// Recomputes level `k`'s membership after the universe gained `v`
    /// and the previous level changed by `changed_prev` (node ids,
    /// sorted). Read-only: returns the members to add and drop, both
    /// ascending by id. Levels above `k` are already updated; `k` and
    /// below are stale (which is exactly what the stale-candidate scan
    /// wants).
    fn decide_level(
        &self,
        k: usize,
        v: Node,
        changed_prev: &[u32],
    ) -> (Vec<CompactId>, Vec<CompactId>) {
        let r = self.levels[k].radius;
        let mut work: BTreeSet<u32> = BTreeSet::new();
        work.insert(v.index() as u32);
        for &y in changed_prev {
            work.insert(y);
            // A changed seed can flip the membership of anything it
            // strictly covers, regardless of id order.
            self.descend(Node::new(y as usize), r, &mut |d, w| {
                if d < r {
                    work.insert(w.index() as u32);
                }
            });
        }
        let mut adds: Vec<CompactId> = Vec::new();
        let mut drops: Vec<CompactId> = Vec::new();
        while let Some(uid) = work.pop_first() {
            let u = Node::new(uid as usize);
            let uc = CompactId::from(u);
            let was = self.levels[k].position_of(u).is_some();
            let is_seed = k > 0 && self.levels[k - 1].position_of(u).is_some();
            let now = if is_seed {
                true
            } else {
                // Covered by a seed (= updated previous-level member, any
                // id), or by a smaller-id member of this level under the
                // pending adds/drops?
                let seed_cover = k > 0
                    && coarse_members_within(&self.metric, &self.levels[..k], u, r)
                        .iter()
                        .any(|&(_, d)| d < r);
                let covered = seed_cover
                    || coarse_members_within(&self.metric, &self.levels[..=k], u, r)
                        .iter()
                        .any(|&(pos, d)| {
                            let m = self.levels[k].members[pos as usize];
                            d < r && m < uc && drops.binary_search(&m).is_err()
                        })
                    || adds
                        .iter()
                        .any(|&a| a < uc && self.metric.dist(a.node(), u) < r);
                !covered
            };
            if was == now {
                continue;
            }
            if now {
                adds.push(uc);
            } else {
                drops.push(uc);
            }
            // The flip ripples only to larger ids (decisions read only
            // smaller-id members and seeds, and seed changes arrived via
            // `changed_prev`).
            self.descend(u, r, &mut |d, w| {
                if d < r && w > u {
                    work.insert(w.index() as u32);
                }
            });
        }
        (adds, drops)
    }

    /// Commits `decide_level`'s verdict: splices the id-sorted member
    /// array, reparents as needed, and rebuilds the CSR links on both
    /// sides of level `k` so descent stays valid for the next level's
    /// decision pass.
    fn apply_level(&mut self, k: usize, adds: &[CompactId], drops: &[CompactId]) {
        if adds.is_empty() && drops.is_empty() {
            return;
        }
        let old = &self.levels[k];
        let mut members: Vec<CompactId> =
            Vec::with_capacity(old.members.len() + adds.len() - drops.len());
        let mut ai = adds.iter().peekable();
        for &m in &old.members {
            if drops.binary_search(&m).is_ok() {
                continue;
            }
            while let Some(&&a) = ai.peek() {
                if a < m {
                    members.push(a);
                    ai.next();
                } else {
                    break;
                }
            }
            members.push(m);
        }
        members.extend(ai.copied());

        // Parents for the updated level-k members. Kept members keep
        // theirs (apply at k-1 already healed any whose parent dropped
        // there); new members parent to themselves if they are previous-
        // level members, else to any previous member covering them.
        let parent: Vec<CompactId> = if k == 0 {
            Vec::new()
        } else {
            let prev = &self.levels[k - 1];
            members
                .iter()
                .map(|&m| {
                    if let Some(pos) = old.position_of(m.node()) {
                        old.parent[pos as usize]
                    } else if prev.position_of(m.node()).is_some() {
                        m
                    } else {
                        let hits = coarse_members_within(
                            &self.metric,
                            &self.levels[..k],
                            m.node(),
                            prev.radius,
                        );
                        let (pos, _) = hits.first().expect("previous net covers every node");
                        prev.members[*pos as usize]
                    }
                })
                .collect()
        };
        self.levels[k].members = members;
        self.levels[k].parent = parent;
        if k > 0 {
            let parent_pos: Vec<u32> = self.levels[k]
                .parent
                .iter()
                .map(|&p| {
                    self.levels[k - 1]
                        .position_of(p.node())
                        .expect("parent is a previous-level member")
                })
                .collect();
            let (upper, _) = self.levels.split_at_mut(k);
            fill_csr(&mut upper[k - 1], &parent_pos);
        }

        // Heal the level below: members whose parent dropped from level
        // k get a surviving coverer, and the CSR is rebuilt against the
        // spliced member positions.
        if k + 1 < self.levels.len() {
            let r_k = self.levels[k].radius;
            let next_parent: Vec<CompactId> = self.levels[k + 1]
                .members
                .iter()
                .zip(&self.levels[k + 1].parent)
                .map(|(&m, &p)| {
                    if drops.binary_search(&p).is_err() {
                        p
                    } else if self.levels[k].position_of(m.node()).is_some() {
                        m
                    } else {
                        let hits =
                            coarse_members_within(&self.metric, &self.levels[..=k], m.node(), r_k);
                        let (pos, _) = hits.first().expect("updated net covers every node");
                        self.levels[k].members[*pos as usize]
                    }
                })
                .collect();
            let next_parent_pos: Vec<u32> = next_parent
                .iter()
                .map(|&p| {
                    self.levels[k]
                        .position_of(p.node())
                        .expect("parent is a level-k member")
                })
                .collect();
            self.levels[k + 1].parent = next_parent;
            let (upper, _) = self.levels.split_at_mut(k + 1);
            fill_csr(&mut upper[k], &next_parent_pos);
        }
    }

    /// Appends one half-radius level: all current leaf members seed it,
    /// and the `missing` nodes (inserted but strictly covered out of the
    /// leaf) join in id order by the canonical rule. Returns the nodes
    /// still missing (covered again), for the next round.
    fn extend_level(&mut self, missing: &[u32]) -> Vec<u32> {
        assert!(
            self.levels.len() < 4096,
            "net-tree ladder failed to terminate (radius underflow?)"
        );
        let prev_radius = self.levels.last().expect("nonempty").radius;
        let radius = prev_radius / 2.0;
        let mut joiners: Vec<CompactId> = Vec::new();
        let mut remaining: Vec<u32> = Vec::new();
        for &uid in missing {
            let u = Node::new(uid as usize);
            let seed_cover = coarse_members_within(&self.metric, &self.levels, u, radius)
                .iter()
                .any(|&(_, d)| d < radius);
            let joiner_cover = joiners
                .iter()
                .any(|&a| self.metric.dist(a.node(), u) < radius);
            if seed_cover || joiner_cover {
                remaining.push(uid);
            } else {
                joiners.push(CompactId::new(uid as usize));
            }
        }
        let prev = self.levels.last().expect("nonempty");
        let mut members: Vec<CompactId> = Vec::with_capacity(prev.members.len() + joiners.len());
        let mut ji = joiners.iter().peekable();
        for &m in &prev.members {
            while let Some(&&a) = ji.peek() {
                if a < m {
                    members.push(a);
                    ji.next();
                } else {
                    break;
                }
            }
            members.push(m);
        }
        members.extend(ji.copied());
        let parent: Vec<CompactId> = members
            .iter()
            .map(|&m| {
                if prev.position_of(m.node()).is_some() {
                    m
                } else {
                    let hits =
                        coarse_members_within(&self.metric, &self.levels, m.node(), prev_radius);
                    let (pos, _) = hits.first().expect("previous net covers every node");
                    prev.members[*pos as usize]
                }
            })
            .collect();
        let parent_pos: Vec<u32> = parent
            .iter()
            .map(|&p| {
                prev.position_of(p.node())
                    .expect("parent is a previous-level member")
            })
            .collect();
        let last = self.levels.len() - 1;
        fill_csr(&mut self.levels[last], &parent_pos);
        self.levels.push(TreeLevel {
            radius,
            members,
            parent,
            child_start: Vec::new(),
            children: Vec::new(),
        });
        remaining
    }

    /// The metric the index answers queries about.
    #[must_use]
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Number of net levels in the hierarchy (`O(log Delta)`).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total stored member slots across all levels — the index's memory
    /// footprint in (4-byte) words, `O(n log Delta)` (versus the dense
    /// backend's `n^2`). See [`HeapBytes::heap_bytes`] for the exact
    /// byte accounting.
    #[must_use]
    pub fn stored_entries(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.members.len() + l.children.len())
            .sum()
    }

    /// Descends the hierarchy and emits `(d, v)` for every node of the
    /// closed ball `B_q(r)`, in **unsorted** order. Frontier vectors are
    /// thread-local scratch: no allocation on the hot path.
    fn descend(&self, q: Node, r: f64, emit: &mut impl FnMut(f64, Node)) {
        let (mut cands, mut next_cands) = SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
        cands.clear();
        next_cands.clear();

        let last = self.levels.len() - 1;
        let top = &self.levels[0];
        for (pos, &m) in top.members.iter().enumerate() {
            let d = self.metric.dist(q, m.node());
            if last == 0 {
                if d <= r {
                    emit(d, m.node());
                }
            } else if d <= r + 2.0 * top.radius {
                cands.push(pos as u32);
            }
        }
        for k in 0..last {
            let level = &self.levels[k];
            let next = &self.levels[k + 1];
            let at_leaf = k + 1 == last;
            let slack = 2.0 * next.radius;
            next_cands.clear();
            for &pos in &cands {
                let lo = level.child_start[pos as usize] as usize;
                let hi = level.child_start[pos as usize + 1] as usize;
                for &cpos in &level.children[lo..hi] {
                    let m = next.members[cpos as usize].node();
                    let d = self.metric.dist(q, m);
                    if at_leaf {
                        if d <= r {
                            emit(d, m);
                        }
                    } else if d <= r + slack {
                        next_cands.push(cpos);
                    }
                }
            }
            std::mem::swap(&mut cands, &mut next_cands);
        }

        SCRATCH.with(|s| *s.borrow_mut() = (cands, next_cands));
    }

    /// The closed ball `B_q(r)` sorted by `(distance, id)` — the exact
    /// dense-index order.
    fn sorted_ball(&self, q: Node, r: f64) -> Vec<(f64, Node)> {
        let mut out = Vec::new();
        self.descend(q, r, &mut |d, v| out.push((d, v)));
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// Fresh per-level frontier heaps for an expanding query from `q`,
    /// seeded with the top level.
    fn new_frontier(&self, q: Node) -> Vec<BinaryHeap<Cand>> {
        let mut heaps: Vec<BinaryHeap<Cand>> =
            (0..self.levels.len()).map(|_| BinaryHeap::new()).collect();
        for (pos, &m) in self.levels[0].members.iter().enumerate() {
            heaps[0].push(Cand {
                d: self.metric.dist(q, m.node()),
                pos: pos as u32,
            });
        }
        heaps
    }

    /// Expands the frontier to radius `r`: internal-level entries within
    /// the descent threshold are popped and their children's distances
    /// evaluated (once, ever — entries beyond the threshold stay queued
    /// for a later, larger `r`), then leaf entries with `d <= r` are
    /// popped in ascending `(distance, id)` order and offered to `emit`.
    /// Returns the first leaf for which `emit` returns `true`.
    fn expand_frontier(
        &self,
        q: Node,
        heaps: &mut [BinaryHeap<Cand>],
        r: f64,
        emit: &mut impl FnMut(f64, Node) -> bool,
    ) -> Option<(f64, Node)> {
        let last = self.levels.len() - 1;
        for k in 0..last {
            let slack = 2.0 * self.levels[k].radius;
            while let Some(&Cand { d, pos }) = heaps[k].peek() {
                // Every node below this member lies within 2 r_k of it.
                if d > r + slack {
                    break;
                }
                heaps[k].pop();
                let level = &self.levels[k];
                let next = &self.levels[k + 1];
                let lo = level.child_start[pos as usize] as usize;
                let hi = level.child_start[pos as usize + 1] as usize;
                for &cpos in &level.children[lo..hi] {
                    let m = next.members[cpos as usize].node();
                    heaps[k + 1].push(Cand {
                        d: self.metric.dist(q, m),
                        pos: cpos,
                    });
                }
            }
        }
        while let Some(&Cand { d, pos }) = heaps[last].peek() {
            if d > r {
                break;
            }
            heaps[last].pop();
            let v = self.levels[last].members[pos as usize].node();
            if emit(d, v) {
                return Some((d, v));
            }
        }
        None
    }
}

/// Eccentricity of node 0 over the whole metric, by one linear pass.
fn eccentricity_of_v0<M: Metric>(metric: &M) -> f64 {
    let v0 = Node::new(0);
    let mut ecc0 = 0.0f64;
    for j in 1..metric.len() {
        ecc0 = ecc0.max(metric.dist(v0, Node::new(j)));
    }
    ecc0
}

/// Builds the next (half-radius) net level by greedy marking: members of
/// the previous level seed the net (nesting), then nodes join in id order
/// unless an accepted member has already marked them as strictly within
/// the new radius. Candidate nodes near a new member are located through
/// the previous level's coverage buckets, found by descending the
/// completed levels. The seed phase — the bulk of the distance
/// evaluations — runs in parallel; the merge is sequential in seed order,
/// so the result is bit-identical to a sequential pass.
///
/// Returns the accepted members (seeds first, then id-order joiners) and
/// each node's first-covering member position, both in acceptance order;
/// the caller canonicalizes to id order.
fn build_level<M: Metric>(
    metric: &M,
    n: usize,
    levels: &[TreeLevel],
    assign: &[u32],
) -> (Vec<Node>, Vec<u32>) {
    let prev = levels.last().expect("at least the top level exists");
    let radius = prev.radius / 2.0;
    // Coverage buckets of the previous level: the nodes each previous
    // member is responsible for (every node, exactly once).
    let mut buckets: Vec<Vec<Node>> = vec![Vec::new(); prev.members.len()];
    for (j, &p) in assign.iter().enumerate() {
        buckets[p as usize].push(Node::new(j));
    }

    let mut members: Vec<Node> = Vec::new();
    let mut is_member = vec![false; n];
    let mut covered = vec![false; n];
    let mut next_assign: Vec<u32> = vec![u32::MAX; n];
    let reach = radius + prev.radius;

    // Seed phase, parallel: each previous member's hits (candidate nodes
    // within the new radius) are gathered independently...
    let seed_hits: Vec<Vec<(u32, f64)>> = crate::par::map(prev.members.len(), |i| {
        let m = prev.members[i].node();
        let mut hits = Vec::new();
        for (p, _) in coarse_members_within(metric, levels, m, reach) {
            for &v in &buckets[p as usize] {
                let d = metric.dist(m, v);
                if d <= radius {
                    hits.push((v.index() as u32, d));
                }
            }
        }
        hits
    });
    // ...and merged sequentially in seed order, reproducing the
    // sequential marking exactly.
    for (i, hits) in seed_hits.iter().enumerate() {
        let s = prev.members[i].node();
        is_member[s.index()] = true;
        members.push(s);
        for &(v, d) in hits {
            if d < radius {
                covered[v as usize] = true;
            }
            if next_assign[v as usize] == u32::MAX {
                next_assign[v as usize] = i as u32;
            }
        }
    }

    // Joiner phase, sequential by construction (each acceptance depends
    // on the marks of all earlier ones).
    for j in 0..n {
        let u = Node::new(j);
        if !is_member[j] && !covered[j] {
            let pos = members.len() as u32;
            is_member[j] = true;
            members.push(u);
            for (p, _) in coarse_members_within(metric, levels, u, reach) {
                for &v in &buckets[p as usize] {
                    let d = metric.dist(u, v);
                    if d <= radius {
                        if d < radius {
                            covered[v.index()] = true;
                        }
                        if next_assign[v.index()] == u32::MAX {
                            next_assign[v.index()] = pos;
                        }
                    }
                }
            }
        }
    }
    debug_assert!(
        next_assign.iter().all(|&p| p != u32::MAX),
        "greedy marking must cover every node"
    );
    (members, next_assign)
}

/// `(position, distance)` of the finest *completed* level's members
/// within `x` of `q`, by descent over the completed levels.
fn coarse_members_within<M: Metric>(
    metric: &M,
    levels: &[TreeLevel],
    q: Node,
    x: f64,
) -> Vec<(u32, f64)> {
    let last = levels.len() - 1;
    let top = &levels[0];
    let mut cands: Vec<u32> = Vec::new();
    let mut out: Vec<(u32, f64)> = Vec::new();
    for (pos, &m) in top.members.iter().enumerate() {
        let d = metric.dist(q, m.node());
        if last == 0 {
            if d <= x {
                out.push((pos as u32, d));
            }
        } else if d <= x + 2.0 * top.radius {
            cands.push(pos as u32);
        }
    }
    for k in 0..last {
        let level = &levels[k];
        let next = &levels[k + 1];
        let at_leaf = k + 1 == last;
        let slack = 2.0 * next.radius;
        let mut next_cands = Vec::new();
        for &pos in &cands {
            let lo = level.child_start[pos as usize] as usize;
            let hi = level.child_start[pos as usize + 1] as usize;
            for &cpos in &level.children[lo..hi] {
                let d = metric.dist(q, next.members[cpos as usize].node());
                if at_leaf {
                    if d <= x {
                        out.push((cpos, d));
                    }
                } else if d <= x + slack {
                    next_cands.push(cpos);
                }
            }
        }
        cands = next_cands;
    }
    out
}

/// Rebuilds `prev`'s child CSR from `parent_pos` (the position in
/// `prev.members` of each next-level member's parent, indexed by
/// next-level position). Counting sort keeps each parent's child range
/// ascending by position, hence by node id.
fn fill_csr(prev: &mut TreeLevel, parent_pos: &[u32]) {
    let mut counts = vec![0u32; prev.members.len() + 1];
    for &p in parent_pos {
        counts[p as usize + 1] += 1;
    }
    for i in 1..counts.len() {
        counts[i] += counts[i - 1];
    }
    prev.child_start = counts.clone();
    let mut cursor = counts;
    let mut children = vec![0u32; parent_pos.len()];
    for (newpos, &p) in parent_pos.iter().enumerate() {
        children[cursor[p as usize] as usize] = newpos as u32;
        cursor[p as usize] += 1;
    }
    prev.children = children;
}

impl<M: Metric> HeapBytes for NetTreeIndex<M> {
    fn heap_bytes(&self) -> usize {
        vec_capacity_bytes(&self.levels)
            + vec_capacity_bytes(&self.present)
            + self
                .levels
                .iter()
                .map(|l| {
                    vec_capacity_bytes(&l.members)
                        + vec_capacity_bytes(&l.parent)
                        + vec_capacity_bytes(&l.child_start)
                        + vec_capacity_bytes(&l.children)
                })
                .sum::<usize>()
    }
}

impl<M: Metric> BallOracle for NetTreeIndex<M> {
    fn len(&self) -> usize {
        self.n
    }

    fn diameter_ub(&self) -> f64 {
        self.diameter_ub
    }

    fn min_distance(&self) -> f64 {
        self.min_dist
    }

    fn for_each_in_ball(&self, u: Node, r: f64, visit: &mut dyn FnMut(f64, Node)) {
        let t = ron_obs::start();
        for (d, v) in self.sorted_ball(u, r) {
            visit(d, v);
        }
        ron_obs::finish("oracle.ball.sparse", t);
    }

    fn ball(&self, u: Node, r: f64) -> Vec<(f64, Node)> {
        let t = ron_obs::start();
        let out = self.sorted_ball(u, r);
        ron_obs::finish("oracle.ball.sparse", t);
        out
    }

    fn ball_size(&self, u: Node, r: f64) -> usize {
        let t = ron_obs::start();
        let mut count = 0usize;
        self.descend(u, r, &mut |_, _| count += 1);
        ron_obs::finish("oracle.ball_size.sparse", t);
        count
    }

    fn nearest_where(&self, u: Node, pred: &mut dyn FnMut(Node) -> bool) -> Option<(f64, Node)> {
        let t = ron_obs::start();
        let mut heaps = self.new_frontier(u);
        let mut r = self.levels.last().expect("nonempty").radius;
        let mut offered = 0usize;
        let out = loop {
            let hit = self.expand_frontier(u, &mut heaps, r, &mut |_, v| {
                offered += 1;
                pred(v)
            });
            if hit.is_some() {
                break hit;
            }
            if offered == self.n {
                break None;
            }
            r *= 2.0;
        };
        ron_obs::finish("oracle.nearest.sparse", t);
        out
    }

    fn radius_for_count(&self, u: Node, k: usize) -> f64 {
        assert!(
            k >= 1 && k <= self.n,
            "count {k} out of range 1..={}",
            self.n
        );
        let t = ron_obs::start();
        let mut heaps = self.new_frontier(u);
        let mut r = self.levels.last().expect("nonempty").radius;
        let mut kth = 0.0f64;
        let mut emitted = 0usize;
        loop {
            // Leaf pops arrive in globally ascending (distance, id)
            // order across rounds, so the k-th pop is the k-th smallest
            // distance — exactly the dense answer.
            let done = self.expand_frontier(u, &mut heaps, r, &mut |d, _| {
                emitted += 1;
                kth = d;
                emitted >= k
            });
            if done.is_some() {
                break;
            }
            r *= 2.0;
        }
        ron_obs::finish("oracle.radius.sparse", t);
        kth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, LineMetric, MetricIndex};

    fn both(n: usize) -> (MetricIndex, NetTreeIndex<LineMetric>) {
        let line = LineMetric::uniform(n).unwrap();
        (MetricIndex::build(&line), NetTreeIndex::build(line))
    }

    #[test]
    fn ball_matches_dense_on_the_line() {
        let (dense, tree) = both(32);
        for i in 0..32 {
            let u = Node::new(i);
            for r in [0.0, 1.0, 2.5, 7.0, 100.0] {
                assert_eq!(
                    BallOracle::ball(&tree, u, r),
                    BallOracle::ball(&dense, u, r),
                    "ball({u}, {r})"
                );
                assert_eq!(tree.ball_size(u, r), dense.ball_size(u, r));
            }
        }
    }

    #[test]
    fn radius_for_count_matches_dense() {
        let (dense, tree) = both(17);
        for i in 0..17 {
            let u = Node::new(i);
            for k in 1..=17 {
                assert_eq!(
                    tree.radius_for_count(u, k),
                    MetricIndex::radius_for_count(&dense, u, k)
                );
            }
        }
    }

    #[test]
    fn nearest_where_matches_dense() {
        let (dense, tree) = both(24);
        for i in 0..24 {
            let u = Node::new(i);
            let t = BallOracle::nearest_where(&tree, u, &mut |v| v.index() % 5 == 3);
            let d = MetricIndex::nearest_where(&dense, u, |v| v.index() % 5 == 3);
            assert_eq!(t, d);
            assert_eq!(BallOracle::nearest_where(&tree, u, &mut |_| false), None);
        }
    }

    #[test]
    fn nearest_where_offers_each_node_once_in_dense_order() {
        let cube = gen::uniform_cube(48, 2, 11);
        let dense = MetricIndex::build(&cube);
        let tree = NetTreeIndex::build(cube);
        for i in 0..48 {
            let u = Node::new(i);
            let mut dense_order = Vec::new();
            let _ = MetricIndex::nearest_where(&dense, u, |v| {
                dense_order.push(v);
                false
            });
            let mut tree_order = Vec::new();
            let _ = BallOracle::nearest_where(&tree, u, &mut |v| {
                tree_order.push(v);
                false
            });
            assert_eq!(tree_order, dense_order, "predicate call order from {u}");
        }
    }

    #[test]
    fn extremes_match_dense_conventions() {
        let (dense, tree) = both(40);
        assert_eq!(tree.min_distance(), dense.min_distance());
        assert!(BallOracle::diameter_ub(&tree) >= MetricIndex::diameter(&dense));
        assert!(BallOracle::diameter_ub(&tree) <= 2.0 * MetricIndex::diameter(&dense));
        assert!(!BallOracle::is_empty(&tree));
        assert_eq!(BallOracle::len(&tree), 40);
    }

    #[test]
    fn singleton_space() {
        let tree = NetTreeIndex::build(LineMetric::new(vec![5.0]).unwrap());
        assert_eq!(BallOracle::len(&tree), 1);
        assert_eq!(tree.min_distance(), 1.0);
        assert_eq!(tree.aspect_ratio(), 1.0);
        assert_eq!(tree.ball_size(Node::new(0), 0.0), 1);
        assert_eq!(tree.radius_for_count(Node::new(0), 1), 0.0);
    }

    #[test]
    fn exponential_line_deep_ladder() {
        let line = LineMetric::exponential(20).unwrap();
        let dense = MetricIndex::build(&line);
        let tree = NetTreeIndex::build(line);
        assert!(tree.depth() >= 18, "depth {} too shallow", tree.depth());
        for i in 0..20 {
            let u = Node::new(i);
            for k in 1..=20 {
                assert_eq!(
                    tree.radius_for_count(u, k),
                    MetricIndex::radius_for_count(&dense, u, k)
                );
            }
        }
        assert_eq!(tree.min_distance(), dense.min_distance());
    }

    #[test]
    fn memory_is_subquadratic_on_a_cube() {
        let cube = gen::uniform_cube(512, 2, 7);
        let tree = NetTreeIndex::build(cube);
        // The dense index stores n^2 = 262144 entries; the tree must stay
        // an order of magnitude below that.
        assert!(
            tree.stored_entries() < 512 * 512 / 10,
            "stored {} entries",
            tree.stored_entries()
        );
        // And heap_bytes agrees with the 4-byte-per-slot layout, within
        // Vec over-allocation and the parent arrays.
        assert!(tree.heap_bytes() < 512 * 512);
    }

    #[test]
    fn levels_are_canonical() {
        let cube = gen::uniform_cube(256, 3, 13);
        let tree = NetTreeIndex::build(cube);
        for (k, level) in tree.levels.iter().enumerate() {
            assert!(
                level.members.windows(2).all(|w| w[0] < w[1]),
                "level {k} members not id-sorted"
            );
            if k > 0 {
                assert_eq!(level.parent.len(), level.members.len());
                let prev = &tree.levels[k - 1];
                for (&m, &p) in level.members.iter().zip(&level.parent) {
                    assert!(prev.members.binary_search(&p).is_ok());
                    assert!(
                        tree.metric.dist(p.node(), m.node()) <= prev.radius * (1.0 + 1e-12),
                        "covering invariant violated at level {k}"
                    );
                }
            }
            if k + 1 < tree.levels.len() {
                let next = &tree.levels[k + 1];
                assert_eq!(level.child_start.len(), level.members.len() + 1);
                assert_eq!(level.children.len(), next.members.len());
                // Each child range is ascending; each next-level member
                // appears exactly once.
                let mut seen = vec![false; next.members.len()];
                for (pos, _) in level.members.iter().enumerate() {
                    let lo = level.child_start[pos] as usize;
                    let hi = level.child_start[pos + 1] as usize;
                    assert!(level.children[lo..hi].windows(2).all(|w| w[0] < w[1]));
                    for &c in &level.children[lo..hi] {
                        assert!(!seen[c as usize]);
                        seen[c as usize] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn metric_accessor_returns_the_metric() {
        let tree = NetTreeIndex::build(LineMetric::uniform(4).unwrap());
        assert_eq!(tree.metric().len(), 4);
    }

    /// Deterministic permutation of `0..n` (multiplicative LCG walk).
    fn permutation(n: usize, seed: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        order
    }

    fn assert_answers_match<M: Metric>(
        inc: &NetTreeIndex<M>,
        batch: &NetTreeIndex<M>,
        n: usize,
        label: &str,
    ) {
        assert_eq!(
            inc.min_distance(),
            batch.min_distance(),
            "{label}: min_dist"
        );
        assert_eq!(
            BallOracle::diameter_ub(inc),
            BallOracle::diameter_ub(batch),
            "{label}: diameter_ub"
        );
        for i in 0..n {
            let u = Node::new(i);
            for r in [0.0, batch.min_distance(), batch.diameter_ub / 3.0] {
                assert_eq!(
                    BallOracle::ball(inc, u, r),
                    BallOracle::ball(batch, u, r),
                    "{label}: ball({u}, {r})"
                );
            }
            for k in [1, n / 2 + 1, n] {
                assert_eq!(
                    inc.radius_for_count(u, k),
                    batch.radius_for_count(u, k),
                    "{label}: radius_for_count({u}, {k})"
                );
            }
            // Predicate call order, the strictest part of the contract.
            let mut inc_order = Vec::new();
            let _ = BallOracle::nearest_where(inc, u, &mut |v| {
                inc_order.push(v);
                false
            });
            let mut batch_order = Vec::new();
            let _ = BallOracle::nearest_where(batch, u, &mut |v| {
                batch_order.push(v);
                false
            });
            assert_eq!(inc_order, batch_order, "{label}: call order from {u}");
        }
    }

    #[test]
    fn incremental_matches_batch_on_the_line() {
        let n = 24;
        for seed in 0..3u64 {
            let order = permutation(n, seed);
            let mut inc = NetTreeIndex::incremental(LineMetric::uniform(n).unwrap());
            for &j in &order {
                inc.insert(Node::new(j));
            }
            let batch = NetTreeIndex::build(LineMetric::uniform(n).unwrap());
            assert_answers_match(&inc, &batch, n, &format!("line seed {seed}"));
        }
    }

    #[test]
    fn incremental_matches_batch_on_a_cube() {
        let n = 64;
        for seed in 0..2u64 {
            let order = permutation(n, 100 + seed);
            let cube = gen::uniform_cube(n, 2, 9);
            let mut inc = NetTreeIndex::incremental(cube.clone());
            for &j in &order {
                inc.insert(Node::new(j));
                assert!(inc.contains(Node::new(j)));
            }
            let batch = NetTreeIndex::build(cube);
            assert_answers_match(&inc, &batch, n, &format!("cube seed {seed}"));
        }
    }

    #[test]
    fn incremental_matches_batch_on_the_exponential_line() {
        let n = 14;
        let order = permutation(n, 7);
        let mut inc = NetTreeIndex::incremental(LineMetric::exponential(n).unwrap());
        for &j in &order {
            inc.insert(Node::new(j));
        }
        let batch = NetTreeIndex::build(LineMetric::exponential(n).unwrap());
        assert_answers_match(&inc, &batch, n, "exponential line");
    }

    #[test]
    fn incremental_membership_matches_batch_per_level() {
        // Stronger than answer equality: the canonical id-order rule
        // makes per-level membership insertion-order independent, so the
        // shared radii of the two ladders hold identical member sets.
        let n = 48;
        let cube = gen::uniform_cube(n, 3, 17);
        let order = permutation(n, 5);
        let mut inc = NetTreeIndex::incremental(cube.clone());
        for &j in &order {
            inc.insert(Node::new(j));
        }
        let batch = NetTreeIndex::build(cube);
        assert!(inc.depth() >= batch.depth());
        for (k, b) in batch.levels.iter().enumerate() {
            assert_eq!(inc.levels[k].radius, b.radius, "radius at level {k}");
            assert_eq!(inc.levels[k].members, b.members, "members at level {k}");
        }
        // Any extra incremental levels hold every node (answers are
        // unaffected; batch just stops at the first complete level).
        for extra in &inc.levels[batch.depth()..] {
            assert_eq!(extra.members.len(), n);
        }
    }

    #[test]
    fn incremental_mid_build_answers_are_exact_on_the_prefix() {
        let n = 40;
        let order = permutation(n, 11);
        let cube = gen::uniform_cube(n, 2, 23);
        let mut inc = NetTreeIndex::incremental(cube.clone());
        for (step, &j) in order.iter().enumerate() {
            inc.insert(Node::new(j));
            if step % 7 != 3 {
                continue;
            }
            // Against a brute-force scan of the inserted prefix.
            let members: Vec<Node> = order[..=step].iter().map(|&i| Node::new(i)).collect();
            let q = Node::new(j);
            let r = inc.diameter_ub / 4.0;
            let mut expect: Vec<(f64, Node)> = members
                .iter()
                .map(|&w| (cube.dist(q, w), w))
                .filter(|&(d, _)| d <= r)
                .collect();
            expect.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            assert_eq!(BallOracle::ball(&inc, q, r), expect, "step {step}");
            assert_eq!(BallOracle::len(&inc), step + 1);
        }
    }

    #[test]
    #[should_panic(expected = "already inserted")]
    fn insert_rejects_duplicates() {
        let mut inc = NetTreeIndex::incremental(LineMetric::uniform(4).unwrap());
        inc.insert(Node::new(2));
        inc.insert(Node::new(2));
    }
}
