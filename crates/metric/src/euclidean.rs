use crate::{Metric, MetricError, Node};

/// A point set in `R^d` under the Euclidean (`l2`) distance.
///
/// Constant-dimensional Euclidean point sets are the motivating special case
/// of doubling metrics (doubling dimension `O(d)`, Assouad 1983). The
/// generators in [`gen`](crate::gen) produce these for the "polynomial
/// aspect ratio" experiment family.
///
/// # Example
///
/// ```
/// use ron_metric::{EuclideanMetric, Metric, Node};
///
/// let m = EuclideanMetric::new(vec![vec![0.0, 0.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.dist(Node::new(0), Node::new(1)), 5.0);
/// assert_eq!(m.dim(), 2);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct EuclideanMetric {
    dim: usize,
    // Flattened row-major coordinates, n * dim entries.
    coords: Vec<f64>,
}

impl EuclideanMetric {
    /// Builds a metric from a list of points, all of the same dimension.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::ShapeMismatch`] if point dimensions differ,
    /// [`MetricError::InvalidDistance`] if a coordinate is not finite, and
    /// [`MetricError::ZeroDistance`] if two points coincide.
    pub fn new(points: Vec<Vec<f64>>) -> Result<Self, MetricError> {
        let dim = points.first().map_or(0, Vec::len);
        let mut coords = Vec::with_capacity(points.len() * dim);
        for (i, p) in points.iter().enumerate() {
            if p.len() != dim {
                return Err(MetricError::ShapeMismatch {
                    expected: dim,
                    actual: p.len(),
                });
            }
            for &c in p {
                if !c.is_finite() {
                    return Err(MetricError::InvalidDistance {
                        u: Node::new(i),
                        v: Node::new(i),
                        value: c,
                    });
                }
            }
            coords.extend_from_slice(p);
        }
        let m = EuclideanMetric { dim, coords };
        // Reject coincident points: the library requires a true metric.
        let n = m.len();
        for i in 0..n {
            for j in (i + 1)..n {
                if m.dist(Node::new(i), Node::new(j)) == 0.0 {
                    return Err(MetricError::ZeroDistance {
                        u: Node::new(i),
                        v: Node::new(j),
                    });
                }
            }
        }
        Ok(m)
    }

    /// Dimension of the ambient space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Coordinates of node `u`.
    #[must_use]
    pub fn point(&self, u: Node) -> &[f64] {
        let i = u.index();
        &self.coords[i * self.dim..(i + 1) * self.dim]
    }
}

impl Metric for EuclideanMetric {
    fn len(&self) -> usize {
        self.coords.len().checked_div(self.dim).unwrap_or(0)
    }

    fn dist(&self, u: Node, v: Node) -> f64 {
        let (a, b) = (self.point(u), self.point(v));
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricExt;

    #[test]
    fn pythagoras() {
        let m = EuclideanMetric::new(vec![vec![0.0, 0.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.dist(Node::new(0), Node::new(1)), 5.0);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let err = EuclideanMetric::new(vec![vec![0.0], vec![0.0, 1.0]]);
        assert!(matches!(err, Err(MetricError::ShapeMismatch { .. })));
    }

    #[test]
    fn rejects_duplicate_points() {
        let err = EuclideanMetric::new(vec![vec![1.0, 2.0], vec![1.0, 2.0]]);
        assert!(matches!(err, Err(MetricError::ZeroDistance { .. })));
    }

    #[test]
    fn rejects_nan_coordinates() {
        let err = EuclideanMetric::new(vec![vec![f64::NAN]]);
        assert!(matches!(err, Err(MetricError::InvalidDistance { .. })));
    }

    #[test]
    fn satisfies_metric_axioms() {
        let m = EuclideanMetric::new(vec![
            vec![0.0, 0.0],
            vec![1.0, 0.5],
            vec![0.25, 2.0],
            vec![3.0, 3.0],
        ])
        .unwrap();
        assert!(m.validate().is_ok());
    }

    #[test]
    fn point_accessor() {
        let m = EuclideanMetric::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.point(Node::new(1)), &[3.0, 4.0]);
        assert_eq!(m.dim(), 2);
    }
}
