//! Scoped-thread executor for the construction pipeline.
//!
//! Every embarrassingly-parallel build loop in the workspace (index rows,
//! ring construction, label construction, batched publishes) funnels
//! through [`map`]: the index range is split into contiguous chunks, one
//! `std::thread::scope` worker per chunk, and the per-chunk outputs are
//! concatenated **in index order** — so the result is bit-identical to the
//! sequential loop regardless of the thread count (property tests across
//! the workspace pin this).
//!
//! The worker count comes from [`num_threads`]: the `RON_THREADS`
//! environment variable when set (clamped to `1..=1024`), otherwise
//! [`std::thread::available_parallelism`]. Tests and benchmarks force an
//! explicit count with [`with_threads`], which overrides both for the
//! duration of a closure on the current thread.
//!
//! No external dependencies: plain `std::thread::scope`, per the vendored
//! shim discipline of this workspace. Re-exported as `ron_core::par` (the
//! construction crates sit above `ron-core`, but the executor lives here so
//! `ron-metric` itself can parallelize its index builds without a
//! dependency cycle).

use std::cell::Cell;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count [`map`] will use on this thread: the innermost
/// [`with_threads`] override, else `RON_THREADS`, else the machine's
/// available parallelism (at least 1).
#[must_use]
pub fn num_threads() -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var("RON_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            return n.clamp(1, 1024);
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `body` with [`num_threads`] pinned to `threads` on the current
/// thread (nested overrides restore the previous value on exit).
///
/// This is how tests compare single-threaded and multi-threaded builds for
/// bit-identical output, and how benchmarks measure parallel speedup
/// without touching the process environment.
pub fn with_threads<R>(threads: usize, body: impl FnOnce() -> R) -> R {
    let prev = OVERRIDE.with(|o| o.replace(Some(threads.max(1))));
    let result = body();
    OVERRIDE.with(|o| o.set(prev));
    result
}

/// Computes `f(0), f(1), ..., f(n - 1)` across [`num_threads`] scoped
/// workers and returns the results in index order.
///
/// Deterministic by construction: each worker owns a contiguous index
/// chunk and the chunks are concatenated in order, so the output is the
/// same `Vec` the sequential loop `(0..n).map(f).collect()` produces.
pub fn map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    map_with(num_threads(), n, f)
}

/// [`map`] with an explicit worker count.
pub fn map_with<T: Send>(threads: usize, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                scope.spawn(move || {
                    let out = (lo..hi).map(f).collect::<Vec<T>>();
                    // Merge this worker's pending observability records
                    // before the scope can see the thread as finished;
                    // the TLS-drop flush alone races the joiner's drain.
                    ron_obs::flush();
                    out
                })
            })
            .collect();
        let mut out = Vec::with_capacity(n);
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_sequential_for_any_thread_count() {
        let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(map_with(threads, 97, |i| i * i), expected);
        }
    }

    #[test]
    fn map_handles_empty_and_singleton() {
        assert_eq!(map_with(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_with(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outside = num_threads();
        let inside = with_threads(3, || {
            let three = num_threads();
            let nested = with_threads(2, num_threads);
            (three, nested, num_threads())
        });
        assert_eq!(inside, (3, 2, 3));
        assert_eq!(num_threads(), outside);
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
        assert_eq!(with_threads(0, num_threads), 1);
    }
}
