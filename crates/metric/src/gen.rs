//! Random metric generators used across tests, examples and benchmarks.
//!
//! Each generator is deterministic in its seed, so every experiment in
//! EXPERIMENTS.md is reproducible. The families cover the regimes the paper
//! distinguishes:
//!
//! * [`uniform_cube`] — points in `[0,1]^d`: low doubling dimension,
//!   polynomial aspect ratio (the "nice" regime);
//! * [`clustered`] — hierarchical clusters, the shape of Internet latency
//!   matrices that motivated triangulation [33, 50, 57];
//! * [`perturbed_grid`] — a jittered lattice, UL-constrained growth;
//! * [`LineMetric::exponential`](crate::LineMetric::exponential) — the
//!   super-polynomial aspect-ratio regime (re-exported here as
//!   [`exponential_line`]).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{EuclideanMetric, LineMetric, MetricError};

/// `n` points uniform in the unit cube `[0,1]^dim`.
///
/// # Panics
///
/// Panics if `n == 0` or `dim == 0`, or if (astronomically unlikely) the
/// generator fails to produce distinct points after several retries.
#[must_use]
pub fn uniform_cube(n: usize, dim: usize, seed: u64) -> EuclideanMetric {
    assert!(n > 0 && dim > 0, "need n > 0 points of dim > 0");
    retrying(seed, |rng| {
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.random::<f64>()).collect())
            .collect();
        EuclideanMetric::new(points)
    })
}

/// `n` points grouped into `clusters` clusters in `[0,1]^dim`.
///
/// Cluster centers are uniform in the cube; each point is uniform in a box
/// of half-width `spread` around its (round-robin assigned) center. With
/// `spread << 1/clusters^(1/dim)` this produces the two-scale structure of
/// Internet latency metrics: small intra-cluster distances, large
/// inter-cluster distances.
///
/// # Panics
///
/// Panics if `n == 0`, `dim == 0`, `clusters == 0`, or `spread <= 0`.
#[must_use]
pub fn clustered(n: usize, dim: usize, clusters: usize, spread: f64, seed: u64) -> EuclideanMetric {
    assert!(
        n > 0 && dim > 0 && clusters > 0,
        "need nonempty configuration"
    );
    assert!(spread > 0.0, "spread must be positive");
    retrying(seed, |rng| {
        let centers: Vec<Vec<f64>> = (0..clusters)
            .map(|_| (0..dim).map(|_| rng.random::<f64>()).collect())
            .collect();
        let points: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let c = &centers[i % clusters];
                c.iter()
                    .map(|&x| x + rng.random_range(-spread..spread))
                    .collect()
            })
            .collect();
        EuclideanMetric::new(points)
    })
}

/// A `side^dim` lattice with every coordinate jittered by up to `jitter`.
///
/// With `jitter < 0.5` the points remain distinct and the metric remains
/// UL-constrained (ball growth bounded above and below), the hypothesis of
/// Theorem 5.4.
///
/// # Panics
///
/// Panics if `side == 0`, `dim == 0`, or `jitter` is not in `[0, 0.5)`.
#[must_use]
pub fn perturbed_grid(side: usize, dim: usize, jitter: f64, seed: u64) -> EuclideanMetric {
    assert!(side > 0 && dim > 0, "need a nonempty grid");
    assert!((0.0..0.5).contains(&jitter), "jitter must be in [0, 0.5)");
    let n = side.pow(dim as u32);
    retrying(seed, |rng| {
        let points: Vec<Vec<f64>> = (0..n)
            .map(|mut i| {
                let mut p = vec![0.0f64; dim];
                for c in p.iter_mut().rev() {
                    *c = (i % side) as f64;
                    i /= side;
                }
                for c in p.iter_mut() {
                    if jitter > 0.0 {
                        *c += rng.random_range(-jitter..jitter);
                    }
                }
                p
            })
            .collect();
        EuclideanMetric::new(points)
    })
}

/// The exponential line `{1, 2, 4, ..., 2^(n-1)}`.
///
/// Convenience re-export of [`LineMetric::exponential`]; this is the
/// paper's canonical doubling metric with super-polynomial aspect ratio.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 1023`.
#[must_use]
pub fn exponential_line(n: usize) -> LineMetric {
    LineMetric::exponential(n).expect("n must be in 1..=1023")
}

/// Runs `make` with derived seeds until it produces a valid metric.
///
/// Duplicate points have probability ~0 under continuous sampling but the
/// retry keeps the generators total without panicking on cosmic bad luck.
fn retrying<T>(seed: u64, mut make: impl FnMut(&mut StdRng) -> Result<T, MetricError>) -> T {
    for attempt in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)));
        if let Ok(m) = make(&mut rng) {
            return m;
        }
    }
    panic!("metric generator failed 8 times; seed {seed} is cursed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metric, MetricExt};

    #[test]
    fn uniform_cube_is_deterministic() {
        let a = uniform_cube(32, 3, 42);
        let b = uniform_cube(32, 3, 42);
        let c = uniform_cube(32, 3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_cube_is_valid_metric() {
        let m = uniform_cube(24, 2, 7);
        assert_eq!(m.len(), 24);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn clustered_has_two_scales() {
        let m = clustered(40, 2, 4, 0.01, 11);
        assert_eq!(m.len(), 40);
        // Intra-cluster distances are tiny, inter-cluster typically large:
        // the aspect ratio must be much larger than for a uniform cube.
        assert!(m.aspect_ratio() > 10.0);
    }

    #[test]
    fn perturbed_grid_is_valid() {
        let m = perturbed_grid(4, 2, 0.2, 3);
        assert_eq!(m.len(), 16);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn perturbed_grid_zero_jitter_is_exact_lattice() {
        let m = perturbed_grid(3, 2, 0.0, 0);
        assert_eq!(m.len(), 9);
        assert_eq!(m.min_distance(), 1.0);
    }

    #[test]
    fn exponential_line_shape() {
        let m = exponential_line(6);
        assert_eq!(m.len(), 6);
        assert_eq!(m.aspect_ratio(), 31.0);
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn uniform_cube_rejects_empty() {
        let _ = uniform_cube(0, 2, 0);
    }
}
