use std::error::Error;
use std::fmt;

use crate::Node;

/// Errors raised when constructing or validating metric spaces.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MetricError {
    /// The distance matrix is not square or does not match the node count.
    ShapeMismatch {
        /// Expected number of entries (`n * n`).
        expected: usize,
        /// Number of entries actually provided.
        actual: usize,
    },
    /// A distance is negative, NaN or infinite.
    InvalidDistance {
        /// First endpoint.
        u: Node,
        /// Second endpoint.
        v: Node,
        /// The offending value.
        value: f64,
    },
    /// `d(u, u)` is nonzero.
    NonzeroSelfDistance {
        /// The node with nonzero self-distance.
        u: Node,
        /// The offending value.
        value: f64,
    },
    /// `d(u, v) != d(v, u)`.
    Asymmetric {
        /// First endpoint.
        u: Node,
        /// Second endpoint.
        v: Node,
    },
    /// Two distinct nodes are at distance zero.
    ZeroDistance {
        /// First endpoint.
        u: Node,
        /// Second endpoint.
        v: Node,
    },
    /// The triangle inequality fails on a triple.
    TriangleViolation {
        /// First endpoint of the violated pair.
        u: Node,
        /// Second endpoint of the violated pair.
        v: Node,
        /// The witness midpoint with `d(u,w) + d(w,v) < d(u,v)`.
        w: Node,
    },
    /// The metric has no nodes where at least one was required.
    Empty,
    /// A dense (`O(n^2)`-memory) structure was asked to index more nodes
    /// than its cap allows.
    TooLarge {
        /// Number of nodes requested.
        n: usize,
        /// The largest node count the dense backend accepts.
        cap: usize,
        /// What to use instead (names the sparse entry point).
        hint: &'static str,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "distance matrix has {actual} entries, expected {expected}"
                )
            }
            MetricError::InvalidDistance { u, v, value } => {
                write!(
                    f,
                    "distance d({u}, {v}) = {value} is not a finite nonnegative number"
                )
            }
            MetricError::NonzeroSelfDistance { u, value } => {
                write!(f, "self distance d({u}, {u}) = {value} is nonzero")
            }
            MetricError::Asymmetric { u, v } => {
                write!(f, "distances d({u}, {v}) and d({v}, {u}) differ")
            }
            MetricError::ZeroDistance { u, v } => {
                write!(f, "distinct nodes {u} and {v} are at distance zero")
            }
            MetricError::TriangleViolation { u, v, w } => {
                write!(
                    f,
                    "triangle inequality fails: d({u}, {v}) > d({u}, {w}) + d({w}, {v})"
                )
            }
            MetricError::Empty => write!(f, "metric space has no nodes"),
            MetricError::TooLarge { n, cap, hint } => {
                write!(f, "dense index refuses n = {n} nodes (cap {cap}): {hint}")
            }
        }
    }
}

impl Error for MetricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = MetricError::TriangleViolation {
            u: Node::new(0),
            v: Node::new(1),
            w: Node::new(2),
        };
        let text = err.to_string();
        assert!(text.contains("triangle"));
        assert!(text.contains("v0"));
    }

    #[test]
    fn too_large_names_the_sparse_fix() {
        let err = MetricError::TooLarge {
            n: 65536,
            cap: 8192,
            hint: "use Space::new_sparse (NetTreeIndex) for large spaces",
        };
        let text = err.to_string();
        assert!(text.contains("65536"));
        assert!(text.contains("8192"));
        assert!(text.contains("Space::new_sparse"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<MetricError>();
    }
}
