use crate::{MetricError, Node};

/// A finite metric space on nodes `0..len()`.
///
/// Implementations must satisfy the metric axioms:
///
/// * `dist(u, u) == 0` and `dist(u, v) > 0` for `u != v`;
/// * `dist(u, v) == dist(v, u)`;
/// * `dist(u, v) <= dist(u, w) + dist(w, v)` (triangle inequality).
///
/// All distances must be finite and nonnegative. Generators in this crate
/// uphold the axioms by construction; [`MetricExt::validate`] checks them
/// exhaustively in `O(n^3)` for test use.
///
/// `Sync` is a supertrait so the construction pipeline can evaluate
/// distances from the scoped worker threads of [`par`](crate::par);
/// every metric in this workspace is plain immutable data.
///
/// # Example
///
/// ```
/// use ron_metric::{LineMetric, Metric, Node};
///
/// let line = LineMetric::new(vec![0.0, 1.0, 3.0]).unwrap();
/// assert_eq!(line.len(), 3);
/// assert_eq!(line.dist(Node::new(0), Node::new(2)), 3.0);
/// ```
pub trait Metric: Sync {
    /// Number of nodes in the space.
    fn len(&self) -> usize;

    /// Distance between two nodes.
    ///
    /// # Panics
    ///
    /// May panic if `u` or `v` is out of range.
    fn dist(&self, u: Node, v: Node) -> f64;

    /// Whether the space has no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<M: Metric + ?Sized> Metric for &M {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn dist(&self, u: Node, v: Node) -> f64 {
        (**self).dist(u, v)
    }
}

impl<M: Metric + ?Sized> Metric for Box<M> {
    fn len(&self) -> usize {
        (**self).len()
    }

    fn dist(&self, u: Node, v: Node) -> f64 {
        (**self).dist(u, v)
    }
}

/// Derived quantities over any [`Metric`]: diameter, aspect ratio and
/// exhaustive validation. All methods are `O(n^2)` or worse; the
/// [`MetricIndex`](crate::MetricIndex) caches the interesting ones.
pub trait MetricExt: Metric {
    /// Iterates over all node ids of this space.
    fn nodes(&self) -> Box<dyn Iterator<Item = Node>> {
        Box::new(Node::all(self.len()))
    }

    /// Largest pairwise distance, `0.0` for spaces with fewer than two nodes.
    fn diameter(&self) -> f64 {
        let n = self.len();
        let mut best = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                best = best.max(self.dist(Node::new(i), Node::new(j)));
            }
        }
        best
    }

    /// Smallest positive pairwise distance, `f64::INFINITY` for spaces with
    /// fewer than two nodes.
    fn min_distance(&self) -> f64 {
        let n = self.len();
        let mut best = f64::INFINITY;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.dist(Node::new(i), Node::new(j));
                if d > 0.0 {
                    best = best.min(d);
                }
            }
        }
        best
    }

    /// Aspect ratio `Delta` = diameter / minimum distance, `1.0` for spaces
    /// with fewer than two nodes.
    fn aspect_ratio(&self) -> f64 {
        let n = self.len();
        if n < 2 {
            return 1.0;
        }
        self.diameter() / self.min_distance()
    }

    /// Exhaustively checks the metric axioms.
    ///
    /// Intended for tests and validating hand-made
    /// [`ExplicitMetric`](crate::ExplicitMetric)s: `O(n^3)` time.
    ///
    /// # Errors
    ///
    /// Returns the first violated axiom found, if any.
    fn validate(&self) -> Result<(), MetricError> {
        let n = self.len();
        for i in 0..n {
            let u = Node::new(i);
            let duu = self.dist(u, u);
            if duu != 0.0 {
                return Err(MetricError::NonzeroSelfDistance { u, value: duu });
            }
            for j in 0..n {
                let v = Node::new(j);
                let d = self.dist(u, v);
                if !d.is_finite() || d < 0.0 {
                    return Err(MetricError::InvalidDistance { u, v, value: d });
                }
                if i != j {
                    if d == 0.0 {
                        return Err(MetricError::ZeroDistance { u, v });
                    }
                    if d != self.dist(v, u) {
                        return Err(MetricError::Asymmetric { u, v });
                    }
                }
            }
        }
        // Triangle inequality with a small relative slack for floating point.
        for i in 0..n {
            for j in 0..n {
                let (u, v) = (Node::new(i), Node::new(j));
                let duv = self.dist(u, v);
                for k in 0..n {
                    let w = Node::new(k);
                    let through = self.dist(u, w) + self.dist(w, v);
                    if duv > through * (1.0 + 1e-9) {
                        return Err(MetricError::TriangleViolation { u, v, w });
                    }
                }
            }
        }
        Ok(())
    }
}

impl<M: Metric + ?Sized> MetricExt for M {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExplicitMetric;

    #[test]
    fn diameter_and_min_distance() {
        let m =
            ExplicitMetric::from_fn(3, |u, v| (u.index() as f64 - v.index() as f64).abs() * 2.0)
                .unwrap();
        assert_eq!(m.diameter(), 4.0);
        assert_eq!(m.min_distance(), 2.0);
        assert_eq!(m.aspect_ratio(), 2.0);
    }

    #[test]
    fn validate_accepts_valid_metric() {
        let m =
            ExplicitMetric::from_fn(4, |u, v| (u.index() as f64 - v.index() as f64).abs()).unwrap();
        assert!(m.validate().is_ok());
    }

    #[test]
    fn validate_rejects_triangle_violation() {
        // d(0,2) = 10 but d(0,1)+d(1,2) = 2.
        let m = ExplicitMetric::new(vec![
            0.0, 1.0, 10.0, //
            1.0, 0.0, 1.0, //
            10.0, 1.0, 0.0,
        ])
        .unwrap();
        assert!(matches!(
            m.validate(),
            Err(MetricError::TriangleViolation { .. })
        ));
    }

    #[test]
    fn aspect_ratio_of_singleton_is_one() {
        let m = ExplicitMetric::from_fn(1, |_, _| 0.0).unwrap();
        assert_eq!(m.aspect_ratio(), 1.0);
    }

    #[test]
    fn metric_impl_for_references() {
        let m = ExplicitMetric::from_fn(2, |u, v| if u == v { 0.0 } else { 1.0 }).unwrap();
        let r: &dyn Metric = &m;
        assert_eq!(r.len(), 2);
        assert_eq!(
            <&ExplicitMetric as Metric>::dist(&&m, Node::new(0), Node::new(1)),
            1.0
        );
        assert!(!r.is_empty());
    }
}
