//! Heap-memory accounting for the construction pipeline.
//!
//! Every arena-backed layer of the reproduction — the sparse net tree,
//! the ring family, the directory pointer tables — implements
//! [`HeapBytes`] so the scaling benchmarks can report a measured
//! bytes-per-node figure instead of estimating one. The accounting is
//! *capacity*-based (what the allocator actually handed out), counts only
//! heap payloads (inline struct fields are excluded), and is additive:
//! a container's `heap_bytes` is the sum of its parts.

/// Bytes of heap memory owned by a value (capacity-based, additive).
pub trait HeapBytes {
    /// Heap bytes currently owned by `self`, excluding the inline size
    /// of the value itself.
    fn heap_bytes(&self) -> usize;
}

/// Heap bytes of a vector of plain elements, including unused capacity.
#[must_use]
pub fn vec_capacity_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Heap bytes of a vector of vectors of plain elements: the outer
/// spine plus every inner buffer's capacity.
#[must_use]
pub fn nested_vec_bytes<T>(v: &Vec<Vec<T>>) -> usize {
    v.capacity() * std::mem::size_of::<Vec<T>>() + v.iter().map(vec_capacity_bytes).sum::<usize>()
}

impl<T> HeapBytes for Vec<T> {
    fn heap_bytes(&self) -> usize {
        vec_capacity_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_vec_accounts_capacity() {
        let mut v: Vec<u32> = Vec::with_capacity(8);
        v.push(1);
        assert_eq!(vec_capacity_bytes(&v), 8 * 4);
        assert_eq!(v.heap_bytes(), 8 * 4);
    }

    #[test]
    fn nested_vec_accounts_spine_and_buffers() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(4), Vec::with_capacity(2)];
        let expected = v.capacity() * std::mem::size_of::<Vec<u8>>() + 4 + 2;
        assert_eq!(nested_vec_bytes(&v), expected);
    }

    #[test]
    fn empty_containers_own_nothing() {
        let v: Vec<u64> = Vec::new();
        assert_eq!(v.heap_bytes(), 0);
        let vv: Vec<Vec<u64>> = Vec::new();
        assert_eq!(nested_vec_bytes(&vv), 0);
    }
}
