use crate::{Metric, MetricIndex, Node};

/// A metric bundled with its [`MetricIndex`].
///
/// Nearly every construction in the paper needs both raw distances and
/// ball/radius queries, so the higher-level crates take `&Space<M>` as
/// input. The built artifacts (rings, labels, routing tables) own their
/// data and do not borrow from the space.
///
/// # Example
///
/// ```
/// use ron_metric::{LineMetric, Node, Space};
///
/// let space = Space::new(LineMetric::uniform(16)?);
/// assert_eq!(space.len(), 16);
/// assert_eq!(space.dist(Node::new(2), Node::new(5)), 3.0);
/// assert_eq!(space.index().ball_size(Node::new(0), 1.0), 2);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Space<M> {
    metric: M,
    index: MetricIndex,
}

impl<M: Metric> Space<M> {
    /// Builds the index and bundles it with the metric.
    ///
    /// # Panics
    ///
    /// Panics if the metric is empty.
    #[must_use]
    pub fn new(metric: M) -> Self {
        let index = MetricIndex::build(&metric);
        Space { metric, index }
    }

    /// The underlying metric.
    #[must_use]
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The precomputed index.
    #[must_use]
    pub fn index(&self) -> &MetricIndex {
        &self.index
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metric.len()
    }

    /// Whether the space is empty (never true: construction panics).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metric.is_empty()
    }

    /// Distance between two nodes.
    #[must_use]
    pub fn dist(&self, u: Node, v: Node) -> f64 {
        self.metric.dist(u, v)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + Clone {
        Node::all(self.len())
    }

    /// Consumes the space, returning the metric.
    #[must_use]
    pub fn into_metric(self) -> M {
        self.metric
    }
}

impl<M: Metric> Metric for Space<M> {
    fn len(&self) -> usize {
        self.metric.len()
    }

    fn dist(&self, u: Node, v: Node) -> f64 {
        self.metric.dist(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineMetric;

    #[test]
    fn bundles_metric_and_index() {
        let space = Space::new(LineMetric::uniform(4).unwrap());
        assert_eq!(space.len(), 4);
        assert_eq!(space.index().len(), 4);
        assert_eq!(space.dist(Node::new(0), Node::new(3)), 3.0);
        assert_eq!(space.nodes().count(), 4);
        assert!(!space.is_empty());
    }

    #[test]
    fn into_metric_returns_inner() {
        let line = LineMetric::uniform(4).unwrap();
        let space = Space::new(line.clone());
        assert_eq!(space.into_metric(), line);
    }

    #[test]
    fn space_is_a_metric() {
        fn diameter_of<M: Metric>(m: &M) -> f64 {
            use crate::MetricExt;
            m.diameter()
        }
        let space = Space::new(LineMetric::uniform(4).unwrap());
        assert_eq!(diameter_of(&space), 3.0);
    }
}
