use crate::{BallOracle, Metric, MetricIndex, NetTreeIndex, Node};

/// A metric bundled with a ball-query backend.
///
/// Nearly every construction in the paper needs both raw distances and
/// ball/radius queries, so the higher-level crates take `&Space<M, I>` as
/// input, generic over the [`BallOracle`] backend `I`:
///
/// * `Space<M>` (the default, [`Space::new`]) carries the dense
///   [`MetricIndex`] — exact `O(log n)` queries, `O(n^2)` memory;
/// * [`Space::new_sparse`] carries a [`NetTreeIndex`] — the same answers
///   from `O(n log Delta)` memory, the only backend that scales past
///   ~10^4 nodes.
///
/// The built artifacts (rings, labels, routing tables) own their data and
/// do not borrow from the space.
///
/// # Example
///
/// ```
/// use ron_metric::{BallOracle, LineMetric, Node, Space};
///
/// let space = Space::new(LineMetric::uniform(16)?);
/// assert_eq!(space.len(), 16);
/// assert_eq!(space.dist(Node::new(2), Node::new(5)), 3.0);
/// assert_eq!(space.index().ball_size(Node::new(0), 1.0), 2);
///
/// let sparse = Space::new_sparse(LineMetric::uniform(16)?);
/// assert_eq!(sparse.index().ball_size(Node::new(0), 1.0), 2);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Space<M, I = MetricIndex> {
    metric: M,
    index: I,
}

impl<M: Metric> Space<M> {
    /// Builds the dense index and bundles it with the metric.
    ///
    /// # Panics
    ///
    /// Panics if the metric is empty.
    #[must_use]
    pub fn new(metric: M) -> Self {
        let _stage = ron_obs::stage("index");
        let _span = ron_obs::span("construct.index.dense");
        let index = MetricIndex::build(&metric);
        Space { metric, index }
    }

    /// Builds the dense index only if the metric fits under
    /// [`DENSE_NODE_CAP`](crate::DENSE_NODE_CAP).
    ///
    /// # Errors
    ///
    /// [`MetricError::Empty`](crate::MetricError::Empty) for an empty
    /// metric; [`MetricError::TooLarge`](crate::MetricError::TooLarge) —
    /// naming [`Space::new_sparse`] as the fix — when the metric exceeds
    /// the dense cap.
    pub fn try_new(metric: M) -> Result<Self, crate::MetricError> {
        let _stage = ron_obs::stage("index");
        let _span = ron_obs::span("construct.index.dense");
        let index = MetricIndex::try_build(&metric)?;
        Ok(Space { metric, index })
    }
}

impl<M: Metric + Clone> Space<M, NetTreeIndex<M>> {
    /// Builds the memory-sparse [`NetTreeIndex`] backend (which owns its
    /// own clone of the metric) and bundles it with the metric.
    ///
    /// # Panics
    ///
    /// Panics if the metric is empty.
    #[must_use]
    pub fn new_sparse(metric: M) -> Self {
        let _stage = ron_obs::stage("index");
        let _span = ron_obs::span("construct.index.sparse");
        let index = NetTreeIndex::build(metric.clone());
        Space { metric, index }
    }
}

impl<M: Metric, I> Space<M, I> {
    /// Bundles a metric with an already-built backend.
    ///
    /// # Panics
    ///
    /// Panics if the backend's node count differs from the metric's.
    #[must_use]
    pub fn from_parts(metric: M, index: I) -> Self
    where
        I: BallOracle,
    {
        assert_eq!(
            metric.len(),
            index.len(),
            "index arity must match the metric"
        );
        Space { metric, index }
    }

    /// The underlying metric.
    #[must_use]
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// The ball-query backend.
    #[must_use]
    pub fn index(&self) -> &I {
        &self.index
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metric.len()
    }

    /// Whether the space is empty (never true: construction panics).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metric.is_empty()
    }

    /// Distance between two nodes.
    #[must_use]
    pub fn dist(&self, u: Node, v: Node) -> f64 {
        self.metric.dist(u, v)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = Node> + Clone {
        Node::all(self.len())
    }

    /// Consumes the space, returning the metric.
    #[must_use]
    pub fn into_metric(self) -> M {
        self.metric
    }
}

impl<M: Metric, I: Sync> Metric for Space<M, I> {
    fn len(&self) -> usize {
        self.metric.len()
    }

    fn dist(&self, u: Node, v: Node) -> f64 {
        self.metric.dist(u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LineMetric;

    #[test]
    fn bundles_metric_and_index() {
        let space = Space::new(LineMetric::uniform(4).unwrap());
        assert_eq!(space.len(), 4);
        assert_eq!(space.index().len(), 4);
        assert_eq!(space.dist(Node::new(0), Node::new(3)), 3.0);
        assert_eq!(space.nodes().count(), 4);
        assert!(!space.is_empty());
    }

    #[test]
    fn into_metric_returns_inner() {
        let line = LineMetric::uniform(4).unwrap();
        let space = Space::new(line.clone());
        assert_eq!(space.into_metric(), line);
    }

    #[test]
    fn space_is_a_metric() {
        fn diameter_of<M: Metric>(m: &M) -> f64 {
            use crate::MetricExt;
            m.diameter()
        }
        let space = Space::new(LineMetric::uniform(4).unwrap());
        assert_eq!(diameter_of(&space), 3.0);
    }

    #[test]
    fn sparse_space_answers_like_dense() {
        let dense = Space::new(LineMetric::uniform(12).unwrap());
        let sparse = Space::new_sparse(LineMetric::uniform(12).unwrap());
        for u in dense.nodes() {
            assert_eq!(
                BallOracle::ball(sparse.index(), u, 3.0),
                BallOracle::ball(dense.index(), u, 3.0)
            );
        }
        assert_eq!(sparse.dist(Node::new(1), Node::new(4)), 3.0);
    }

    #[test]
    fn from_parts_accepts_matching_backend() {
        let line = LineMetric::uniform(6).unwrap();
        let index = MetricIndex::build(&line);
        let space = Space::from_parts(line, index);
        assert_eq!(space.len(), 6);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn from_parts_rejects_mismatch() {
        let index = MetricIndex::build(&LineMetric::uniform(5).unwrap());
        let _ = Space::from_parts(LineMetric::uniform(6).unwrap(), index);
    }

    #[test]
    fn try_new_builds_small_spaces() {
        let space = Space::try_new(LineMetric::uniform(8).unwrap()).unwrap();
        assert_eq!(space.len(), 8);
    }
}
