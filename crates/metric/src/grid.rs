use crate::{Metric, MetricError, Node};

/// Which norm a [`GridMetric`] uses between lattice points.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum GridNorm {
    /// Manhattan / lattice distance (Kleinberg's small-world grid [30]).
    #[default]
    L1,
    /// Euclidean distance.
    L2,
    /// Chebyshev distance.
    LInf,
}

/// The `k`-dimensional integer lattice `{0..side}^k` as a metric space.
///
/// Grids are the canonical bounded-grid-dimension (hence doubling) metrics
/// and the substrate of Kleinberg's original small-world model, which
/// Section 5 of the paper generalizes. Node `i` maps to lattice coordinates
/// in row-major order.
///
/// # Example
///
/// ```
/// use ron_metric::{GridMetric, Metric, Node};
///
/// let g = GridMetric::new(3, 2)?; // 3x3 grid, 9 nodes
/// assert_eq!(g.len(), 9);
/// // corner (0,0) to corner (2,2) in L1:
/// assert_eq!(g.dist(Node::new(0), Node::new(8)), 4.0);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GridMetric {
    side: usize,
    dim: usize,
    norm: GridNorm,
}

impl GridMetric {
    /// Creates a `side^dim` grid under the default `GridNorm::L1` norm.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::Empty`] if `side == 0` or `dim == 0`.
    pub fn new(side: usize, dim: usize) -> Result<Self, MetricError> {
        Self::with_norm(side, dim, GridNorm::L1)
    }

    /// Creates a `side^dim` grid under the given norm.
    ///
    /// # Errors
    ///
    /// Returns [`MetricError::Empty`] if `side == 0` or `dim == 0`.
    pub fn with_norm(side: usize, dim: usize, norm: GridNorm) -> Result<Self, MetricError> {
        if side == 0 || dim == 0 {
            return Err(MetricError::Empty);
        }
        // Guard against overflow of side^dim.
        let mut n: usize = 1;
        for _ in 0..dim {
            n = n.checked_mul(side).ok_or(MetricError::Empty)?;
        }
        Ok(GridMetric { side, dim, norm })
    }

    /// Side length of the grid.
    #[must_use]
    pub fn side(&self) -> usize {
        self.side
    }

    /// Dimension of the grid.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Lattice coordinates of node `u` (row-major decoding).
    #[must_use]
    pub fn coords(&self, u: Node) -> Vec<usize> {
        let mut i = u.index();
        let mut out = vec![0; self.dim];
        for c in out.iter_mut().rev() {
            *c = i % self.side;
            i /= self.side;
        }
        out
    }

    /// Node at the given lattice coordinates (row-major encoding).
    ///
    /// # Panics
    ///
    /// Panics if `coords` has the wrong length or a coordinate is out of
    /// range.
    #[must_use]
    pub fn node_at(&self, coords: &[usize]) -> Node {
        assert_eq!(coords.len(), self.dim, "coordinate arity mismatch");
        let mut i = 0usize;
        for &c in coords {
            assert!(
                c < self.side,
                "coordinate {c} out of range 0..{}",
                self.side
            );
            i = i * self.side + c;
        }
        Node::new(i)
    }
}

impl Metric for GridMetric {
    fn len(&self) -> usize {
        self.side.pow(self.dim as u32)
    }

    fn dist(&self, u: Node, v: Node) -> f64 {
        let (a, b) = (self.coords(u), self.coords(v));
        match self.norm {
            GridNorm::L1 => a.iter().zip(&b).map(|(&x, &y)| x.abs_diff(y) as f64).sum(),
            GridNorm::L2 => a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let d = x.abs_diff(y) as f64;
                    d * d
                })
                .sum::<f64>()
                .sqrt(),
            GridNorm::LInf => a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| x.abs_diff(y) as f64)
                .fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricExt;

    #[test]
    fn coords_roundtrip() {
        let g = GridMetric::new(4, 3).unwrap();
        for i in 0..g.len() {
            let u = Node::new(i);
            assert_eq!(g.node_at(&g.coords(u)), u);
        }
    }

    #[test]
    fn l1_distance() {
        let g = GridMetric::new(5, 2).unwrap();
        let u = g.node_at(&[0, 0]);
        let v = g.node_at(&[3, 4]);
        assert_eq!(g.dist(u, v), 7.0);
    }

    #[test]
    fn l2_distance() {
        let g = GridMetric::with_norm(5, 2, GridNorm::L2).unwrap();
        let u = g.node_at(&[0, 0]);
        let v = g.node_at(&[3, 4]);
        assert_eq!(g.dist(u, v), 5.0);
    }

    #[test]
    fn linf_distance() {
        let g = GridMetric::with_norm(5, 2, GridNorm::LInf).unwrap();
        let u = g.node_at(&[0, 0]);
        let v = g.node_at(&[3, 4]);
        assert_eq!(g.dist(u, v), 4.0);
    }

    #[test]
    fn rejects_empty() {
        assert!(GridMetric::new(0, 2).is_err());
        assert!(GridMetric::new(2, 0).is_err());
    }

    #[test]
    fn is_a_metric() {
        let g = GridMetric::new(3, 2).unwrap();
        assert!(g.validate().is_ok());
    }

    #[test]
    fn aspect_ratio_of_grid() {
        let g = GridMetric::new(4, 2).unwrap();
        // min distance 1, diameter 6 (corner to corner in L1).
        assert_eq!(g.aspect_ratio(), 6.0);
    }
}
