use crate::{Metric, MetricError, Node};

/// A metric stored as a dense `n x n` distance matrix.
///
/// This is the most general representation: shortest-path metrics of graphs,
/// perturbed metrics and hand-built counterexamples all end up here. The
/// constructor checks basic sanity (shape, finiteness, symmetry, zero
/// diagonal); the full `O(n^3)` triangle-inequality check is available via
/// [`MetricExt::validate`](crate::MetricExt::validate).
///
/// # Example
///
/// ```
/// use ron_metric::{ExplicitMetric, Metric, Node};
///
/// let m = ExplicitMetric::from_fn(3, |u, v| {
///     (u.index() as f64 - v.index() as f64).abs()
/// })?;
/// assert_eq!(m.dist(Node::new(0), Node::new(2)), 2.0);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ExplicitMetric {
    n: usize,
    dists: Vec<f64>,
}

impl ExplicitMetric {
    /// Builds a metric from a row-major `n x n` distance matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if the matrix is not square, contains non-finite or
    /// negative entries, is asymmetric, or has a nonzero diagonal. Distinct
    /// nodes at distance zero are also rejected (the paper assumes a true
    /// metric; collapse duplicates before constructing).
    pub fn new(dists: Vec<f64>) -> Result<Self, MetricError> {
        let n = (dists.len() as f64).sqrt().round() as usize;
        if n * n != dists.len() {
            return Err(MetricError::ShapeMismatch {
                expected: n * n,
                actual: dists.len(),
            });
        }
        let m = ExplicitMetric { n, dists };
        m.check_basics()?;
        Ok(m)
    }

    /// Builds a metric by evaluating `f` on every ordered pair.
    ///
    /// `f` is evaluated once per ordered pair; it must be symmetric with a
    /// zero diagonal or construction fails.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExplicitMetric::new`].
    pub fn from_fn(n: usize, mut f: impl FnMut(Node, Node) -> f64) -> Result<Self, MetricError> {
        let mut dists = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                dists[i * n + j] = f(Node::new(i), Node::new(j));
            }
        }
        Self::new(dists)
    }

    /// Builds the explicit matrix of any other metric.
    ///
    /// Useful to snapshot an on-the-fly metric (e.g. Euclidean) so later
    /// perturbations or overrides can be applied.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExplicitMetric::new`].
    pub fn from_metric<M: Metric>(metric: &M) -> Result<Self, MetricError> {
        Self::from_fn(metric.len(), |u, v| metric.dist(u, v))
    }

    /// Returns a copy with every distance multiplied by `factor > 0`.
    ///
    /// Rescaling does not change any of the paper's structures (they depend
    /// only on distance ratios), which tests exploit.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        ExplicitMetric {
            n: self.n,
            dists: self.dists.iter().map(|d| d * factor).collect(),
        }
    }

    fn check_basics(&self) -> Result<(), MetricError> {
        let n = self.n;
        for i in 0..n {
            let u = Node::new(i);
            let duu = self.dists[i * n + i];
            if duu != 0.0 {
                return Err(MetricError::NonzeroSelfDistance { u, value: duu });
            }
            for j in (i + 1)..n {
                let v = Node::new(j);
                let d = self.dists[i * n + j];
                if !d.is_finite() || d < 0.0 {
                    return Err(MetricError::InvalidDistance { u, v, value: d });
                }
                if d == 0.0 {
                    return Err(MetricError::ZeroDistance { u, v });
                }
                if d != self.dists[j * n + i] {
                    return Err(MetricError::Asymmetric { u, v });
                }
            }
        }
        Ok(())
    }
}

impl Metric for ExplicitMetric {
    fn len(&self) -> usize {
        self.n
    }

    fn dist(&self, u: Node, v: Node) -> f64 {
        self.dists[u.index() * self.n + v.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            ExplicitMetric::new(vec![0.0, 1.0, 1.0]),
            Err(MetricError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_asymmetric() {
        let err = ExplicitMetric::new(vec![0.0, 1.0, 2.0, 0.0]);
        assert!(matches!(err, Err(MetricError::Asymmetric { .. })));
    }

    #[test]
    fn rejects_nonzero_diagonal() {
        let err = ExplicitMetric::new(vec![1.0, 1.0, 1.0, 0.0]);
        assert!(matches!(err, Err(MetricError::NonzeroSelfDistance { .. })));
    }

    #[test]
    fn rejects_zero_offdiagonal() {
        let err = ExplicitMetric::new(vec![0.0, 0.0, 0.0, 0.0]);
        assert!(matches!(err, Err(MetricError::ZeroDistance { .. })));
    }

    #[test]
    fn rejects_nan() {
        let err = ExplicitMetric::new(vec![0.0, f64::NAN, f64::NAN, 0.0]);
        assert!(matches!(err, Err(MetricError::InvalidDistance { .. })));
    }

    #[test]
    fn from_metric_roundtrips() {
        let a = ExplicitMetric::from_fn(4, |u, v| {
            (u.index() as f64 - v.index() as f64).abs() + if u == v { 0.0 } else { 1.0 }
        })
        .unwrap();
        let b = ExplicitMetric::from_metric(&a).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_multiplies_distances() {
        let a =
            ExplicitMetric::from_fn(3, |u, v| (u.index() as f64 - v.index() as f64).abs()).unwrap();
        let b = a.scaled(3.0);
        assert_eq!(b.dist(Node::new(0), Node::new(2)), 6.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero_factor() {
        let a = ExplicitMetric::from_fn(2, |u, v| if u == v { 0.0 } else { 1.0 }).unwrap();
        let _ = a.scaled(0.0);
    }
}
