//! Doubling measure construction (Theorem 1.3).
//!
//! Theorem 1.3 (Volberg–Konyagin, Wu, Luukkainen–Saksman, Mendel–Har-Peled):
//! every metric of doubling dimension `alpha` carries a `2^O(alpha)`-
//! doubling measure, efficiently constructible for finite metrics. The
//! construction here follows the net-tree mass-splitting scheme of the
//! efficient variants: build the nested net ladder, link each level-`j` net
//! point to its nearest parent in the level-`j+1` net, then push mass down
//! from the single root, splitting each parent's mass equally among its
//! children. A net point is always its own child one level down (the
//! ladder is nested), so mass reaches every node at level 0 (= all nodes).
//!
//! Per substitution #3 in DESIGN.md we do not port the measure-theoretic
//! proof of the `2^O(alpha)` constant; instead
//! [`measured_doubling_constant`] reports the constant actually achieved,
//! and the tests pin it on the experiment families (grid, cube, exponential
//! line).

use ron_metric::{BallOracle, Metric, Node, Space};
use ron_nets::NestedNets;

use crate::{BallMassIndex, NodeMeasure};

/// Builds a doubling measure for the space via net-tree mass splitting.
///
/// The returned measure is normalized. On the exponential line it
/// reproduces the `mu(2^i) ~ 2^(i-n)` shape the paper quotes (tests check
/// monotonicity and the measured doubling constant).
///
/// `O(n^2 log Delta)` time, dominated by the net ladder.
#[must_use]
pub fn doubling_measure<M: Metric, I: BallOracle>(
    space: &Space<M, I>,
    nets: &NestedNets,
) -> NodeMeasure {
    let n = space.len();
    let top = nets.levels() - 1;
    // mass[v] holds the mass currently assigned to net point v at the level
    // being processed; starts with everything at the top-level single root.
    let mut mass = vec![0.0f64; n];
    let root_members = nets.net(top).members();
    for &r in root_members {
        mass[r.index()] = 1.0 / root_members.len() as f64;
    }
    for j in (0..top).rev() {
        // Children at level j of each level j+1 parent: nearest parent by
        // distance (ties by node id via the index ordering).
        let parents = nets.net(j + 1);
        let child_net = nets.net(j);
        let mut children_of: Vec<Vec<Node>> = vec![Vec::new(); n];
        for &c in child_net.members() {
            let (_, p) = parents.nearest_member(space, c);
            children_of[p.index()].push(c);
        }
        let mut next = vec![0.0f64; n];
        for &p in parents.members() {
            let kids = &children_of[p.index()];
            // `kids` is sorted (children are pushed in net-member order), so
            // membership is a binary search, matching `Ring::contains`.
            debug_assert!(
                kids.binary_search(&p).is_ok(),
                "nested ladder: parent {p} must be its own child"
            );
            let share = mass[p.index()] / kids.len() as f64;
            for &c in kids {
                next[c.index()] += share;
            }
        }
        mass = next;
    }
    NodeMeasure::from_weights(mass)
}

/// Measures the doubling constant of `measure` on `space`: the maximum of
/// `mu(B_u(r)) / mu(B_u(r/2))` over all nodes and radii `r` swept in
/// powers of 2 from the minimum distance to the diameter.
///
/// A measure is `s`-doubling iff this value is at most `s`.
#[must_use]
pub fn measured_doubling_constant<M: Metric>(space: &Space<M>, measure: &NodeMeasure) -> f64 {
    let idx = BallMassIndex::build(space, measure);
    let mut worst = 1.0f64;
    let mut r = space.index().min_distance();
    let top = space.index().diameter() * 2.0;
    while r <= top {
        for u in space.nodes() {
            let half = idx.ball_mass(u, r / 2.0);
            let full = idx.ball_mass(u, r);
            if half > 0.0 {
                worst = worst.max(full / half);
            }
        }
        r *= 2.0;
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    fn build(space: &Space<impl Metric>) -> NodeMeasure {
        let nets = NestedNets::build(space);
        doubling_measure(space, &nets)
    }

    #[test]
    fn measure_is_normalized_and_positive() {
        let space = Space::new(gen::uniform_cube(64, 2, 3));
        let mu = build(&space);
        let total: f64 = mu.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(mu.min_mass() > 0.0);
    }

    #[test]
    fn uniform_line_measure_is_roughly_uniform() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let mu = build(&space);
        // Max/min mass ratio stays modest on a homogeneous space.
        assert!(mu.max_mass() / mu.min_mass() <= 16.0);
    }

    #[test]
    fn exponential_line_oversamples_sparse_points() {
        let space = Space::new(LineMetric::exponential(16).unwrap());
        let mu = build(&space);
        // The isolated large points must carry far more mass than the
        // crowded small ones: compare the largest point to the smallest.
        let small = mu.mass(Node::new(0));
        let large = mu.mass(Node::new(15));
        assert!(
            large > 16.0 * small,
            "expected geometric mass growth, got small={small}, large={large}"
        );
    }

    #[test]
    fn doubling_constant_is_bounded_on_families() {
        // The paper's guarantee is 2^O(alpha); for our families alpha <= ~2.5
        // so a constant of 64 is a generous pin that still catches regressions.
        let space = Space::new(gen::uniform_cube(96, 2, 1));
        let mu = build(&space);
        let s = measured_doubling_constant(&space, &mu);
        assert!(s <= 64.0, "cube: doubling constant {s} too large");
        let line = Space::new(LineMetric::exponential(20).unwrap());
        let mu = build(&line);
        let s = measured_doubling_constant(&line, &mu);
        assert!(s <= 64.0, "exp line: doubling constant {s} too large");
    }

    #[test]
    fn counting_measure_is_not_doubling_on_exponential_line() {
        // Motivation check: the counting measure fails to be s-doubling for
        // small s on the exponential line, which is why Theorem 1.3 matters.
        let space = Space::new(LineMetric::exponential(20).unwrap());
        let counting = NodeMeasure::counting(20);
        let s_counting = measured_doubling_constant(&space, &counting);
        let nets = NestedNets::build(&space);
        let s_doubling = measured_doubling_constant(&space, &doubling_measure(&space, &nets));
        assert!(
            s_counting > s_doubling,
            "doubling measure ({s_doubling}) should beat counting ({s_counting})"
        );
    }
}
