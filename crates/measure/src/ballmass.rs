use ron_metric::{par, BallOracle, Metric, Node, Space};

use crate::NodeMeasure;

/// Prefix-sum index answering ball-mass queries `mu(B_u(r))` and the
/// measure version of `r_u(eps)` (Lemma 3.1's "radius of the smallest ball
/// around `u` that has measure `eps`") in `O(log n)` per query.
///
/// Built against a [`Space`]'s distance ordering: `O(n^2)` memory.
///
/// # Example
///
/// ```
/// use ron_measure::{BallMassIndex, NodeMeasure};
/// use ron_metric::{LineMetric, Node, Space};
///
/// let space = Space::new(LineMetric::uniform(10)?);
/// let mu = NodeMeasure::counting(10);
/// let idx = BallMassIndex::build(&space, &mu);
/// let u = Node::new(0);
/// assert!((idx.ball_mass(u, 4.0) - 0.5).abs() < 1e-12);
/// assert_eq!(idx.radius_for_mass(u, 0.5), 4.0);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug)]
pub struct BallMassIndex {
    /// For each node `u`, `(distance, cumulative mass)` over the nodes in
    /// distance order from `u`; `cum[k]` is the mass of the `k+1` nearest.
    rows: Vec<Vec<(f64, f64)>>,
}

impl BallMassIndex {
    /// Builds the index for a measure over the given space (rows in
    /// parallel on [`par`], merged in node order).
    ///
    /// # Panics
    ///
    /// Panics if the measure arity differs from the space.
    #[must_use]
    pub fn build<M: Metric, I: BallOracle>(space: &Space<M, I>, measure: &NodeMeasure) -> Self {
        assert_eq!(space.len(), measure.len(), "measure arity mismatch");
        let rows = par::map(space.len(), |i| {
            let mut cum = 0.0;
            let mut row = Vec::with_capacity(space.len());
            space
                .index()
                .for_each_in_ball(Node::new(i), f64::INFINITY, &mut |d, v| {
                    cum += measure.mass(v);
                    row.push((d, cum));
                });
            row
        });
        BallMassIndex { rows }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the index is empty (never true: construction panics).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// `mu(B_u(r))`: total mass of the closed ball of radius `r` around
    /// `u`.
    #[must_use]
    pub fn ball_mass(&self, u: Node, r: f64) -> f64 {
        let row = &self.rows[u.index()];
        let end = row.partition_point(|&(d, _)| d <= r);
        if end == 0 {
            0.0
        } else {
            row[end - 1].1
        }
    }

    /// `r_u(eps)` for this measure: radius of the smallest closed ball
    /// around `u` with mass at least `eps` (up to a relative tolerance of
    /// `1e-12` absorbing prefix-sum rounding).
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1]` (every measure is normalized, so
    /// larger masses never exist).
    #[must_use]
    pub fn radius_for_mass(&self, u: Node, eps: f64) -> f64 {
        assert!(eps > 0.0 && eps <= 1.0, "eps {eps} out of range (0, 1]");
        let row = &self.rows[u.index()];
        let tol = eps * 1e-12;
        let k = row.partition_point(|&(_, cum)| cum < eps - tol);
        // The total mass is 1 >= eps, so k is in range.
        row[k.min(row.len() - 1)].0
    }

    /// The radii `r_ui = r_u(2^-i)` for `i in [levels]` under this measure.
    #[must_use]
    pub fn cardinality_radii(&self, u: Node, levels: usize) -> Vec<f64> {
        (0..levels)
            .map(|i| self.radius_for_mass(u, (0.5f64).powi(i as i32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::LineMetric;

    fn setup() -> (Space<LineMetric>, NodeMeasure, BallMassIndex) {
        let space = Space::new(LineMetric::uniform(10).unwrap());
        let mu = NodeMeasure::counting(10);
        let idx = BallMassIndex::build(&space, &mu);
        (space, mu, idx)
    }

    #[test]
    fn ball_mass_matches_counting() {
        let (space, _, idx) = setup();
        for u in space.nodes() {
            for r in [0.0, 1.0, 3.5, 9.0] {
                let expected = space.index().ball_size(u, r) as f64 / 10.0;
                assert!((idx.ball_mass(u, r) - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn radius_for_mass_inverts_ball_mass() {
        let (space, _, idx) = setup();
        for u in space.nodes() {
            for &eps in &[0.1, 0.25, 0.5, 0.75, 1.0] {
                let r = idx.radius_for_mass(u, eps);
                assert!(idx.ball_mass(u, r) >= eps - 1e-12);
                // Counting measure: matches the metric-index version.
                assert_eq!(r, space.index().r_fraction(u, eps));
            }
        }
    }

    #[test]
    fn weighted_measure_shifts_radii() {
        let space = Space::new(LineMetric::uniform(4).unwrap());
        // Node 3 carries almost all the mass.
        let mu = NodeMeasure::from_weights(vec![1.0, 1.0, 1.0, 97.0]);
        let idx = BallMassIndex::build(&space, &mu);
        // From node 0, half the mass needs to reach node 3: radius 3.
        assert_eq!(idx.radius_for_mass(Node::new(0), 0.5), 3.0);
        // From node 3, mass 0.5 is its own point: radius 0.
        assert_eq!(idx.radius_for_mass(Node::new(3), 0.5), 0.0);
    }

    #[test]
    fn negative_radius_has_zero_mass() {
        let (_, _, idx) = setup();
        assert_eq!(idx.ball_mass(Node::new(0), -1.0), 0.0);
    }

    #[test]
    fn cardinality_radii_non_increasing() {
        let (_, _, idx) = setup();
        let radii = idx.cardinality_radii(Node::new(4), 4);
        for w in radii.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }
}
