//! Measures on finite doubling metrics.
//!
//! Two measure-theoretic tools underpin the paper's constructions:
//!
//! * **Doubling measures** (Theorem 1.3): an assignment of node weights
//!   making the metric look growth-constrained — `mu(B_u(r)) <= s *
//!   mu(B_u(r/2))` for every ball. The small-world models of Section 5
//!   sample Y-type contacts proportionally to a doubling measure, which
//!   oversamples nodes in sparse regions (on the exponential line,
//!   `mu(2^i) ~ 2^(i-n)`). [`doubling_measure`] implements the net-tree
//!   mass-splitting construction; [`measured_doubling_constant`] reports
//!   the achieved constant (the paper cites `2^O(alpha)`; we verify
//!   empirically per DESIGN.md substitution #3).
//!
//! * **(eps, mu)-packings** (Lemma 3.1 / A.1): a family of disjoint balls,
//!   each of measure at least `eps / 2^O(alpha)`, such that every node `u`
//!   has a family ball `B_v(r)` with `d_uv + r <= 6 r_u(eps)`. These supply
//!   the X-neighbors of Theorems 3.2/3.4/B.1. See [`Packing`].
//!
//! [`NodeMeasure`] is a probability measure on nodes; [`BallMassIndex`]
//! answers `mu(B_u(r))` and the measure-version of `r_u(eps)` in `O(log n)`
//! after an `O(n^2)` build.

mod ballmass;
pub mod doubling;
mod node_measure;
pub mod packing;

pub use ballmass::BallMassIndex;
pub use doubling::{doubling_measure, measured_doubling_constant};
pub use node_measure::NodeMeasure;
pub use packing::{PackedBall, Packing, PackingError};
