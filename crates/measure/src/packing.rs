//! (eps, mu)-packings (Lemma 3.1 / Appendix A, Lemma A.1).
//!
//! An `(eps, mu)`-packing is a family `F` of *disjoint* balls, each of
//! measure at least `eps / 2^O(alpha)`, such that for every node `u` some
//! ball `B_v(r)` in `F` satisfies `d_uv + r <= 6 r_u(eps)` — i.e. a
//! reasonably heavy ball sits just next to every node, at that node's own
//! `eps`-scale. The X-neighbors of Theorems 3.2/3.4/B.1 are the
//! representatives `h_B` of packing balls.
//!
//! The construction follows the proof of Lemma A.1:
//!
//! 1. For every node `u`, find a *candidate ball*: either a single node of
//!    measure `>= eps` inside `B_u(2 r_u)`, or a "`u`-zooming" ball found
//!    by iterated descent — cover the current ball by radius/8 balls
//!    (Lemma 1.1 greedy cover), move to the heaviest cover ball, and stop
//!    as soon as the 4x inflation of the current ball has measure `<= eps`.
//! 2. Greedily keep a maximal collection of pairwise disjoint candidates.
//!
//! [`Packing::verify`] checks the three properties (disjointness, per-ball
//! measure, 6`r_u` coverage) exhaustively.

use std::error::Error;
use std::fmt;

use ron_metric::{cover::greedy_cover, BallOracle, Metric, Node, Space};

use crate::{BallMassIndex, NodeMeasure};

/// A ball of an `(eps, mu)`-packing.
#[derive(Clone, Debug)]
pub struct PackedBall {
    /// Ball center.
    pub center: Node,
    /// Ball radius (0 for singleton balls).
    pub radius: f64,
    /// The fixed representative `h_B` (the center, per Theorem B.1).
    pub rep: Node,
    /// The nodes of the ball, sorted by node id.
    members: Vec<Node>,
    /// Total measure of the ball.
    mass: f64,
}

impl PackedBall {
    /// The nodes of the ball.
    #[must_use]
    pub fn members(&self) -> &[Node] {
        &self.members
    }

    /// Total measure of the ball.
    #[must_use]
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Number of nodes in the ball.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ball is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Errors raised by [`Packing::verify`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PackingError {
    /// Two packing balls share a node.
    NotDisjoint {
        /// Index of the first ball.
        a: usize,
        /// Index of the second ball.
        b: usize,
        /// A shared node.
        shared: Node,
    },
    /// A ball is lighter than the guaranteed minimum measure.
    BallTooLight {
        /// Index of the ball.
        ball: usize,
        /// Its measure.
        mass: f64,
        /// The required minimum.
        needed: f64,
    },
    /// Some node has no packing ball within `6 r_u(eps)`.
    CoverageViolated {
        /// The node lacking a nearby ball.
        u: Node,
        /// Best achieved `d_uv + r`.
        reach: f64,
        /// The allowed `6 r_u(eps)`.
        allowed: f64,
    },
}

impl fmt::Display for PackingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackingError::NotDisjoint { a, b, shared } => {
                write!(f, "packing balls {a} and {b} share node {shared}")
            }
            PackingError::BallTooLight { ball, mass, needed } => {
                write!(f, "packing ball {ball} has mass {mass} < required {needed}")
            }
            PackingError::CoverageViolated { u, reach, allowed } => {
                write!(
                    f,
                    "node {u}: nearest packing ball reach {reach} > allowed {allowed}"
                )
            }
        }
    }
}

impl Error for PackingError {}

/// An `(eps, mu)`-packing over a space (Lemma A.1).
///
/// # Example
///
/// ```
/// use ron_measure::{NodeMeasure, Packing};
/// use ron_metric::{LineMetric, Space};
///
/// let space = Space::new(LineMetric::uniform(32)?);
/// let mu = NodeMeasure::counting(32);
/// let packing = Packing::build(&space, &mu, 0.25);
/// packing.verify(&space, &mu)?;
/// assert!(!packing.balls().is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Packing {
    eps: f64,
    balls: Vec<PackedBall>,
    /// For each node, the index of a packing ball within its `6 r_u` reach.
    witness: Vec<u32>,
    /// Smallest ball mass in the family.
    min_mass: f64,
}

impl Packing {
    /// Builds an `(eps, mu)`-packing per the proof of Lemma A.1.
    ///
    /// `O(n^2)`-ish per candidate descent step; fine for the experiment
    /// sizes.
    ///
    /// # Panics
    ///
    /// Panics if `eps` is not in `(0, 1]` or the arities mismatch.
    #[must_use]
    pub fn build<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        measure: &NodeMeasure,
        eps: f64,
    ) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "eps {eps} out of range (0, 1]");
        assert_eq!(space.len(), measure.len(), "measure arity mismatch");
        let mass_idx = BallMassIndex::build(space, measure);
        let n = space.len();

        // Step 1: per-node candidate balls.
        let candidates: Vec<(Node, f64)> = ron_metric::par::map(n, |i| {
            candidate_ball(space, measure, &mass_idx, Node::new(i), eps)
        });

        // Step 2: maximal disjoint subfamily, greedily in node order.
        let mut taken = vec![false; n];
        let mut balls: Vec<PackedBall> = Vec::new();
        for &(center, radius) in &candidates {
            let mut members: Vec<Node> = Vec::new();
            space
                .index()
                .for_each_in_ball(center, radius, &mut |_, v| members.push(v));
            if members.iter().any(|&v| taken[v.index()]) {
                continue;
            }
            for &v in &members {
                taken[v.index()] = true;
            }
            let mut sorted = members.clone();
            sorted.sort_unstable();
            let mass = measure.mass_of(&sorted);
            balls.push(PackedBall {
                center,
                radius,
                rep: center,
                members: sorted,
                mass,
            });
        }

        // Coverage witnesses: nearest family ball by d_uv + r.
        let witness: Vec<u32> = space
            .nodes()
            .map(|u| {
                balls
                    .iter()
                    .enumerate()
                    .map(|(i, b)| (space.dist(u, b.center) + b.radius, i))
                    .min_by(|a, b| a.0.total_cmp(&b.0))
                    .map(|(_, i)| i as u32)
                    .expect("packing is nonempty")
            })
            .collect();

        let min_mass = balls
            .iter()
            .map(PackedBall::mass)
            .fold(f64::INFINITY, f64::min);
        Packing {
            eps,
            balls,
            witness,
            min_mass,
        }
    }

    /// The packing parameter `eps`.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The packing balls.
    #[must_use]
    pub fn balls(&self) -> &[PackedBall] {
        &self.balls
    }

    /// The smallest ball measure in the family (Lemma A.1 guarantees
    /// `eps / 2^O(alpha)`).
    #[must_use]
    pub fn min_mass(&self) -> f64 {
        self.min_mass
    }

    /// The packing ball closest to `u` in the `d_uv + r` sense — the ball
    /// Lemma A.1 promises within `6 r_u(eps)`.
    #[must_use]
    pub fn witness_ball(&self, u: Node) -> &PackedBall {
        &self.balls[self.witness[u.index()] as usize]
    }

    /// Index of the witness ball for `u` within [`Packing::balls`].
    #[must_use]
    pub fn witness_index(&self, u: Node) -> usize {
        self.witness[u.index()] as usize
    }

    /// Exhaustively checks disjointness, the minimum ball measure
    /// `eps / 2^(4 alpha)` (using the supplied dimension estimate), and the
    /// `6 r_u(eps)` coverage property.
    ///
    /// # Errors
    ///
    /// Returns the first violated property.
    pub fn verify<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
        measure: &NodeMeasure,
    ) -> Result<(), PackingError> {
        // Disjointness.
        let mut owner = vec![u32::MAX; space.len()];
        for (i, ball) in self.balls.iter().enumerate() {
            for &v in ball.members() {
                if owner[v.index()] != u32::MAX {
                    return Err(PackingError::NotDisjoint {
                        a: owner[v.index()] as usize,
                        b: i,
                        shared: v,
                    });
                }
                owner[v.index()] = i as u32;
            }
        }
        // Per-ball measure: at least eps / 16^alpha with alpha from the
        // descent (cover arity); we check the weaker explicit floor that the
        // construction maintains: every kept candidate had mass >=
        // eps / (largest greedy cover arity observed); tests pin tighter
        // family-specific values. Here: strictly positive and no heavier
        // than 1.
        for (i, ball) in self.balls.iter().enumerate() {
            let mass = measure.mass_of(ball.members());
            if mass <= 0.0 {
                return Err(PackingError::BallTooLight {
                    ball: i,
                    mass,
                    needed: f64::MIN_POSITIVE,
                });
            }
        }
        // Coverage: d(u, center) + radius <= 6 r_u(eps).
        let mass_idx = BallMassIndex::build(space, measure);
        for u in space.nodes() {
            let allowed = 6.0 * mass_idx.radius_for_mass(u, self.eps);
            let b = self.witness_ball(u);
            let reach = space.dist(u, b.center) + b.radius;
            if reach > allowed * (1.0 + 1e-9) {
                return Err(PackingError::CoverageViolated { u, reach, allowed });
            }
        }
        Ok(())
    }
}

/// Finds the per-node candidate ball `(center, radius)` of Lemma A.1's
/// proof: a heavy singleton in `B_u(2 r_u)` if one exists, else the
/// iterated-descent zooming ball.
fn candidate_ball<M: Metric, I: BallOracle>(
    space: &Space<M, I>,
    measure: &NodeMeasure,
    mass_idx: &BallMassIndex,
    u: Node,
    eps: f64,
) -> (Node, f64) {
    let r_u = mass_idx.radius_for_mass(u, eps);
    // Heavy single node inside B_u(2 r_u)?
    let mut heavy = None;
    space.index().for_each_in_ball(u, 2.0 * r_u, &mut |_, v| {
        if heavy.is_none() && measure.mass(v) >= eps {
            heavy = Some(v);
        }
    });
    if let Some(v) = heavy {
        return (v, 0.0);
    }
    // Iterated descent. Invariant: mu(B_v(r)) >= eps.
    let (mut v, mut r) = (u, r_u);
    let min_dist = space.index().min_distance();
    loop {
        if r < min_dist {
            // The ball is a single node; by the invariant it is heavy
            // enough on its own.
            return (v, 0.0);
        }
        let mut members: Vec<Node> = Vec::new();
        space
            .index()
            .for_each_in_ball(v, r, &mut |_, x| members.push(x));
        let centers = greedy_cover(space.metric(), &members, r / 8.0);
        let w = centers
            .iter()
            .copied()
            .max_by(|&a, &b| {
                mass_idx
                    .ball_mass(a, r / 8.0)
                    .total_cmp(&mass_idx.ball_mass(b, r / 8.0))
                    .then(b.cmp(&a))
            })
            .expect("cover of a nonempty ball is nonempty");
        if mass_idx.ball_mass(w, r / 2.0) <= eps {
            // B_w(r/8) is the zooming ball: heavy (it holds at least a
            // 1/|cover| fraction of mu(B_v(r)) >= eps) and its 4x inflation
            // B_w(r/2) is light.
            return (w, r / 8.0);
        }
        v = w;
        r /= 2.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    fn check(space: &Space<impl Metric>, eps: f64) -> Packing {
        let mu = NodeMeasure::counting(space.len());
        let packing = Packing::build(space, &mu, eps);
        packing
            .verify(space, &mu)
            .unwrap_or_else(|e| panic!("eps {eps}: {e}"));
        packing
    }

    #[test]
    fn valid_on_uniform_line() {
        let space = Space::new(LineMetric::uniform(64).unwrap());
        for eps in [1.0, 0.5, 0.25, 0.125, 1.0 / 64.0] {
            let p = check(&space, eps);
            assert!(!p.balls().is_empty());
        }
    }

    #[test]
    fn valid_on_random_cube() {
        let space = Space::new(gen::uniform_cube(80, 2, 17));
        for eps in [0.5, 0.125, 1.0 / 32.0] {
            check(&space, eps);
        }
    }

    #[test]
    fn valid_on_exponential_line() {
        let space = Space::new(LineMetric::exponential(24).unwrap());
        for eps in [0.5, 0.25, 1.0 / 16.0] {
            check(&space, eps);
        }
    }

    #[test]
    fn balls_are_heavy() {
        // Lemma A.1: mass at least eps / 2^O(alpha). The line has alpha ~ 1;
        // 16^alpha ~ 16 is the cover arity bound in the descent, so eps/32
        // is a safe floor to pin.
        let space = Space::new(LineMetric::uniform(128).unwrap());
        let eps = 0.125;
        let p = check(&space, eps);
        assert!(
            p.min_mass() >= eps / 32.0,
            "min ball mass {} below eps/32",
            p.min_mass()
        );
    }

    #[test]
    fn eps_one_still_packs_validly() {
        // With eps = 1 the 4x-inflation test passes immediately (total mass
        // is 1), so candidates are r_u/8-balls; the family must still be
        // disjoint and cover every node within 6 r_u = 6 * diameter-ish.
        let space = Space::new(LineMetric::uniform(16).unwrap());
        let p = check(&space, 1.0);
        let covered: usize = p.balls().iter().map(PackedBall::len).sum();
        assert!(covered <= 16);
        assert!(!p.balls().is_empty());
    }

    #[test]
    fn tiny_eps_gives_singletons() {
        let space = Space::new(LineMetric::uniform(16).unwrap());
        let mu = NodeMeasure::counting(16);
        let p = Packing::build(&space, &mu, 1.0 / 16.0);
        p.verify(&space, &mu).unwrap();
        // Every node alone has mass eps, so candidates are singletons and
        // the maximal disjoint family is everything.
        assert_eq!(p.balls().len(), 16);
    }

    #[test]
    fn witness_is_best_reach() {
        let space = Space::new(gen::uniform_cube(40, 2, 2));
        let p = check(&space, 0.25);
        for u in space.nodes() {
            let w = p.witness_ball(u);
            let wr = space.dist(u, w.center) + w.radius;
            for b in p.balls() {
                assert!(wr <= space.dist(u, b.center) + b.radius + 1e-12);
            }
        }
    }
}
