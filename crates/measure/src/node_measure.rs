use ron_metric::Node;

/// A probability measure on the nodes of a finite metric space.
///
/// Weights are strictly positive and normalized to sum to 1 (up to
/// floating-point rounding). The counting measure `mu(S) = |S|/n` is the
/// special case the triangulation of Theorem 3.2 uses; the small worlds of
/// Section 5 use a *doubling* measure from
/// [`doubling_measure`](crate::doubling_measure).
///
/// # Example
///
/// ```
/// use ron_measure::NodeMeasure;
/// use ron_metric::Node;
///
/// let mu = NodeMeasure::counting(4);
/// assert_eq!(mu.mass(Node::new(2)), 0.25);
/// assert_eq!(mu.len(), 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct NodeMeasure {
    mass: Vec<f64>,
}

impl NodeMeasure {
    /// The counting measure: every node has mass `1/n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn counting(n: usize) -> Self {
        assert!(n > 0, "measure needs at least one node");
        NodeMeasure {
            mass: vec![1.0 / n as f64; n],
        }
    }

    /// Builds a measure from raw positive weights, normalizing the sum
    /// to 1.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or contains a non-positive or
    /// non-finite entry.
    #[must_use]
    pub fn from_weights(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "measure needs at least one node");
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w > 0.0) && total.is_finite() && total > 0.0,
            "weights must be positive and finite"
        );
        NodeMeasure {
            mass: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// Whether the measure has no nodes (never true: construction panics).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    /// Mass of a single node.
    #[must_use]
    pub fn mass(&self, u: Node) -> f64 {
        self.mass[u.index()]
    }

    /// Total mass of a node set.
    #[must_use]
    pub fn mass_of<'a>(&self, nodes: impl IntoIterator<Item = &'a Node>) -> f64 {
        nodes.into_iter().map(|&u| self.mass(u)).sum()
    }

    /// All node masses, indexed by node.
    #[must_use]
    pub fn masses(&self) -> &[f64] {
        &self.mass
    }

    /// Largest single-node mass.
    #[must_use]
    pub fn max_mass(&self) -> f64 {
        self.mass.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest single-node mass.
    #[must_use]
    pub fn min_mass(&self) -> f64 {
        self.mass.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_measure_is_uniform() {
        let mu = NodeMeasure::counting(8);
        for i in 0..8 {
            assert!((mu.mass(Node::new(i)) - 0.125).abs() < 1e-15);
        }
        let total: f64 = mu.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_weights_normalizes() {
        let mu = NodeMeasure::from_weights(vec![1.0, 3.0]);
        assert!((mu.mass(Node::new(0)) - 0.25).abs() < 1e-15);
        assert!((mu.mass(Node::new(1)) - 0.75).abs() < 1e-15);
        assert_eq!(mu.max_mass(), 0.75);
        assert_eq!(mu.min_mass(), 0.25);
    }

    #[test]
    fn mass_of_sums_subset() {
        let mu = NodeMeasure::counting(10);
        let set = [Node::new(1), Node::new(2), Node::new(3)];
        assert!((mu.mass_of(&set) - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weights() {
        let _ = NodeMeasure::from_weights(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = NodeMeasure::from_weights(vec![]);
    }
}
