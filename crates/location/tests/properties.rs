//! Property-based tests for the object-location subsystem: static
//! delivery, bounded stretch across the paper's instance families, and
//! recovery after arbitrary join/leave sequences.

use proptest::prelude::*;
use ron_location::{
    ChurnConfig, ChurnSchedule, DirectoryNodeState, DirectoryOverlay, EngineConfig, EpochCell,
    ObjectId, QueryEngine, Snapshot,
};
use ron_metric::{gen, LineMetric, Metric, NetTreeIndex, Node, Space};

/// Static worst-case stretch bound of the factor-2 overlay (documented in
/// `lookup.rs`: climb <= 4 r*, chain hop <= 3 r*, descent <= 2 r*, with
/// r* <= 2 d).
const STRETCH_BOUND: f64 = 18.0;

fn publish_some<M: Metric>(
    space: &Space<M>,
    overlay: &mut DirectoryOverlay,
    objects: usize,
    stride: usize,
) {
    let n = space.len();
    for i in 0..objects {
        overlay.publish(space, ObjectId(i as u64), Node::new((i * stride + 1) % n));
    }
}

/// Every lookup succeeds and stays within the stretch bound; returns the
/// worst stretch observed.
fn check_all_pairs<M: Metric>(space: &Space<M>, overlay: &DirectoryOverlay) -> f64 {
    let mut worst = 1.0f64;
    for s in space.nodes().filter(|&s| overlay.is_alive(s)) {
        for &obj in overlay.objects() {
            let out = overlay
                .lookup(space, s, obj)
                .unwrap_or_else(|e| panic!("lookup {obj} from {s}: {e}"));
            let home = overlay.home_of(obj).expect("published");
            assert_eq!(out.home, home, "wrong home for {obj} from {s}");
            worst = worst.max(out.stretch(space.dist(s, home)));
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (a) Static delivery: every published object is found from every
    /// origin, on uniform cubes.
    #[test]
    fn static_delivery_on_cubes(n in 24usize..64, objects in 1usize..8, seed in 0u64..200) {
        let space = Space::new(gen::uniform_cube(n, 2, seed));
        let mut overlay = DirectoryOverlay::build(&space);
        publish_some(&space, &mut overlay, objects, 13);
        let worst = check_all_pairs(&space, &overlay);
        prop_assert!(worst <= STRETCH_BOUND, "stretch {worst}");
    }

    /// (b) Stretch is bounded on perturbed grids (UL-constrained growth).
    #[test]
    fn bounded_stretch_on_grids(side in 4usize..7, jitter in 0.0f64..0.4, seed in 0u64..100) {
        let space = Space::new(gen::perturbed_grid(side, 2, jitter, seed));
        let mut overlay = DirectoryOverlay::build(&space);
        publish_some(&space, &mut overlay, 4, 7);
        let worst = check_all_pairs(&space, &overlay);
        prop_assert!(worst <= STRETCH_BOUND, "stretch {worst}");
    }

    /// (b) ... and on clustered Internet-latency-like metrics.
    #[test]
    fn bounded_stretch_on_clusters(n in 24usize..56, clusters in 2usize..6, seed in 0u64..100) {
        let space = Space::new(gen::clustered(n, 2, clusters, 0.01, seed));
        let mut overlay = DirectoryOverlay::build(&space);
        publish_some(&space, &mut overlay, 4, 11);
        let worst = check_all_pairs(&space, &overlay);
        prop_assert!(worst <= STRETCH_BOUND, "stretch {worst}");
    }

    /// (b) ... and on the exponential line (super-polynomial aspect
    /// ratio: many ladder levels, the regime where geometric sums must
    /// save the climb).
    #[test]
    fn bounded_stretch_on_exponential_line(n in 8usize..20, objects in 1usize..5) {
        let space = Space::new(gen::exponential_line(n));
        let mut overlay = DirectoryOverlay::build(&space);
        publish_some(&space, &mut overlay, objects, 3);
        let worst = check_all_pairs(&space, &overlay);
        prop_assert!(worst <= STRETCH_BOUND, "stretch {worst}");
    }

    /// (c) After any leave sequence followed by repair, every lookup
    /// succeeds again (homes may have migrated).
    #[test]
    fn repair_recovers_from_leaves(
        n in 24usize..48,
        seed in 0u64..200,
        kills in prop::collection::btree_set(0usize..48, 1..10),
    ) {
        let space = Space::new(gen::uniform_cube(n, 2, seed));
        let mut overlay = DirectoryOverlay::build(&space);
        publish_some(&space, &mut overlay, 5, 9);
        for k in kills {
            let v = Node::new(k % n);
            if overlay.is_alive(v) && overlay.alive_count() > 1 {
                overlay.leave(v);
            }
        }
        overlay.repair(&space);
        let worst = check_all_pairs(&space, &overlay);
        prop_assert!(worst <= STRETCH_BOUND, "post-repair stretch {worst}");
    }

    /// (c) Interleaved joins and leaves followed by repair likewise
    /// recover, and repairing twice is idempotent.
    #[test]
    fn repair_recovers_from_interleaved_churn(
        n in 24usize..40,
        seed in 0u64..200,
        moves in prop::collection::btree_set(0usize..200, 4..16),
    ) {
        let space = Space::new(gen::uniform_cube(n, 2, seed));
        let mut overlay = DirectoryOverlay::build(&space);
        publish_some(&space, &mut overlay, 4, 5);
        for m in moves {
            let v = Node::new(m % n);
            if overlay.is_alive(v) {
                if overlay.alive_count() > 2 {
                    overlay.leave(v);
                }
            } else {
                overlay.join(&space, v);
            }
        }
        overlay.repair(&space);
        check_all_pairs(&space, &overlay);
        // A second repair finds nothing left to do.
        let idle = overlay.repair(&space);
        prop_assert_eq!(idle.pointer_writes, 0);
        prop_assert_eq!(idle.promotions, 0);
        prop_assert_eq!(idle.rehomed, 0);
    }

    /// The churn driver restores full success under both schedules.
    #[test]
    fn driver_restores_success(n in 32usize..56, seed in 0u64..100, flavor in 0u64..2) {
        let space = Space::new(gen::uniform_cube(n, 2, seed));
        let mut overlay = DirectoryOverlay::build(&space);
        publish_some(&space, &mut overlay, 6, 7);
        let schedule = if flavor == 1 {
            ChurnSchedule::Targeted { fraction: 0.2 }
        } else {
            ChurnSchedule::Random { fraction: 0.2, seed }
        };
        let report = ron_location::drive_churn(
            &space,
            &mut overlay,
            schedule,
            &ChurnConfig { steps: 2, queries_per_step: 64, seed },
        );
        prop_assert_eq!(report.final_success_rate(), 1.0);
        check_all_pairs(&space, &overlay);
    }
}

/// Drives one serve-during-repair race over `space` and checks the
/// epoch-publication safety property: reader threads load the published
/// snapshot and record `(epoch, origin, obj, answer)` while the main
/// thread publishes a leave wave (epoch 1) and then a repair built off
/// to the side (epoch 2). Afterwards every recorded answer is recomputed
/// on the *retained* snapshot of its epoch — each answer must be exactly
/// the answer of one published plan state, pre-plan-valid or
/// post-plan-valid, never a torn mixture — and every reader must observe
/// epochs monotonically.
fn assert_never_torn<M: Metric + Sync>(space: &Space<M>, objects: usize, victims: usize) {
    use std::sync::atomic::{AtomicBool, Ordering};

    let n = space.len();
    let mut overlay = DirectoryOverlay::build(space);
    publish_some(space, &mut overlay, objects, 13);
    let cell = EpochCell::new(Snapshot::capture(space, &overlay));
    let mut retained = vec![cell.load()];
    let stop = AtomicBool::new(false);

    let records = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let (cell, stop) = (&cell, &stop);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut last_epoch = 0u64;
                    let mut q = r;
                    // ordering: Acquire -- pairs with the Release
                    // store below; reader exit must observe everything
                    // the writer did before raising the flag.
                    while !stop.load(Ordering::Acquire) {
                        let snap = cell.load();
                        assert!(
                            snap.epoch() >= last_epoch,
                            "published epochs must be monotone per reader"
                        );
                        last_epoch = snap.epoch();
                        let origin = Node::new((q * 53 + 7) % n);
                        let obj = ObjectId((q % objects) as u64);
                        out.push((snap.epoch(), origin, obj, snap.lookup(space, origin, obj)));
                        q += 2;
                    }
                    out
                })
            })
            .collect();

        // The writer script: the leave wave lands as one published epoch,
        // the repair is built off to the side and swapped in as the next.
        for k in 0..victims {
            let v = Node::new((k * 11 + 3) % n);
            if overlay.is_alive(v) && overlay.alive_count() > 2 {
                overlay.leave(v);
            }
        }
        overlay.publish_snapshot(space, &cell);
        retained.push(cell.load());
        std::thread::sleep(std::time::Duration::from_millis(1));
        overlay.repair_published(space, &cell);
        retained.push(cell.load());
        std::thread::sleep(std::time::Duration::from_millis(1));
        // ordering: Release -- publishes the writer's final state to
        // readers that exit on the Acquire load above.
        stop.store(true, Ordering::Release);
        readers
            .into_iter()
            .flat_map(|r| r.join().expect("reader panicked"))
            .collect::<Vec<_>>()
    });

    assert_eq!(
        retained
            .iter()
            .map(ron_location::Published::epoch)
            .collect::<Vec<_>>(),
        vec![0, 1, 2]
    );
    assert!(!records.is_empty(), "the race must observe some lookups");
    for (epoch, origin, obj, answer) in &records {
        let expected = retained[*epoch as usize].lookup(space, *origin, *obj);
        assert_eq!(
            answer, &expected,
            "epoch {epoch}: the answer from {origin} for {obj} must be exactly the \
             published plan state's answer — never a torn mixture"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Mid-repair answers are never torn, on uniform cubes.
    #[test]
    fn never_torn_on_cubes(n in 32usize..64, seed in 0u64..100) {
        assert_never_torn(&Space::new(gen::uniform_cube(n, 2, seed)), 6, n / 8);
    }

    /// ... on perturbed grids.
    #[test]
    fn never_torn_on_grids(side in 5usize..7, jitter in 0.0f64..0.4, seed in 0u64..100) {
        let space = Space::new(gen::perturbed_grid(side, 2, jitter, seed));
        let victims = space.len() / 8;
        assert_never_torn(&space, 5, victims);
    }

    /// ... on clustered Internet-latency-like metrics.
    #[test]
    fn never_torn_on_clusters(n in 32usize..56, clusters in 2usize..6, seed in 0u64..100) {
        assert_never_torn(&Space::new(gen::clustered(n, 2, clusters, 0.01, seed)), 5, n / 8);
    }

    /// ... and on the exponential line (deep ladders: the most levels a
    /// torn read could straddle).
    #[test]
    fn never_torn_on_exponential_line(n in 10usize..20) {
        assert_never_torn(&Space::new(gen::exponential_line(n)), 4, n / 6);
    }
}

/// A `serve()` batch racing a publish observes only complete snapshots:
/// both the pre-churn and post-repair directories serve every query in
/// the batch, so a mid-batch swap cannot produce a single failure — and
/// the epoch tags keep stale cache entries from leaking across the swap.
#[test]
fn engine_batch_racing_a_publish_never_fails() {
    let space = Space::new(gen::uniform_cube(96, 2, 23));
    let mut overlay = DirectoryOverlay::build(&space);
    publish_some(&space, &mut overlay, 8, 13);
    let victims: Vec<Node> = (0..6).map(|k| Node::new((k * 17 + 3) % 96)).collect();
    let queries: Vec<(Node, ObjectId)> = (0..20_000usize)
        .map(|q| {
            let mut origin = Node::new((q * 53 + 7) % 96);
            while victims.contains(&origin) {
                origin = Node::new((origin.index() + 1) % 96);
            }
            (origin, ObjectId((q % 8) as u64))
        })
        .collect();
    let directory = EpochCell::new(Snapshot::capture(&space, &overlay));
    let engine = QueryEngine::new(&space, &directory);
    let config = EngineConfig {
        workers: 4,
        cache_capacity: 512,
        cache_shards: 4,
    };
    let report = std::thread::scope(|scope| {
        let serve = scope.spawn(|| engine.serve(&queries, &config));
        for &v in &victims {
            overlay.leave(v);
        }
        overlay.repair_published(&space, &directory);
        serve.join().expect("serve thread panicked")
    });
    assert_eq!(report.served, queries.len());
    assert_eq!(
        report.successes, report.served,
        "a mid-batch epoch swap must not fail a query"
    );
    assert_eq!(directory.epoch(), 1);
}

/// The three storage representations of the directory state — the
/// overlay's compact sorted-array pointer tables, the snapshot's cloned
/// tables, and the per-node `BTreeMap` slices of `partition()` — must
/// agree entry for entry after publishes, unpublishes, churn and repair.
fn assert_representations_agree<M: Metric>(space: &Space<M>, objects: usize, victims: usize) {
    let n = space.len();
    let mut overlay = DirectoryOverlay::build(space);
    publish_some(space, &mut overlay, objects, 13);
    for k in 0..victims {
        let v = Node::new((k * 11 + 3) % n);
        if overlay.is_alive(v) && overlay.alive_count() > 2 {
            overlay.leave(v);
        }
    }
    overlay.repair(space);
    overlay.unpublish(ObjectId(0));

    let snap = Snapshot::capture(space, &overlay);
    let slices = overlay.partition(space);
    assert_eq!(
        overlay.total_entries(),
        slices
            .iter()
            .map(DirectoryNodeState::entries)
            .sum::<usize>()
    );
    for (i, slice) in slices.iter().enumerate() {
        assert_eq!(
            slice.entries(),
            overlay.entries_at(Node::new(i)),
            "node {i}"
        );
    }
    for s in space.nodes().filter(|&s| overlay.is_alive(s)) {
        for &obj in overlay.objects() {
            let a = overlay.lookup(space, s, obj).expect("overlay lookup");
            let b = snap.lookup(space, s, obj).expect("snapshot lookup");
            assert_eq!(a, b, "lookup({s}, {obj})");
        }
    }
}

#[test]
fn storage_representations_agree_on_all_families() {
    assert_representations_agree(&Space::new(gen::uniform_cube(48, 2, 17)), 6, 6);
    assert_representations_agree(&Space::new(gen::clustered(48, 2, 4, 0.02, 9)), 6, 6);
    assert_representations_agree(&Space::new(gen::perturbed_grid(6, 2, 0.3, 4)), 5, 4);
    assert_representations_agree(&Space::new(gen::exponential_line(14)), 3, 2);
}

/// End to end on the incremental index: a `NetTreeIndex` grown one
/// `insert` at a time (in a scrambled order) backs the same directory
/// overlay as the batch-built sparse backend — identical ring family,
/// identical pointer placement, identical lookups.
#[test]
fn incremental_tree_overlay_matches_batch_sparse() {
    let n = 48usize;
    let metric = gen::uniform_cube(n, 2, 17);
    let batch = Space::new_sparse(metric.clone());

    let mut tree = NetTreeIndex::incremental(metric.clone());
    for i in 0..n {
        // An affine permutation of the id space: far from insertion order.
        tree.insert(Node::new((i * 29 + 11) % n));
    }
    let inc = Space::from_parts(metric, tree);

    let mut ov_batch = DirectoryOverlay::build(&batch);
    let mut ov_inc = DirectoryOverlay::build(&inc);
    assert_eq!(ov_inc.rings(), ov_batch.rings());

    let items: Vec<(ObjectId, Node)> = (0..10)
        .map(|i| (ObjectId(i as u64), Node::new((i * 13 + 5) % n)))
        .collect();
    let writes_batch = ov_batch.publish_batch(&batch, &items);
    let writes_inc = ov_inc.publish_batch(&inc, &items);
    assert_eq!(writes_inc, writes_batch);
    assert_eq!(ov_inc.total_entries(), ov_batch.total_entries());
    for s in batch.nodes() {
        assert_eq!(ov_inc.entries_at(s), ov_batch.entries_at(s), "load at {s}");
        for &(obj, home) in &items {
            let a = ov_batch.lookup(&batch, s, obj).expect("batch lookup");
            let b = ov_inc.lookup(&inc, s, obj).expect("incremental lookup");
            assert_eq!(a.home, home);
            assert_eq!(a, b, "lookup({s}, {obj})");
        }
    }
}

/// Non-proptest: the line metric exercises exact distance ties.
#[test]
fn static_delivery_on_uniform_line() {
    let space = Space::new(LineMetric::uniform(48).unwrap());
    let mut overlay = DirectoryOverlay::build(&space);
    publish_some(&space, &mut overlay, 6, 11);
    let worst = check_all_pairs(&space, &overlay);
    assert!(worst <= STRETCH_BOUND);
}

/// `publish_batch` (parallel planning, ordered install) is byte-identical
/// to publishing the same pairs one at a time, and parallel overlay
/// construction matches single-threaded construction entry for entry.
#[test]
fn batched_and_parallel_publish_match_sequential() {
    use ron_core::par;
    let space = Space::new(gen::uniform_cube(96, 2, 31));
    let items: Vec<(ObjectId, Node)> = (0..24)
        .map(|i| (ObjectId(i as u64), Node::new((i * 13 + 5) % 96)))
        .collect();

    let mut sequential = DirectoryOverlay::build(&space);
    let mut seq_writes = 0usize;
    for &(obj, home) in &items {
        seq_writes += sequential.publish(&space, obj, home);
    }
    let mut batched = par::with_threads(1, || DirectoryOverlay::build(&space));
    let batch_writes = par::with_threads(4, || batched.publish_batch(&space, &items));

    assert_eq!(batch_writes, seq_writes);
    assert_eq!(batched.objects(), sequential.objects());
    assert_eq!(batched.total_entries(), sequential.total_entries());
    assert_eq!(batched.rings(), sequential.rings());
    for v in space.nodes() {
        assert_eq!(
            batched.entries_at(v),
            sequential.entries_at(v),
            "load at {v}"
        );
    }
    for &(obj, _) in &items {
        assert_eq!(batched.home_of(obj), sequential.home_of(obj));
        for s in space.nodes() {
            let a = batched.lookup(&space, s, obj).expect("batched lookup");
            let b = sequential
                .lookup(&space, s, obj)
                .expect("sequential lookup");
            assert_eq!(a, b, "lookup({s}, {obj})");
        }
    }
}

/// The full serving pipeline works end to end on the sparse backend:
/// build, publish, look up everything, churn, repair, recover.
#[test]
fn directory_on_sparse_backend_serves_and_recovers() {
    let space = Space::new_sparse(gen::uniform_cube(64, 2, 41));
    let mut overlay = DirectoryOverlay::build(&space);
    let items: Vec<(ObjectId, Node)> = (0..12)
        .map(|i| (ObjectId(i as u64), Node::new((i * 11 + 2) % 64)))
        .collect();
    overlay.publish_batch(&space, &items);
    let mut worst = 1.0f64;
    for s in space.nodes() {
        for &(obj, home) in &items {
            let out = overlay.lookup(&space, s, obj).expect("static lookup");
            assert_eq!(out.home, home);
            worst = worst.max(out.stretch(space.dist(s, home)));
        }
    }
    assert!(worst <= STRETCH_BOUND, "sparse-backend stretch {worst}");
    let report = ron_location::drive_churn(
        &space,
        &mut overlay,
        ChurnSchedule::Targeted { fraction: 0.2 },
        &ChurnConfig {
            steps: 2,
            queries_per_step: 128,
            seed: 7,
        },
    );
    assert_eq!(report.final_success_rate(), 1.0);
}
