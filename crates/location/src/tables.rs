//! Compact per-node directory pointer tables.
//!
//! The overlay used to hold `tables[v][j]: HashMap<ObjectId, Node>` — an
//! `n x levels` grid of hash maps. Each `HashMap` costs ~48 bytes of
//! header *empty*, so at `n = 2^20` nodes and ~20 ladder levels the grid
//! burned a gigabyte before the first publish. [`PointerTables`] replaces
//! the grid with one sorted compact array per node: entries keyed by
//! `(level, object)`, 16 bytes each, found by binary search. Per-node
//! tables are small (a node holds one entry per object whose publish ring
//! it sits in, per level), so sorted-insert beats hashing on both memory
//! and cache behaviour.

use ron_metric::mem::vec_capacity_bytes;
use ron_metric::{CompactId, HeapBytes, Node};

use crate::directory::ObjectId;

/// One directory entry resident at a node: the level-`level` pointer for
/// `obj`, forwarding to `target`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct PointerEntry {
    level: u32,
    obj: ObjectId,
    target: CompactId,
}

impl PointerEntry {
    fn key(&self) -> (u32, ObjectId) {
        (self.level, self.obj)
    }
}

/// All nodes' directory pointer tables: `entries[v]` is node `v`'s table,
/// sorted by `(level, object)`.
#[derive(Clone, Debug, Default)]
pub(crate) struct PointerTables {
    entries: Vec<Vec<PointerEntry>>,
}

impl PointerTables {
    /// Empty tables for `n` nodes.
    pub(crate) fn new(n: usize) -> Self {
        PointerTables {
            entries: vec![Vec::new(); n],
        }
    }

    /// The entry for `obj` at `(v, level)`, if installed.
    pub(crate) fn get(&self, v: Node, level: usize, obj: ObjectId) -> Option<Node> {
        let table = &self.entries[v.index()];
        table
            .binary_search_by_key(&(level as u32, obj), PointerEntry::key)
            .ok()
            .map(|i| table[i].target.node())
    }

    /// Installs (or retargets) the entry for `obj` at `(v, level)`,
    /// returning the previous target — `HashMap::insert` semantics, so
    /// repair's did-the-table-change accounting carries over unchanged.
    pub(crate) fn insert(
        &mut self,
        v: Node,
        level: usize,
        obj: ObjectId,
        target: Node,
    ) -> Option<Node> {
        let table = &mut self.entries[v.index()];
        let entry = PointerEntry {
            level: level as u32,
            obj,
            target: CompactId::from(target),
        };
        match table.binary_search_by_key(&entry.key(), PointerEntry::key) {
            Ok(i) => Some(std::mem::replace(&mut table[i], entry).target.node()),
            Err(i) => {
                table.insert(i, entry);
                None
            }
        }
    }

    /// Deletes the entry for `obj` at `(v, level)`, returning the removed
    /// target if one was present.
    pub(crate) fn remove(&mut self, v: Node, level: usize, obj: ObjectId) -> Option<Node> {
        let table = &mut self.entries[v.index()];
        table
            .binary_search_by_key(&(level as u32, obj), PointerEntry::key)
            .ok()
            .map(|i| table.remove(i).target.node())
    }

    /// Drops every entry stored at `v` (the node left; its state is
    /// lost), releasing the memory.
    pub(crate) fn clear_node(&mut self, v: Node) {
        self.entries[v.index()] = Vec::new();
    }

    /// Entries resident at `v` — its share of the serving load.
    pub(crate) fn entries_at(&self, v: Node) -> usize {
        self.entries[v.index()].len()
    }

    /// Total entries across all nodes.
    pub(crate) fn total(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// Iterates `v`'s entries as `(level, object, target)` in
    /// `(level, object)` order (partitioning into per-node slices).
    pub(crate) fn node_entries(
        &self,
        v: Node,
    ) -> impl Iterator<Item = (usize, ObjectId, Node)> + '_ {
        self.entries[v.index()]
            .iter()
            .map(|e| (e.level as usize, e.obj, e.target.node()))
    }
}

impl HeapBytes for PointerTables {
    fn heap_bytes(&self) -> usize {
        vec_capacity_bytes(&self.entries)
            + self.entries.iter().map(vec_capacity_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = PointerTables::new(4);
        let v = Node::new(2);
        assert_eq!(t.insert(v, 1, ObjectId(7), Node::new(3)), None);
        assert_eq!(t.insert(v, 0, ObjectId(7), Node::new(1)), None);
        assert_eq!(t.get(v, 1, ObjectId(7)), Some(Node::new(3)));
        assert_eq!(t.get(v, 0, ObjectId(7)), Some(Node::new(1)));
        assert_eq!(t.get(v, 1, ObjectId(8)), None);
        assert_eq!(t.get(Node::new(0), 1, ObjectId(7)), None);
        // Retarget returns the previous pointer.
        assert_eq!(
            t.insert(v, 1, ObjectId(7), Node::new(0)),
            Some(Node::new(3))
        );
        assert_eq!(t.entries_at(v), 2);
        assert_eq!(t.total(), 2);
        assert_eq!(t.remove(v, 1, ObjectId(7)), Some(Node::new(0)));
        assert_eq!(t.remove(v, 1, ObjectId(7)), None);
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn node_entries_iterate_in_key_order() {
        let mut t = PointerTables::new(2);
        let v = Node::new(1);
        t.insert(v, 2, ObjectId(5), Node::new(0));
        t.insert(v, 0, ObjectId(9), Node::new(1));
        t.insert(v, 0, ObjectId(2), Node::new(1));
        let got: Vec<_> = t.node_entries(v).collect();
        assert_eq!(
            got,
            vec![
                (0, ObjectId(2), Node::new(1)),
                (0, ObjectId(9), Node::new(1)),
                (2, ObjectId(5), Node::new(0)),
            ]
        );
    }

    #[test]
    fn clear_node_releases_the_table() {
        let mut t = PointerTables::new(2);
        t.insert(Node::new(0), 0, ObjectId(1), Node::new(1));
        t.insert(Node::new(1), 0, ObjectId(1), Node::new(0));
        t.clear_node(Node::new(0));
        assert_eq!(t.entries_at(Node::new(0)), 0);
        assert_eq!(t.get(Node::new(0), 0, ObjectId(1)), None);
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn heap_bytes_counts_entries() {
        let mut t = PointerTables::new(8);
        let empty = t.heap_bytes();
        for i in 0..16u64 {
            t.insert(Node::new(3), 0, ObjectId(i), Node::new(0));
        }
        assert!(t.heap_bytes() >= empty + 16 * std::mem::size_of::<PointerEntry>());
    }
}
