//! Serving statistics: latency percentiles and batch reports.

use std::time::Duration;

use ron_routing::PathStats;

/// Latency percentiles over a set of served queries, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of measured queries.
    pub count: usize,
    /// Median latency.
    pub p50_us: f64,
    /// 99th-percentile latency.
    pub p99_us: f64,
    /// Worst latency.
    pub max_us: f64,
    /// Mean latency.
    pub mean_us: f64,
}

impl LatencySummary {
    /// Summarizes raw per-query latencies in nanoseconds. Quantiles use
    /// the workspace-wide nearest-rank convention
    /// ([`ron_core::stats::nearest_rank_index`]).
    #[must_use]
    pub fn from_nanos(mut nanos: Vec<u64>) -> Self {
        if nanos.is_empty() {
            return LatencySummary::default();
        }
        nanos.sort_unstable();
        let us = |n: u64| n as f64 / 1000.0;
        let at = |p: f64| us(nanos[ron_core::stats::nearest_rank_index(nanos.len(), p)]);
        let sum: u64 = nanos.iter().sum();
        LatencySummary {
            count: nanos.len(),
            p50_us: at(0.50),
            p99_us: at(0.99),
            max_us: us(*nanos.last().expect("nonempty")),
            mean_us: us(sum) / nanos.len() as f64,
        }
    }
}

/// Hit/miss accounting for one shard of the engine's LRU result cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Lookups answered from this shard.
    pub hits: u64,
    /// Lookups absent from this shard (cold keys and evicted entries).
    pub misses: u64,
    /// Lookups that found the key but cached against a superseded
    /// publication epoch — rejected, never served.
    pub stale: u64,
}

impl CacheShardStats {
    /// Hit fraction among this shard's gets (1.0 when never probed).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Compact `hits/misses/stale` cell for tables.
    #[must_use]
    pub fn render(&self) -> String {
        format!("{}/{}/{}", self.hits, self.misses, self.stale)
    }
}

/// The outcome of serving one batch through the query engine.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Queries served.
    pub served: usize,
    /// Queries that located the current home.
    pub successes: usize,
    /// Queries that failed (only possible on damaged overlays).
    pub failures: usize,
    /// Queries answered from the LRU result cache.
    pub cache_hits: usize,
    /// Wall-clock time for the whole batch.
    pub elapsed: Duration,
    /// Per-query latency percentiles.
    pub latency: LatencySummary,
    /// Hops/stretch statistics over the successful lookups.
    pub paths: PathStats,
    /// Per-shard cache accounting for the batch, in shard order (empty
    /// when the cache is disabled).
    pub cache_shards: Vec<CacheShardStats>,
}

impl BatchReport {
    /// Lookups served per second.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.served as f64 / secs
        }
    }

    /// Fraction of queries that located the current home.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.served == 0 {
            1.0
        } else {
            self.successes as f64 / self.served as f64
        }
    }

    /// Compact per-shard cache summary for table detail cells:
    /// `h/m/st 12/8/0 11/9/1 ...` in shard order, or `-` when the
    /// cache was disabled.
    #[must_use]
    pub fn render_cache_shards(&self) -> String {
        if self.cache_shards.is_empty() {
            return "-".to_string();
        }
        let cells: Vec<String> = self
            .cache_shards
            .iter()
            .map(CacheShardStats::render)
            .collect();
        format!("h/m/st {}", cells.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles() {
        let nanos: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        let s = LatencySummary::from_nanos(nanos);
        assert_eq!(s.count, 100);
        // Nearest rank (shared with ron-sim): the p50 of 1..=100 is 50.
        assert_eq!(s.p50_us, 50.0);
        assert_eq!(s.p99_us, 99.0);
        assert_eq!(s.max_us, 100.0);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(
            LatencySummary::from_nanos(Vec::new()),
            LatencySummary::default()
        );
    }

    #[test]
    fn report_rates() {
        let mut r = BatchReport::default();
        assert_eq!(r.success_rate(), 1.0);
        r.served = 4;
        r.successes = 3;
        r.failures = 1;
        r.elapsed = Duration::from_millis(2);
        assert_eq!(r.success_rate(), 0.75);
        assert!((r.throughput() - 2000.0).abs() < 1e-9);
        assert_eq!(BatchReport::default().throughput(), f64::INFINITY);
    }
}
