//! The directory overlay state: net-ladder membership, per-node pointer
//! tables, and the object registry.
//!
//! A [`DirectoryOverlay`] turns the static structures of `ron-nets` and
//! `ron-core` into a serving system. It is built once over a
//! [`Space`](ron_metric::Space) and then mutated by `publish` /
//! `unpublish` (see [`publish`](crate::publish)), `join` / `leave` /
//! `repair` (see [`churn`](crate::churn)), and queried by `lookup`
//! (see [`lookup`](crate::lookup)) or through an immutable
//! [`Snapshot`](crate::engine::Snapshot).

use std::collections::HashMap;

use ron_core::RingFamily;
use ron_metric::mem::{nested_vec_bytes, vec_capacity_bytes};
use ron_metric::{BallOracle, HeapBytes, Metric, Node, Space};
use ron_nets::NestedNets;

use crate::tables::PointerTables;

/// Identifier of a published object.
///
/// Objects are application payloads; the overlay only tracks which node
/// currently *homes* each object and where the directory pointers to that
/// home live.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj:{}", self.0)
    }
}

/// Where one object's directory state lives: its zoom chain and the
/// `(level, node)` pairs holding pointer entries for it.
#[derive(Clone, Debug, Default)]
pub(crate) struct Placement {
    /// `chain[j]` is the net point the level-`j+1` entries forward to
    /// (`chain[0]` is the home itself, since `G_0` contains every node).
    pub(crate) chain: Vec<Node>,
    /// Every `(level, node)` currently holding an entry for the object.
    pub(crate) entries: Vec<(usize, Node)>,
}

/// Default ring-radius factor: pointers for an object homed at `h` are
/// replicated on `B_h(2 r_j) ∩ G_j` at every ladder level `j`.
///
/// Factor 2 is the smallest with a static delivery guarantee: a lookup
/// finger `f_sj` satisfies `d(f_sj, h) <= r_j + d(s, h)`, so the entry is
/// present whenever `r_j >= d(s, h)` — and the top radius dominates the
/// diameter, so the climb always terminates successfully.
pub const DEFAULT_RING_FACTOR: f64 = 2.0;

/// The publish/lookup directory overlay.
///
/// Structure (the object-location half of the paper, realised in the
/// Awerbuch–Peleg style over the paper's net rings): for each object with
/// home `h`, a pointer to the next chain node is installed at every member
/// of the ring `B_h(c r_j) ∩ G_j` for every ladder level `j` (the rings of
/// [`RingFamily::from_nets`] with radius `c r_j`). A lookup from origin `s`
/// climbs the fingers `f_sj` (nearest net member per level — the zooming
/// sequence of `s`, reversed) until it hits an entry, then follows the
/// stored chain — the zooming sequence of `h` — down to the home.
///
/// The dynamics layer maintains net membership and pointers under churn;
/// see [`DirectoryOverlay::join`], [`DirectoryOverlay::leave`] and
/// [`DirectoryOverlay::repair`].
///
/// # Example
///
/// ```
/// use ron_location::{DirectoryOverlay, ObjectId};
/// use ron_metric::{gen, Node, Space};
///
/// let space = Space::new(gen::uniform_cube(64, 2, 7));
/// let mut overlay = DirectoryOverlay::build(&space);
/// overlay.publish(&space, ObjectId(1), Node::new(9));
/// let hit = overlay.lookup(&space, Node::new(40), ObjectId(1))?;
/// assert_eq!(hit.home, Node::new(9));
/// # Ok::<(), ron_location::LocateError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DirectoryOverlay {
    pub(crate) ring_factor: f64,
    pub(crate) radii: Vec<f64>,
    pub(crate) nets: NestedNets,
    pub(crate) rings: RingFamily,
    /// Dynamic net membership: `member[j][v]` iff `v` is an *alive* member
    /// of the level-`j` net. Starts as the static ladder.
    pub(crate) member: Vec<Vec<bool>>,
    /// Whether level `j` has diverged from the static ladder (any join,
    /// leave or promotion) — controls the static fast path in `publish`.
    pub(crate) level_dirty: Vec<bool>,
    /// Nodes whose level-`j` membership changed since the last `repair`.
    pub(crate) touched: Vec<Vec<Node>>,
    pub(crate) alive: Vec<bool>,
    pub(crate) alive_count: usize,
    /// Per-node directory pointer entries, keyed by `(level, object)` in
    /// one sorted compact array per node.
    pub(crate) tables: PointerTables,
    /// Published objects in publish order (deterministic iteration).
    pub(crate) objects: Vec<ObjectId>,
    pub(crate) homes: HashMap<ObjectId, Node>,
    pub(crate) placements: HashMap<ObjectId, Placement>,
    /// Version counter over this overlay lineage: bumped by every
    /// lookup-affecting mutation (publish, unpublish, join, leave, plan
    /// application). Snapshots are stamped with it, so epoch-tagged cache
    /// entries from an older state are rejected after a publication.
    pub(crate) epoch: u64,
}

impl DirectoryOverlay {
    /// Builds the overlay over `space` with the default ring factor.
    #[must_use]
    pub fn build<M: Metric, I: BallOracle>(space: &Space<M, I>) -> Self {
        Self::build_with_factor(space, DEFAULT_RING_FACTOR)
    }

    /// Builds the overlay with an explicit ring-radius factor.
    ///
    /// # Panics
    ///
    /// Panics if `ring_factor < 2.0` (the smallest factor with a static
    /// delivery guarantee; see [`DEFAULT_RING_FACTOR`]).
    #[must_use]
    pub fn build_with_factor<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        ring_factor: f64,
    ) -> Self {
        let nets = NestedNets::build(space);
        // The publish rings are exactly the net rings of Theorem 2.1 shape
        // with radius `ring_factor * r_j`.
        let rings = RingFamily::from_nets(space, &nets, |_, r| Some(ring_factor * r));
        let _stage = ron_obs::stage("directory");
        let _span = ron_obs::span("construct.directory");
        Self::from_structures(space.len(), nets, rings, ring_factor)
    }

    /// Assembles the overlay from an already-built ladder and ring family
    /// (the rings must be the per-level rings at radius
    /// `ring_factor * r_j`), so callers that built those structures for
    /// other purposes — or benchmarks timing each stage — don't pay for
    /// them twice.
    ///
    /// # Panics
    ///
    /// Panics if `ring_factor < 2.0` or if the arities disagree.
    #[must_use]
    pub fn from_structures(
        n: usize,
        nets: NestedNets,
        rings: RingFamily,
        ring_factor: f64,
    ) -> Self {
        assert!(
            ring_factor >= 2.0,
            "ring factor {ring_factor} loses the delivery guarantee (needs >= 2)"
        );
        assert_eq!(rings.len(), n, "ring family arity must match the space");
        let levels = nets.levels();
        let radii: Vec<f64> = (0..levels).map(|j| nets.radius(j)).collect();
        let member = (0..levels)
            .map(|j| {
                let net = nets.net(j);
                (0..n).map(|v| net.contains(Node::new(v))).collect()
            })
            .collect();
        DirectoryOverlay {
            ring_factor,
            radii,
            nets,
            rings,
            member,
            level_dirty: vec![false; levels],
            touched: vec![Vec::new(); levels],
            alive: vec![true; n],
            alive_count: n,
            tables: PointerTables::new(n),
            objects: Vec::new(),
            homes: HashMap::new(),
            placements: HashMap::new(),
            epoch: 0,
        }
    }

    /// The overlay's mutation epoch: incremented by every lookup-affecting
    /// change (publish, unpublish, join, leave, repair-plan application).
    /// A [`Snapshot`](crate::engine::Snapshot) carries the epoch it was
    /// captured at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes in the underlying space (alive or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether the overlay has no nodes (never true: construction panics).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Number of ladder levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.radii.len()
    }

    /// The ring-radius factor `c` of the publish rings `B_h(c r_j) ∩ G_j`.
    #[must_use]
    pub fn ring_factor(&self) -> f64 {
        self.ring_factor
    }

    /// The static net ladder the overlay was built from.
    #[must_use]
    pub fn nets(&self) -> &NestedNets {
        &self.nets
    }

    /// The static publish rings (`RingFamily` at radius `c r_j`).
    #[must_use]
    pub fn rings(&self) -> &RingFamily {
        &self.rings
    }

    /// Whether `v` is currently alive.
    #[must_use]
    pub fn is_alive(&self, v: Node) -> bool {
        self.alive[v.index()]
    }

    /// Number of alive nodes.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// Whether `v` is an alive member of the level-`j` net.
    #[must_use]
    pub fn is_net_member(&self, level: usize, v: Node) -> bool {
        self.member[level][v.index()]
    }

    /// The finger of `s` at level `j`: the nearest alive member of the
    /// dynamic level-`j` net (with its distance), or `None` if the level
    /// has no members left.
    #[must_use]
    pub fn finger<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
        s: Node,
        level: usize,
    ) -> Option<(f64, Node)> {
        space
            .index()
            .nearest_where(s, &mut |v| self.member[level][v.index()])
    }

    /// Published objects, in publish order.
    #[must_use]
    pub fn objects(&self) -> &[ObjectId] {
        &self.objects
    }

    /// The current home of `obj`, if published. The home may be dead
    /// between a `leave` and the next `repair` (which re-homes it).
    #[must_use]
    pub fn home_of(&self, obj: ObjectId) -> Option<Node> {
        self.homes.get(&obj).copied()
    }

    /// Total directory entries currently installed across all nodes.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.tables.total()
    }

    /// Directory entries stored at `v` (its share of the serving load).
    #[must_use]
    pub fn entries_at(&self, v: Node) -> usize {
        self.tables.entries_at(v)
    }

    /// Nodes whose level-`level` membership changed since the last
    /// repair — the touched-set delta the repair planner (and the
    /// distributed repair protocol's coordinator) works from.
    #[must_use]
    pub fn touched_since_repair(&self, level: usize) -> &[Node] {
        &self.touched[level]
    }

    /// The coarsest ladder level `v` is currently a member of, or `None`
    /// if `v` is dead. Coarse members are the overlay's hubs: they cover
    /// large balls and hold the most pointers.
    #[must_use]
    pub fn top_level_of(&self, v: Node) -> Option<usize> {
        if !self.alive[v.index()] {
            return None;
        }
        (0..self.levels())
            .rev()
            .find(|&j| self.member[j][v.index()])
    }

    /// The dynamic publish ring of `home` at `level`: alive members of the
    /// dynamic net within `ring_factor * r_level` of `home`, nearest first.
    #[must_use]
    pub(crate) fn dynamic_ring<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
        home: Node,
        level: usize,
    ) -> Vec<Node> {
        let r = self.ring_factor * self.radii[level];
        let mut ring = Vec::new();
        space.index().for_each_in_ball(home, r, &mut |_, v| {
            if self.member[level][v.index()] {
                ring.push(v);
            }
        });
        ring
    }

    /// Looks up the level-`level` entry for `obj` at node `v`.
    #[must_use]
    pub(crate) fn entry(&self, v: Node, level: usize, obj: ObjectId) -> Option<Node> {
        self.tables.get(v, level, obj)
    }
}

impl HeapBytes for DirectoryOverlay {
    /// The overlay's structural heap footprint: ladder radii, dynamic
    /// membership, touched sets, the ring arena and the pointer tables.
    /// The per-object registry (`homes`, `placements`) scales with the
    /// published object count, not with `n`, and `HashMap` capacity is not
    /// observable — it is deliberately left out, so the accounted value is
    /// the bytes-per-*node* quantity the scaling benchmark budgets.
    fn heap_bytes(&self) -> usize {
        vec_capacity_bytes(&self.radii)
            + nested_vec_bytes(&self.member)
            + vec_capacity_bytes(&self.level_dirty)
            + nested_vec_bytes(&self.touched)
            + vec_capacity_bytes(&self.alive)
            + vec_capacity_bytes(&self.objects)
            + self.nets.heap_bytes()
            + self.rings.heap_bytes()
            + self.tables.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::LineMetric;

    fn overlay() -> (Space<LineMetric>, DirectoryOverlay) {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let overlay = DirectoryOverlay::build(&space);
        (space, overlay)
    }

    #[test]
    fn build_mirrors_static_ladder() {
        let (space, ov) = overlay();
        assert_eq!(ov.len(), 32);
        assert_eq!(ov.levels(), ov.nets().levels());
        assert_eq!(ov.alive_count(), 32);
        for (j, net) in ov.nets().iter() {
            for v in space.nodes() {
                assert_eq!(ov.is_net_member(j, v), net.contains(v));
            }
        }
        // Level 0 is everything; the top level is a single hub.
        assert!((0..32).all(|i| ov.is_net_member(0, Node::new(i))));
        let top = ov.levels() - 1;
        let hubs = (0..32)
            .filter(|&i| ov.is_net_member(top, Node::new(i)))
            .count();
        assert_eq!(hubs, 1);
    }

    #[test]
    fn fingers_respect_net_radii() {
        let (space, ov) = overlay();
        for s in space.nodes() {
            for j in 0..ov.levels() {
                let (d, f) = ov.finger(&space, s, j).expect("static nets are full");
                assert!(ov.is_net_member(j, f));
                assert!(d <= ov.nets().radius(j) + 1e-12, "covering at level {j}");
            }
        }
    }

    #[test]
    fn dynamic_ring_matches_static_rings_when_pristine() {
        let (space, ov) = overlay();
        for u in space.nodes() {
            for j in 0..ov.levels() {
                let stat = ov.rings().ring(u, j).expect("all levels built");
                let mut dynamic = ov.dynamic_ring(&space, u, j);
                dynamic.sort_unstable();
                assert_eq!(stat.members(), &dynamic[..], "node {u} level {j}");
            }
        }
    }

    #[test]
    fn top_level_of_finds_hubs() {
        let (_, ov) = overlay();
        let top = ov.levels() - 1;
        let hub = (0..32)
            .map(Node::new)
            .find(|&v| ov.is_net_member(top, v))
            .unwrap();
        assert_eq!(ov.top_level_of(hub), Some(top));
        assert_eq!(ov.total_entries(), 0);
        assert_eq!(ov.entries_at(hub), 0);
    }

    #[test]
    #[should_panic(expected = "delivery guarantee")]
    fn small_ring_factor_rejected() {
        let space = Space::new(LineMetric::uniform(8).unwrap());
        let _ = DirectoryOverlay::build_with_factor(&space, 1.5);
    }
}
