//! Per-node slices of a [`DirectoryOverlay`] for distributed execution.
//!
//! The overlay object holds every node's pointer tables in one process;
//! [`DirectoryOverlay::partition`] splits it into [`DirectoryNodeState`]s,
//! one per node, each owning exactly what that node would hold in a real
//! deployment: its finger table (nearest net member per ladder level —
//! the node's own zooming sequence, reversed), its publish rings
//! (`B_v(c r_j) ∩ G_j`, the members *it* must install pointers on when it
//! homes an object), its directory pointer tables, and the set of objects
//! homed at it. The message-passing simulator (`ron-sim`) runs lookups
//! and publishes against these slices and nothing else.

use std::collections::{BTreeMap, BTreeSet};

use ron_metric::{BallOracle, Metric, Node, Space};

use crate::directory::{DirectoryOverlay, ObjectId};

/// One node's slice of the directory overlay.
#[derive(Clone, Debug)]
pub struct DirectoryNodeState {
    node: Node,
    alive: bool,
    /// `member[j]`: whether this node is a member of the level-`j` net —
    /// the node's own coordinate in the ladder, which the distributed
    /// repair protocol updates through promotion announcements.
    member: Vec<bool>,
    /// `fingers[j]`: nearest alive level-`j` net member to this node.
    fingers: Vec<Option<Node>>,
    /// `rings[j]`: members of this node's publish ring at level `j`.
    rings: Vec<Vec<Node>>,
    /// `tables[j]`: the level-`j` directory entries stored at this node.
    tables: Vec<BTreeMap<ObjectId, Node>>,
    /// Objects homed at this node.
    homed: BTreeSet<ObjectId>,
}

impl DirectoryNodeState {
    /// The node this slice belongs to.
    #[must_use]
    pub fn node(&self) -> Node {
        self.node
    }

    /// Whether the node was alive at partition time.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// Number of ladder levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.fingers.len()
    }

    /// The finger at `level` (nearest net member), if the level had one.
    #[must_use]
    pub fn finger(&self, level: usize) -> Option<Node> {
        self.fingers[level]
    }

    /// The climb itinerary a lookup from this node follows: the
    /// `(level, finger)` pairs in ascending level order, skipping levels
    /// without a finger — exactly the fingers the in-process
    /// `DirectoryOverlay::lookup` climbs.
    #[must_use]
    pub fn itinerary(&self) -> Vec<(usize, Node)> {
        self.fingers
            .iter()
            .enumerate()
            .filter_map(|(j, f)| f.map(|f| (j, f)))
            .collect()
    }

    /// The members of this node's publish ring at `level`.
    #[must_use]
    pub fn ring(&self, level: usize) -> &[Node] {
        &self.rings[level]
    }

    /// The level-`level` directory entry for `obj` stored here, if any.
    #[must_use]
    pub fn entry(&self, level: usize, obj: ObjectId) -> Option<Node> {
        self.tables[level].get(&obj).copied()
    }

    /// Whether this node is a member of the level-`level` net (in its
    /// own, possibly repair-updated, view).
    #[must_use]
    pub fn is_member(&self, level: usize) -> bool {
        self.member[level]
    }

    /// Installs a level-`level` entry for `obj` forwarding to `next`
    /// (what a node does on receiving a publish-install message).
    pub fn install(&mut self, level: usize, obj: ObjectId, next: Node) {
        self.tables[level].insert(obj, next);
    }

    /// Installs an entry and reports whether the table actually changed
    /// — the count a repair ack carries back to the coordinator, matched
    /// against the in-process `pointer_writes`.
    pub fn install_counted(&mut self, level: usize, obj: ObjectId, next: Node) -> bool {
        self.tables[level].insert(obj, next) != Some(next)
    }

    /// Deletes the level-`level` entry for `obj`, returning the removed
    /// forward pointer if one was present (repair reconciliation).
    pub fn remove_entry(&mut self, level: usize, obj: ObjectId) -> Option<Node> {
        self.tables[level].remove(&obj)
    }

    /// Marks this node a member of the level-`level` net (a repair
    /// covering-promotion announcement, or a join's ladder insertion).
    pub fn promote(&mut self, level: usize) {
        self.member[level] = true;
    }

    /// Replaces the finger at `level` (a repair finger refresh: the
    /// coordinator recomputed the nearest member under the new
    /// membership).
    pub fn set_finger(&mut self, level: usize, finger: Option<Node>) {
        self.fingers[level] = finger;
    }

    /// Resets the slice to a fresh joiner: alive, no memberships, no
    /// entries, homing nothing. A node that *left* lost its state; when
    /// it rejoins, the repair protocol rebuilds what it should hold
    /// (join backfill). Fingers are kept — the joiner receives refreshed
    /// ones in the same repair gram.
    pub fn reset(&mut self) {
        self.alive = true;
        self.member.iter_mut().for_each(|m| *m = false);
        self.tables.iter_mut().for_each(BTreeMap::clear);
        self.homed.clear();
    }

    /// Whether `obj` is homed at this node.
    #[must_use]
    pub fn homes(&self, obj: ObjectId) -> bool {
        self.homed.contains(&obj)
    }

    /// Records that `obj` is now homed here (what a node does when it
    /// accepts a publish).
    pub fn adopt(&mut self, obj: ObjectId) {
        self.homed.insert(obj);
    }

    /// Directory entries resident in this slice — the node's share of the
    /// structure's memory.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.tables.iter().map(BTreeMap::len).sum()
    }
}

impl DirectoryOverlay {
    /// Splits the overlay into per-node slices (see the module docs).
    ///
    /// The slices reflect the overlay's *current* dynamic state: alive
    /// flags, dynamic net membership (through the fingers and rings) and
    /// all installed pointer entries. Capture fresh slices after churn
    /// plus repair, exactly like [`Snapshot`](crate::engine::Snapshot).
    #[must_use]
    pub fn partition<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
    ) -> Vec<DirectoryNodeState> {
        let levels = self.levels();
        let mut homed: Vec<BTreeSet<ObjectId>> = vec![BTreeSet::new(); self.len()];
        // ron-lint: allow(map-order): each (obj, home) entry lands in
        // its home node's BTreeSet; visit order is unobservable in the
        // returned per-node slices.
        for (&obj, &home) in &self.homes {
            homed[home.index()].insert(obj);
        }
        (0..self.len())
            .map(|i| {
                let v = Node::new(i);
                DirectoryNodeState {
                    node: v,
                    alive: self.is_alive(v),
                    member: (0..levels).map(|j| self.is_net_member(j, v)).collect(),
                    fingers: (0..levels)
                        .map(|j| self.finger(space, v, j).map(|(_, f)| f))
                        .collect(),
                    rings: (0..levels)
                        .map(|j| self.ring_members(space, v, j))
                        .collect(),
                    tables: {
                        let mut tables = vec![BTreeMap::new(); levels];
                        for (level, obj, target) in self.tables.node_entries(v) {
                            tables[level].insert(obj, target);
                        }
                        tables
                    },
                    homed: std::mem::take(&mut homed[i]),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::LineMetric;

    #[test]
    fn slices_mirror_the_overlay() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        ov.publish(&space, ObjectId(0), Node::new(5));
        ov.publish(&space, ObjectId(1), Node::new(30));
        let slices = ov.partition(&space);
        assert_eq!(slices.len(), 32);
        let total: usize = slices.iter().map(DirectoryNodeState::entries).sum();
        assert_eq!(total, ov.total_entries());
        for (i, slice) in slices.iter().enumerate() {
            let v = Node::new(i);
            assert_eq!(slice.node(), v);
            assert!(slice.is_alive());
            assert_eq!(slice.levels(), ov.levels());
            assert_eq!(slice.entries(), ov.entries_at(v));
            for j in 0..ov.levels() {
                assert_eq!(slice.finger(j), ov.finger(&space, v, j).map(|(_, f)| f));
                assert_eq!(
                    slice.ring(j),
                    ov.rings().ring(v, j).unwrap().members(),
                    "ring of {v} at level {j}"
                );
                for obj in [ObjectId(0), ObjectId(1)] {
                    assert_eq!(slice.entry(j, obj), ov.entry(v, j, obj));
                }
            }
            for obj in [ObjectId(0), ObjectId(1)] {
                assert_eq!(slice.homes(obj), ov.home_of(obj) == Some(v));
            }
        }
        // The itinerary climbs every level in order on a static overlay.
        let it = slices[7].itinerary();
        assert_eq!(it.len(), ov.levels());
        assert!(it.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn install_and_adopt_mutate_the_slice() {
        let space = Space::new(LineMetric::uniform(8).unwrap());
        let ov = DirectoryOverlay::build(&space);
        let mut slice = ov.partition(&space).remove(3);
        assert_eq!(slice.entries(), 0);
        assert!(!slice.homes(ObjectId(9)));
        slice.install(1, ObjectId(9), Node::new(2));
        slice.adopt(ObjectId(9));
        assert_eq!(slice.entry(1, ObjectId(9)), Some(Node::new(2)));
        assert!(slice.homes(ObjectId(9)));
        assert_eq!(slice.entries(), 1);
    }
}
