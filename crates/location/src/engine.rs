//! The concurrent query engine: a worker pool serving batched lookups
//! over an immutable snapshot, with a shared LRU result cache.
//!
//! The engine separates *structure maintenance* (the mutable
//! [`DirectoryOverlay`]) from *serving*: a [`Snapshot`] freezes the
//! overlay's fingers into a flat table, worker threads
//! (`std::thread::scope`; no external dependencies, per the vendored-shim
//! discipline) split the batch, and every successful lookup is memoised
//! in an LRU cache keyed by `(origin, object)`. The [`BatchReport`]
//! carries throughput, p50/p99 latency and hops/stretch statistics
//! (through the shared [`PathStats`] accounting of `ron-routing`).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use ron_metric::{BallOracle, Metric, Node, Space};
use ron_routing::PathStats;

use crate::directory::{DirectoryOverlay, ObjectId};
use crate::stats::{BatchReport, LatencySummary};

/// An immutable serving view of a [`DirectoryOverlay`]: the per-node,
/// per-level fingers are precomputed so a lookup is a pure table walk.
///
/// Capture a fresh snapshot after any churn + repair; the snapshot
/// borrows the overlay, so the borrow checker enforces that the overlay
/// cannot be mutated while a snapshot serves.
#[derive(Clone, Debug)]
pub struct Snapshot<'a> {
    overlay: &'a DirectoryOverlay,
    /// `fingers[v * levels + j]`: nearest alive level-`j` member to `v`.
    fingers: Vec<Option<Node>>,
    levels: usize,
}

impl<'a> Snapshot<'a> {
    /// Freezes the overlay's current fingers.
    #[must_use]
    pub fn capture<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        overlay: &'a DirectoryOverlay,
    ) -> Self {
        let n = overlay.len();
        let levels = overlay.levels();
        let mut fingers = Vec::with_capacity(n * levels);
        for i in 0..n {
            let v = Node::new(i);
            for j in 0..levels {
                fingers.push(overlay.finger(space, v, j).map(|(_, f)| f));
            }
        }
        Snapshot {
            overlay,
            fingers,
            levels,
        }
    }

    /// The overlay this snapshot was captured from.
    #[must_use]
    pub fn overlay(&self) -> &DirectoryOverlay {
        self.overlay
    }

    /// Serves one lookup from the frozen finger table.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DirectoryOverlay::lookup`].
    pub fn lookup<M: Metric, I>(
        &self,
        space: &Space<M, I>,
        origin: Node,
        obj: ObjectId,
    ) -> Result<crate::lookup::LookupOutcome, crate::lookup::LocateError> {
        self.overlay.locate_with(space, origin, obj, |s, j| {
            self.fingers[s.index() * self.levels + j]
        })
    }
}

/// A compact cached lookup result (the path itself is not retained).
#[derive(Clone, Copy, Debug, PartialEq)]
struct CachedHit {
    home: Node,
    length: f64,
    hops: usize,
}

/// A fixed-capacity LRU map: `HashMap` index into a slab of
/// doubly-linked entries. O(1) get/insert, least-recently-used eviction.
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    map: HashMap<(Node, ObjectId), usize>,
    slots: Vec<LruSlot>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

#[derive(Debug)]
struct LruSlot {
    key: (Node, ObjectId),
    value: CachedHit,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl LruCache {
    fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: (Node, ObjectId)) -> Option<CachedHit> {
        let &i = self.map.get(&key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(self.slots[i].value)
    }

    fn insert(&mut self, key: (Node, ObjectId), value: CachedHit) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.slots.len() < self.capacity {
            self.slots.push(LruSlot {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Evict the least recently used entry and reuse its slot.
            let i = self.tail;
            self.unlink(i);
            self.map.remove(&self.slots[i].key);
            self.slots[i].key = key;
            self.slots[i].value = value;
            i
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads serving the batch.
    pub workers: usize,
    /// Capacity of the shared LRU result cache (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            cache_capacity: 4096,
        }
    }
}

/// The concurrent query engine: serves batches of `(origin, object)`
/// lookups over a [`Snapshot`] with a worker pool and a shared LRU cache.
///
/// # Example
///
/// ```
/// use ron_location::{DirectoryOverlay, EngineConfig, ObjectId, QueryEngine, Snapshot};
/// use ron_metric::{gen, Node, Space};
///
/// let space = Space::new(gen::uniform_cube(64, 2, 7));
/// let mut overlay = DirectoryOverlay::build(&space);
/// overlay.publish(&space, ObjectId(0), Node::new(5));
/// let snapshot = Snapshot::capture(&space, &overlay);
/// let engine = QueryEngine::new(&space, &snapshot);
/// let queries = vec![(Node::new(60), ObjectId(0)); 128];
/// let report = engine.serve(&queries, &EngineConfig::default());
/// assert_eq!(report.successes, 128);
/// assert!(report.cache_hits > 0);
/// ```
#[derive(Debug)]
pub struct QueryEngine<'a, M> {
    space: &'a Space<M>,
    snapshot: &'a Snapshot<'a>,
}

impl<'a, M: Metric + Sync> QueryEngine<'a, M> {
    /// Creates an engine over a frozen snapshot.
    #[must_use]
    pub fn new(space: &'a Space<M>, snapshot: &'a Snapshot<'a>) -> Self {
        QueryEngine { space, snapshot }
    }

    /// Serves the batch with `config.workers` threads, returning
    /// throughput, latency percentiles and path statistics.
    pub fn serve(&self, queries: &[(Node, ObjectId)], config: &EngineConfig) -> BatchReport {
        let workers = config.workers.max(1).min(queries.len().max(1));
        let cache = Mutex::new(LruCache::new(config.cache_capacity));
        let chunk = queries.len().div_ceil(workers);
        let start = Instant::now();
        let worker_results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk.max(1))
                .map(|slice| scope.spawn(|| self.serve_chunk(slice, &cache)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let elapsed = start.elapsed();
        let mut report = BatchReport {
            elapsed,
            ..BatchReport::default()
        };
        let mut nanos = Vec::with_capacity(queries.len());
        for w in worker_results {
            report.served += w.served;
            report.successes += w.successes;
            report.failures += w.failures;
            report.cache_hits += w.cache_hits;
            report.paths.merge(&w.paths);
            nanos.extend(w.latencies_ns);
        }
        report.latency = LatencySummary::from_nanos(nanos);
        report
    }

    fn serve_chunk(&self, queries: &[(Node, ObjectId)], cache: &Mutex<LruCache>) -> WorkerResult {
        let mut out = WorkerResult::default();
        for &(origin, obj) in queries {
            let t0 = Instant::now();
            let hit = {
                let mut guard = cache.lock().expect("cache lock");
                guard.get((origin, obj))
            };
            let result = match hit {
                Some(cached) => {
                    out.cache_hits += 1;
                    Some(cached)
                }
                None => match self.snapshot.lookup(self.space, origin, obj) {
                    Ok(outcome) => {
                        let cached = CachedHit {
                            home: outcome.home,
                            length: outcome.length,
                            hops: outcome.hops(),
                        };
                        cache
                            .lock()
                            .expect("cache lock")
                            .insert((origin, obj), cached);
                        Some(cached)
                    }
                    Err(_) => None,
                },
            };
            let elapsed = t0.elapsed().as_nanos() as u64;
            out.latencies_ns.push(elapsed);
            out.served += 1;
            match result {
                Some(hit) => {
                    out.successes += 1;
                    out.paths
                        .record(hit.length, self.space.dist(origin, hit.home), hit.hops);
                }
                None => out.failures += 1,
            }
        }
        out
    }
}

#[derive(Debug, Default)]
struct WorkerResult {
    served: usize,
    successes: usize,
    failures: usize,
    cache_hits: usize,
    latencies_ns: Vec<u64>,
    paths: PathStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    fn key(i: u64) -> (Node, ObjectId) {
        (Node::new(i as usize % 4), ObjectId(i))
    }

    fn hit(i: usize) -> CachedHit {
        CachedHit {
            home: Node::new(i),
            length: i as f64,
            hops: i,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        lru.insert(key(1), hit(1));
        lru.insert(key(2), hit(2));
        assert_eq!(lru.get(key(1)), Some(hit(1))); // 1 is now MRU
        lru.insert(key(3), hit(3)); // evicts 2
        assert_eq!(lru.get(key(2)), None);
        assert_eq!(lru.get(key(1)), Some(hit(1)));
        assert_eq!(lru.get(key(3)), Some(hit(3)));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_update_moves_to_front() {
        let mut lru = LruCache::new(2);
        lru.insert(key(1), hit(1));
        lru.insert(key(2), hit(2));
        lru.insert(key(1), hit(9)); // update, 1 becomes MRU
        lru.insert(key(3), hit(3)); // evicts 2
        assert_eq!(lru.get(key(1)), Some(hit(9)));
        assert_eq!(lru.get(key(2)), None);
    }

    #[test]
    fn zero_capacity_cache_is_inert() {
        let mut lru = LruCache::new(0);
        lru.insert(key(1), hit(1));
        assert_eq!(lru.get(key(1)), None);
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn snapshot_agrees_with_overlay_lookup() {
        let space = Space::new(gen::uniform_cube(64, 2, 19));
        let mut ov = DirectoryOverlay::build(&space);
        for i in 0..8u64 {
            ov.publish(&space, ObjectId(i), Node::new((i as usize * 9) % 64));
        }
        let snap = Snapshot::capture(&space, &ov);
        for s in space.nodes() {
            for &obj in ov.objects() {
                let a = ov.lookup(&space, s, obj).unwrap();
                let b = snap.lookup(&space, s, obj).unwrap();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn engine_serves_batches_with_full_success() {
        let space = Space::new(LineMetric::uniform(64).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        for i in 0..8u64 {
            ov.publish(&space, ObjectId(i), Node::new((i as usize * 7) % 64));
        }
        let snap = Snapshot::capture(&space, &ov);
        let engine = QueryEngine::new(&space, &snap);
        let queries: Vec<(Node, ObjectId)> = (0..512)
            .map(|i| (Node::new((i * 13) % 64), ObjectId((i % 8) as u64)))
            .collect();
        let report = engine.serve(
            &queries,
            &EngineConfig {
                workers: 4,
                cache_capacity: 64,
            },
        );
        assert_eq!(report.served, 512);
        assert_eq!(report.successes, 512);
        assert_eq!(report.failures, 0);
        assert!(report.cache_hits > 0, "repeated keys must hit the cache");
        assert_eq!(report.latency.count, 512);
        assert_eq!(report.paths.count, 512);
        assert!(report.throughput() > 0.0);
        // Cached results must agree with uncached lookups: stretch stats
        // stay within the static bound.
        assert!(report.paths.max_stretch <= 18.0);
    }

    #[test]
    fn engine_counts_failures_on_damaged_overlay() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        ov.publish(&space, ObjectId(0), Node::new(5));
        ov.leave(Node::new(5)); // kill the home, no repair
        let snap = Snapshot::capture(&space, &ov);
        let engine = QueryEngine::new(&space, &snap);
        let queries = vec![(Node::new(20), ObjectId(0)); 16];
        let report = engine.serve(&queries, &EngineConfig::default());
        assert_eq!(report.failures, 16);
        assert_eq!(report.successes, 0);
    }
}
