//! The concurrent query engine: a worker pool serving batched lookups
//! over epoch-published snapshots, with a sharded, epoch-tagged LRU
//! result cache.
//!
//! The engine separates *structure maintenance* (the mutable
//! [`DirectoryOverlay`]) from *serving* — and, since the epoch
//! refactor, the two run concurrently. A [`Snapshot`] is an **owned**,
//! epoch-stamped copy of everything a lookup reads (liveness, homes,
//! pointer tables, precomputed fingers); it lives in an
//! [`EpochCell`] and workers clone the current `Arc` per query, so a
//! repair can build and publish a successor snapshot *while the batch is
//! in flight*: lookups proceed at full rate through churn and repair,
//! each answer valid against exactly one published state, never a torn
//! mixture (property-tested across all four generator families).
//!
//! Worker threads (`std::thread::scope`; no external dependencies, per
//! the vendored-shim discipline) split the batch; every successful
//! lookup is memoised in an LRU cache keyed by `(origin, object)`,
//! hash-sharded across [`EngineConfig::cache_shards`] locks so workers
//! don't funnel through a single mutex, and tagged with the publication
//! epoch so hits cached against a superseded snapshot are rejected. The
//! [`BatchReport`] carries throughput, p50/p99 latency and hops/stretch
//! statistics (through the shared [`PathStats`] accounting of
//! `ron-routing`).

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use ron_core::publish::EpochCell;
use ron_metric::mem::vec_capacity_bytes;
use ron_metric::{BallOracle, HeapBytes, Metric, Node, Space};
use ron_routing::PathStats;

use crate::directory::{DirectoryOverlay, ObjectId};
use crate::lookup::{locate_view, LookupView};
use crate::stats::{BatchReport, CacheShardStats, LatencySummary};
use crate::tables::PointerTables;

/// An immutable, owned serving view of a [`DirectoryOverlay`]: the
/// per-node, per-level fingers are precomputed so a lookup is a pure
/// table walk, and the state a lookup reads (liveness, homes, pointer
/// tables) is copied out, so the overlay is free to mutate — churn,
/// repair, publish — while the snapshot serves.
///
/// A snapshot is stamped with the overlay [epoch] it was captured at.
/// Publish one through an [`EpochCell`] (see
/// [`DirectoryOverlay::publish_snapshot`]) and readers pick up the
/// successor on their next load, without ever observing a half-applied
/// mutation.
///
/// [epoch]: DirectoryOverlay::epoch
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Overlay epoch at capture time.
    epoch: u64,
    levels: usize,
    /// `fingers[v * levels + j]`: nearest alive level-`j` member to `v`.
    fingers: Vec<Option<Node>>,
    alive: Vec<bool>,
    homes: HashMap<ObjectId, Node>,
    /// Per-node directory pointer entries (compact sorted arrays; see
    /// [`PointerTables`]).
    tables: PointerTables,
}

impl Snapshot {
    /// Freezes the overlay's current state: fingers, liveness, homes and
    /// pointer tables, stamped with the overlay's current epoch.
    #[must_use]
    pub fn capture<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        overlay: &DirectoryOverlay,
    ) -> Self {
        let _span = ron_obs::span("directory.capture");
        let n = overlay.len();
        let levels = overlay.levels();
        let mut fingers = Vec::with_capacity(n * levels);
        for i in 0..n {
            let v = Node::new(i);
            for j in 0..levels {
                fingers.push(overlay.finger(space, v, j).map(|(_, f)| f));
            }
        }
        Snapshot {
            epoch: overlay.epoch(),
            levels,
            fingers,
            alive: overlay.alive.clone(),
            homes: overlay.homes.clone(),
            tables: overlay.tables.clone(),
        }
    }

    /// The overlay epoch this snapshot was captured at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Serves one lookup from the frozen finger table.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`DirectoryOverlay::lookup`].
    pub fn lookup<M: Metric, I>(
        &self,
        space: &Space<M, I>,
        origin: Node,
        obj: ObjectId,
    ) -> Result<crate::lookup::LookupOutcome, crate::lookup::LocateError> {
        locate_view(self, space, origin, obj, |s, j| {
            self.fingers[s.index() * self.levels + j]
        })
    }
}

impl HeapBytes for Snapshot {
    /// The serving state's heap footprint (fingers, liveness, pointer
    /// tables; the object registry is size-of-catalogue, not size-of-`n`,
    /// and `HashMap` capacity is not observable — left out).
    fn heap_bytes(&self) -> usize {
        vec_capacity_bytes(&self.fingers)
            + vec_capacity_bytes(&self.alive)
            + self.tables.heap_bytes()
    }
}

impl LookupView for Snapshot {
    fn levels(&self) -> usize {
        self.levels
    }

    fn is_alive(&self, v: Node) -> bool {
        self.alive[v.index()]
    }

    fn home_of(&self, obj: ObjectId) -> Option<Node> {
        self.homes.get(&obj).copied()
    }

    fn entry(&self, v: Node, level: usize, obj: ObjectId) -> Option<Node> {
        self.tables.get(v, level, obj)
    }
}

impl DirectoryOverlay {
    /// Captures a fresh [`Snapshot`] of this overlay and publishes it to
    /// `cell`, returning the cell's new publication epoch. In-flight
    /// readers finish on the state they loaded; subsequent loads serve
    /// the new one.
    pub fn publish_snapshot<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
        cell: &EpochCell<Snapshot>,
    ) -> u64 {
        cell.publish(Snapshot::capture(space, self))
    }
}

/// A compact cached lookup result (the path itself is not retained).
#[derive(Clone, Copy, Debug, PartialEq)]
struct CachedHit {
    home: Node,
    length: f64,
    hops: usize,
}

/// A fixed-capacity LRU map: `HashMap` index into a slab of
/// doubly-linked entries. O(1) get/insert, least-recently-used eviction.
///
/// Entries are tagged with the publication epoch they were computed
/// against; a `get` under a different epoch is a miss (the stale entry
/// stays resident until overwritten or evicted — it can never be served
/// again, since epochs are monotone).
#[derive(Debug)]
struct LruCache {
    capacity: usize,
    map: HashMap<(Node, ObjectId), usize>,
    slots: Vec<LruSlot>,
    head: usize, // most recently used
    tail: usize, // least recently used
    /// Hit/miss/stale accounting; lives under the shard lock, so plain
    /// fields suffice.
    stats: CacheShardStats,
}

#[derive(Debug)]
struct LruSlot {
    key: (Node, ObjectId),
    value: CachedHit,
    epoch: u64,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl LruCache {
    fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            stats: CacheShardStats::default(),
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: (Node, ObjectId), epoch: u64) -> Option<CachedHit> {
        self.get_probed(key, epoch).0
    }

    /// `get` plus the probe's classification, for per-query flight
    /// records: hit, plain miss, or an entry cached against a
    /// superseded epoch.
    fn get_probed(
        &mut self,
        key: (Node, ObjectId),
        epoch: u64,
    ) -> (Option<CachedHit>, ron_obs::CacheOutcome) {
        let Some(&i) = self.map.get(&key) else {
            self.stats.misses += 1;
            return (None, ron_obs::CacheOutcome::Miss);
        };
        if self.slots[i].epoch != epoch {
            // Cached against a superseded publication: distinct from a
            // plain miss in the accounting, since it measures how much
            // of the cache each publish invalidates.
            self.stats.stale += 1;
            return (None, ron_obs::CacheOutcome::Stale);
        }
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        self.stats.hits += 1;
        (Some(self.slots[i].value), ron_obs::CacheOutcome::Hit)
    }

    fn insert(&mut self, key: (Node, ObjectId), value: CachedHit, epoch: u64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.slots[i].epoch = epoch;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        let i = if self.slots.len() < self.capacity {
            self.slots.push(LruSlot {
                key,
                value,
                epoch,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        } else {
            // Evict the least recently used entry and reuse its slot.
            let i = self.tail;
            self.unlink(i);
            self.map.remove(&self.slots[i].key);
            self.slots[i].key = key;
            self.slots[i].value = value;
            self.slots[i].epoch = epoch;
            i
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }
}

/// The shared result cache, hash-sharded over independent locks so the
/// worker pool doesn't funnel every query through one mutex.
#[derive(Debug)]
struct ShardedCache {
    shards: Vec<Mutex<LruCache>>,
}

impl ShardedCache {
    /// `capacity` is the total budget, split evenly across `shards`
    /// locks (at least one; capacity 0 disables caching entirely).
    fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
        }
    }

    /// Picks the shard index for a key: a splitmix64-style finalizer
    /// over the origin/object pair, so consecutive node indices spread
    /// out. Deterministic in the key — flight records across runs name
    /// the same shard.
    fn shard_index(&self, key: (Node, ObjectId)) -> usize {
        let mut h = (key.0.index() as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1 .0);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        (h % self.shards.len() as u64) as usize
    }

    fn shard(&self, key: (Node, ObjectId)) -> &Mutex<LruCache> {
        &self.shards[self.shard_index(key)]
    }

    fn get(&self, key: (Node, ObjectId), epoch: u64) -> Option<CachedHit> {
        self.shard(key).lock().expect("cache lock").get(key, epoch)
    }

    /// `get` plus the probe classification and the shard probed, for
    /// per-query flight records.
    fn get_probed(
        &self,
        key: (Node, ObjectId),
        epoch: u64,
    ) -> (Option<CachedHit>, ron_obs::CacheOutcome, u32) {
        let shard = self.shard_index(key);
        let (value, outcome) = self.shards[shard]
            .lock()
            .expect("cache lock")
            .get_probed(key, epoch);
        (value, outcome, shard as u32)
    }

    fn insert(&self, key: (Node, ObjectId), value: CachedHit, epoch: u64) {
        self.shard(key)
            .lock()
            .expect("cache lock")
            .insert(key, value, epoch);
    }

    /// The per-shard hit/miss/stale accounting, in shard order.
    fn stats(&self) -> Vec<CacheShardStats> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache lock").stats)
            .collect()
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Worker threads serving the batch.
    pub workers: usize,
    /// Total capacity of the shared LRU result cache (0 disables
    /// caching).
    pub cache_capacity: usize,
    /// Number of independent cache shards (clamped to at least 1). One
    /// shard reproduces the old single-mutex behaviour; more shards cut
    /// lock contention on cache-hot workloads.
    pub cache_shards: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            cache_capacity: 4096,
            cache_shards: 8,
        }
    }
}

/// The concurrent query engine: serves batches of `(origin, object)`
/// lookups from the currently published [`Snapshot`] with a worker pool
/// and a sharded, epoch-tagged LRU cache.
///
/// The engine holds the [`EpochCell`], not a snapshot: each query loads
/// the current publication, so a repair that publishes mid-batch is
/// picked up immediately — earlier queries in the batch answered from
/// the old state, later ones from the new, each complete.
///
/// # Example
///
/// ```
/// use ron_location::{
///     DirectoryOverlay, EngineConfig, EpochCell, ObjectId, QueryEngine, Snapshot,
/// };
/// use ron_metric::{gen, Node, Space};
///
/// let space = Space::new(gen::uniform_cube(64, 2, 7));
/// let mut overlay = DirectoryOverlay::build(&space);
/// overlay.publish(&space, ObjectId(0), Node::new(5));
/// let directory = EpochCell::new(Snapshot::capture(&space, &overlay));
/// let engine = QueryEngine::new(&space, &directory);
/// let queries = vec![(Node::new(60), ObjectId(0)); 128];
/// let report = engine.serve(&queries, &EngineConfig::default());
/// assert_eq!(report.successes, 128);
/// assert!(report.cache_hits > 0);
///
/// // The overlay is free to mutate while the engine serves; publishing
/// // makes the new state visible to subsequent queries atomically.
/// overlay.publish(&space, ObjectId(1), Node::new(9));
/// overlay.publish_snapshot(&space, &directory);
/// let report = engine.serve(&[(Node::new(60), ObjectId(1))], &EngineConfig::default());
/// assert_eq!(report.successes, 1);
/// ```
#[derive(Debug)]
pub struct QueryEngine<'a, M> {
    space: &'a Space<M>,
    directory: &'a EpochCell<Snapshot>,
}

impl<'a, M: Metric + Sync> QueryEngine<'a, M> {
    /// Creates an engine over a publication cell.
    #[must_use]
    pub fn new(space: &'a Space<M>, directory: &'a EpochCell<Snapshot>) -> Self {
        QueryEngine { space, directory }
    }

    /// Serves the batch with `config.workers` threads, returning
    /// throughput, latency percentiles and path statistics.
    pub fn serve(&self, queries: &[(Node, ObjectId)], config: &EngineConfig) -> BatchReport {
        let workers = config.workers.max(1).min(queries.len().max(1));
        let cache = ShardedCache::new(config.cache_capacity, config.cache_shards);
        let chunk = queries.len().div_ceil(workers);
        // ron-lint: allow(wall-clock): batch wall time feeds the
        // throughput/latency report only; answers and fingerprints
        // never depend on it.
        let start = Instant::now();
        let cache_ref = &cache;
        let worker_results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk.max(1))
                .enumerate()
                .map(|(w, slice)| {
                    // Flight-record ids are positions in the full batch
                    // (base + i), independent of the worker split, so
                    // sampling picks the same queries at any RON_THREADS.
                    let base = w * chunk.max(1);
                    scope.spawn(move || {
                        let out = self.serve_chunk(w, base, slice, cache_ref);
                        // Merge this worker's observability records before
                        // the scope can consider the thread finished.
                        ron_obs::flush();
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let elapsed = start.elapsed();
        let mut report = BatchReport {
            elapsed,
            ..BatchReport::default()
        };
        let mut nanos = Vec::with_capacity(queries.len());
        for w in worker_results {
            report.served += w.served;
            report.successes += w.successes;
            report.failures += w.failures;
            report.cache_hits += w.cache_hits;
            report.paths.merge(&w.paths);
            nanos.extend(w.latencies_ns);
        }
        report.latency = LatencySummary::from_nanos(nanos);
        if config.cache_capacity > 0 {
            report.cache_shards = cache.stats();
        }
        if ron_obs::enabled() {
            for (i, s) in report.cache_shards.iter().enumerate() {
                let shard = ron_obs::label(&format!("shard{i}"));
                ron_obs::count_labeled("engine.cache.hit", shard, s.hits);
                ron_obs::count_labeled("engine.cache.miss", shard, s.misses);
                ron_obs::count_labeled("engine.cache.stale", shard, s.stale);
            }
        }
        // A served batch is a structural moment on the serving curve.
        ron_obs::timeseries_tick("engine:batch");
        report
    }

    fn serve_chunk(
        &self,
        worker: usize,
        base: usize,
        queries: &[(Node, ObjectId)],
        cache: &ShardedCache,
    ) -> WorkerResult {
        // Intern the worker label once per chunk, off the per-query path.
        let wlabel = if ron_obs::enabled() {
            Some(ron_obs::label(&format!("w{worker}")))
        } else {
            None
        };
        let mut out = WorkerResult::default();
        for (i, &(origin, obj)) in queries.iter().enumerate() {
            let qid = (base + i) as u64;
            let traced = ron_obs::qtrace_sampled(qid);
            // ron-lint: allow(wall-clock): per-query latency
            // measurement for the report; the lookup answer is
            // computed from the snapshot alone.
            let t0 = Instant::now();
            // Load the current publication per query: a mid-batch publish
            // is picked up immediately, and the epoch tag keeps cache
            // entries from a superseded snapshot from being served.
            let snap = self.directory.load();
            let epoch = snap.epoch();
            // A traced query goes through the probed path, which also
            // classifies the probe and names the shard; the common path
            // stays as-is.
            let (probe, cache_kind, shard) = if traced {
                let (p, k, s) = cache.get_probed((origin, obj), epoch);
                (p, k, Some(s))
            } else {
                let p = cache.get((origin, obj), epoch);
                (p, ron_obs::CacheOutcome::Uncached, None)
            };
            let cache_ns = if traced {
                t0.elapsed().as_nanos() as u64
            } else {
                0
            };
            // ron-lint: allow(wall-clock): stage timing for sampled
            // flight records only; sampling is by batch position, so
            // the clock never influences which work runs.
            let walk_t = traced.then(Instant::now);
            // (levels visited, found level, probes, hops) for the record.
            let mut walk: (u32, Option<u32>, u64, u32) = (0, None, 0, 0);
            let result = match probe {
                Some(cached) => {
                    out.cache_hits += 1;
                    walk.3 = cached.hops as u32;
                    Some(cached)
                }
                None => match snap.lookup(self.space, origin, obj) {
                    Ok(outcome) => {
                        walk = (
                            outcome.found_level as u32 + 1,
                            Some(outcome.found_level as u32),
                            outcome.probes,
                            outcome.hops() as u32,
                        );
                        let cached = CachedHit {
                            home: outcome.home,
                            length: outcome.length,
                            hops: outcome.hops(),
                        };
                        cache.insert((origin, obj), cached, epoch);
                        Some(cached)
                    }
                    Err(_) => {
                        // The climb exhausted the ladder (or failed
                        // earlier); the walk saw every level.
                        walk.0 = snap.levels as u32;
                        None
                    }
                },
            };
            let elapsed = t0.elapsed().as_nanos() as u64;
            if traced {
                let walk_ns = walk_t.map_or(0, |t| t.elapsed().as_nanos() as u64);
                ron_obs::record_query_trace(ron_obs::QueryTrace {
                    kind: "lookup",
                    id: qid,
                    epoch,
                    cache_shard: shard,
                    cache: cache_kind,
                    levels_visited: walk.0,
                    found_level: walk.1,
                    probes: walk.2,
                    hops: walk.3,
                    stages: vec![("cache", cache_ns), ("walk", walk_ns)],
                });
            }
            if let Some(w) = wlabel {
                // Reuses the latency measurement the report already
                // takes — no extra clock reads on the hot path.
                ron_obs::observe_labeled("engine.worker.latency_ns", w, elapsed);
            }
            out.latencies_ns.push(elapsed);
            out.served += 1;
            match result {
                Some(hit) => {
                    out.successes += 1;
                    out.paths
                        .record(hit.length, self.space.dist(origin, hit.home), hit.hops);
                }
                None => out.failures += 1,
            }
        }
        out
    }
}

#[derive(Debug, Default)]
struct WorkerResult {
    served: usize,
    successes: usize,
    failures: usize,
    cache_hits: usize,
    latencies_ns: Vec<u64>,
    paths: PathStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    fn key(i: u64) -> (Node, ObjectId) {
        (Node::new(i as usize % 4), ObjectId(i))
    }

    fn hit(i: usize) -> CachedHit {
        CachedHit {
            home: Node::new(i),
            length: i as f64,
            hops: i,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        lru.insert(key(1), hit(1), 0);
        lru.insert(key(2), hit(2), 0);
        assert_eq!(lru.get(key(1), 0), Some(hit(1))); // 1 is now MRU
        lru.insert(key(3), hit(3), 0); // evicts 2
        assert_eq!(lru.get(key(2), 0), None);
        assert_eq!(lru.get(key(1), 0), Some(hit(1)));
        assert_eq!(lru.get(key(3), 0), Some(hit(3)));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn lru_update_moves_to_front() {
        let mut lru = LruCache::new(2);
        lru.insert(key(1), hit(1), 0);
        lru.insert(key(2), hit(2), 0);
        lru.insert(key(1), hit(9), 0); // update, 1 becomes MRU
        lru.insert(key(3), hit(3), 0); // evicts 2
        assert_eq!(lru.get(key(1), 0), Some(hit(9)));
        assert_eq!(lru.get(key(2), 0), None);
    }

    #[test]
    fn lru_accounts_hits_and_misses_exactly() {
        let mut lru = LruCache::new(4);
        let (mut hits, mut misses) = (0usize, 0usize);
        let mut probe = |lru: &mut LruCache, k: u64| match lru.get(key(k), 0) {
            Some(_) => hits += 1,
            None => misses += 1,
        };
        probe(&mut lru, 1); // cold miss
        lru.insert(key(1), hit(1), 0);
        probe(&mut lru, 1); // hit
        probe(&mut lru, 1); // hit again — gets don't consume the entry
        probe(&mut lru, 2); // miss: never inserted
        assert_eq!((hits, misses), (2, 2));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn lru_rejects_entries_from_a_superseded_epoch() {
        let mut lru = LruCache::new(4);
        lru.insert(key(1), hit(1), 0);
        assert_eq!(lru.get(key(1), 0), Some(hit(1)));
        // After a publish the same key under the new epoch is a miss...
        assert_eq!(lru.get(key(1), 1), None);
        // ...and re-inserting retags it, making the *old* epoch stale.
        lru.insert(key(1), hit(2), 1);
        assert_eq!(lru.get(key(1), 1), Some(hit(2)));
        assert_eq!(lru.get(key(1), 0), None);
        assert_eq!(lru.len(), 1, "retagging must not duplicate the entry");
    }

    #[test]
    fn zero_capacity_cache_is_inert() {
        let mut lru = LruCache::new(0);
        lru.insert(key(1), hit(1), 0);
        assert_eq!(lru.get(key(1), 0), None);
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn sharded_cache_round_trips_across_shards() {
        let cache = ShardedCache::new(64, 8);
        for i in 0..32u64 {
            cache.insert(key(i), hit(i as usize), 0);
        }
        for i in 0..32u64 {
            assert_eq!(cache.get(key(i), 0), Some(hit(i as usize)), "key {i}");
            assert_eq!(cache.get(key(i), 1), None, "epoch tag applies per shard");
        }
    }

    #[test]
    fn sharded_cache_clamps_degenerate_configs() {
        // Zero shards clamps to one; zero capacity stays inert.
        let cache = ShardedCache::new(16, 0);
        assert_eq!(cache.shards.len(), 1);
        cache.insert(key(1), hit(1), 0);
        assert_eq!(cache.get(key(1), 0), Some(hit(1)));
        let inert = ShardedCache::new(0, 4);
        inert.insert(key(1), hit(1), 0);
        assert_eq!(inert.get(key(1), 0), None);
    }

    #[test]
    fn snapshot_agrees_with_overlay_lookup() {
        let space = Space::new(gen::uniform_cube(64, 2, 19));
        let mut ov = DirectoryOverlay::build(&space);
        for i in 0..8u64 {
            ov.publish(&space, ObjectId(i), Node::new((i as usize * 9) % 64));
        }
        let snap = Snapshot::capture(&space, &ov);
        assert_eq!(snap.epoch(), ov.epoch());
        for s in space.nodes() {
            for &obj in ov.objects() {
                let a = ov.lookup(&space, s, obj).unwrap();
                let b = snap.lookup(&space, s, obj).unwrap();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn snapshot_is_isolated_from_later_overlay_mutation() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        ov.publish(&space, ObjectId(0), Node::new(5));
        let snap = Snapshot::capture(&space, &ov);
        // Damage the overlay after the capture: the snapshot still serves
        // the state it froze.
        ov.leave(Node::new(5));
        assert!(ov.lookup(&space, Node::new(20), ObjectId(0)).is_err());
        let out = snap.lookup(&space, Node::new(20), ObjectId(0)).unwrap();
        assert_eq!(out.home, Node::new(5));
        assert!(ov.epoch() > snap.epoch(), "mutation bumps the epoch");
    }

    #[test]
    fn engine_serves_batches_with_full_success() {
        let space = Space::new(LineMetric::uniform(64).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        for i in 0..8u64 {
            ov.publish(&space, ObjectId(i), Node::new((i as usize * 7) % 64));
        }
        let cell = EpochCell::new(Snapshot::capture(&space, &ov));
        let engine = QueryEngine::new(&space, &cell);
        let queries: Vec<(Node, ObjectId)> = (0..512)
            .map(|i| (Node::new((i * 13) % 64), ObjectId((i % 8) as u64)))
            .collect();
        let report = engine.serve(
            &queries,
            &EngineConfig {
                workers: 4,
                cache_capacity: 64,
                cache_shards: 4,
            },
        );
        assert_eq!(report.served, 512);
        assert_eq!(report.successes, 512);
        assert_eq!(report.failures, 0);
        assert!(report.cache_hits > 0, "repeated keys must hit the cache");
        assert_eq!(report.latency.count, 512);
        assert_eq!(report.paths.count, 512);
        assert!(report.throughput() > 0.0);
        // Cached results must agree with uncached lookups: stretch stats
        // stay within the static bound.
        assert!(report.paths.max_stretch <= 18.0);
    }

    #[test]
    fn engine_counts_failures_on_damaged_overlay() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        ov.publish(&space, ObjectId(0), Node::new(5));
        ov.leave(Node::new(5)); // kill the home, no repair
        let cell = EpochCell::new(Snapshot::capture(&space, &ov));
        let engine = QueryEngine::new(&space, &cell);
        let queries = vec![(Node::new(20), ObjectId(0)); 16];
        let report = engine.serve(&queries, &EngineConfig::default());
        assert_eq!(report.failures, 16);
        assert_eq!(report.successes, 0);
    }

    #[test]
    fn publish_invalidates_cached_hits() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        ov.publish(&space, ObjectId(0), Node::new(5));
        let cell = EpochCell::new(Snapshot::capture(&space, &ov));
        let engine = QueryEngine::new(&space, &cell);
        let queries = vec![(Node::new(20), ObjectId(0)); 64];
        let warm = engine.serve(&queries, &EngineConfig::default());
        assert_eq!(warm.successes, 64);

        // Move the object: unpublish + republish at a new home, then
        // publish the successor snapshot.
        ov.unpublish(ObjectId(0));
        ov.publish(&space, ObjectId(0), Node::new(29));
        ov.publish_snapshot(&space, &cell);

        // A fresh batch must resolve to the *new* home even though the
        // batch-local cache starts cold; and serving the same batch with
        // a mid-serve publish must never mix epochs per answer (each
        // answer comes from exactly one published snapshot).
        let report = engine.serve(&queries, &EngineConfig::default());
        assert_eq!(report.successes, 64);
        let out = cell
            .load()
            .lookup(&space, Node::new(20), ObjectId(0))
            .unwrap();
        assert_eq!(out.home, Node::new(29));
    }

    #[test]
    fn repair_published_serves_through_the_swap() {
        let space = Space::new(LineMetric::uniform(64).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        for i in 0..6u64 {
            ov.publish(&space, ObjectId(i), Node::new((i as usize * 7) % 64));
        }
        let cell = EpochCell::new(Snapshot::capture(&space, &ov));
        let engine = QueryEngine::new(&space, &cell);
        let pre = cell.load();

        // Damage + repair entirely behind the cell: readers of `pre`
        // are never disturbed.
        let top = ov.levels() - 1;
        let hub = space.nodes().find(|&v| ov.is_net_member(top, v)).unwrap();
        ov.leave(hub);
        let report = ov.repair_published(&space, &cell);
        assert!(report.promotions + report.pointer_writes > 0);
        assert_eq!(cell.epoch(), 1);
        assert!(cell.load().epoch() > pre.epoch());

        // Post-repair serving is 100% from alive origins.
        let queries: Vec<(Node, ObjectId)> = (0..128)
            .map(|i| {
                let mut origin = Node::new((i * 13) % 64);
                if origin == hub {
                    origin = Node::new((origin.index() + 1) % 64);
                }
                (origin, ObjectId((i % 6) as u64))
            })
            .collect();
        let served = engine.serve(&queries, &EngineConfig::default());
        assert_eq!(served.successes, queries.len());
    }
}
