//! Publishing objects into the directory overlay.
//!
//! `publish(obj, home)` installs, at every ladder level `j`, an entry for
//! `obj` on each member of the ring `B_home(c r_j) ∩ G_j`. The entry at
//! level `j > 0` forwards to `chain[j-1]`, the next point of the home's
//! zooming sequence ([`ron_core::zoom::ZoomSequence`]); level-0 entries
//! forward to the home itself. Lookups therefore descend the home's zoom
//! chain exactly as routing descends a target's chain in Theorem 2.1.

use ron_core::par;
use ron_metric::{BallOracle, Metric, Node, Space};

use crate::directory::{DirectoryOverlay, ObjectId, Placement};

impl DirectoryOverlay {
    /// Publishes `obj` with home node `home`, installing directory
    /// pointers up the net ladder. Returns the number of pointer entries
    /// written.
    ///
    /// # Panics
    ///
    /// Panics if `home` is dead or `obj` is already published.
    pub fn publish<M: Metric, I: BallOracle>(
        &mut self,
        space: &Space<M, I>,
        obj: ObjectId,
        home: Node,
    ) -> usize {
        let _stage = ron_obs::stage("publish");
        let plan = self.plan_publish(space, home);
        self.install(obj, home, plan)
    }

    /// Publishes a batch of `(object, home)` pairs, computing every
    /// placement (zoom chain + per-level ring membership) in parallel on
    /// [`par`] and then installing the pointer entries sequentially in
    /// batch order. Returns the total pointer entries written.
    ///
    /// Placements depend only on net membership — never on previously
    /// published objects — so the result is byte-identical to calling
    /// [`publish`](DirectoryOverlay::publish) once per pair, in order
    /// (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if any home is dead or any object is already published
    /// (including duplicates inside the batch).
    pub fn publish_batch<M: Metric, I: BallOracle>(
        &mut self,
        space: &Space<M, I>,
        items: &[(ObjectId, Node)],
    ) -> usize {
        let _stage = ron_obs::stage("publish");
        let _span = ron_obs::span("directory.publish_batch");
        // Flight-record sampling is by batch position, so the same
        // items are traced no matter how par splits the planning; the
        // clock reads happen only for sampled items and never influence
        // the plan itself.
        let plans = par::map(items.len(), |k| {
            if ron_obs::qtrace_sampled(k as u64) {
                // ron-lint: allow(wall-clock): plan timing for sampled
                // flight records; the plan itself is clock-free.
                let t = std::time::Instant::now();
                let plan = self.plan_publish(space, items[k].1);
                (plan, t.elapsed().as_nanos() as u64)
            } else {
                (self.plan_publish(space, items[k].1), 0)
            }
        });
        let mut writes = 0usize;
        for (k, ((obj, home), (plan, plan_ns))) in items.iter().zip(plans).enumerate() {
            let traced = ron_obs::qtrace_sampled(k as u64);
            // ron-lint: allow(wall-clock): install timing for sampled
            // flight records only.
            let t = traced.then(std::time::Instant::now);
            let wrote = self.install(*obj, *home, plan);
            writes += wrote;
            if traced {
                ron_obs::record_query_trace(ron_obs::QueryTrace {
                    kind: "publish",
                    id: k as u64,
                    epoch: self.epoch(),
                    cache_shard: None,
                    cache: ron_obs::CacheOutcome::Uncached,
                    levels_visited: self.levels() as u32,
                    found_level: None,
                    // The publish "probe count" is its pointer fan-out.
                    probes: wrote as u64,
                    hops: 0,
                    stages: vec![
                        ("plan", plan_ns),
                        ("install", t.map_or(0, |t| t.elapsed().as_nanos() as u64)),
                    ],
                });
            }
        }
        writes
    }

    /// Read-only half of a publish: the home's zoom chain and the publish
    /// ring of every ladder level.
    fn plan_publish<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
        home: Node,
    ) -> (Vec<Node>, Vec<Vec<Node>>) {
        let chain = self.desired_chain(space, home);
        let rings = (0..self.levels())
            .map(|j| self.ring_members(space, home, j))
            .collect();
        (chain, rings)
    }

    /// Mutating half of a publish: registers the object and writes the
    /// planned entries.
    fn install(&mut self, obj: ObjectId, home: Node, plan: (Vec<Node>, Vec<Vec<Node>>)) -> usize {
        assert!(self.is_alive(home), "cannot publish {obj} on dead {home}");
        assert!(!self.homes.contains_key(&obj), "{obj} is already published");
        self.epoch += 1;
        let (chain, rings) = plan;
        let mut placement = Placement {
            chain: chain.clone(),
            entries: Vec::new(),
        };
        let mut writes = 0usize;
        for (j, ring) in rings.into_iter().enumerate() {
            let target = if j == 0 { home } else { chain[j - 1] };
            for w in ring {
                self.tables.insert(w, j, obj, target);
                placement.entries.push((j, w));
                writes += 1;
            }
        }
        self.objects.push(obj);
        self.homes.insert(obj, home);
        self.placements.insert(obj, placement);
        // The publish fan-out: how many ring members one object's
        // pointers reach across all levels.
        ron_obs::observe("publish.fanout", writes as u64);
        writes
    }

    /// Removes `obj` from the directory, deleting every installed entry.
    /// Returns the number of entries deleted.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is not published.
    pub fn unpublish(&mut self, obj: ObjectId) -> usize {
        assert!(self.homes.contains_key(&obj), "{obj} is not published");
        self.epoch += 1;
        let placement = self.placements.remove(&obj).unwrap_or_default();
        let mut deletes = 0usize;
        for (level, w) in placement.entries {
            if self.alive[w.index()] && self.tables.remove(w, level, obj).is_some() {
                deletes += 1;
            }
        }
        self.homes.remove(&obj);
        self.objects.retain(|&o| o != obj);
        deletes
    }

    /// The home's zooming chain against the *current* net membership:
    /// `chain[j]` is the nearest alive level-`j` member to `home`.
    ///
    /// On a pristine overlay the stored rings subsume the zooming
    /// sequence (the paper's point): covering puts the nearest level-`j`
    /// member within `r_j <= ring_factor * r_j`, so it is already a
    /// member of the publish ring and a linear scan of that `O(1)`-sized
    /// slice replaces an oracle search whose expanding frontier grows
    /// with `n` at the coarse levels. The scan improves on strict `<`
    /// over the id-sorted members, matching the oracle's
    /// distance-then-id order bit for bit. Once any level diverged the
    /// chain falls back to dynamic fingers. A level emptied by churn
    /// (possible between a `leave` and the next repair) contributes the
    /// home itself, so entries above it forward straight to the home
    /// instead of into a void — the descent recognises arrival at the
    /// home (see `locate_with`) and such a publish still serves.
    pub(crate) fn desired_chain<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
        home: Node,
    ) -> Vec<Node> {
        if self.level_dirty.iter().any(|&d| d) {
            (0..self.levels())
                .map(|j| self.finger(space, home, j).map_or(home, |(_, f)| f))
                .collect()
        } else {
            (0..self.levels())
                .map(|j| {
                    let ring = self
                        .rings
                        .ring(home, j)
                        .expect("overlay builds every level");
                    let mut best: Option<(f64, Node)> = None;
                    for &v in ring.members() {
                        let d = space.dist(home, v);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, v));
                        }
                    }
                    best.map_or(home, |(_, f)| f)
                })
                .collect()
        }
    }

    /// The publish-ring members of `home` at `level`, from the static
    /// `RingFamily` while the level is pristine, dynamically otherwise.
    pub(crate) fn ring_members<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
        home: Node,
        level: usize,
    ) -> Vec<Node> {
        if self.level_dirty[level] {
            self.dynamic_ring(space, home, level)
        } else {
            self.rings
                .ring(home, level)
                .expect("overlay builds every level")
                .members()
                .to_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::LineMetric;

    fn published() -> (Space<LineMetric>, DirectoryOverlay) {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        ov.publish(&space, ObjectId(7), Node::new(5));
        (space, ov)
    }

    #[test]
    fn publish_installs_ring_entries_at_every_level() {
        let (_space, ov) = published();
        let home = Node::new(5);
        for j in 0..ov.levels() {
            let ring = ov.rings().ring(home, j).unwrap();
            assert!(!ring.is_empty());
            for &w in ring.members() {
                // Every ring member holds the level-j entry (Ring::contains
                // is the membership test the satellite asks for).
                assert!(ring.contains(w));
                assert!(ov.entry(w, j, ObjectId(7)).is_some(), "level {j} at {w}");
            }
        }
        assert_eq!(
            ov.total_entries(),
            ov.placements[&ObjectId(7)].entries.len()
        );
        assert_eq!(ov.home_of(ObjectId(7)), Some(home));
        assert_eq!(ov.objects(), &[ObjectId(7)]);
    }

    #[test]
    fn chain_descends_toward_home() {
        let (space, ov) = published();
        let home = Node::new(5);
        let chain = &ov.placements[&ObjectId(7)].chain;
        assert_eq!(chain[0], home, "G_0 contains every node");
        for (j, &c) in chain.iter().enumerate() {
            assert!(space.dist(c, home) <= ov.nets().radius(j) + 1e-12);
            assert!(ov.is_net_member(j, c));
        }
    }

    #[test]
    fn level_entries_point_down_the_chain() {
        let (_, ov) = published();
        let chain = ov.placements[&ObjectId(7)].chain.clone();
        for j in 1..ov.levels() {
            for &w in ov.rings().ring(Node::new(5), j).unwrap().members() {
                assert_eq!(ov.entry(w, j, ObjectId(7)), Some(chain[j - 1]));
            }
        }
    }

    #[test]
    fn unpublish_removes_everything() {
        let (_, mut ov) = published();
        let installed = ov.total_entries();
        let deleted = ov.unpublish(ObjectId(7));
        assert_eq!(deleted, installed);
        assert_eq!(ov.total_entries(), 0);
        assert_eq!(ov.home_of(ObjectId(7)), None);
        assert!(ov.objects().is_empty());
    }

    #[test]
    #[should_panic(expected = "already published")]
    fn double_publish_rejected() {
        let (space, mut ov) = published();
        ov.publish(&space, ObjectId(7), Node::new(6));
    }
}
