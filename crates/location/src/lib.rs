//! Object location over rings of neighbors — the serving half of
//! Slivkins (PODC 2005).
//!
//! The paper's title promises *distance estimation and object location*;
//! the sibling crates reproduce the estimation half (labels, routing,
//! small worlds). This crate turns the same static structures — the
//! nested net ladder of `ron-nets` and the net rings of `ron-core` — into
//! an object-location *system*:
//!
//! * [`DirectoryOverlay`]: a publish/lookup directory. `publish(obj, h)`
//!   installs pointers on the rings `B_h(c r_j) ∩ G_j` up the ladder,
//!   each pointing down the home's zooming sequence
//!   ([`ron_core::zoom`]); `lookup(s, obj)` climbs the origin's fingers
//!   and descends the chain, with constant worst-case stretch on static
//!   instances (tests pin 18);
//! * **dynamics** ([`churn`]): `join` / `leave` with incremental
//!   net-membership and directory-pointer [`DirectoryOverlay::repair`],
//!   plus a churn driver
//!   replaying random and targeted (hub-first) removal schedules and
//!   reporting success/stretch degradation and repair cost — the DRFE-R
//!   evaluation shape;
//! * **serving** ([`engine`]): a `std::thread` worker pool over owned,
//!   epoch-stamped [`Snapshot`]s published through an [`EpochCell`] —
//!   repairs build successor state off to the side and swap it in
//!   atomically, so lookups proceed at full rate *through* churn and
//!   repair — with a sharded, epoch-tagged LRU result cache, reporting
//!   throughput, p50/p99 latency and hops/stretch (through
//!   [`ron_routing::PathStats`]).
//!
//! # Example
//!
//! ```
//! use ron_location::{ChurnConfig, ChurnSchedule, DirectoryOverlay, ObjectId};
//! use ron_metric::{gen, Node, Space};
//!
//! let space = Space::new(gen::uniform_cube(64, 2, 7));
//! let mut overlay = DirectoryOverlay::build(&space);
//! for i in 0..4u64 {
//!     overlay.publish(&space, ObjectId(i), Node::new((i as usize * 11) % 64));
//! }
//! let report = ron_location::drive_churn(
//!     &space,
//!     &mut overlay,
//!     ChurnSchedule::Targeted { fraction: 0.2 },
//!     &ChurnConfig { steps: 2, queries_per_step: 64, seed: 1 },
//! );
//! assert_eq!(report.final_success_rate(), 1.0);
//! ```

pub mod authority;
pub mod churn;
mod directory;
pub mod engine;
mod lookup;
mod partition;
mod publish;
pub mod stats;
mod tables;

pub use authority::{NodeRepair, PointerOp, RepairAuthority, RepairOracle, RepairPlan, ScanOracle};
pub use churn::{
    drive_churn, ChurnConfig, ChurnReport, ChurnSchedule, ChurnStep, QuerySample, RepairReport,
};
pub use directory::{DirectoryOverlay, ObjectId, DEFAULT_RING_FACTOR};
pub use engine::{EngineConfig, QueryEngine, Snapshot};
pub use lookup::{LocateError, LookupOutcome};
pub use partition::DirectoryNodeState;
pub use ron_core::publish::{EpochCell, Published};
pub use stats::{BatchReport, LatencySummary};
