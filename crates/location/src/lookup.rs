//! Locating published objects: climb the origin's fingers, descend the
//! home's zoom chain.
//!
//! From origin `s`, the lookup visits the fingers `f_s0, f_s1, ...`
//! (nearest net member per level — the reversed zooming sequence of `s`)
//! until one holds a directory entry for the object, then follows the
//! stored chain downward to the home. On a static (or repaired) overlay
//! the climb is guaranteed to hit by the top level, and the traversed
//! length is at most a constant multiple of `d(s, home)` — the geometric
//! sums of Theorem 2.1's analysis; tests pin a worst-case stretch of 18.

use std::error::Error;
use std::fmt;

use ron_metric::{BallOracle, Metric, Node, Space};

use crate::directory::{DirectoryOverlay, ObjectId};

/// The outcome of one successful lookup.
#[derive(Clone, Debug, PartialEq)]
pub struct LookupOutcome {
    /// The located home node.
    pub home: Node,
    /// Overlay nodes visited, starting at the origin, ending at the home.
    pub path: Vec<Node>,
    /// Total metric length of the traversed overlay path.
    pub length: f64,
    /// Ladder level at which the directory entry was found.
    pub found_level: usize,
    /// Finger probes made on the climb (levels emptied by churn are
    /// skipped without a probe).
    pub probes: u64,
}

impl LookupOutcome {
    /// Number of overlay hops traversed.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Stretch relative to the true origin-to-home distance (`1.0` when
    /// origin and home coincide).
    #[must_use]
    pub fn stretch(&self, true_dist: f64) -> f64 {
        if true_dist <= 0.0 {
            1.0
        } else {
            self.length / true_dist
        }
    }
}

/// Lookup failures. On a static or freshly repaired overlay none of these
/// can occur for alive origins and published objects; between churn and
/// repair they measure the degradation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum LocateError {
    /// The querying node is dead.
    OriginDown {
        /// The dead origin.
        origin: Node,
    },
    /// The object was never published (or was unpublished).
    UnknownObject {
        /// The unknown object.
        obj: ObjectId,
    },
    /// The climb exhausted every ladder level without finding an entry.
    NotFound {
        /// The object looked up.
        obj: ObjectId,
        /// The origin of the query.
        origin: Node,
    },
    /// A chain entry pointed at a dead node, or a chain node lost its
    /// entry (directory damage awaiting repair).
    BrokenChain {
        /// The object looked up.
        obj: ObjectId,
        /// Node where the descent broke.
        at: Node,
        /// Ladder level of the broken step.
        level: usize,
    },
}

impl fmt::Display for LocateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocateError::OriginDown { origin } => write!(f, "origin {origin} is dead"),
            LocateError::UnknownObject { obj } => write!(f, "{obj} is not published"),
            LocateError::NotFound { obj, origin } => {
                write!(f, "no directory entry for {obj} on the climb from {origin}")
            }
            LocateError::BrokenChain { obj, at, level } => {
                write!(f, "chain for {obj} broke at {at} (level {level})")
            }
        }
    }
}

impl Error for LocateError {}

/// The read surface a lookup walk needs: liveness, the object registry
/// and the per-node pointer tables. Implemented by the live
/// [`DirectoryOverlay`] and by the owned, epoch-stamped
/// [`Snapshot`](crate::engine::Snapshot) — both answer the same walk, so
/// a published snapshot serves exactly what the overlay it was captured
/// from would have served.
pub(crate) trait LookupView {
    /// Number of ladder levels.
    fn levels(&self) -> usize;

    /// Whether `v` is alive in this view.
    fn is_alive(&self, v: Node) -> bool;

    /// The home of `obj`, if published in this view.
    fn home_of(&self, obj: ObjectId) -> Option<Node>;

    /// The level-`level` pointer entry for `obj` at node `v`.
    fn entry(&self, v: Node, level: usize, obj: ObjectId) -> Option<Node>;
}

impl LookupView for DirectoryOverlay {
    fn levels(&self) -> usize {
        DirectoryOverlay::levels(self)
    }

    fn is_alive(&self, v: Node) -> bool {
        DirectoryOverlay::is_alive(self, v)
    }

    fn home_of(&self, obj: ObjectId) -> Option<Node> {
        DirectoryOverlay::home_of(self, obj)
    }

    fn entry(&self, v: Node, level: usize, obj: ObjectId) -> Option<Node> {
        DirectoryOverlay::entry(self, v, level, obj)
    }
}

/// The shared lookup walk over any [`LookupView`] and finger provider:
/// climb the origin's fingers until a level holds an entry, then descend
/// the stored chain to the home.
pub(crate) fn locate_view<V: LookupView, M: Metric, I>(
    view: &V,
    space: &Space<M, I>,
    origin: Node,
    obj: ObjectId,
    fingers: impl Fn(Node, usize) -> Option<Node>,
) -> Result<LookupOutcome, LocateError> {
    if !view.is_alive(origin) {
        return Err(LocateError::OriginDown { origin });
    }
    if view.home_of(obj).is_none() {
        return Err(LocateError::UnknownObject { obj });
    }
    let mut path = vec![origin];
    let mut cur = origin;
    let mut length = 0.0f64;
    let mut probes = 0u64;
    let mut hop = |path: &mut Vec<Node>, cur: &mut Node, to: Node| {
        if *cur != to {
            length += space.dist(*cur, to);
            path.push(to);
            *cur = to;
        }
    };
    for j in 0..view.levels() {
        let Some(f) = fingers(origin, j) else {
            continue; // level emptied by churn; keep climbing
        };
        probes += 1;
        hop(&mut path, &mut cur, f);
        let Some(first) = view.entry(cur, j, obj) else {
            continue;
        };
        // Hit at level j: descend the home's zoom chain.
        let mut level = j;
        let mut next = first;
        loop {
            if !view.is_alive(next) {
                return Err(LocateError::BrokenChain {
                    obj,
                    at: next,
                    level,
                });
            }
            hop(&mut path, &mut cur, next);
            // A node storing the object recognises arrival — entries
            // may legitimately shortcut straight to the home (e.g.
            // when a level below was emptied by churn at publish
            // time).
            if view.home_of(obj) == Some(cur) || level == 0 {
                break;
            }
            level -= 1;
            next = view
                .entry(cur, level, obj)
                .ok_or(LocateError::BrokenChain {
                    obj,
                    at: cur,
                    level,
                })?;
        }
        let outcome = LookupOutcome {
            home: cur,
            path,
            length,
            found_level: j,
            probes,
        };
        if ron_obs::enabled() {
            ron_obs::observe("lookup.hops", outcome.hops() as u64);
            ron_obs::observe("lookup.probes", probes);
            ron_obs::observe("lookup.found_level", j as u64);
        }
        return Ok(outcome);
    }
    ron_obs::count("lookup.not_found", 1);
    Err(LocateError::NotFound { obj, origin })
}

impl DirectoryOverlay {
    /// Locates `obj` from `origin`, returning the home and the traversed
    /// overlay path.
    ///
    /// # Errors
    ///
    /// See [`LocateError`]; errors other than `UnknownObject` and
    /// `OriginDown` only occur between churn and the next repair.
    pub fn lookup<M: Metric, I: BallOracle>(
        &self,
        space: &Space<M, I>,
        origin: Node,
        obj: ObjectId,
    ) -> Result<LookupOutcome, LocateError> {
        self.locate_with(space, origin, obj, |s, j| {
            self.finger(space, s, j).map(|(_, f)| f)
        })
    }

    /// Shared lookup walk over any finger provider (the dynamic overlay
    /// scans the metric index; engine snapshots use a precomputed table).
    pub(crate) fn locate_with<M: Metric, I>(
        &self,
        space: &Space<M, I>,
        origin: Node,
        obj: ObjectId,
        fingers: impl Fn(Node, usize) -> Option<Node>,
    ) -> Result<LookupOutcome, LocateError> {
        locate_view(self, space, origin, obj, fingers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    #[test]
    fn every_origin_finds_every_object_on_the_line() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        for (i, h) in [0usize, 13, 31].iter().enumerate() {
            ov.publish(&space, ObjectId(i as u64), Node::new(*h));
        }
        for s in space.nodes() {
            for (i, h) in [0usize, 13, 31].iter().enumerate() {
                let out = ov.lookup(&space, s, ObjectId(i as u64)).expect("static");
                assert_eq!(out.home, Node::new(*h));
                assert_eq!(*out.path.first().unwrap(), s);
                assert_eq!(*out.path.last().unwrap(), Node::new(*h));
            }
        }
    }

    #[test]
    fn lookup_stretch_is_bounded_on_random_points() {
        let space = Space::new(gen::uniform_cube(96, 2, 11));
        let mut ov = DirectoryOverlay::build(&space);
        let home_picks = [4usize, 40, 77];
        for (i, h) in home_picks.iter().enumerate() {
            ov.publish(&space, ObjectId(i as u64), Node::new(*h));
        }
        let mut worst = 1.0f64;
        for s in space.nodes() {
            for (i, h) in home_picks.iter().enumerate() {
                let out = ov.lookup(&space, s, ObjectId(i as u64)).expect("static");
                worst = worst.max(out.stretch(space.dist(s, Node::new(*h))));
            }
        }
        // Geometric-sum bound: climb <= 4 r*, first chain hop <= 3 r*,
        // descent <= 2 r*, with r* <= 2 d(s, h) -- so stretch <= 18.
        assert!(worst <= 18.0, "worst stretch {worst}");
    }

    #[test]
    fn self_lookup_is_free() {
        let space = Space::new(LineMetric::uniform(16).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        ov.publish(&space, ObjectId(0), Node::new(3));
        let out = ov.lookup(&space, Node::new(3), ObjectId(0)).unwrap();
        assert_eq!(out.home, Node::new(3));
        assert_eq!(out.length, 0.0);
        assert_eq!(out.hops(), 0);
        assert_eq!(out.stretch(0.0), 1.0);
        assert_eq!(out.found_level, 0);
    }

    #[test]
    fn unknown_object_and_errors_display() {
        let space = Space::new(LineMetric::uniform(8).unwrap());
        let ov = DirectoryOverlay::build(&space);
        let err = ov
            .lookup(&space, Node::new(0), ObjectId(9))
            .expect_err("nothing published");
        assert_eq!(err, LocateError::UnknownObject { obj: ObjectId(9) });
        assert!(err.to_string().contains("not published"));
        let err = LocateError::BrokenChain {
            obj: ObjectId(1),
            at: Node::new(2),
            level: 3,
        };
        assert!(err.to_string().contains("level 3"));
        let err = LocateError::NotFound {
            obj: ObjectId(1),
            origin: Node::new(0),
        };
        assert!(err.to_string().contains("climb"));
        let err = LocateError::OriginDown {
            origin: Node::new(4),
        };
        assert!(err.to_string().contains("dead"));
    }
}
