//! The repair control plane: membership, registry and placement state
//! plus the repair *planner*, shared between the in-process
//! [`DirectoryOverlay::repair`] and the message-passing repair protocol
//! of `ron-sim`.
//!
//! [`DirectoryOverlay::repair`] used to interleave its decisions with
//! their application; splitting it into a pure plan
//! ([`RepairAuthority::plan_repair`], producing a [`RepairPlan`] of
//! per-node promotions, pointer writes/deletes, adoptions and finger
//! refreshes) and an application step lets a *distributed* run fan the
//! same plan out as messages — and makes "simulated repair equals
//! in-process repair" a statement about one shared planner instead of
//! two parallel implementations.
//!
//! The planner never touches a [`Space`] directly: it asks a
//! [`RepairOracle`] for distances, nearest-member and ball queries.
//! [`Space`] implements the oracle through its
//! [`BallOracle`] backend (the in-process path), and [`ScanOracle`]
//! implements it over a bare distance function (the simulator's
//! coordinator, whose only geometric capability is the engine's
//! distance oracle). Both visit candidates in the same ascending
//! `(distance, node id)` order, so the two paths produce byte-identical
//! plans — property-tested in `ron-sim` on all four instance families.

use std::collections::HashMap;

use ron_metric::{BallOracle, Metric, Node, Space};

use crate::churn::RepairReport;
use crate::directory::{DirectoryOverlay, ObjectId, Placement};

/// The geometric queries repair planning needs, in the ascending
/// `(distance, node id)` visit order of
/// [`BallOracle`].
pub trait RepairOracle {
    /// Number of nodes in the space.
    fn len(&self) -> usize;

    /// Whether the space is empty (never true: construction rejects
    /// empty metrics).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Metric distance between two nodes.
    fn dist(&self, u: Node, v: Node) -> f64;

    /// Nearest node to `u` (inclusive) satisfying `pred`, ties broken by
    /// node id.
    fn nearest_where(&self, u: Node, pred: &mut dyn FnMut(Node) -> bool) -> Option<(f64, Node)>;

    /// Visits every node of the closed ball `B_u(r)` in ascending
    /// `(distance, id)` order.
    fn ball(&self, u: Node, r: f64, visit: &mut dyn FnMut(Node));
}

impl<M: Metric, I: BallOracle> RepairOracle for Space<M, I> {
    fn len(&self) -> usize {
        Space::len(self)
    }

    fn dist(&self, u: Node, v: Node) -> f64 {
        Space::dist(self, u, v)
    }

    fn nearest_where(&self, u: Node, pred: &mut dyn FnMut(Node) -> bool) -> Option<(f64, Node)> {
        self.index().nearest_where(u, pred)
    }

    fn ball(&self, u: Node, r: f64, visit: &mut dyn FnMut(Node)) {
        self.index().for_each_in_ball(u, r, &mut |_, v| visit(v));
    }
}

/// A [`RepairOracle`] over a bare distance function: every query is an
/// `O(n)` scan (plus a sort for balls) in `(distance, id)` order —
/// exactly the order the indexed backends answer in, so a planner
/// running on a scan oracle reproduces the indexed plan bit for bit.
///
/// This is what the simulator's repair coordinator uses: a simulated
/// node holds no ball index, only the engine's distance oracle
/// (geometric awareness is local knowledge, Definition 5.1).
pub struct ScanOracle<'a> {
    n: usize,
    dist: &'a dyn Fn(Node, Node) -> f64,
}

impl<'a> ScanOracle<'a> {
    /// Wraps a distance function over `n` nodes.
    #[must_use]
    pub fn new(n: usize, dist: &'a dyn Fn(Node, Node) -> f64) -> Self {
        ScanOracle { n, dist }
    }
}

impl RepairOracle for ScanOracle<'_> {
    fn len(&self) -> usize {
        self.n
    }

    fn dist(&self, u: Node, v: Node) -> f64 {
        (self.dist)(u, v)
    }

    fn nearest_where(&self, u: Node, pred: &mut dyn FnMut(Node) -> bool) -> Option<(f64, Node)> {
        let mut best: Option<(f64, Node)> = None;
        for i in 0..self.n {
            let v = Node::new(i);
            let d = (self.dist)(u, v);
            let closer = match best {
                Some((bd, bv)) => d < bd || (d == bd && v < bv),
                None => true,
            };
            if closer && pred(v) {
                best = Some((d, v));
            }
        }
        best
    }

    fn ball(&self, u: Node, r: f64, visit: &mut dyn FnMut(Node)) {
        let mut hits: Vec<(f64, Node)> = (0..self.n)
            .map(|i| ((self.dist)(u, Node::new(i)), Node::new(i)))
            .filter(|&(d, _)| d <= r)
            .collect();
        hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        for (_, v) in hits {
            visit(v);
        }
    }
}

/// One node's finger refreshes: `(level, new finger)` for each touched
/// level.
pub type FingerUpdate = (Node, Vec<(usize, Option<Node>)>);

/// One pointer-table operation at one node: install the entry
/// (`target = Some(next)`) or delete it (`target = None`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PointerOp {
    /// Ladder level of the entry.
    pub level: usize,
    /// The object the entry is for.
    pub obj: ObjectId,
    /// Chain node the entry forwards to, or `None` to delete.
    pub target: Option<Node>,
}

/// Everything one node must do to execute a repair plan: promotions
/// into net levels, objects to adopt (re-homings), and pointer-table
/// operations. The simulator ships one of these per node as a message;
/// the in-process path applies them directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeRepair {
    /// The node this slice of the plan belongs to.
    pub node: Node,
    /// Net levels the node is promoted into (covering restoration).
    pub promote: Vec<usize>,
    /// Objects newly homed at this node.
    pub adopt: Vec<ObjectId>,
    /// Pointer-table writes and deletes.
    pub ops: Vec<PointerOp>,
}

impl NodeRepair {
    fn new(node: Node) -> Self {
        NodeRepair {
            node,
            promote: Vec::new(),
            adopt: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Whether the plan asks nothing of this node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.promote.is_empty() && self.adopt.is_empty() && self.ops.is_empty()
    }
}

/// The output of one [`RepairAuthority::plan_repair`] call: the global
/// decisions (promotion count, re-homings, touched objects) plus the
/// per-node work list.
#[derive(Clone, Debug, Default)]
pub struct RepairPlan {
    /// Net-level insertions decided by the covering pass.
    pub promotions: usize,
    /// Objects migrated to a new home because theirs died.
    pub rehomed: Vec<(ObjectId, Node)>,
    /// Objects whose placement was reconciled.
    pub objects_touched: usize,
    /// Levels whose membership changed since the last repair (leaves,
    /// joins or promotions) — the levels whose fingers need refreshing.
    pub touched_levels: Vec<bool>,
    /// Per-node work, in first-touch order (deterministic).
    pub node_repairs: Vec<NodeRepair>,
    /// Updated placements, applied to the overlay's bookkeeping.
    pub(crate) placements: Vec<(ObjectId, Placement)>,
}

impl RepairPlan {
    /// The plan's global counters as a [`RepairReport`] with the
    /// write/delete counts still zero — those are counted where the
    /// table operations execute (the overlay in process, the owning
    /// nodes' acks in the simulator).
    #[must_use]
    pub fn report_base(&self) -> RepairReport {
        RepairReport {
            promotions: self.promotions,
            rehomed: self.rehomed.len(),
            objects_touched: self.objects_touched,
            ..RepairReport::default()
        }
    }
}

/// The control-plane state repair planning runs against: the dynamic
/// net ladder, alive flags, touched sets, the object registry and the
/// per-object placements — everything **except** the pointer tables,
/// which stay at the owning nodes (the data plane).
///
/// The in-process path materializes one per `repair` call from the
/// overlay; the simulator's coordinator node carries one persistently
/// and evolves it across churn epochs (see `ron-sim`'s directory
/// driver).
#[derive(Clone, Debug)]
pub struct RepairAuthority {
    ring_factor: f64,
    radii: Vec<f64>,
    member: Vec<Vec<bool>>,
    level_dirty: Vec<bool>,
    touched: Vec<Vec<Node>>,
    alive: Vec<bool>,
    alive_count: usize,
    objects: Vec<ObjectId>,
    homes: HashMap<ObjectId, Node>,
    placements: HashMap<ObjectId, Placement>,
}

impl DirectoryOverlay {
    /// Extracts the repair control plane: a copy of the overlay's
    /// membership ladder, alive flags, touched sets, object registry and
    /// placements (the pointer tables stay behind — they are the data
    /// plane).
    #[must_use]
    pub fn control_plane(&self) -> RepairAuthority {
        RepairAuthority {
            ring_factor: self.ring_factor,
            radii: self.radii.clone(),
            member: self.member.clone(),
            level_dirty: self.level_dirty.clone(),
            touched: self.touched.clone(),
            alive: self.alive.clone(),
            alive_count: self.alive_count,
            objects: self.objects.clone(),
            homes: self.homes.clone(),
            placements: self.placements.clone(),
        }
    }
}

impl RepairAuthority {
    /// Number of nodes (alive or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// Whether the control plane tracks no nodes (never true).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Number of ladder levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.radii.len()
    }

    /// Whether `v` is currently alive in the control plane's view.
    #[must_use]
    pub fn is_alive(&self, v: Node) -> bool {
        self.alive[v.index()]
    }

    /// Number of alive nodes.
    #[must_use]
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// The net levels `v` is currently a member of, ascending.
    #[must_use]
    pub fn member_levels_of(&self, v: Node) -> Vec<usize> {
        (0..self.levels())
            .filter(|&j| self.member[j][v.index()])
            .collect()
    }

    /// The current home of `obj`, if registered.
    #[must_use]
    pub fn home_of(&self, obj: ObjectId) -> Option<Node> {
        self.homes.get(&obj).copied()
    }

    /// Records that `v` left: vacates its net memberships and marks the
    /// touched levels. Mirrors [`DirectoryOverlay::leave`] (the node's
    /// pointer tables die with it).
    ///
    /// # Panics
    ///
    /// Panics if `v` is already dead or is the last alive node.
    pub fn note_leave(&mut self, v: Node) {
        assert!(self.alive[v.index()], "{v} is already dead");
        assert!(self.alive_count > 1, "cannot remove the last alive node");
        self.alive[v.index()] = false;
        self.alive_count -= 1;
        for j in 0..self.levels() {
            if self.member[j][v.index()] {
                self.member[j][v.index()] = false;
                self.touched[j].push(v);
                self.level_dirty[j] = true;
            }
        }
    }

    /// Records that `v` joined: marks it alive and inserts it greedily
    /// into the ladder, exactly like [`DirectoryOverlay::join`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is already alive.
    pub fn note_join(&mut self, oracle: &dyn RepairOracle, v: Node) {
        assert!(!self.alive[v.index()], "{v} is already alive");
        self.alive[v.index()] = true;
        self.alive_count += 1;
        self.insert_member(0, v);
        for j in 1..self.levels() {
            let separated = match self.finger(oracle, v, j) {
                Some((d, _)) => d >= self.radii[j],
                None => true, // empty level: v restores it
            };
            if !separated {
                break;
            }
            self.insert_member(j, v);
        }
    }

    fn insert_member(&mut self, level: usize, v: Node) {
        if !self.member[level][v.index()] {
            self.member[level][v.index()] = true;
            self.touched[level].push(v);
            self.level_dirty[level] = true;
        }
    }

    /// The finger of `s` at `level` under the current membership.
    fn finger(&self, oracle: &dyn RepairOracle, s: Node, level: usize) -> Option<(f64, Node)> {
        oracle.nearest_where(s, &mut |v| self.member[level][v.index()])
    }

    /// Alive members of the dynamic net within the publish radius of
    /// `home`, nearest first.
    fn dynamic_ring(&self, oracle: &dyn RepairOracle, home: Node, level: usize) -> Vec<Node> {
        let r = self.ring_factor * self.radii[level];
        let mut ring = Vec::new();
        oracle.ball(home, r, &mut |v| {
            if self.member[level][v.index()] {
                ring.push(v);
            }
        });
        ring
    }

    /// The home's zoom chain under the current membership (a level with
    /// no members contributes the home itself). Repair only runs on
    /// diverged ladders, so this is always the dynamic-finger chain of
    /// `DirectoryOverlay::desired_chain`.
    fn desired_chain(&self, oracle: &dyn RepairOracle, home: Node) -> Vec<Node> {
        debug_assert!(
            self.level_dirty.iter().any(|&d| d),
            "repair planning on a pristine ladder"
        );
        (0..self.levels())
            .map(|j| self.finger(oracle, home, j).map_or(home, |(_, f)| f))
            .collect()
    }

    /// Plans one repair epoch over the accumulated touched sets:
    /// covering promotions, re-homings and pointer reconciliation —
    /// the exact decision sequence of [`DirectoryOverlay::repair`] —
    /// then clears the touched sets and updates the control plane's
    /// registry and placements. The caller applies the plan (directly,
    /// or by fanning it out as messages).
    pub fn plan_repair(&mut self, oracle: &dyn RepairOracle) -> RepairPlan {
        let _stage = ron_obs::stage("repair");
        let levels = self.levels();
        let n = self.len();
        let mut plan = RepairPlan {
            touched_levels: vec![false; levels],
            ..RepairPlan::default()
        };
        let mut index: HashMap<Node, usize> = HashMap::new();
        let mut bucket = |plan: &mut RepairPlan, w: Node| -> usize {
            *index.entry(w).or_insert_with(|| {
                plan.node_repairs.push(NodeRepair::new(w));
                plan.node_repairs.len() - 1
            })
        };

        // Covering pass: promote uncovered alive nodes, coarse-compatible
        // (a node promoted to level j joins every finer level too).
        let t_covering = ron_obs::start();
        for j in 1..levels {
            for i in 0..n {
                let u = Node::new(i);
                if !self.alive[i] || self.member[j][i] {
                    continue;
                }
                let covered = match self.finger(oracle, u, j) {
                    Some((d, _)) => d <= self.radii[j] * (1.0 + 1e-12),
                    None => false,
                };
                if covered {
                    continue;
                }
                for k in 1..=j {
                    if !self.member[k][u.index()] {
                        self.insert_member(k, u);
                        plan.promotions += 1;
                        let b = bucket(&mut plan, u);
                        plan.node_repairs[b].promote.push(k);
                    }
                }
            }
        }

        ron_obs::finish("repair.plan.covering", t_covering);

        // Homes pass: re-home objects whose home died to the nearest
        // alive node.
        let t_homes = ron_obs::start();
        for idx in 0..self.objects.len() {
            let obj = self.objects[idx];
            let home = self.homes[&obj];
            if self.alive[home.index()] {
                continue;
            }
            let (_, new_home) = oracle
                .nearest_where(home, &mut |v| self.alive[v.index()])
                .expect("at least one node stays alive");
            self.homes.insert(obj, new_home);
            plan.rehomed.push((obj, new_home));
            let b = bucket(&mut plan, new_home);
            plan.node_repairs[b].adopt.push(obj);
        }

        ron_obs::finish("repair.plan.homes", t_homes);

        // Pointer pass: reconcile each object whose rings or chain could
        // have changed (see `DirectoryOverlay::repair_pointers` for the
        // skip-test argument).
        let t_pointers = ron_obs::start();
        for idx in 0..self.objects.len() {
            let obj = self.objects[idx];
            let home = self.homes[&obj];
            let old = self.placements.get(&obj).cloned().unwrap_or_default();
            let moved = old.chain.first() != Some(&home);

            let mut ring_changed = vec![false; levels];
            for (j, slot) in ring_changed.iter_mut().enumerate() {
                *slot = self.touched[j]
                    .iter()
                    .any(|&t| oracle.dist(home, t) <= self.ring_factor * self.radii[j] + 1e-12);
            }
            if !moved && ring_changed.iter().all(|&r| !r) {
                continue;
            }
            plan.objects_touched += 1;

            let new_chain = self.desired_chain(oracle, home);
            let mut refresh = vec![false; levels];
            for (j, slot) in refresh.iter_mut().enumerate() {
                let chain_drift = j > 0 && old.chain.get(j - 1) != Some(&new_chain[j - 1]);
                *slot = moved || ring_changed[j] || chain_drift;
            }

            let mut placement = Placement {
                chain: new_chain.clone(),
                entries: Vec::new(),
            };
            for &(level, w) in &old.entries {
                if !refresh[level] {
                    placement.entries.push((level, w));
                }
            }
            for (level, _) in refresh.iter().enumerate().filter(|&(_, &r)| r) {
                let desired = self.dynamic_ring(oracle, home, level);
                let target = if level == 0 {
                    home
                } else {
                    new_chain[level - 1]
                };
                // Delete stale entries from alive nodes that left the
                // ring (a dead holder's table died with it).
                for &(l, w) in &old.entries {
                    if l == level
                        && self.alive[w.index()]
                        && desired
                            .binary_search_by(|probe| {
                                oracle
                                    .dist(home, *probe)
                                    .total_cmp(&oracle.dist(home, w))
                                    .then(probe.cmp(&w))
                            })
                            .is_err()
                    {
                        let b = bucket(&mut plan, w);
                        plan.node_repairs[b].ops.push(PointerOp {
                            level,
                            obj,
                            target: None,
                        });
                    }
                }
                for w in desired {
                    let b = bucket(&mut plan, w);
                    plan.node_repairs[b].ops.push(PointerOp {
                        level,
                        obj,
                        target: Some(target),
                    });
                    placement.entries.push((level, w));
                }
            }
            self.placements.insert(obj, placement.clone());
            plan.placements.push((obj, placement));
        }

        ron_obs::finish("repair.plan.pointers", t_pointers);

        for (j, touched) in self.touched.iter_mut().enumerate() {
            plan.touched_levels[j] = !touched.is_empty();
            touched.clear();
        }
        plan
    }

    /// The per-node finger refreshes a plan implies: for every alive
    /// node, its new finger at each touched level (the untouched levels'
    /// fingers are still valid). Separate from [`plan_repair`] because
    /// only the distributed path needs it — in process, fingers are
    /// recomputed on demand.
    ///
    /// [`plan_repair`]: RepairAuthority::plan_repair
    #[must_use]
    pub fn finger_updates(
        &self,
        oracle: &dyn RepairOracle,
        touched_levels: &[bool],
    ) -> Vec<FingerUpdate> {
        if !touched_levels.iter().any(|&t| t) {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..self.len() {
            if !self.alive[i] {
                continue;
            }
            let u = Node::new(i);
            let fingers: Vec<(usize, Option<Node>)> = touched_levels
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t)
                .map(|(j, _)| (j, self.finger(oracle, u, j).map(|(_, f)| f)))
                .collect();
            out.push((u, fingers));
        }
        out
    }

    /// The complete finger vector of `v` under the current membership —
    /// one entry per level. A fresh joiner's backfill needs all of them:
    /// its slice may predate an arbitrary number of epochs, so "levels
    /// untouched this epoch are still valid" does not hold for it.
    #[must_use]
    pub fn full_fingers(&self, oracle: &dyn RepairOracle, v: Node) -> Vec<(usize, Option<Node>)> {
        (0..self.levels())
            .map(|j| (j, self.finger(oracle, v, j).map(|(_, f)| f)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    #[test]
    fn scan_oracle_matches_the_indexed_backend() {
        let space = Space::new(gen::uniform_cube(40, 2, 9));
        let dist = |u: Node, v: Node| space.dist(u, v);
        let scan = ScanOracle::new(space.len(), &dist);
        for u in space.nodes() {
            for r in [0.0, 0.1, 0.25, 2.0] {
                let mut a = Vec::new();
                let mut b = Vec::new();
                RepairOracle::ball(&space, u, r, &mut |v| a.push(v));
                scan.ball(u, r, &mut |v| b.push(v));
                assert_eq!(a, b, "ball({u}, {r})");
            }
            for modulus in [2usize, 3, 7] {
                let hit_idx =
                    RepairOracle::nearest_where(&space, u, &mut |v| v.index() % modulus == 0);
                let hit_scan = scan.nearest_where(u, &mut |v| v.index() % modulus == 0);
                assert_eq!(hit_idx, hit_scan, "nearest_where({u}, % {modulus})");
            }
        }
    }

    #[test]
    fn control_plane_plans_the_same_repair_the_overlay_applies() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        for i in 0..5u64 {
            ov.publish(&space, ObjectId(i), Node::new((i as usize * 7) % 32));
        }
        ov.leave(Node::new(7));
        ov.leave(Node::new(14));
        let mut authority = ov.control_plane();
        let plan = authority.plan_repair(&space);
        let report = ov.repair(&space);
        assert_eq!(plan.report_base().promotions, report.promotions);
        assert_eq!(plan.rehomed.len(), report.rehomed);
        assert_eq!(plan.report_base().objects_touched, report.objects_touched);
        let planned_writes: usize = plan
            .node_repairs
            .iter()
            .flat_map(|nr| nr.ops.iter())
            .filter(|op| op.target.is_some())
            .count();
        assert!(planned_writes >= report.pointer_writes);
        // The authority evolved past the epoch: planning again is a
        // no-op, like repairing twice.
        let idle = authority.plan_repair(&space);
        assert_eq!(idle.promotions, 0);
        assert_eq!(idle.objects_touched, 0);
        assert!(idle.node_repairs.is_empty());
    }

    #[test]
    fn note_join_mirrors_overlay_join() {
        let space = Space::new(gen::uniform_cube(24, 2, 3));
        let mut ov = DirectoryOverlay::build(&space);
        ov.publish(&space, ObjectId(0), Node::new(1));
        ov.leave(Node::new(5));
        let mut authority = ov.control_plane();
        ov.join(&space, Node::new(5));
        let dist = |u: Node, v: Node| space.dist(u, v);
        let scan = ScanOracle::new(space.len(), &dist);
        authority.note_join(&scan, Node::new(5));
        for j in 0..ov.levels() {
            assert_eq!(
                authority.member_levels_of(Node::new(5)).contains(&j),
                ov.is_net_member(j, Node::new(5)),
                "membership at level {j}"
            );
        }
    }
}
