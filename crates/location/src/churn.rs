//! Dynamics: join/leave, incremental repair, and churn schedules.
//!
//! A `leave` deletes a node's pointer tables and net memberships; a `join`
//! re-inserts a node greedily into the ladder. [`DirectoryOverlay::repair`]
//! then restores the two serving invariants incrementally:
//!
//! 1. **covering** — every alive node is within `r_j` of an alive
//!    level-`j` member (uncovered nodes are promoted, preserving the
//!    nesting `G_j ⊆ G_{j-1}`);
//! 2. **publish** — every alive member of `B_h(c r_j) ∩ G_j` holds the
//!    level-`j` entry for each object homed at `h`, pointing down the
//!    (current) zoom chain; objects whose home died are re-homed to the
//!    nearest alive node first.
//!
//! Repair is incremental: only objects whose rings or chains could have
//! been affected by the membership changes accumulated since the last
//! repair (`touched` sets) are reconciled, DRFE-R-style, and the report
//! counts the work (promotions, pointer writes/deletes, re-homings).
//!
//! [`drive_churn`] replays random or targeted (hub-first) removal
//! schedules in steps, sampling lookup success and stretch before and
//! after each repair.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use ron_core::publish::EpochCell;
use ron_metric::{BallOracle, Metric, Node, Space};
use ron_routing::PathStats;

use crate::authority::RepairPlan;
use crate::directory::DirectoryOverlay;
use crate::engine::Snapshot;

/// Work performed by one [`DirectoryOverlay::repair`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Nodes inserted into net levels to restore covering.
    pub promotions: usize,
    /// Directory entries written (new or re-targeted).
    pub pointer_writes: usize,
    /// Stale directory entries deleted.
    pub pointer_deletes: usize,
    /// Objects migrated to a new home because theirs died.
    pub rehomed: usize,
    /// Objects whose placement was reconciled (the incremental subset).
    pub objects_touched: usize,
}

impl RepairReport {
    /// Accumulates another report (for totals over churn steps).
    pub fn absorb(&mut self, other: &RepairReport) {
        self.promotions += other.promotions;
        self.pointer_writes += other.pointer_writes;
        self.pointer_deletes += other.pointer_deletes;
        self.rehomed += other.rehomed;
        self.objects_touched += other.objects_touched;
    }
}

impl DirectoryOverlay {
    /// Brings a dead node back: marks it alive and inserts it greedily
    /// into the ladder (level 0 always; each coarser level while the
    /// separation `>= r_j` to the nearest member holds, preserving
    /// nesting). Pointer backfill happens at the next [`repair`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is already alive.
    ///
    /// [`repair`]: DirectoryOverlay::repair
    pub fn join<M: Metric, I: BallOracle>(&mut self, space: &Space<M, I>, v: Node) {
        assert!(!self.alive[v.index()], "{v} is already alive");
        self.epoch += 1;
        self.alive[v.index()] = true;
        self.alive_count += 1;
        self.insert_member(0, v);
        for j in 1..self.levels() {
            let separated = match self.finger(space, v, j) {
                Some((d, _)) => d >= self.radii[j],
                None => true, // empty level: v restores it
            };
            if !separated {
                break;
            }
            self.insert_member(j, v);
        }
    }

    /// Removes a node: its pointer tables are lost, its net memberships
    /// vacated. Directory damage persists until [`repair`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is already dead, or if it is the last alive node.
    ///
    /// [`repair`]: DirectoryOverlay::repair
    pub fn leave(&mut self, v: Node) {
        assert!(self.alive[v.index()], "{v} is already dead");
        assert!(self.alive_count > 1, "cannot remove the last alive node");
        self.epoch += 1;
        self.alive[v.index()] = false;
        self.alive_count -= 1;
        for j in 0..self.levels() {
            if self.member[j][v.index()] {
                self.member[j][v.index()] = false;
                self.touched[j].push(v);
                self.level_dirty[j] = true;
            }
        }
        self.tables.clear_node(v);
    }

    fn insert_member(&mut self, level: usize, v: Node) {
        if !self.member[level][v.index()] {
            self.member[level][v.index()] = true;
            self.touched[level].push(v);
            self.level_dirty[level] = true;
        }
    }

    /// Restores the covering and publish invariants after any sequence of
    /// joins and leaves; afterwards every lookup from an alive origin
    /// succeeds again. Returns the work performed.
    ///
    /// Since the plan/apply split, this is a thin composition: extract
    /// the [control plane](DirectoryOverlay::control_plane), let it
    /// [plan](crate::RepairAuthority::plan_repair) the epoch (covering
    /// promotions, re-homings, pointer reconciliation — including the
    /// incremental skip test: a chain point at level `j` can only drift
    /// if membership changed strictly nearer to the home than the old
    /// point, and after the covering pass any such change shows up as a
    /// touched node inside the publish radius, so an object with no
    /// touched node inside any publish radius and an unmoved home costs
    /// only `sum_j |touched[j]|` distance probes), then apply the plan.
    /// The message-passing simulator runs the *same* planner at its
    /// coordinator node and applies the same plan as a message fan-out.
    pub fn repair<M: Metric, I: BallOracle>(&mut self, space: &Space<M, I>) -> RepairReport {
        let _span = ron_obs::span("repair.epoch");
        let mut authority = self.control_plane();
        let plan = authority.plan_repair(space);
        self.apply_plan(&plan)
    }

    /// Applies a repair plan: net-level promotions, re-homings, placement
    /// bookkeeping and the per-node pointer operations, counting the
    /// writes and deletes that actually changed a table (the distributed
    /// path counts the same thing in per-node acks). Clears the touched
    /// sets — the plan consumed them.
    ///
    /// The plan was built off to the side by
    /// [`RepairAuthority::plan_repair`](crate::RepairAuthority::plan_repair)
    /// without touching serving state, and applying it bumps the overlay
    /// [epoch](DirectoryOverlay::epoch). Under epoch publication the
    /// mutable overlay *is* the successor under construction — readers
    /// only ever see published [`Snapshot`](crate::engine::Snapshot)s, so
    /// no clone is needed; capture-and-publish after the apply makes the
    /// repaired state visible atomically (see
    /// [`repair_published`](DirectoryOverlay::repair_published)).
    pub fn apply_plan(&mut self, plan: &RepairPlan) -> RepairReport {
        let _stage = ron_obs::stage("repair");
        let t = ron_obs::start();
        self.epoch += 1;
        let mut report = plan.report_base();
        for nr in &plan.node_repairs {
            for &level in &nr.promote {
                self.member[level][nr.node.index()] = true;
                self.level_dirty[level] = true;
            }
            for op in &nr.ops {
                match op.target {
                    Some(target) => {
                        if self.tables.insert(nr.node, op.level, op.obj, target) != Some(target) {
                            report.pointer_writes += 1;
                        }
                    }
                    None => {
                        if self.tables.remove(nr.node, op.level, op.obj).is_some() {
                            report.pointer_deletes += 1;
                        }
                    }
                }
            }
        }
        for &(obj, new_home) in &plan.rehomed {
            self.homes.insert(obj, new_home);
        }
        // ron-lint: allow(map-order): `RepairPlan::placements` is a
        // Vec in deterministic plan order (the control plane's hash
        // registry shares the field name); keyed inserts commute anyway.
        for (obj, placement) in &plan.placements {
            self.placements.insert(*obj, placement.clone());
        }
        for touched in &mut self.touched {
            touched.clear();
        }
        ron_obs::finish("repair.apply", t);
        report
    }

    /// Repairs the overlay and atomically publishes the repaired state to
    /// `cell`: plan the epoch, apply it to this (unpublished, mutable)
    /// overlay, then capture-and-swap a fresh [`Snapshot`]. Readers keep
    /// serving the previous publication at full rate throughout and see
    /// the repaired directory only as one complete state — never a
    /// half-applied plan.
    ///
    /// Returns the repair work performed, exactly as
    /// [`repair`](DirectoryOverlay::repair) would.
    pub fn repair_published<M: Metric, I: BallOracle>(
        &mut self,
        space: &Space<M, I>,
        cell: &EpochCell<Snapshot>,
    ) -> RepairReport {
        let report = self.repair(space);
        self.publish_snapshot(space, cell);
        report
    }
}

/// A removal schedule for [`drive_churn`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ChurnSchedule {
    /// Remove uniformly random alive nodes (seeded, reproducible).
    Random {
        /// Fraction of the initially alive nodes to remove, in `(0, 1)`.
        fraction: f64,
        /// Seed for the victim shuffle.
        seed: u64,
    },
    /// Remove the highest-degree nodes first: coarsest net membership,
    /// then directory load — the adversarial hub attack.
    Targeted {
        /// Fraction of the initially alive nodes to remove, in `(0, 1)`.
        fraction: f64,
    },
}

/// Driver configuration: how many steps to split the schedule into and
/// how many sample queries to measure per step.
#[derive(Clone, Copy, Debug)]
pub struct ChurnConfig {
    /// Number of removal steps (each followed by one repair).
    pub steps: usize,
    /// Sampled `(origin, object)` queries measured before and after each
    /// repair.
    pub queries_per_step: usize,
    /// Seed for query sampling.
    pub seed: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            steps: 4,
            queries_per_step: 256,
            seed: 0x0b1ec7,
        }
    }
}

/// Success and stretch over a sample of lookups.
#[derive(Clone, Debug, Default)]
pub struct QuerySample {
    /// Queries attempted.
    pub queries: usize,
    /// Queries that located the current home.
    pub successes: usize,
    /// Path statistics over the successful lookups.
    pub paths: PathStats,
}

impl QuerySample {
    /// Fraction of sampled lookups that succeeded (`1.0` when empty).
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.queries == 0 {
            1.0
        } else {
            self.successes as f64 / self.queries as f64
        }
    }
}

/// One churn step: removals, degradation, repair, recovery.
#[derive(Clone, Debug)]
pub struct ChurnStep {
    /// Nodes removed this step.
    pub removed: usize,
    /// Alive nodes after the removals.
    pub alive_after: usize,
    /// Sampled lookups after the removals, before repair.
    pub before_repair: QuerySample,
    /// Repair work performed.
    pub repair: RepairReport,
    /// Sampled lookups after repair.
    pub after_repair: QuerySample,
}

/// The full replay of a schedule.
#[derive(Clone, Debug, Default)]
pub struct ChurnReport {
    /// Per-step measurements.
    pub steps: Vec<ChurnStep>,
}

impl ChurnReport {
    /// Total nodes removed across all steps.
    #[must_use]
    pub fn total_removed(&self) -> usize {
        self.steps.iter().map(|s| s.removed).sum()
    }

    /// Total repair work across all steps.
    #[must_use]
    pub fn total_repair(&self) -> RepairReport {
        let mut total = RepairReport::default();
        for s in &self.steps {
            total.absorb(&s.repair);
        }
        total
    }

    /// Success rate of the last post-repair sample (`1.0` if no steps).
    #[must_use]
    pub fn final_success_rate(&self) -> f64 {
        self.steps
            .last()
            .map_or(1.0, |s| s.after_repair.success_rate())
    }
}

/// Replays `schedule` against the overlay in `config.steps` batches,
/// measuring sampled lookup success/stretch before and after each repair.
///
/// # Panics
///
/// Panics if the schedule fraction is not in `(0, 1)`, or if nothing is
/// published (there would be nothing to measure).
pub fn drive_churn<M: Metric, I: BallOracle>(
    space: &Space<M, I>,
    overlay: &mut DirectoryOverlay,
    schedule: ChurnSchedule,
    config: &ChurnConfig,
) -> ChurnReport {
    let fraction = match schedule {
        ChurnSchedule::Random { fraction, .. } | ChurnSchedule::Targeted { fraction } => fraction,
    };
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "churn fraction {fraction} out of (0, 1)"
    );
    assert!(
        !overlay.objects().is_empty(),
        "publish something before driving churn"
    );
    let total = ((overlay.alive_count() as f64) * fraction).floor() as usize;
    let steps = config.steps.max(1);
    let mut sampler = StdRng::seed_from_u64(config.seed);
    let mut report = ChurnReport::default();
    let mut removed_so_far = 0usize;
    for step in 0..steps {
        let quota = (total * (step + 1)) / steps - removed_so_far;
        if quota == 0 {
            continue;
        }
        let victims = pick_victims(overlay, schedule, step, quota);
        for &v in &victims {
            overlay.leave(v);
        }
        removed_so_far += victims.len();
        let before_repair = sample_queries(space, overlay, &mut sampler, config.queries_per_step);
        let repair = overlay.repair(space);
        let after_repair = sample_queries(space, overlay, &mut sampler, config.queries_per_step);
        report.steps.push(ChurnStep {
            removed: victims.len(),
            alive_after: overlay.alive_count(),
            before_repair,
            repair,
            after_repair,
        });
    }
    report
}

/// Picks this step's victims: a seeded shuffle of the alive nodes for
/// `Random`, the current hubs (coarsest membership, then directory load)
/// for `Targeted`.
fn pick_victims(
    overlay: &DirectoryOverlay,
    schedule: ChurnSchedule,
    step: usize,
    quota: usize,
) -> Vec<Node> {
    let mut alive: Vec<Node> = (0..overlay.len())
        .map(Node::new)
        .filter(|&v| overlay.is_alive(v))
        .collect();
    let quota = quota.min(alive.len().saturating_sub(1));
    match schedule {
        ChurnSchedule::Random { seed, .. } => {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(step as u64));
            alive.shuffle(&mut rng);
        }
        ChurnSchedule::Targeted { .. } => {
            alive.sort_by_key(|&v| {
                let level = overlay.top_level_of(v).unwrap_or(0);
                let load = overlay.entries_at(v);
                // Highest level first, then most loaded, then lowest id.
                (std::cmp::Reverse(level), std::cmp::Reverse(load), v)
            });
        }
    }
    alive.truncate(quota);
    alive
}

/// Samples `count` lookups of published objects from alive origins.
fn sample_queries<M: Metric, I: BallOracle>(
    space: &Space<M, I>,
    overlay: &DirectoryOverlay,
    rng: &mut StdRng,
    count: usize,
) -> QuerySample {
    let alive: Vec<Node> = (0..overlay.len())
        .map(Node::new)
        .filter(|&v| overlay.is_alive(v))
        .collect();
    let mut sample = QuerySample::default();
    for _ in 0..count {
        let origin = alive[rng.random_range(0..alive.len())];
        let obj = overlay.objects()[rng.random_range(0..overlay.objects().len())];
        sample.queries += 1;
        match overlay.lookup(space, origin, obj) {
            Ok(out) if Some(out.home) == overlay.home_of(obj) => {
                sample.successes += 1;
                sample
                    .paths
                    .record(out.length, space.dist(origin, out.home), out.hops());
            }
            _ => {}
        }
    }
    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::ObjectId;
    use ron_metric::{gen, LineMetric};

    fn seeded(n: usize, objects: usize) -> (Space<LineMetric>, DirectoryOverlay) {
        let space = Space::new(LineMetric::uniform(n).unwrap());
        let mut ov = DirectoryOverlay::build(&space);
        for i in 0..objects {
            ov.publish(&space, ObjectId(i as u64), Node::new((i * 7) % n));
        }
        (space, ov)
    }

    fn assert_all_found(space: &Space<LineMetric>, ov: &DirectoryOverlay) {
        for s in space.nodes().filter(|&s| ov.is_alive(s)) {
            for &obj in ov.objects() {
                let out = ov.lookup(space, s, obj).expect("post-repair lookup");
                assert_eq!(Some(out.home), ov.home_of(obj));
            }
        }
    }

    #[test]
    fn leave_then_repair_restores_all_lookups() {
        let (space, mut ov) = seeded(32, 5);
        // Kill the top-level hub and a home.
        let top = ov.levels() - 1;
        let hub = space.nodes().find(|&v| ov.is_net_member(top, v)).unwrap();
        ov.leave(hub);
        ov.leave(Node::new(7));
        let report = ov.repair(&space);
        assert!(report.promotions + report.pointer_writes > 0);
        assert_all_found(&space, &ov);
    }

    #[test]
    fn dead_home_is_rehomed() {
        let (space, mut ov) = seeded(32, 5);
        let home = ov.home_of(ObjectId(0)).unwrap();
        ov.leave(home);
        assert!(ov.lookup(&space, Node::new(31), ObjectId(0)).is_err());
        let report = ov.repair(&space);
        assert_eq!(report.rehomed, 1);
        let new_home = ov.home_of(ObjectId(0)).unwrap();
        assert_ne!(new_home, home);
        assert!(ov.is_alive(new_home));
        assert_all_found(&space, &ov);
    }

    #[test]
    fn publish_survives_an_emptied_level_before_repair() {
        let (space, mut ov) = seeded(32, 2);
        // Kill the singleton top-level hub: the coarsest net is now empty
        // and stays empty until repair.
        let top = ov.levels() - 1;
        let hub = space.nodes().find(|&v| ov.is_net_member(top, v)).unwrap();
        ov.leave(hub);
        // Publishing into the damaged overlay must not panic, and the new
        // object must be locatable at least from nearby origins (entries
        // above the hole forward straight to the home).
        let home = space.nodes().find(|&v| ov.is_alive(v)).unwrap();
        ov.publish(&space, ObjectId(99), home);
        let out = ov.lookup(&space, home, ObjectId(99)).expect("self lookup");
        assert_eq!(out.home, home);
        // After repair every origin finds it again.
        ov.repair(&space);
        assert_all_found(&space, &ov);
    }

    #[test]
    fn join_reenters_the_ladder() {
        let (space, mut ov) = seeded(32, 3);
        ov.leave(Node::new(12));
        ov.repair(&space);
        ov.join(&space, Node::new(12));
        assert!(ov.is_alive(Node::new(12)));
        assert!(ov.is_net_member(0, Node::new(12)));
        ov.repair(&space);
        assert_all_found(&space, &ov);
    }

    #[test]
    fn repair_is_incremental() {
        let (space, mut ov) = seeded(64, 8);
        // A fringe (level-0-only) node far from most homes touches few
        // objects.
        let fringe = (0..space.len())
            .rev()
            .map(Node::new)
            .find(|&v| ov.top_level_of(v) == Some(0))
            .unwrap();
        ov.leave(fringe);
        let report = ov.repair(&space);
        assert!(
            report.objects_touched < ov.objects().len(),
            "fringe leave reconciled {} of {} objects",
            report.objects_touched,
            ov.objects().len()
        );
        // A second repair with nothing new to do is free.
        let idle = ov.repair(&space);
        assert_eq!(idle, RepairReport::default());
    }

    #[test]
    fn targeted_schedule_hits_hubs_first() {
        let (space, mut ov) = seeded(64, 6);
        let top = ov.levels() - 1;
        let hub = space.nodes().find(|&v| ov.is_net_member(top, v)).unwrap();
        let report = drive_churn(
            &space,
            &mut ov,
            ChurnSchedule::Targeted { fraction: 0.1 },
            &ChurnConfig {
                steps: 1,
                queries_per_step: 64,
                seed: 5,
            },
        );
        assert!(!ov.is_alive(hub), "targeted churn must take the hub");
        assert_eq!(report.total_removed(), 6);
        assert_eq!(report.final_success_rate(), 1.0);
        assert_all_found(&space, &ov);
    }

    #[test]
    fn random_schedule_is_reproducible_and_recovers() {
        let space = Space::new(gen::uniform_cube(48, 2, 3));
        let schedule = ChurnSchedule::Random {
            fraction: 0.25,
            seed: 9,
        };
        let run = |mut ov: DirectoryOverlay| {
            drive_churn(&space, &mut ov, schedule, &ChurnConfig::default())
        };
        let mut ov = DirectoryOverlay::build(&space);
        for i in 0..6u64 {
            ov.publish(&space, ObjectId(i), Node::new((i as usize * 5) % 48));
        }
        let a = run(ov.clone());
        let b = run(ov);
        assert_eq!(a.total_removed(), b.total_removed());
        assert_eq!(a.total_repair(), b.total_repair());
        assert_eq!(a.final_success_rate(), 1.0);
        assert!(a.steps.iter().all(|s| s.after_repair.success_rate() == 1.0));
    }
}
