//! Graph generators for the experiment families.
//!
//! Each generator yields a connected, undirected, positively weighted graph
//! whose shortest-path metric is doubling:
//!
//! * [`grid_graph`] — the `side^dim` lattice with unit edges (bounded grid
//!   dimension; the classic "nice" topology);
//! * [`knn_geometric`] — random points in the unit cube joined to their
//!   `k` nearest neighbors (Internet-like; weights are Euclidean);
//! * [`exponential_path`] — a path with geometrically growing edge weights:
//!   its shortest-path metric is the exponential line, the paper's
//!   super-polynomial aspect-ratio example (`Delta = 2^(n-1) - 1`);
//! * [`ring_with_chords`] — a unit-weight cycle plus random chords whose
//!   weight equals the cycle distance, a doubling overlay-style topology.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ron_metric::{gen as mgen, EuclideanMetric, Metric, Node};

use crate::{Graph, GraphBuilder};

/// The `side^dim` lattice with unit-weight edges between lattice neighbors.
///
/// Node `i` uses the same row-major coordinate layout as
/// [`GridMetric`](ron_metric::GridMetric), and the graph's shortest-path
/// metric equals that L1 grid metric (tests verify this).
///
/// # Panics
///
/// Panics if `side == 0` or `dim == 0`.
#[must_use]
pub fn grid_graph(side: usize, dim: usize) -> Graph {
    assert!(side > 0 && dim > 0, "need a nonempty grid");
    let n = side.pow(dim as u32);
    let mut b = GraphBuilder::new(n);
    let coords = |mut i: usize| -> Vec<usize> {
        let mut c = vec![0usize; dim];
        for slot in c.iter_mut().rev() {
            *slot = i % side;
            i /= side;
        }
        c
    };
    let encode = |c: &[usize]| -> usize {
        let mut i = 0usize;
        for &x in c {
            i = i * side + x;
        }
        i
    };
    for i in 0..n {
        let c = coords(i);
        for d in 0..dim {
            if c[d] + 1 < side {
                let mut c2 = c.clone();
                c2[d] += 1;
                b.add_undirected(Node::new(i), Node::new(encode(&c2)), 1.0)
                    .expect("grid edges are valid");
            }
        }
    }
    b.build()
}

/// Random points in `[0,1]^dim`, each joined to its `k` nearest neighbors
/// (edges weighted by Euclidean distance), then augmented with the cheapest
/// cross-component edges until connected.
///
/// Returns the graph together with the generating point set, so callers can
/// compare the graph metric against the ambient Euclidean metric.
///
/// # Panics
///
/// Panics if `n < 2` or `k == 0`.
#[must_use]
pub fn knn_geometric(n: usize, dim: usize, k: usize, seed: u64) -> (Graph, EuclideanMetric) {
    assert!(n >= 2, "need at least two nodes");
    assert!(k >= 1, "need k >= 1");
    let points = mgen::uniform_cube(n, dim, seed);
    let mut b = GraphBuilder::new(n);
    let mut present = std::collections::BTreeSet::new();
    for i in 0..n {
        let u = Node::new(i);
        let mut order: Vec<(f64, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (points.dist(u, Node::new(j)), j))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        for &(w, j) in order.iter().take(k) {
            let key = (i.min(j), i.max(j));
            if present.insert(key) {
                b.add_undirected(u, Node::new(j), w)
                    .expect("knn edges are valid");
            }
        }
    }
    // Union-find over current edges; connect components greedily.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(i, j) in &present {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj {
            parent[ri] = rj;
        }
    }
    loop {
        let root0 = find(&mut parent, 0);
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..n {
            if find(&mut parent, i) != root0 {
                continue;
            }
            for j in 0..n {
                if find(&mut parent, j) == root0 {
                    continue;
                }
                let d = points.dist(Node::new(i), Node::new(j));
                if best.is_none_or(|(bd, _, _)| d < bd) {
                    best = Some((d, i, j));
                }
            }
        }
        match best {
            None => break,
            Some((d, i, j)) => {
                b.add_undirected(Node::new(i), Node::new(j), d)
                    .expect("augmentation edges are valid");
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                parent[ri] = rj;
            }
        }
    }
    (b.build(), points)
}

/// A path `v_0 - v_1 - ... - v_(n-1)` with edge weights `2^i`.
///
/// The shortest-path metric is (a translate of) the exponential line, so
/// the aspect ratio is `2^(n-1) - 1` — exponential in `n`, the regime of
/// Theorem 4.2's large-`Delta` routing.
///
/// # Panics
///
/// Panics if `n < 2` or `n > 1023` (edge weights overflow `f64`).
#[must_use]
pub fn exponential_path(n: usize) -> Graph {
    assert!((2..=1023).contains(&n), "n must be in 2..=1023");
    let mut b = GraphBuilder::new(n);
    for i in 0..n - 1 {
        b.add_undirected(Node::new(i), Node::new(i + 1), (2.0f64).powi(i as i32))
            .expect("path edges are valid");
    }
    b.build()
}

/// A unit-weight cycle on `n` nodes plus `chords` random chords, each
/// weighted by the cycle distance it spans (so the shortest-path metric
/// stays the cycle metric while the hop structure gets shortcuts).
///
/// Useful for separating metric stretch from hop counts in the routing
/// experiments.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn ring_with_chords(n: usize, chords: usize, seed: u64) -> Graph {
    assert!(n >= 3, "a cycle needs at least three nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_undirected(Node::new(i), Node::new((i + 1) % n), 1.0)
            .expect("cycle edges are valid");
    }
    let mut added = std::collections::BTreeSet::new();
    let mut placed = 0usize;
    let mut attempts = 0usize;
    while placed < chords && attempts < chords * 20 + 100 {
        attempts += 1;
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j {
            continue;
        }
        let (a, z) = (i.min(j), i.max(j));
        let around = (z - a).min(n - (z - a));
        if around <= 1 || !added.insert((a, z)) {
            continue;
        }
        b.add_undirected(Node::new(a), Node::new(z), around as f64)
            .expect("chord edges are valid");
        placed += 1;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Apsp;
    use ron_metric::{GridMetric, MetricExt};

    #[test]
    fn grid_graph_metric_matches_grid_metric() {
        let g = grid_graph(4, 2);
        let apsp = Apsp::compute(&g);
        let grid = GridMetric::new(4, 2).unwrap();
        for i in 0..16 {
            for j in 0..16 {
                let (u, v) = (Node::new(i), Node::new(j));
                assert_eq!(apsp.dist(u, v), grid.dist(u, v), "pair ({u}, {v})");
            }
        }
    }

    #[test]
    fn knn_geometric_is_connected() {
        for seed in 0..5 {
            let (g, points) = knn_geometric(48, 2, 3, seed);
            assert!(
                g.is_connected(),
                "seed {seed} produced a disconnected graph"
            );
            assert_eq!(g.len(), points.len());
        }
    }

    #[test]
    fn knn_graph_distances_dominate_euclidean() {
        let (g, points) = knn_geometric(32, 2, 3, 9);
        let apsp = Apsp::compute(&g);
        for i in 0..32 {
            for j in 0..32 {
                let (u, v) = (Node::new(i), Node::new(j));
                assert!(apsp.dist(u, v) >= points.dist(u, v) - 1e-12);
            }
        }
    }

    #[test]
    fn exponential_path_metric_is_exponential_line() {
        let g = exponential_path(10);
        let apsp = Apsp::compute(&g);
        let m = apsp.to_metric().unwrap();
        // distance v0 -> v9 = 2^0 + ... + 2^8 = 511.
        assert_eq!(m.dist(Node::new(0), Node::new(9)), 511.0);
        assert_eq!(m.aspect_ratio(), 511.0);
    }

    #[test]
    fn ring_with_chords_preserves_cycle_metric() {
        let g = ring_with_chords(24, 8, 3);
        let apsp = Apsp::compute(&g);
        for i in 0..24 {
            for j in 0..24 {
                let hops = (i as i64 - j as i64).unsigned_abs() as usize;
                let around = hops.min(24 - hops);
                assert_eq!(
                    apsp.dist(Node::new(i), Node::new(j)),
                    around as f64,
                    "pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn ring_chords_reduce_hop_counts() {
        use crate::hopbound::HopProfile;
        let plain = ring_with_chords(32, 0, 0);
        let chorded = ring_with_chords(32, 24, 0);
        let plain_profile = HopProfile::compute(&plain, Node::new(0), 32);
        let chorded_profile = HopProfile::compute(&chorded, Node::new(0), 32);
        let far = Node::new(16);
        let plain_hops = plain_profile.hops_for_length(far, 16.0).unwrap();
        let chorded_hops = chorded_profile.hops_for_length(far, 16.0).unwrap();
        assert!(chorded_hops <= plain_hops);
    }
}
