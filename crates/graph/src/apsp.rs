use ron_metric::{ExplicitMetric, MetricError, Node};

use crate::dijkstra::shortest_paths;
use crate::{Graph, GraphError};

/// All-pairs shortest paths with first-hop pointers.
///
/// The routing schemes never inspect the graph directly at runtime: node
/// `u` forwards a packet for intermediate target `w` along the first-hop
/// pointer `g_uw` — the slot index of the first edge of a fixed shortest
/// `u -> w` path (proof of Theorem 2.1). `Apsp` precomputes all distances
/// and these pointers with `n` Dijkstra runs.
///
/// # Example
///
/// ```
/// use ron_graph::{gen, Apsp};
/// use ron_metric::Node;
///
/// let g = gen::grid_graph(3, 2);
/// let apsp = Apsp::compute(&g);
/// let (u, v) = (Node::new(0), Node::new(8));
/// assert_eq!(apsp.dist(u, v), 4.0);
/// let hop = apsp.first_hop(&g, u, v).unwrap();
/// assert_eq!(apsp.dist(hop, v), 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct Apsp {
    n: usize,
    dist: Vec<f64>,
    first_hop_slot: Vec<u32>,
}

const NO_HOP: u32 = u32::MAX;

impl Apsp {
    /// Runs Dijkstra from every node: `O(n (n + m) log n)` time, `O(n^2)`
    /// memory.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty.
    #[must_use]
    pub fn compute(graph: &Graph) -> Self {
        let n = graph.len();
        assert!(n > 0, "cannot compute APSP of an empty graph");
        let mut dist = vec![f64::INFINITY; n * n];
        let mut first_hop_slot = vec![NO_HOP; n * n];
        for i in 0..n {
            let sp = shortest_paths(graph, Node::new(i));
            for j in 0..n {
                dist[i * n + j] = sp.dist(Node::new(j));
                if let Some(slot) = sp.first_hop_slot(Node::new(j)) {
                    first_hop_slot[i * n + j] = slot;
                }
            }
        }
        Apsp {
            n,
            dist,
            first_hop_slot,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the instance is empty (never true: construction panics).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Shortest-path distance `d_uv` (`INFINITY` if unreachable).
    #[must_use]
    pub fn dist(&self, u: Node, v: Node) -> f64 {
        self.dist[u.index() * self.n + v.index()]
    }

    /// Slot index at `u` of the first edge of the fixed shortest `u -> v`
    /// path; `None` if `u == v` or `v` is unreachable.
    #[must_use]
    pub fn first_hop_slot(&self, u: Node, v: Node) -> Option<u32> {
        match self.first_hop_slot[u.index() * self.n + v.index()] {
            NO_HOP => None,
            s => Some(s),
        }
    }

    /// The node the first-hop pointer leads to.
    #[must_use]
    pub fn first_hop(&self, graph: &Graph, u: Node, v: Node) -> Option<Node> {
        self.first_hop_slot(u, v)
            .map(|s| graph.link(u, s as usize).0)
    }

    /// Walks first-hop pointers from `u` to `v`, returning the full path.
    ///
    /// Returns `None` if `v` is unreachable. This is the path a packet
    /// takes when every intermediate node uses its own first-hop pointer —
    /// Claim 2.4(c) asserts (and tests verify) it is a shortest path.
    #[must_use]
    pub fn walk_first_hops(&self, graph: &Graph, u: Node, v: Node) -> Option<Vec<Node>> {
        if self.dist(u, v).is_infinite() {
            return None;
        }
        let mut path = vec![u];
        let mut cur = u;
        while cur != v {
            cur = self.first_hop(graph, cur, v)?;
            path.push(cur);
            debug_assert!(path.len() <= self.n, "first-hop walk cycled");
        }
        Some(path)
    }

    /// The shortest-path metric as an [`ExplicitMetric`].
    ///
    /// This is how a "doubling graph" becomes a metric input for nets,
    /// measures and rings. The matrix is symmetrized by taking
    /// `min(d_uv, d_vu)` per pair: for undirected graphs the two values
    /// agree up to the floating-point summation order of the path weights.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Disconnected`] if any pair is unreachable or
    /// two distinct nodes are at distance zero.
    pub fn to_metric(&self) -> Result<ExplicitMetric, GraphError> {
        if self.dist.iter().any(|d| d.is_infinite()) {
            return Err(GraphError::Disconnected);
        }
        let n = self.n;
        let mut dist = self.dist.clone();
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist[i * n + j].min(dist[j * n + i]);
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        ExplicitMetric::new(dist).map_err(|e| match e {
            MetricError::ZeroDistance { .. } => GraphError::Disconnected,
            _ => GraphError::Empty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};
    use ron_metric::{Metric, MetricExt};

    #[test]
    fn grid_distances_are_manhattan() {
        let g = gen::grid_graph(4, 2);
        let apsp = Apsp::compute(&g);
        // corner to corner on a 4x4 grid: 3 + 3.
        assert_eq!(apsp.dist(Node::new(0), Node::new(15)), 6.0);
        // symmetric
        assert_eq!(apsp.dist(Node::new(15), Node::new(0)), 6.0);
    }

    #[test]
    fn first_hop_walk_is_shortest() {
        let g = gen::grid_graph(4, 2);
        let apsp = Apsp::compute(&g);
        for i in 0..16 {
            for j in 0..16 {
                let (u, v) = (Node::new(i), Node::new(j));
                let path = apsp.walk_first_hops(&g, u, v).unwrap();
                let len = g.path_length(&path).unwrap();
                assert!(
                    (len - apsp.dist(u, v)).abs() < 1e-12,
                    "walk from {u} to {v} has length {len}, shortest {}",
                    apsp.dist(u, v)
                );
            }
        }
    }

    #[test]
    fn to_metric_is_valid() {
        let g = gen::grid_graph(3, 2);
        let apsp = Apsp::compute(&g);
        let m = apsp.to_metric().unwrap();
        assert_eq!(m.len(), 9);
        assert!(m.validate().is_ok());
        assert_eq!(m.dist(Node::new(0), Node::new(8)), 4.0);
    }

    #[test]
    fn disconnected_graph_has_no_metric() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected(Node::new(0), Node::new(1), 1.0).unwrap();
        let apsp = Apsp::compute(&b.build());
        assert!(matches!(apsp.to_metric(), Err(GraphError::Disconnected)));
        assert!(apsp.first_hop_slot(Node::new(0), Node::new(2)).is_none());
    }

    #[test]
    fn self_distance_and_hop() {
        let g = gen::grid_graph(3, 2);
        let apsp = Apsp::compute(&g);
        let u = Node::new(4);
        assert_eq!(apsp.dist(u, u), 0.0);
        assert!(apsp.first_hop_slot(u, u).is_none());
        assert_eq!(apsp.walk_first_hops(&g, u, u), Some(vec![u]));
    }
}
