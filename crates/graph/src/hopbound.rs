//! Hop-bounded near-shortest paths (the quantity `N_delta` of Theorem B.1).
//!
//! Theorem B.1 assumes every pair of nodes is connected by a
//! `(1+delta)`-stretch path with at most `N_delta` hops; mode M2 stores one
//! such path per assigned target. This module computes, per source, the
//! hop-profile `dist[h][v]` = length of the shortest walk of at most `h`
//! hops (a Bellman-Ford layering), from which both `N_delta` and the actual
//! paths are extracted.

use ron_metric::Node;

use crate::{Apsp, Graph};

/// Hop-profile from one source: for each hop budget `h`, the cheapest walk
/// length to every node using at most `h` edges.
#[derive(Clone, Debug)]
pub struct HopProfile {
    source: Node,
    n: usize,
    /// `dist[h * n + v]`, `h` in `0..=max_hops`.
    dist: Vec<f64>,
    /// Predecessor of `v` on the best walk of `<= h` hops (u32::MAX = none).
    pred: Vec<u32>,
    max_hops: usize,
}

impl HopProfile {
    /// Computes the profile from `source` for hop budgets `0..=max_hops`.
    ///
    /// `O(max_hops * m)` time.
    #[must_use]
    pub fn compute(graph: &Graph, source: Node, max_hops: usize) -> Self {
        let n = graph.len();
        let mut dist = vec![f64::INFINITY; (max_hops + 1) * n];
        let mut pred = vec![u32::MAX; (max_hops + 1) * n];
        dist[source.index()] = 0.0;
        for h in 1..=max_hops {
            let (lo, hi) = dist.split_at_mut(h * n);
            let prev = &lo[(h - 1) * n..];
            let cur = &mut hi[..n];
            cur.copy_from_slice(prev);
            pred.copy_within((h - 1) * n..h * n, h * n);
            for (i, &du) in prev.iter().enumerate().take(n) {
                if du.is_infinite() {
                    continue;
                }
                for (v, w) in graph.out_links(Node::new(i)) {
                    let cand = du + w;
                    if cand < cur[v.index()] {
                        cur[v.index()] = cand;
                        pred[h * n + v.index()] = i as u32;
                    }
                }
            }
        }
        HopProfile {
            source,
            n,
            dist,
            pred,
            max_hops,
        }
    }

    /// The source node.
    #[must_use]
    pub fn source(&self) -> Node {
        self.source
    }

    /// Cheapest length of a walk `source -> v` with at most `h` hops.
    ///
    /// # Panics
    ///
    /// Panics if `h > max_hops`.
    #[must_use]
    pub fn dist_within(&self, v: Node, h: usize) -> f64 {
        assert!(h <= self.max_hops, "hop budget {h} exceeds profile depth");
        self.dist[h * self.n + v.index()]
    }

    /// Smallest hop budget whose walk length is at most `limit`, if any.
    #[must_use]
    pub fn hops_for_length(&self, v: Node, limit: f64) -> Option<usize> {
        (0..=self.max_hops).find(|&h| self.dist_within(v, h) <= limit)
    }

    /// Extracts a walk `source -> v` of at most `h` hops realizing
    /// `dist_within(v, h)`. Returns `None` if unreachable within `h` hops.
    #[must_use]
    pub fn path_within(&self, v: Node, h: usize) -> Option<Vec<Node>> {
        if self.dist_within(v, h).is_infinite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        let mut level = h;
        while cur != self.source {
            // Walk down to the level where cur's best distance was set.
            while level > 0
                && self.dist[(level - 1) * self.n + cur.index()]
                    == self.dist[level * self.n + cur.index()]
            {
                level -= 1;
            }
            let p = self.pred[level * self.n + cur.index()];
            debug_assert_ne!(p, u32::MAX, "predecessor missing on finite-distance walk");
            cur = Node::new(p as usize);
            path.push(cur);
            level = level.saturating_sub(1);
        }
        path.reverse();
        Some(path)
    }
}

/// Computes `N_delta`: the smallest `h` such that *every* connected pair
/// has a `(1+delta)`-stretch path with at most `h` hops.
///
/// Returns `None` if some pair needs more than `max_hops` hops (then the
/// graph does not satisfy Theorem B.1's hypothesis at this `delta` within
/// the probed budget).
///
/// `O(n * max_hops * m)` time — intended for the moderate instance sizes of
/// the experiments.
///
/// # Example
///
/// ```
/// use ron_graph::{gen, hopbound, Apsp};
///
/// let g = gen::grid_graph(4, 2);
/// let apsp = Apsp::compute(&g);
/// // On an unweighted grid the shortest path is also the fewest-hop path.
/// assert_eq!(hopbound::n_delta(&g, &apsp, 0.0, 8), Some(6));
/// ```
#[must_use]
pub fn n_delta(graph: &Graph, apsp: &Apsp, delta: f64, max_hops: usize) -> Option<usize> {
    let n = graph.len();
    let mut worst = 0usize;
    for i in 0..n {
        let profile = HopProfile::compute(graph, Node::new(i), max_hops);
        for j in 0..n {
            if i == j {
                continue;
            }
            let target = apsp.dist(Node::new(i), Node::new(j));
            if target.is_infinite() {
                continue;
            }
            let h = profile.hops_for_length(Node::new(j), target * (1.0 + delta))?;
            worst = worst.max(h);
        }
    }
    Some(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    #[test]
    fn profile_matches_dijkstra_at_large_budget() {
        let g = gen::grid_graph(4, 2);
        let apsp = Apsp::compute(&g);
        let profile = HopProfile::compute(&g, Node::new(0), 16);
        for j in 0..16 {
            let v = Node::new(j);
            assert_eq!(profile.dist_within(v, 16), apsp.dist(Node::new(0), v));
        }
    }

    #[test]
    fn hop_budget_limits_path() {
        // Path 0-1-2 with unit weights plus direct heavy edge 0-2.
        let mut b = GraphBuilder::new(3);
        b.add_undirected(Node::new(0), Node::new(1), 1.0).unwrap();
        b.add_undirected(Node::new(1), Node::new(2), 1.0).unwrap();
        b.add_undirected(Node::new(0), Node::new(2), 3.0).unwrap();
        let g = b.build();
        let profile = HopProfile::compute(&g, Node::new(0), 2);
        assert_eq!(profile.dist_within(Node::new(2), 1), 3.0);
        assert_eq!(profile.dist_within(Node::new(2), 2), 2.0);
        assert_eq!(profile.hops_for_length(Node::new(2), 2.5), Some(2));
        assert_eq!(profile.hops_for_length(Node::new(2), 3.0), Some(1));
    }

    #[test]
    fn path_within_realizes_distance() {
        let g = gen::grid_graph(4, 2);
        let profile = HopProfile::compute(&g, Node::new(0), 8);
        for j in 0..16 {
            let v = Node::new(j);
            let path = profile.path_within(v, 8).unwrap();
            assert!(path.len() <= 9, "too many hops");
            let len = g.path_length(&path).unwrap();
            assert!((len - profile.dist_within(v, 8)).abs() < 1e-12);
            assert_eq!(path[0], Node::new(0));
            assert_eq!(*path.last().unwrap(), v);
        }
    }

    #[test]
    fn n_delta_on_grid_is_diameter_hops() {
        let g = gen::grid_graph(3, 2);
        let apsp = Apsp::compute(&g);
        assert_eq!(n_delta(&g, &apsp, 0.0, 8), Some(4));
        // Insufficient budget yields None.
        assert_eq!(n_delta(&g, &apsp, 0.0, 3), None);
    }

    #[test]
    fn n_delta_shrinks_with_stretch_allowance() {
        // A long cheap detour vs a short expensive edge: allowing stretch
        // lets routing use fewer hops.
        let mut b = GraphBuilder::new(4);
        b.add_undirected(Node::new(0), Node::new(1), 1.0).unwrap();
        b.add_undirected(Node::new(1), Node::new(2), 1.0).unwrap();
        b.add_undirected(Node::new(2), Node::new(3), 1.0).unwrap();
        b.add_undirected(Node::new(0), Node::new(3), 3.3).unwrap();
        let g = b.build();
        let apsp = Apsp::compute(&g);
        let strict = n_delta(&g, &apsp, 0.0, 8).unwrap();
        let loose = n_delta(&g, &apsp, 0.25, 8).unwrap();
        assert!(loose <= strict);
        assert_eq!(loose, 2); // 0-3 can use the direct edge at stretch 1.1
    }

    #[test]
    fn unreachable_within_budget() {
        let g = gen::grid_graph(3, 2);
        let profile = HopProfile::compute(&g, Node::new(0), 1);
        assert!(profile.path_within(Node::new(8), 1).is_none());
        assert!(profile.dist_within(Node::new(8), 1).is_infinite());
    }
}
