use std::error::Error;
use std::fmt;

use ron_metric::Node;

/// Errors raised when building or validating graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint is out of the declared node range.
    NodeOutOfRange {
        /// The offending node.
        node: Node,
        /// Declared node count.
        n: usize,
    },
    /// An edge weight is not a positive finite number.
    InvalidWeight {
        /// Edge tail.
        u: Node,
        /// Edge head.
        v: Node,
        /// The offending weight.
        weight: f64,
    },
    /// A self-loop was added.
    SelfLoop {
        /// The node with the loop.
        u: Node,
    },
    /// The graph is not connected but the operation requires it.
    Disconnected,
    /// The graph has no nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::InvalidWeight { u, v, weight } => {
                write!(f, "edge ({u}, {v}) has invalid weight {weight}")
            }
            GraphError::SelfLoop { u } => write!(f, "self-loop at {u}"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Empty => write!(f, "graph has no nodes"),
        }
    }
}

impl Error for GraphError {}

/// Incremental builder for [`Graph`].
///
/// # Example
///
/// ```
/// use ron_graph::GraphBuilder;
/// use ron_metric::Node;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_undirected(Node::new(0), Node::new(1), 1.0)?;
/// b.add_undirected(Node::new(1), Node::new(2), 2.5)?;
/// let g = b.build();
/// assert_eq!(g.out_degree(Node::new(1)), 2);
/// # Ok::<(), ron_graph::GraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    arcs: Vec<(u32, u32, f64)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            arcs: Vec::new(),
        }
    }

    /// Adds an undirected edge (two arcs) with the given positive weight.
    ///
    /// Duplicate edges are kept; the routing schemes treat parallel links as
    /// distinct out-links, which only wastes pointer bits.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range endpoints, self-loops and non-positive or
    /// non-finite weights.
    pub fn add_undirected(&mut self, u: Node, v: Node, weight: f64) -> Result<(), GraphError> {
        self.add_directed(u, v, weight)?;
        self.add_directed(v, u, weight)
    }

    /// Adds a single directed arc with the given positive weight.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range endpoints, self-loops and non-positive or
    /// non-finite weights.
    pub fn add_directed(&mut self, u: Node, v: Node, weight: f64) -> Result<(), GraphError> {
        if u.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v.index() >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { u });
        }
        if !weight.is_finite() || weight <= 0.0 {
            return Err(GraphError::InvalidWeight { u, v, weight });
        }
        self.arcs.push((u.index() as u32, v.index() as u32, weight));
        Ok(())
    }

    /// Finalizes into a CSR [`Graph`]. Arcs are sorted by (tail, head).
    #[must_use]
    pub fn build(self) -> Graph {
        let mut arcs = self.arcs;
        arcs.sort_by_key(|a| (a.0, a.1));
        let mut offsets = vec![0u32; self.n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            offsets[i + 1] += offsets[i];
        }
        let heads: Vec<u32> = arcs.iter().map(|a| a.1).collect();
        let weights: Vec<f64> = arcs.iter().map(|a| a.2).collect();
        Graph {
            n: self.n,
            offsets,
            heads,
            weights,
        }
    }
}

/// A weighted directed graph in compressed sparse row form.
///
/// Undirected graphs are represented as symmetric arc pairs. Out-links of a
/// node have stable *slot indices* `0..out_degree(u)`; the paper's
/// first-hop pointers and the link enumerations `phi_u` are exactly these
/// slots, so a pointer costs `ceil(log2 Dout)` bits.
#[derive(Clone, Debug, PartialEq)]
pub struct Graph {
    n: usize,
    offsets: Vec<u32>,
    heads: Vec<u32>,
    weights: Vec<f64>,
}

impl Graph {
    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of arcs (an undirected edge counts twice).
    #[must_use]
    pub fn arc_count(&self) -> usize {
        self.heads.len()
    }

    /// Out-degree of `u`.
    #[must_use]
    pub fn out_degree(&self, u: Node) -> usize {
        let i = u.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum out-degree over all nodes (the paper's `Dout`).
    #[must_use]
    pub fn max_out_degree(&self) -> usize {
        (0..self.n)
            .map(|i| self.out_degree(Node::new(i)))
            .max()
            .unwrap_or(0)
    }

    /// Out-links of `u` as `(head, weight)` pairs, in slot order.
    pub fn out_links(&self, u: Node) -> impl Iterator<Item = (Node, f64)> + '_ {
        let i = u.index();
        let (lo, hi) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        (lo..hi).map(move |k| (Node::new(self.heads[k] as usize), self.weights[k]))
    }

    /// The `slot`-th out-link of `u` (the target of a first-hop pointer).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= out_degree(u)`.
    #[must_use]
    pub fn link(&self, u: Node, slot: usize) -> (Node, f64) {
        let i = u.index();
        let k = self.offsets[i] as usize + slot;
        assert!(
            k < self.offsets[i + 1] as usize,
            "slot {slot} out of range at {u}"
        );
        (Node::new(self.heads[k] as usize), self.weights[k])
    }

    /// Slot index of the arc `u -> v`, if present (first match).
    #[must_use]
    pub fn slot_of(&self, u: Node, v: Node) -> Option<usize> {
        self.out_links(u).position(|(head, _)| head == v)
    }

    /// Whether the graph is (strongly) connected, via forward BFS from node
    /// 0 (sufficient for symmetric graphs; routing substrates here are
    /// symmetric).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![Node::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for (v, _) in self.out_links(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        count == self.n
    }

    /// Total weight of the arcs along `path`, or `None` if a hop is missing.
    ///
    /// Uses the cheapest parallel arc for each hop.
    #[must_use]
    pub fn path_length(&self, path: &[Node]) -> Option<f64> {
        let mut total = 0.0;
        for w in path.windows(2) {
            let best = self
                .out_links(w[0])
                .filter(|&(head, _)| head == w[1])
                .map(|(_, weight)| weight)
                .fold(f64::INFINITY, f64::min);
            if !best.is_finite() {
                return None;
            }
            total += best;
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_undirected(Node::new(0), Node::new(1), 1.0).unwrap();
        b.add_undirected(Node::new(1), Node::new(2), 2.0).unwrap();
        b.add_undirected(Node::new(0), Node::new(2), 4.0).unwrap();
        b.build()
    }

    #[test]
    fn degrees_and_links() {
        let g = triangle();
        assert_eq!(g.len(), 3);
        assert_eq!(g.arc_count(), 6);
        assert_eq!(g.out_degree(Node::new(0)), 2);
        assert_eq!(g.max_out_degree(), 2);
        let links: Vec<_> = g.out_links(Node::new(0)).collect();
        assert_eq!(links, vec![(Node::new(1), 1.0), (Node::new(2), 4.0)]);
    }

    #[test]
    fn slots_are_stable() {
        let g = triangle();
        let slot = g.slot_of(Node::new(0), Node::new(2)).unwrap();
        assert_eq!(g.link(Node::new(0), slot), (Node::new(2), 4.0));
        assert_eq!(g.slot_of(Node::new(0), Node::new(0)), None);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_undirected(Node::new(0), Node::new(5), 1.0),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            b.add_undirected(Node::new(0), Node::new(0), 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            b.add_undirected(Node::new(0), Node::new(1), 0.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            b.add_undirected(Node::new(0), Node::new(1), f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_connected());
        let mut b = GraphBuilder::new(4);
        b.add_undirected(Node::new(0), Node::new(1), 1.0).unwrap();
        b.add_undirected(Node::new(2), Node::new(3), 1.0).unwrap();
        assert!(!b.build().is_connected());
    }

    #[test]
    fn path_length_follows_arcs() {
        let g = triangle();
        let p = [Node::new(0), Node::new(1), Node::new(2)];
        assert_eq!(g.path_length(&p), Some(3.0));
        let missing = [Node::new(0), Node::new(0)];
        assert_eq!(g.path_length(&missing), None);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(g.is_empty());
        assert!(!g.is_connected());
        assert_eq!(g.max_out_degree(), 0);
    }
}
