//! Weighted graph substrate for the rings-of-neighbors library.
//!
//! The routing results of the paper (Theorems 2.1, 4.1, 4.2/B.1) are stated
//! for weighted undirected graphs whose shortest-path metric is doubling
//! ("doubling graphs"). This crate provides:
//!
//! * [`Graph`]: a compact adjacency (CSR) weighted graph with stable
//!   per-node out-link indices — the paper's first-hop pointers are indices
//!   into this enumeration and cost `ceil(log2 Dout)` bits each;
//! * [`dijkstra`]: single-source shortest paths with parent and first-hop
//!   tracking;
//! * [`Apsp`]: all-pairs shortest paths plus the *first-hop matrix* that
//!   the routing schemes use as their only interface to the graph, and a
//!   conversion of the shortest-path metric into an
//!   [`ExplicitMetric`](ron_metric::ExplicitMetric);
//! * [`hopbound`]: hop-bounded near-shortest paths — the quantity `N_delta`
//!   in Theorem B.1 (smallest `h` such that every pair has a
//!   `(1+delta)`-stretch path of at most `h` hops) and path extraction;
//! * [`IdRangeTree`]: the ID-range labeled shortest-path tree used in
//!   routing mode M2 of Theorem B.1;
//! * [`gen`]: graph generators (grids, k-NN geometric graphs, exponential
//!   paths, rings with chords) for the experiment families.
//!
//! # Example
//!
//! ```
//! use ron_graph::{gen, Apsp};
//! use ron_metric::Node;
//!
//! let g = gen::grid_graph(4, 2);
//! let apsp = Apsp::compute(&g);
//! assert_eq!(apsp.dist(Node::new(0), Node::new(15)), 6.0);
//! ```

mod apsp;
mod csr;
pub mod dijkstra;
pub mod gen;
pub mod hopbound;
mod sptree;

pub use apsp::Apsp;
pub use csr::{Graph, GraphBuilder, GraphError};
pub use sptree::{IdRangeTree, RangeStep};
