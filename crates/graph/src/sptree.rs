//! ID-range labeled trees for routing mode M2 (Theorem B.1).
//!
//! In the second routing mode, the nodes of a dense ball `B` collectively
//! store routes to all nodes of a larger ball `B'`: each member of `B` is
//! responsible for roughly `|B'| / |B|` targets, and a tree over `B` rooted
//! at the ball's center is labeled with *ID ranges* so that a packet
//! carrying only `ID(t)` can descend from the root to the member `v_t`
//! responsible for `t`. The paper chooses the target-to-member mapping and
//! the ranges freely; following its construction we hand out contiguous
//! chunks of the (sorted) target-ID list in DFS pre-order, so every subtree
//! owns one contiguous ID interval and each tree edge is labeled with a
//! single range.

use ron_metric::Node;

/// Which way a packet moves at a tree member, given a target ID.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RangeStep {
    /// The current member is responsible for this target.
    Responsible,
    /// Forward to this child member.
    Descend(Node),
    /// The ID is not assigned under the current member (routing error or
    /// the ID is not a target of this tree).
    NotHere,
}

/// A tree over a set of member nodes, labeled with ID ranges that map every
/// target ID to the unique responsible member.
///
/// # Example
///
/// ```
/// use ron_graph::IdRangeTree;
/// use ron_metric::Node;
///
/// // Star around node 0 over members {0, 1, 2}; targets are ids 10..16.
/// let members = vec![Node::new(0), Node::new(1), Node::new(2)];
/// let parent = vec![None, Some(0), Some(0)];
/// let targets: Vec<u32> = (10..16).collect();
/// let tree = IdRangeTree::new(members, parent, targets);
/// // Each member is responsible for exactly two of the six targets.
/// let v = tree.responsible(12).unwrap();
/// assert!(tree.members().contains(&v));
/// ```
#[derive(Clone, Debug)]
pub struct IdRangeTree {
    members: Vec<Node>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// DFS pre-order position of each member.
    dfs_pos: Vec<usize>,
    /// Member index at each DFS position (inverse of `dfs_pos`).
    dfs_order: Vec<usize>,
    /// Subtree size of each member.
    subtree: Vec<usize>,
    /// Sorted target IDs.
    targets: Vec<u32>,
}

impl IdRangeTree {
    /// Builds the tree from members, a parent relation (indices into
    /// `members`, `None` exactly for the root, which must be `members[0]`)
    /// and the set of target IDs.
    ///
    /// # Panics
    ///
    /// Panics if the parent relation is not a tree rooted at `members[0]`
    /// or if `members` is empty.
    #[must_use]
    pub fn new(members: Vec<Node>, parent: Vec<Option<usize>>, mut targets: Vec<u32>) -> Self {
        let m = members.len();
        assert!(m > 0, "tree needs at least one member");
        assert_eq!(parent.len(), m, "parent relation arity mismatch");
        assert_eq!(parent[0], None, "members[0] must be the root");
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, &p) in parent.iter().enumerate() {
            if let Some(p) = p {
                assert!(p < m, "parent index out of range");
                assert_ne!(p, i, "self-parent");
                children[p].push(i);
            } else {
                assert_eq!(i, 0, "only the root may lack a parent");
            }
        }
        // DFS pre-order; also validates that the relation is a tree.
        let mut dfs_order = Vec::with_capacity(m);
        let mut stack = vec![0usize];
        let mut seen = vec![false; m];
        while let Some(x) = stack.pop() {
            assert!(!seen[x], "parent relation has a cycle");
            seen[x] = true;
            dfs_order.push(x);
            // Reverse so children are visited in ascending order.
            for &c in children[x].iter().rev() {
                stack.push(c);
            }
        }
        assert_eq!(dfs_order.len(), m, "parent relation is disconnected");
        let mut dfs_pos = vec![0usize; m];
        for (pos, &x) in dfs_order.iter().enumerate() {
            dfs_pos[x] = pos;
        }
        let mut subtree = vec![1usize; m];
        for &x in dfs_order.iter().rev() {
            for &c in &children[x] {
                subtree[x] += subtree[c];
            }
        }
        targets.sort_unstable();
        targets.dedup();
        IdRangeTree {
            members,
            parent,
            children,
            dfs_pos,
            dfs_order,
            subtree,
            targets,
        }
    }

    /// The member nodes, in construction order (root first).
    #[must_use]
    pub fn members(&self) -> &[Node] {
        &self.members
    }

    /// The root member.
    #[must_use]
    pub fn root(&self) -> Node {
        self.members[0]
    }

    /// Sorted target IDs served by this tree.
    #[must_use]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Index of `node` in the member list, if it is a member.
    #[must_use]
    pub fn member_index(&self, node: Node) -> Option<usize> {
        self.members.iter().position(|&x| x == node)
    }

    /// Parent member of the given member, `None` for the root.
    #[must_use]
    pub fn parent_of(&self, member: usize) -> Option<Node> {
        self.parent[member].map(|p| self.members[p])
    }

    /// Children members of the given member.
    pub fn children_of(&self, member: usize) -> impl Iterator<Item = Node> + '_ {
        self.children[member].iter().map(|&c| self.members[c])
    }

    /// Target-position chunk `[lo, hi)` owned by the member at DFS
    /// position `pos` (balanced split of `targets` among members).
    fn chunk_at(&self, pos: usize) -> (usize, usize) {
        let t = self.targets.len();
        let m = self.members.len();
        (pos * t / m, (pos + 1) * t / m)
    }

    /// Target-position interval `[lo, hi)` owned by the whole subtree of a
    /// member.
    fn subtree_chunk(&self, member: usize) -> (usize, usize) {
        let pos = self.dfs_pos[member];
        let t = self.targets.len();
        let m = self.members.len();
        (pos * t / m, (pos + self.subtree[member]) * t / m)
    }

    /// The member responsible for `id`, or `None` if `id` is not a target.
    #[must_use]
    pub fn responsible(&self, id: u32) -> Option<Node> {
        let pos = self.targets.binary_search(&id).ok()?;
        let m = self.members.len();
        let t = self.targets.len();
        // Find the DFS position whose chunk contains `pos`: the largest
        // dfs position p with p*t/m <= pos.
        let mut lo = 0usize;
        let mut hi = m - 1;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if mid * t / m <= pos {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        debug_assert!({
            let (a, b) = self.chunk_at(lo);
            (a..b).contains(&pos)
        });
        Some(self.members[self.dfs_order[lo]])
    }

    /// Routing decision at `member` for target `id`:
    /// descend, stop (responsible), or fail (`id` not under this subtree).
    ///
    /// Each member can compute this from its own chunk and its children's
    /// subtree intervals — exactly the per-node state the paper charges for.
    #[must_use]
    pub fn route_step(&self, member: usize, id: u32) -> RangeStep {
        let Ok(pos) = self.targets.binary_search(&id) else {
            return RangeStep::NotHere;
        };
        let (lo, hi) = self.chunk_at(self.dfs_pos[member]);
        if (lo..hi).contains(&pos) {
            return RangeStep::Responsible;
        }
        for &c in &self.children[member] {
            let (clo, chi) = self.subtree_chunk(c);
            if (clo..chi).contains(&pos) {
                return RangeStep::Descend(self.members[c]);
            }
        }
        RangeStep::NotHere
    }

    /// The sequence of members visited routing from the root to the member
    /// responsible for `id`. `None` if `id` is not a target.
    #[must_use]
    pub fn route_from_root(&self, id: u32) -> Option<Vec<Node>> {
        self.targets.binary_search(&id).ok()?;
        let mut path = vec![self.root()];
        let mut cur = 0usize;
        loop {
            match self.route_step(cur, id) {
                RangeStep::Responsible => return Some(path),
                RangeStep::Descend(next) => {
                    cur = self.member_index(next).expect("child is a member");
                    path.push(next);
                }
                RangeStep::NotHere => return None,
            }
        }
    }

    /// Maximum number of targets any single member is responsible for.
    #[must_use]
    pub fn max_load(&self) -> usize {
        (0..self.members.len())
            .map(|pos| {
                let (lo, hi) = self.chunk_at(pos);
                hi - lo
            })
            .max()
            .unwrap_or(0)
    }

    /// Tree depth (root has depth 0).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.members.len()];
        let mut best = 0;
        for &x in &self.dfs_order {
            if let Some(p) = self.parent[x] {
                depth[x] = depth[p] + 1;
                best = best.max(depth[x]);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(members: usize, targets: usize) -> IdRangeTree {
        let nodes: Vec<Node> = (0..members).map(Node::new).collect();
        let parent: Vec<Option<usize>> = (0..members)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        IdRangeTree::new(nodes, parent, (100..100 + targets as u32).collect())
    }

    #[test]
    fn every_target_has_a_responsible_member() {
        let tree = chain(4, 13);
        for id in 100..113 {
            assert!(tree.responsible(id).is_some(), "id {id} unassigned");
        }
        assert_eq!(tree.responsible(99), None);
        assert_eq!(tree.responsible(113), None);
    }

    #[test]
    fn loads_are_balanced() {
        let tree = chain(4, 13);
        assert!(tree.max_load() <= 13usize.div_ceil(4));
    }

    #[test]
    fn route_from_root_reaches_responsible() {
        let tree = chain(5, 23);
        for id in 100..123 {
            let path = tree.route_from_root(id).unwrap();
            assert_eq!(*path.last().unwrap(), tree.responsible(id).unwrap());
            // A chain of 5 members has depth at most 4.
            assert!(path.len() <= 5);
        }
    }

    #[test]
    fn route_step_rejects_foreign_ids() {
        let tree = chain(3, 5);
        assert_eq!(tree.route_step(0, 999), RangeStep::NotHere);
    }

    #[test]
    fn star_topology_descends_once() {
        let nodes: Vec<Node> = (0..4).map(Node::new).collect();
        let parent = vec![None, Some(0), Some(0), Some(0)];
        let tree = IdRangeTree::new(nodes, parent, (0..8).collect());
        assert_eq!(tree.depth(), 1);
        for id in 0..8 {
            let path = tree.route_from_root(id).unwrap();
            assert!(path.len() <= 2);
        }
    }

    #[test]
    fn fewer_targets_than_members() {
        let tree = chain(6, 2);
        let mut owners = Vec::new();
        for id in 100..102 {
            owners.push(tree.responsible(id).unwrap());
        }
        owners.dedup();
        assert!(!owners.is_empty());
        // All ids still routable.
        for id in 100..102 {
            assert!(tree.route_from_root(id).is_some());
        }
    }

    #[test]
    fn single_member_owns_everything() {
        let tree = IdRangeTree::new(vec![Node::new(7)], vec![None], vec![1, 2, 3]);
        for id in 1..=3 {
            assert_eq!(tree.responsible(id), Some(Node::new(7)));
            assert_eq!(tree.route_step(0, id), RangeStep::Responsible);
        }
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn rejects_forests() {
        let nodes: Vec<Node> = (0..3).map(Node::new).collect();
        // Member 2 points at itself through a cycle with 1: not a tree.
        let parent = vec![None, Some(2), Some(1)];
        let _ = IdRangeTree::new(nodes, parent, vec![]);
    }

    #[test]
    fn duplicate_target_ids_are_deduped() {
        let tree = IdRangeTree::new(vec![Node::new(0)], vec![None], vec![5, 5, 5]);
        assert_eq!(tree.targets(), &[5]);
    }
}
