//! Single-source shortest paths with parent and first-hop tracking.
//!
//! Ties between equal-length paths are broken deterministically (by head
//! node id) so first-hop pointers are stable across runs — the routing
//! schemes rely on "some shortest path" being fixed per pair, as in the
//! paper's definition of first-hop pointers (proof of Theorem 2.1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ron_metric::Node;

use crate::Graph;

/// Result of a single-source shortest-path computation.
#[derive(Clone, Debug)]
pub struct ShortestPaths {
    source: Node,
    dist: Vec<f64>,
    parent: Vec<Option<Node>>,
    /// Slot index (at the source) of the first hop towards each node.
    first_hop_slot: Vec<Option<u32>>,
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: Node,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (dist, node id): reversed for BinaryHeap.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs Dijkstra from `source`.
///
/// `O((n + m) log n)` time. Unreachable nodes get distance
/// `f64::INFINITY`.
///
/// # Example
///
/// ```
/// use ron_graph::{dijkstra, gen};
/// use ron_metric::Node;
///
/// let g = gen::grid_graph(3, 2);
/// let sp = dijkstra::shortest_paths(&g, Node::new(0));
/// assert_eq!(sp.dist(Node::new(8)), 4.0);
/// let path = sp.path_to(Node::new(8)).unwrap();
/// assert_eq!(path.len(), 5); // 4 hops
/// ```
#[must_use]
pub fn shortest_paths(graph: &Graph, source: Node) -> ShortestPaths {
    let n = graph.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<Node>> = vec![None; n];
    let mut first_hop_slot: Vec<Option<u32>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: du, node: u }) = heap.pop() {
        if done[u.index()] {
            continue;
        }
        done[u.index()] = true;
        for (slot, (v, w)) in graph.out_links(u).enumerate() {
            let cand = du + w;
            let vi = v.index();
            // Deterministic tie-break: keep the path whose parent has the
            // smaller node id, so equal-length paths resolve identically
            // across runs and sources.
            let better = cand < dist[vi] || (cand == dist[vi] && parent[vi].is_some_and(|p| u < p));
            if better {
                dist[vi] = cand;
                parent[vi] = Some(u);
                first_hop_slot[vi] = if u == source {
                    Some(slot as u32)
                } else {
                    first_hop_slot[u.index()]
                };
                heap.push(HeapEntry {
                    dist: cand,
                    node: v,
                });
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
        first_hop_slot,
    }
}

impl ShortestPaths {
    /// The source node of the computation.
    #[must_use]
    pub fn source(&self) -> Node {
        self.source
    }

    /// Shortest-path distance from the source to `v`.
    #[must_use]
    pub fn dist(&self, v: Node) -> f64 {
        self.dist[v.index()]
    }

    /// Parent of `v` in the shortest-path tree (`None` for the source and
    /// unreachable nodes).
    #[must_use]
    pub fn parent(&self, v: Node) -> Option<Node> {
        self.parent[v.index()]
    }

    /// Slot index at the source of the first edge on the chosen shortest
    /// path to `v` (`None` for the source itself and unreachable nodes).
    #[must_use]
    pub fn first_hop_slot(&self, v: Node) -> Option<u32> {
        self.first_hop_slot[v.index()]
    }

    /// Reconstructs the chosen shortest path `source -> .. -> v`.
    ///
    /// Returns `None` if `v` is unreachable. The path includes both
    /// endpoints.
    #[must_use]
    pub fn path_to(&self, v: Node) -> Option<Vec<Node>> {
        if self.dist(v).is_infinite() {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// All shortest-path distances, indexed by node.
    #[must_use]
    pub fn dists(&self) -> &[f64] {
        &self.dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> Graph {
        // 0 -1- 1 -1- 3, 0 -1- 2 -1- 3, plus a slow direct 0 -5- 3.
        let mut b = GraphBuilder::new(4);
        b.add_undirected(Node::new(0), Node::new(1), 1.0).unwrap();
        b.add_undirected(Node::new(1), Node::new(3), 1.0).unwrap();
        b.add_undirected(Node::new(0), Node::new(2), 1.0).unwrap();
        b.add_undirected(Node::new(2), Node::new(3), 1.0).unwrap();
        b.add_undirected(Node::new(0), Node::new(3), 5.0).unwrap();
        b.build()
    }

    #[test]
    fn distances() {
        let g = diamond();
        let sp = shortest_paths(&g, Node::new(0));
        assert_eq!(sp.dist(Node::new(0)), 0.0);
        assert_eq!(sp.dist(Node::new(1)), 1.0);
        assert_eq!(sp.dist(Node::new(3)), 2.0);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let g = diamond();
        let a = shortest_paths(&g, Node::new(0));
        let b = shortest_paths(&g, Node::new(0));
        // Two shortest 0->3 paths exist; the tie-break must pick the same.
        assert_eq!(a.path_to(Node::new(3)), b.path_to(Node::new(3)));
        // Parent of 3 should be node 1 (smaller parent id preferred).
        assert_eq!(a.parent(Node::new(3)), Some(Node::new(1)));
    }

    #[test]
    fn first_hop_points_along_shortest_path() {
        let g = diamond();
        let sp = shortest_paths(&g, Node::new(0));
        let slot = sp.first_hop_slot(Node::new(3)).unwrap();
        let (hop, _) = g.link(Node::new(0), slot as usize);
        let path = sp.path_to(Node::new(3)).unwrap();
        assert_eq!(path[1], hop);
    }

    #[test]
    fn unreachable_nodes() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected(Node::new(0), Node::new(1), 1.0).unwrap();
        let g = b.build();
        let sp = shortest_paths(&g, Node::new(0));
        assert!(sp.dist(Node::new(2)).is_infinite());
        assert!(sp.path_to(Node::new(2)).is_none());
        assert!(sp.first_hop_slot(Node::new(2)).is_none());
    }

    #[test]
    fn path_length_matches_distance() {
        let g = diamond();
        let sp = shortest_paths(&g, Node::new(0));
        for i in 0..4 {
            let v = Node::new(i);
            let path = sp.path_to(v).unwrap();
            let len = g.path_length(&path).unwrap();
            assert!((len - sp.dist(v)).abs() < 1e-12);
        }
    }
}
