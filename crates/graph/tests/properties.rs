//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use ron_graph::{dijkstra, gen, hopbound::HopProfile, Apsp};
use ron_metric::{Metric, MetricExt, Node};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// APSP of a random connected geometric graph is a valid metric whose
    /// distances dominate the Euclidean ones.
    #[test]
    fn apsp_is_metric(n in 4usize..24, seed in 0u64..200) {
        let (g, points) = gen::knn_geometric(n, 2, 3, seed);
        let apsp = Apsp::compute(&g);
        let m = apsp.to_metric().unwrap();
        prop_assert!(m.validate().is_ok());
        for i in 0..n {
            for j in 0..n {
                let (u, v) = (Node::new(i), Node::new(j));
                prop_assert!(m.dist(u, v) + 1e-12 >= points.dist(u, v));
            }
        }
    }

    /// Walking first-hop pointers always realizes the shortest distance.
    #[test]
    fn first_hop_walks_are_shortest(n in 4usize..20, seed in 0u64..200) {
        let (g, _) = gen::knn_geometric(n, 2, 2, seed);
        let apsp = Apsp::compute(&g);
        for i in 0..n {
            for j in 0..n {
                let (u, v) = (Node::new(i), Node::new(j));
                let path = apsp.walk_first_hops(&g, u, v).unwrap();
                let len = g.path_length(&path).unwrap();
                prop_assert!((len - apsp.dist(u, v)).abs() < 1e-9);
            }
        }
    }

    /// Hop-profile distances are non-increasing in the hop budget and agree
    /// with Dijkstra once the budget covers the whole graph.
    #[test]
    fn hop_profile_consistency(n in 4usize..16, seed in 0u64..200) {
        let (g, _) = gen::knn_geometric(n, 2, 2, seed);
        let sp = dijkstra::shortest_paths(&g, Node::new(0));
        let profile = HopProfile::compute(&g, Node::new(0), n);
        for j in 0..n {
            let v = Node::new(j);
            let mut prev = f64::INFINITY;
            for h in 0..=n {
                let d = profile.dist_within(v, h);
                prop_assert!(d <= prev + 1e-12);
                prev = d;
            }
            prop_assert!((profile.dist_within(v, n) - sp.dist(v)).abs() < 1e-9);
        }
    }

    /// Hop-bounded path extraction respects both the budget and the length.
    #[test]
    fn hop_paths_respect_budget(n in 4usize..16, seed in 0u64..100, h in 1usize..8) {
        let (g, _) = gen::knn_geometric(n, 2, 2, seed);
        let profile = HopProfile::compute(&g, Node::new(0), h);
        for j in 1..n {
            let v = Node::new(j);
            if let Some(path) = profile.path_within(v, h) {
                prop_assert!(path.len() <= h + 1);
                let len = g.path_length(&path).unwrap();
                prop_assert!((len - profile.dist_within(v, h)).abs() < 1e-9);
            }
        }
    }

    /// ID-range trees assign every target and routing reaches the owner.
    #[test]
    fn id_range_tree_total(m in 1usize..12, t in 0usize..40, seed in 0u64..100) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let members: Vec<Node> = (0..m).map(Node::new).collect();
        // Random tree: parent of i is a uniform pick among 0..i.
        let parent: Vec<Option<usize>> = (0..m)
            .map(|i| if i == 0 { None } else { Some(rng.random_range(0..i)) })
            .collect();
        let targets: Vec<u32> = (0..t as u32).collect();
        let tree = ron_graph::IdRangeTree::new(members, parent, targets);
        for id in 0..t as u32 {
            let path = tree.route_from_root(id);
            prop_assert!(path.is_some(), "id {} unroutable", id);
            let owner = tree.responsible(id).unwrap();
            prop_assert_eq!(*path.unwrap().last().unwrap(), owner);
        }
        prop_assert!(tree.max_load() <= t.div_ceil(m.max(1)) + 1);
    }
}
