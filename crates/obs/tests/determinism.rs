//! Drain determinism: the composed registry and the drained flight
//! records are byte-stable across worker counts and flush orderings.
//!
//! Every merge the global store performs is commutative and
//! associative (counter sums, gauge maxes, histogram bucket adds), and
//! the drain composes into sorted maps — so no matter how a workload
//! is split across threads, or in which order those threads flush,
//! the drained JSON must come out byte-identical and the flight
//! records must drain in the same `(kind, id)` order with the same
//! contents.

use proptest::prelude::*;

/// The tests toggle the process-global obs state; serialize them.
fn obs_state_lock() -> std::sync::MutexGuard<'static, ()> {
    static OBS_STATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    OBS_STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

const COUNTERS: [&str; 3] = ["det.jobs", "det.retries", "det.cache.miss"];
const HISTS: [&str; 3] = ["det.latency_ns", "det.hops", "det.fanout"];
const GAUGES: [&str; 2] = ["det.queue.depth", "det.heap.bytes"];

/// One deterministic operation of the synthetic workload: which metric
/// the `i`-th op touches (and with what value) depends only on `(seed,
/// i)`, never on the thread running it.
fn op(seed: u64, i: u64) {
    let x = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match x % 3 {
        0 => ron_obs::count(COUNTERS[(x / 3 % 3) as usize], x % 17),
        1 => ron_obs::observe(HISTS[(x / 3 % 3) as usize], x % 100_000),
        _ => ron_obs::gauge_max(GAUGES[(x / 3 % 2) as usize], x % 4096),
    }
    if x.is_multiple_of(5) {
        ron_obs::record_query_trace(ron_obs::QueryTrace {
            kind: if x.is_multiple_of(10) {
                "lookup"
            } else {
                "publish"
            },
            id: i,
            epoch: 1,
            cache_shard: Some((x % 8) as u32),
            cache: ron_obs::CacheOutcome::Miss,
            levels_visited: (x % 6) as u32,
            found_level: None,
            probes: x % 7,
            hops: (x % 9) as u32,
            // Zero wall time: the byte-stability claim covers the
            // structural fields (real runs compare `structural()`).
            stages: vec![("cache", 0), ("walk", 0)],
        });
    }
}

/// Runs ops `0..ops` split across `threads` workers — round-robin or
/// contiguous chunks — each flushing whenever its share is done (so
/// flush order is whatever the scheduler picks), then drains.
fn run_split(
    seed: u64,
    ops: u64,
    threads: u64,
    chunked: bool,
) -> (String, Vec<ron_obs::QueryTrace>) {
    ron_obs::set_enabled(true);
    ron_obs::reset();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                for i in 0..ops {
                    let mine = if chunked {
                        i * threads / ops == t
                    } else {
                        i % threads == t
                    };
                    if mine {
                        op(seed, i);
                    }
                }
                ron_obs::flush();
            });
        }
    });
    let traces = ron_obs::drain_query_traces();
    let registry = ron_obs::drain();
    ron_obs::set_enabled(false);
    (registry.to_json(), traces)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn drained_registry_and_traces_are_byte_stable_across_worker_splits(
        seed in 0u64..1_000_000,
        ops in 1u64..400,
        threads in 2u64..6,
    ) {
        let _lock = obs_state_lock();
        let (serial_json, serial_traces) = run_split(seed, ops, 1, false);
        let (rr_json, rr_traces) = run_split(seed, ops, threads, false);
        let (chunk_json, chunk_traces) = run_split(seed, ops, threads, true);
        prop_assert_eq!(&serial_json, &rr_json, "round-robin split changed the drain");
        prop_assert_eq!(&serial_json, &chunk_json, "chunked split changed the drain");
        prop_assert_eq!(&serial_traces, &rr_traces);
        prop_assert_eq!(&serial_traces, &chunk_traces);
        // The drained order is the sorted (kind, id) order, full stop.
        prop_assert!(serial_traces.windows(2).all(|w| (w[0].kind, w[0].id) < (w[1].kind, w[1].id)));
    }
}
