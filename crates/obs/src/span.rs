//! Span timing: RAII guards that record wall-clock durations into the
//! registry (and, when Chrome capture is on, into the trace buffer),
//! plus the stage guard that attributes hot-path records to a
//! construction or serving stage.

use std::time::Instant;

use crate::chrome;
use crate::registry::{self, Label};

/// A timer guard returned by [`span`]/[`span_labeled`]: on drop,
/// records the elapsed nanoseconds into the histogram named after the
/// span, and emits a Chrome trace event when capture is enabled. A
/// disabled span is inert (no clock read).
#[must_use = "a span records its duration when dropped; binding it to _ ends it immediately"]
pub struct SpanGuard {
    name: &'static str,
    label: Label,
    start: Option<Instant>,
    ts_ns: u64,
    chrome: bool,
}

/// Starts a named span. Use for coarse, low-frequency scopes (a
/// construction stage, a snapshot capture, a repair plan); for
/// per-call hot-path timing use [`start`]/[`finish`], which skip the
/// Chrome buffer.
pub fn span(name: &'static str) -> SpanGuard {
    span_labeled(name, Label::None)
}

/// Starts a named span with a label (e.g. a worker id).
pub fn span_labeled(name: &'static str, label: Label) -> SpanGuard {
    if !registry::enabled() {
        return SpanGuard {
            name,
            label,
            start: None,
            ts_ns: 0,
            chrome: false,
        };
    }
    let chrome = registry::chrome_enabled();
    let ts_ns = if chrome { chrome::epoch_ns() } else { 0 };
    SpanGuard {
        name,
        label,
        start: Some(Instant::now()),
        ts_ns,
        chrome,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(started) = self.start {
            let dur_ns = started.elapsed().as_nanos() as u64;
            registry::observe_labeled(self.name, self.label, dur_ns);
            if self.chrome {
                chrome::push_event(self.name, self.label, self.ts_ns, dur_ns);
            }
        }
    }
}

/// Starts a hot-path timer: `None` when observability is off (no clock
/// read), so the disabled cost is one relaxed load. Pair with
/// [`finish`].
#[inline]
pub fn start() -> Option<Instant> {
    if registry::enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// Completes a [`start`] timer, recording elapsed ns into the
/// histogram `name` (attributed to the current stage). No Chrome event
/// — hot paths would flood the trace buffer.
#[inline]
pub fn finish(name: &'static str, started: Option<Instant>) {
    if let Some(t) = started {
        registry::observe(name, t.elapsed().as_nanos() as u64);
    }
}

/// A guard that restores the previous stage on drop; see [`stage`].
#[must_use = "the stage reverts when the guard drops; binding it to _ reverts immediately"]
pub struct StageGuard {
    name: &'static str,
    prev: u32,
    active: bool,
}

/// Sets the attribution stage to `name` until the guard drops. Records
/// made while a stage is active — on any thread, so `par` workers
/// inside the scope count too — get `/{stage}` appended to their
/// drained key, which is how oracle call counts are attributed to
/// construction stages (`index`, `nets`, `rings`, `directory`,
/// `publish`, `repair`). The stage is process-global; set it from one
/// orchestrating thread at a time.
pub fn stage(name: &'static str) -> StageGuard {
    if !registry::enabled() {
        return StageGuard {
            name,
            prev: 0,
            active: false,
        };
    }
    StageGuard {
        name,
        prev: registry::swap_stage(name),
        active: true,
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if self.active {
            registry::restore_stage(self.prev);
            // A stage exit is a structural moment every builder already
            // marks — sample the time series there, so construction
            // stages become curve points without touching the callers.
            crate::timeseries::timeseries_tick(&format!("stage:{}", self.name));
        }
    }
}

/// Starts a [`span`] by name; the macro form named in the issue
/// (`obs::span!("directory.lookup")`). Expands to the function call.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $label:expr) => {
        $crate::span_labeled($name, $label)
    };
}
