//! Per-query flight records: structured traces of individual lookups
//! and publishes, sampled deterministically and aggregated into the
//! E-LAT latency-attribution table.
//!
//! The aggregate registry answers "how many and how long in total"; a
//! [`QueryTrace`] answers "where did *this* query's time go" — which
//! cache shard it probed (and whether the probe hit, missed, or found a
//! stale-epoch entry), which publication epoch served it, how many
//! zoom-chain levels the walk visited, and how many nanoseconds each
//! stage of the query owned.
//!
//! Sampling is **index-based** (`RON_QTRACE=k` traces every `k`-th
//! query by its position in the batch), never randomized: tracing must
//! not consume RNG draws or perturb scheduling, so the simulator's
//! trace fingerprints stay byte-identical whether query tracing is
//! off, on, or sampled (property-tested in `ron-sim`). Records are
//! buffered on the recording thread's collector, merged on
//! [`flush`](crate::flush), and drained sorted by `(kind, id)` — ids
//! are batch positions, so the drained order is identical no matter
//! how a worker pool split the batch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::Pow2Histogram;
use crate::registry;

static QTRACE_RATE: AtomicU64 = AtomicU64::new(0);

/// The current sampling rate: 0 when query tracing is off, else `k`
/// meaning every `k`-th query (by batch position) is traced.
#[inline]
#[must_use]
pub fn qtrace_rate() -> u64 {
    // ordering: Relaxed -- an independent sampling-rate cell set
    // before serving starts; spawn synchronizes it to workers.
    QTRACE_RATE.load(Ordering::Relaxed)
}

/// Sets the sampling rate (0 disables, 1 traces every query, `k`
/// traces ids divisible by `k`). See [`init_from_env`] for the
/// `RON_QTRACE` knob.
///
/// [`init_from_env`]: crate::init_from_env
pub fn set_qtrace(rate: u64) {
    // ordering: Relaxed -- see qtrace_rate above.
    QTRACE_RATE.store(rate, Ordering::Relaxed);
}

/// Whether the query with batch position `id` should be traced. One
/// relaxed load and a branch when tracing is off; deterministic in
/// `id` (no RNG), so the set of sampled queries is identical across
/// reruns and worker counts.
#[inline]
#[must_use]
pub fn qtrace_sampled(id: u64) -> bool {
    let rate = qtrace_rate();
    rate != 0 && id.is_multiple_of(rate)
}

/// How a traced query's cache probe went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheOutcome {
    /// The query never probed a cache (publishes, cache-less engines).
    #[default]
    Uncached,
    /// Served from the cache under the current epoch.
    Hit,
    /// Not in the cache.
    Miss,
    /// Present, but tagged with a superseded publication epoch.
    Stale,
}

impl CacheOutcome {
    /// Stable lowercase name (`"hit"`, `"miss"`, `"stale"`,
    /// `"uncached"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CacheOutcome::Uncached => "uncached",
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Stale => "stale",
        }
    }
}

/// One sampled query's flight record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryTrace {
    /// Query family: `"lookup"` or `"publish"`.
    pub kind: &'static str,
    /// Position of the query in its batch (the sampling index).
    pub id: u64,
    /// Publication epoch the query was served against.
    pub epoch: u64,
    /// Cache shard probed, if the query went through a sharded cache.
    pub cache_shard: Option<u32>,
    /// Outcome of the cache probe.
    pub cache: CacheOutcome,
    /// Zoom-chain levels visited (fingers probed on the climb, or
    /// ladder levels written by a publish).
    pub levels_visited: u32,
    /// Ladder level where the walk found its directory entry (`None`
    /// for cache hits, failures, and publishes).
    pub found_level: Option<u32>,
    /// Probe count: finger probes for lookups, pointer writes (the
    /// fan-out) for publishes.
    pub probes: u64,
    /// Overlay hops traversed (a cache hit reports the hops of the
    /// walk that populated the entry).
    pub hops: u32,
    /// Per-stage wall time, `(stage name, ns)` in execution order —
    /// e.g. `[("cache", 120), ("walk", 5400)]` for a lookup or
    /// `[("plan", 8000), ("install", 900)]` for a publish.
    pub stages: Vec<(&'static str, u64)>,
}

impl QueryTrace {
    /// Total nanoseconds across all stages.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.stages.iter().map(|&(_, ns)| ns).sum()
    }

    /// The record with its wall-clock fields zeroed: what two runs of
    /// the same batch must agree on byte for byte (ids, epochs, shards,
    /// cache outcomes, levels, probes, hops — everything but time).
    #[must_use]
    pub fn structural(&self) -> QueryTrace {
        QueryTrace {
            stages: self.stages.iter().map(|&(s, _)| (s, 0)).collect(),
            ..self.clone()
        }
    }
}

/// Buffers a flight record on the calling thread's collector. Safe to
/// call from worker pools; records merge on [`flush`](crate::flush)
/// and drain in `(kind, id)` order regardless of which thread recorded
/// them.
pub fn record_query_trace(trace: QueryTrace) {
    registry::push_query_trace(trace);
}

/// Flushes the calling thread and takes every buffered flight record,
/// sorted by `(kind, id)` — byte-stable across worker counts, since
/// ids are batch positions.
#[must_use]
pub fn drain_query_traces() -> Vec<QueryTrace> {
    let mut traces = registry::take_query_traces();
    traces.sort_by(|a, b| (a.kind, a.id).cmp(&(b.kind, b.id)));
    traces
}

/// The E-LAT aggregation: per `(kind, stage)` latency histograms built
/// from drained flight records, answering which stage owns a query
/// family's p50 and p99.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyAttribution {
    /// Per-stage ns histograms, keyed `(kind, stage)`.
    stages: BTreeMap<(&'static str, &'static str), Pow2Histogram>,
    /// Per-kind total ns histograms (sum of a record's stages).
    totals: BTreeMap<&'static str, Pow2Histogram>,
}

impl LatencyAttribution {
    /// Aggregates drained flight records.
    #[must_use]
    pub fn from_traces(traces: &[QueryTrace]) -> Self {
        let mut out = LatencyAttribution::default();
        for t in traces {
            for &(stage, ns) in &t.stages {
                out.stages.entry((t.kind, stage)).or_default().record(ns);
            }
            out.totals.entry(t.kind).or_default().record(t.total_ns());
        }
        out
    }

    /// True when no records were aggregated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// The aggregated `(kind, stage)` histograms, sorted by key.
    pub fn stages(&self) -> impl Iterator<Item = (&'static str, &'static str, &Pow2Histogram)> {
        self.stages.iter().map(|(&(k, s), h)| (k, s, h))
    }

    /// The query kinds seen, sorted.
    pub fn kinds(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.totals.keys().copied()
    }

    /// Total-latency histogram for `kind` (sum of each record's
    /// stages).
    #[must_use]
    pub fn total(&self, kind: &str) -> Option<&Pow2Histogram> {
        self.totals.get(kind)
    }

    /// The stage that **owns** `kind`'s `q`-quantile: the stage whose
    /// own `q`-quantile lower bound is largest (first in stage-name
    /// order on ties). `None` when the kind was never traced.
    #[must_use]
    pub fn owner(&self, kind: &str, q: f64) -> Option<&'static str> {
        let mut best: Option<(u64, &'static str)> = None;
        for (k, stage, h) in self.stages() {
            if k != kind {
                continue;
            }
            let lb = h.quantile_lower_bound(q)?;
            if best.is_none_or(|(b, _)| lb > b) {
                best = Some((lb, stage));
            }
        }
        best.map(|(_, stage)| stage)
    }

    /// A stage's share of the kind's total recorded time, in percent
    /// (0.0 when the kind recorded nothing).
    #[must_use]
    pub fn share_percent(&self, kind: &str, stage: &str) -> f64 {
        let total: u64 = self.total(kind).map_or(0, Pow2Histogram::sum);
        if total == 0 {
            return 0.0;
        }
        let stage_sum = self
            .stages
            .iter()
            .find(|(&(k, s), _)| k == kind && s == stage)
            .map_or(0, |(_, h)| h.sum());
        stage_sum as f64 / total as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(kind: &'static str, id: u64, cache_ns: u64, walk_ns: u64) -> QueryTrace {
        QueryTrace {
            kind,
            id,
            epoch: 3,
            cache_shard: Some(1),
            cache: CacheOutcome::Miss,
            levels_visited: 2,
            found_level: Some(1),
            probes: 2,
            hops: 4,
            stages: vec![("cache", cache_ns), ("walk", walk_ns)],
        }
    }

    #[test]
    fn sampling_is_index_based_and_off_by_default() {
        let prev = qtrace_rate();
        set_qtrace(0);
        assert!(!qtrace_sampled(0));
        set_qtrace(3);
        assert!(qtrace_sampled(0));
        assert!(!qtrace_sampled(1));
        assert!(!qtrace_sampled(2));
        assert!(qtrace_sampled(3));
        set_qtrace(1);
        assert!(qtrace_sampled(7));
        set_qtrace(prev);
    }

    #[test]
    fn attribution_finds_the_owning_stage() {
        // walk dwarfs cache on every record: walk owns both quantiles.
        let traces: Vec<QueryTrace> = (0..100).map(|i| trace("lookup", i, 10, 5000)).collect();
        let lat = LatencyAttribution::from_traces(&traces);
        assert!(!lat.is_empty());
        assert_eq!(lat.owner("lookup", 0.50), Some("walk"));
        assert_eq!(lat.owner("lookup", 0.99), Some("walk"));
        assert_eq!(lat.owner("publish", 0.99), None);
        assert_eq!(lat.total("lookup").unwrap().count(), 100);
        let share = lat.share_percent("lookup", "walk");
        assert!(share > 99.0, "walk share {share}");
        assert!(lat.share_percent("lookup", "cache") < 1.0);
        assert_eq!(lat.share_percent("publish", "plan"), 0.0);
        let stages: Vec<_> = lat.stages().map(|(k, s, _)| (k, s)).collect();
        assert_eq!(stages, vec![("lookup", "cache"), ("lookup", "walk")]);
        assert_eq!(lat.kinds().collect::<Vec<_>>(), vec!["lookup"]);
    }

    #[test]
    fn structural_projection_zeroes_time_only() {
        let t = trace("lookup", 9, 123, 456);
        let s = t.structural();
        assert_eq!(s.id, 9);
        assert_eq!(s.stages, vec![("cache", 0), ("walk", 0)]);
        assert_eq!(s.total_ns(), 0);
        assert_eq!(t.total_ns(), 579);
    }
}
