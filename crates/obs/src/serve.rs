//! A minimal `/metrics` wire: a thread-per-connection `std::net`
//! listener answering `GET /metrics` (Prometheus text exposition over
//! a live [`peek`](crate::peek) snapshot) and `GET /health`.
//!
//! This is deliberately not a web framework — it speaks just enough
//! HTTP/1.1 for `curl`, Prometheus scrapers, and the CI smoke: one
//! request per connection, `Connection: close`, `Content-Length`
//! always set. The accept loop runs on one background thread and hands
//! each connection to a short-lived handler thread; scrapes read the
//! registry non-destructively, so serving metrics never steals records
//! from the end-of-run drain.
//!
//! Shutdown is cooperative: [`MetricsServer::shutdown`] (also run on
//! drop) raises a flag and pokes the listener with a loopback connect
//! so the blocking `accept` wakes and the thread joins — no process
//! global, no signal handling.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::expo::prometheus_text;
use crate::registry;

/// How long a handler waits on a slow client before dropping the
/// connection (read and write both).
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A running metrics listener; see the module docs. Dropping the
/// server shuts it down and joins the accept thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 picks a free
    /// port) and starts serving `GET /metrics` and `GET /health`.
    pub fn bind(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("ron-obs-serve".to_string())
            .spawn(move || accept_loop(&listener, &stop_flag))?;
        Ok(MetricsServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (the actual port when bound with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the blocked accept with a loopback
    /// connect, and joins the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        // ordering: SeqCst -- shutdown flag on a cold path; the
        // strongest ordering keeps the self-connect wakeup below
        // trivially correct and costs nothing here.
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop re-checks the flag once per connection; this
        // throwaway connect is that connection.
        drop(TcpStream::connect(self.addr));
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts a [`MetricsServer`] on `RON_METRICS_ADDR` when the variable
/// is set; `None` (and no listener) otherwise. A bad address panics —
/// an explicitly requested wire that silently fails to bind would be
/// worse.
#[must_use]
pub fn serve_from_env() -> Option<MetricsServer> {
    let addr = std::env::var("RON_METRICS_ADDR").ok()?;
    Some(MetricsServer::bind(&addr).unwrap_or_else(|e| panic!("RON_METRICS_ADDR={addr}: {e}")))
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // Accept errors are transient (EMFILE, aborted handshake);
            // only the stop flag ends the loop.
            // ordering: SeqCst -- pairs with the store in stop(); one
            // load per accepted connection, not a hot path.
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        // ordering: SeqCst -- pairs with the store in stop().
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Handler threads are detached: each serves one request with
        // bounded IO timeouts and exits.
        let _ = std::thread::Builder::new()
            .name("ron-obs-conn".to_string())
            .spawn(move || handle(stream));
    }
}

fn handle(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(request_line) = read_request_head(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body): (&str, &str, String) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                prometheus_text(&registry::peek()),
            ),
            "/health" => ("200 OK", "text/plain", "ok\n".to_string()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

/// Reads the whole request head (through the blank line ending the
/// headers — leaving them unread would turn the close into an RST) and
/// returns the request line. `None` on a client that disconnects or
/// stalls first.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut byte) {
            Ok(1) => buf.push(byte[0]),
            _ => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("").trim_end().to_string();
    (!line.is_empty()).then_some(line)
}
