//! Time-series telemetry: a ring buffer of registry snapshots taken at
//! deterministic tick points.
//!
//! A single end-of-run [`drain`](crate::drain) collapses a 2^20 build
//! or a churn run into one total; the sampler turns it into a curve.
//! Instrumented code calls [`timeseries_tick`] at *structural* moments
//! — a construction stage ends (the [`stage`](crate::stage) guard does
//! this automatically), a simulator phase is marked, a query-engine
//! batch completes — and each tick snapshots the live registry
//! ([`peek`](crate::peek), non-destructive) together with a
//! monotonically increasing tick index and the label of the moment.
//!
//! Ticks are tied to the *work*, never to wall-clock timers or
//! background threads, so the sequence of (tick, label) pairs is
//! byte-identical across reruns and `RON_THREADS`, and capture cannot
//! perturb scheduling or trace fingerprints (property-tested in
//! `ron-sim`). Two bounds keep high-frequency tick sites cheap: per
//! label, occurrences are **exponentially thinned** (the first 8 are
//! kept, then only power-of-two occurrences — a per-object `publish`
//! stage loop costs one snapshot per doubling, and its curve comes out
//! log-spaced), and the buffer is a ring
//! ([`set_timeseries_capacity`], default 1024 points) so long runs
//! keep the most recent window rather than growing without bound.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

use crate::registry::{self, Registry};

const DEFAULT_CAPACITY: usize = 1024;

/// One sampled point: the registry as it stood at a tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimePoint {
    /// Monotone tick index, 0-based from process start (or the last
    /// [`take_timeseries`]/[`reset`](crate::reset)).
    pub tick: u64,
    /// What structural moment the tick marks, e.g. `"stage:rings"`,
    /// `"sim:phase:steady"`, `"engine:batch"`.
    pub label: String,
    /// Non-destructive registry snapshot at the tick.
    pub registry: Registry,
}

struct SeriesBuf {
    next_tick: u64,
    capacity: usize,
    points: VecDeque<TimePoint>,
    /// Occurrence counts per label, for exponential thinning.
    seen: BTreeMap<String, u64>,
}

static SERIES: Mutex<SeriesBuf> = Mutex::new(SeriesBuf {
    next_tick: 0,
    capacity: DEFAULT_CAPACITY,
    points: VecDeque::new(),
    seen: BTreeMap::new(),
});

/// Caps the ring buffer at `capacity` points (oldest evicted first).
/// Zero is clamped to 1.
pub fn set_timeseries_capacity(capacity: usize) {
    let mut buf = SERIES.lock().unwrap();
    buf.capacity = capacity.max(1);
    while buf.points.len() > buf.capacity {
        buf.points.pop_front();
    }
}

/// Records a time-series point labelled `label` by snapshotting the
/// live registry. A no-op (one relaxed load) when observability is
/// off. Call at structural moments — stage exits, phase marks, batch
/// boundaries — never from timers, so tick sequences stay
/// deterministic. Per label, only occurrences 1..=8 and powers of two
/// take a snapshot (exponential thinning), so a hot loop that exits a
/// stage thousands of times pays for O(log n) snapshots.
pub fn timeseries_tick(label: &str) {
    if !registry::enabled() {
        return;
    }
    {
        let mut buf = SERIES.lock().unwrap();
        let seen = buf.seen.entry(label.to_string()).or_insert(0);
        *seen += 1;
        let n = *seen;
        if n > 8 && !n.is_power_of_two() {
            return;
        }
    }
    // Snapshot outside the SERIES lock: peek() flushes the calling
    // thread's collector, which takes the registry lock.
    let snapshot = registry::peek();
    let mut buf = SERIES.lock().unwrap();
    let tick = buf.next_tick;
    buf.next_tick += 1;
    let point = TimePoint {
        tick,
        label: label.to_string(),
        registry: snapshot,
    };
    buf.points.push_back(point);
    while buf.points.len() > buf.capacity {
        buf.points.pop_front();
    }
}

/// Takes every buffered point in tick order, restarting the tick
/// counter and the per-label thinning counts.
#[must_use]
pub fn take_timeseries() -> Vec<TimePoint> {
    let mut buf = SERIES.lock().unwrap();
    buf.next_tick = 0;
    buf.seen.clear();
    buf.points.drain(..).collect()
}

/// Empties the buffer and restarts the tick counter (part of
/// [`reset`](crate::reset)).
pub(crate) fn clear() {
    let mut buf = SERIES.lock().unwrap();
    buf.next_tick = 0;
    buf.seen.clear();
    buf.points.clear();
}

fn csv_field(s: &str) -> String {
    // The schema is comma-separated with no quoting; commas and
    // newlines in labels/keys become ';' so a row is always 5 fields.
    s.replace([',', '\n', '\r'], ";")
}

/// Renders points as CSV with header `tick,label,kind,name,value` —
/// one row per metric per point. `kind` is `counter`, `gauge`,
/// `hist_count`, or `hist_sum`; histogram rows split into their count
/// and sum so the curve of a latency total is plottable directly.
#[must_use]
pub fn timeseries_csv(points: &[TimePoint]) -> String {
    let mut out = String::from("tick,label,kind,name,value\n");
    for p in points {
        let prefix = format!("{},{}", p.tick, csv_field(&p.label));
        for (k, v) in &p.registry.counters {
            out.push_str(&format!("{prefix},counter,{},{v}\n", csv_field(k)));
        }
        for (k, v) in &p.registry.gauges {
            out.push_str(&format!("{prefix},gauge,{},{v}\n", csv_field(k)));
        }
        for (k, h) in &p.registry.histograms {
            let name = csv_field(k);
            out.push_str(&format!("{prefix},hist_count,{name},{}\n", h.count()));
            out.push_str(&format!("{prefix},hist_sum,{name},{}\n", h.sum()));
        }
    }
    out
}

/// Serializes points as a JSON array of
/// `{"tick":t,"label":"...","counters":{...},"gauges":{...},"hists":{name:{"count":c,"sum":s}}}`
/// — the compact per-tick view embedded in `BENCH_report.json` (full
/// bucket vectors stay in the end-of-run "obs" block).
#[must_use]
pub fn timeseries_json(points: &[TimePoint]) -> String {
    let mut out = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"tick\":{},\"label\":\"{}\",\"counters\":{{",
            p.tick,
            registry::json_escape(&p.label)
        ));
        for (j, (k, v)) in p.registry.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", registry::json_escape(k)));
        }
        out.push_str("},\"gauges\":{");
        for (j, (k, v)) in p.registry.gauges.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", registry::json_escape(k)));
        }
        out.push_str("},\"hists\":{");
        for (j, (k, h)) in p.registry.histograms.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{}}}",
                registry::json_escape(k),
                h.count(),
                h.sum(),
            ));
        }
        out.push_str("}}");
    }
    out.push(']');
    out
}

/// Renders values as a unicode sparkline (`▁` to `█`, space for
/// absent data), scaled to the slice maximum — the report's one-line
/// curve view of a time series.
#[must_use]
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return values.iter().map(|_| BARS[0]).collect();
    }
    values
        .iter()
        .map(|&v| {
            // Scale v/max into 0..8; nonzero values always show at
            // least the lowest bar.
            let idx = (v * 8 / max).clamp(u64::from(v > 0), 8) as usize;
            BARS[idx.saturating_sub(1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let s = sparkline(&[0, 1, 4, 8]);
        assert_eq!(s.chars().count(), 4);
        assert_eq!(s.chars().next(), Some('▁'));
        assert_eq!(s.chars().last(), Some('█'));
        // Nonzero values never render as the zero bar height... they
        // get at least the lowest visible bar.
        let tiny = sparkline(&[1, 1_000_000]);
        assert_eq!(tiny.chars().next(), Some('▁'));
    }

    #[test]
    fn csv_field_never_breaks_the_row() {
        assert_eq!(csv_field("a,b\nc"), "a;b;c");
    }
}
