//! Prometheus-style text exposition over a drained [`Registry`].
//!
//! The composed `name[/stage][/label]` keys carry arbitrary
//! characters, so rather than mangling them into metric names the
//! formatter exposes three fixed families — `ron_counter`, `ron_gauge`
//! and the `ron_latency` histogram — and puts the composed key in a
//! `key` label (escaped per the exposition format: backslash, quote
//! and newline). Histogram buckets are the registry's power-of-two
//! buckets: values are integers and bucket `k` covers the closed range
//! `[lo, hi]`, so `le="hi"` is an exact cumulative bound, followed by
//! the mandatory `le="+Inf"`, `_sum` and `_count` series.
//!
//! The input is the deterministic sorted drain, so two snapshots of
//! identical registries render byte-identical text — the property the
//! CI smoke and the `/metrics` wire ([`crate::MetricsServer`]) rely
//! on.

use crate::hist::Pow2Histogram;
use crate::registry::Registry;

/// Escapes a label value per the Prometheus text exposition format:
/// `\` → `\\`, `"` → `\"`, newline → `\n`.
fn label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): counters as `ron_counter{key="..."}`, gauges as
/// `ron_gauge{key="..."}`, histograms as `ron_latency_bucket{key="...",
/// le="..."}` cumulative series plus `_sum`/`_count`. Sections are
/// omitted when empty; an empty registry renders as the empty string.
#[must_use]
pub fn prometheus_text(reg: &Registry) -> String {
    let mut out = String::new();
    if !reg.counters.is_empty() {
        out.push_str("# HELP ron_counter Monotonic counters from the ron-obs registry.\n");
        out.push_str("# TYPE ron_counter counter\n");
        for (k, v) in &reg.counters {
            out.push_str(&format!("ron_counter{{key=\"{}\"}} {v}\n", label_escape(k)));
        }
    }
    if !reg.gauges.is_empty() {
        out.push_str("# HELP ron_gauge High-water-mark gauges from the ron-obs registry.\n");
        out.push_str("# TYPE ron_gauge gauge\n");
        for (k, v) in &reg.gauges {
            out.push_str(&format!("ron_gauge{{key=\"{}\"}} {v}\n", label_escape(k)));
        }
    }
    if !reg.histograms.is_empty() {
        out.push_str(
            "# HELP ron_latency Power-of-two bucket distributions (ns for span histograms).\n",
        );
        out.push_str("# TYPE ron_latency histogram\n");
        for (k, h) in &reg.histograms {
            let key = label_escape(k);
            let mut cumulative = 0u64;
            for (bucket, &c) in h.buckets().iter().enumerate() {
                cumulative += c;
                let (_, hi) = Pow2Histogram::bucket_range(bucket);
                out.push_str(&format!(
                    "ron_latency_bucket{{key=\"{key}\",le=\"{hi}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "ron_latency_bucket{{key=\"{key}\",le=\"+Inf\"}} {}\n",
                h.count()
            ));
            out.push_str(&format!("ron_latency_sum{{key=\"{key}\"}} {}\n", h.sum()));
            out.push_str(&format!(
                "ron_latency_count{{key=\"{key}\"}} {}\n",
                h.count()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_renders_empty() {
        assert_eq!(prometheus_text(&Registry::default()), "");
    }

    #[test]
    fn families_render_with_escaped_keys_and_exact_bounds() {
        let mut reg = Registry::default();
        reg.counters.insert("lookup.hops/steady".to_string(), 42);
        reg.gauges.insert("queue\"depth\\peak".to_string(), 7);
        let mut h = Pow2Histogram::new();
        for v in [0u64, 1, 3, 3, 9] {
            h.record(v);
        }
        reg.histograms.insert("walk_ns".to_string(), h);

        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE ron_counter counter\n"));
        assert!(text.contains("ron_counter{key=\"lookup.hops/steady\"} 42\n"));
        // Escaped quote and backslash in the label value.
        assert!(text.contains("ron_gauge{key=\"queue\\\"depth\\\\peak\"} 7\n"));
        // Cumulative buckets: le=0 -> 1, le=1 -> 2, le=3 -> 4, le=15 -> 5.
        assert!(text.contains("ron_latency_bucket{key=\"walk_ns\",le=\"0\"} 1\n"));
        assert!(text.contains("ron_latency_bucket{key=\"walk_ns\",le=\"1\"} 2\n"));
        assert!(text.contains("ron_latency_bucket{key=\"walk_ns\",le=\"3\"} 4\n"));
        assert!(text.contains("ron_latency_bucket{key=\"walk_ns\",le=\"15\"} 5\n"));
        assert!(text.contains("ron_latency_bucket{key=\"walk_ns\",le=\"+Inf\"} 5\n"));
        assert!(text.contains("ron_latency_sum{key=\"walk_ns\"} 16\n"));
        assert!(text.contains("ron_latency_count{key=\"walk_ns\"} 5\n"));
        // Every non-comment line is `name{labels} value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name_labels, value) = line.rsplit_once(' ').unwrap();
            assert!(value.parse::<u64>().is_ok(), "value in {line}");
            assert!(name_labels.starts_with("ron_"), "family in {line}");
        }
    }

    #[test]
    fn identical_registries_render_byte_identical_text() {
        let mut a = Registry::default();
        a.counters.insert("x".to_string(), 1);
        a.counters.insert("y".to_string(), 2);
        let b = a.clone();
        assert_eq!(prometheus_text(&a), prometheus_text(&b));
    }
}
