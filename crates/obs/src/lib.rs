//! # ron-obs — zero-dependency observability for the rings stack
//!
//! A hand-rolled (no registry access, like the `rand`/`proptest`
//! shims) metrics and tracing layer the whole workspace sits on:
//!
//! * **[`Registry`]** — named counters, high-water-mark gauges, and
//!   [`Pow2Histogram`]s, recorded through thread-local collectors and
//!   drained into a deterministic label-sorted snapshot.
//! * **Spans** — [`span()`]`("directory.lookup")` (or the
//!   [`span!`](crate::span!) macro) returns a guard that records its
//!   scope's duration into a histogram; [`start`]/[`finish`] are the
//!   hot-path variant. [`stage`] attributes everything recorded inside
//!   a scope — across `par` worker threads — to a named stage.
//! * **Flight recorder** — per-query trace records
//!   ([`QueryTrace`], sampled deterministically by batch index via
//!   `RON_QTRACE`/[`set_qtrace`]) aggregated into the E-LAT
//!   [`LatencyAttribution`] table, and ring-buffered time-series
//!   snapshots ([`timeseries_tick`]) taken at structural moments —
//!   stage exits, sim phase marks, engine batches — rendered as CSV
//!   ([`timeseries_csv`]) and [`sparkline`] rows.
//! * **Exporters** — [`Registry::render`] (aligned text),
//!   [`Registry::to_json`] (folded into `BENCH_report.json` by
//!   `ron-bench`), an opt-in Chrome-trace dump
//!   ([`write_chrome_trace`], enabled by `RON_TRACE=chrome`), and the
//!   Prometheus text form ([`prometheus_text`]) served live over TCP
//!   by [`MetricsServer`] (`RON_METRICS_ADDR`, `GET /metrics`).
//!
//! Everything is **off by default**: each instrumentation point costs
//! one relaxed atomic load until [`set_enabled`]/[`init_from_env`]
//! turns recording on, and recording never influences protocol logic,
//! RNG draws, or event ordering — the simulator's trace fingerprints
//! are byte-identical with observability on or off (property-tested in
//! `ron-sim`).
//!
//! ```
//! ron_obs::reset();
//! ron_obs::set_enabled(true);
//! {
//!     let _stage = ron_obs::stage("nets");
//!     ron_obs::count("oracle.ball.sparse", 3);
//!     ron_obs::observe("directory.publish.fanout", 17);
//! }
//! let reg = ron_obs::drain();
//! assert_eq!(reg.counter("oracle.ball.sparse/nets"), 3);
//! assert_eq!(reg.histogram("directory.publish.fanout/nets").unwrap().count(), 1);
//! ron_obs::set_enabled(false);
//! ```

mod chrome;
mod expo;
mod hist;
mod querytrace;
mod registry;
mod serve;
mod span;
mod timeseries;

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use expo::prometheus_text;
pub use hist::Pow2Histogram;
pub use querytrace::{
    drain_query_traces, qtrace_rate, qtrace_sampled, record_query_trace, set_qtrace, CacheOutcome,
    LatencyAttribution, QueryTrace,
};
pub use registry::{
    chrome_enabled, count, count_labeled, drain, enabled, flush, gauge_max, init_from_env, label,
    observe, observe_labeled, peek, reset, set_chrome, set_enabled, Label, Registry,
};
pub use serve::{serve_from_env, MetricsServer};
pub use span::{finish, span, span_labeled, stage, start, SpanGuard, StageGuard};
pub use timeseries::{
    set_timeseries_capacity, sparkline, take_timeseries, timeseries_csv, timeseries_json,
    timeseries_tick, TimePoint,
};

pub(crate) use registry::label_text as label_name;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // The registry is process-global state; tests that enable it must
    // not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        guard
    }

    fn done(guard: MutexGuard<'static, ()>) {
        set_enabled(false);
        reset();
        drop(guard);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let guard = exclusive();
        set_enabled(false);
        count("c", 1);
        gauge_max("g", 9);
        observe("h", 3);
        let _span = span("s");
        drop(_span);
        assert!(drain().is_empty());
        done(guard);
    }

    #[test]
    fn drain_is_identical_no_matter_which_threads_recorded() {
        let guard = exclusive();
        // Everything on one thread.
        for i in 0..10u64 {
            count("work.calls", 1);
            observe("work.size", i);
        }
        gauge_max("work.peak", 7);
        let single = drain();
        // The same records spread over four threads.
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..10u64 {
                        if i % 4 == t {
                            count("work.calls", 1);
                            observe("work.size", i);
                        }
                    }
                    if t == 2 {
                        gauge_max("work.peak", 7);
                    }
                    // Flush before the closure returns: scope() can
                    // observe a thread as finished before its TLS
                    // destructors run, so the drop-flush alone would
                    // race the spawner's drain.
                    flush();
                });
            }
        });
        let sharded = drain();
        assert_eq!(single, sharded);
        assert_eq!(single.counter("work.calls"), 10);
        assert_eq!(single.gauges["work.peak"], 7);
        assert_eq!(single.histograms["work.size"].count(), 10);
        done(guard);
    }

    #[test]
    fn stage_and_label_compose_into_sorted_keys() {
        let guard = exclusive();
        let shard = label("shard3");
        {
            let _s = stage("publish");
            count("oracle.ball", 2);
            count_labeled("cache.hit", shard, 5);
        }
        count("oracle.ball", 1); // no stage
        count_labeled("cache.hit", Label::Static("w0"), 4);
        let reg = drain();
        let keys: Vec<&str> = reg.counters.keys().map(String::as_str).collect();
        assert_eq!(
            keys,
            vec![
                "cache.hit/publish/shard3",
                "cache.hit/w0",
                "oracle.ball",
                "oracle.ball/publish"
            ]
        );
        assert_eq!(reg.counter_prefix_sum("oracle.ball"), 3);
        assert_eq!(reg.counter_prefix_sum("cache.hit"), 9);
        done(guard);
    }

    #[test]
    fn spans_record_durations_and_registry_merge_is_deterministic() {
        let guard = exclusive();
        {
            let _g = span!("unit.span");
            std::hint::black_box(0u64);
        }
        finish("unit.hot", start());
        let a = drain();
        assert_eq!(a.histograms["unit.span"].count(), 1);
        assert_eq!(a.histograms["unit.hot"].count(), 1);

        count("m", 1);
        observe("d", 4);
        let b = drain();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "registry merge must be order-independent");
        assert_eq!(ab.counter("m"), 1);
        assert_eq!(ab.histograms["unit.span"].count(), 1);
        done(guard);
    }

    #[test]
    fn json_export_is_well_formed() {
        let guard = exclusive();
        count("a.calls", 3);
        gauge_max("b.depth", 12);
        observe("c.lat", 0);
        observe("c.lat", 900);
        let reg = drain();
        let json = reg.to_json();
        assert_json_object(&json);
        assert!(json.contains("\"a.calls\":3"));
        assert!(json.contains("\"b.depth\":12"));
        assert!(json.contains("\"count\":2"));
        done(guard);
    }

    #[test]
    fn chrome_trace_is_well_formed_json() {
        let guard = exclusive();
        set_chrome(true);
        {
            let _a = span("trace.outer");
            let _b = span_labeled("trace.inner", label("phase1"));
        }
        let json = chrome_trace_json();
        set_chrome(false);
        // An array of one-object-per-line complete events.
        assert_json_array_of_objects(&json, 2);
        assert!(json.contains("\"name\":\"trace.inner/phase1\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Draining consumed the events.
        assert_eq!(chrome_trace_json().trim(), "[\n]");
        done(guard);
    }

    #[test]
    fn chrome_trace_file_write_is_atomic_and_handles_empty() {
        let guard = exclusive();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ron_obs_trace_{}.json", std::process::id()));

        // Empty registry: the export is still a complete JSON array.
        let written = write_chrome_trace(&path).unwrap();
        assert_eq!(written, 0);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_json_array_of_objects(&body, 0);

        set_chrome(true);
        {
            let _a = span("trace.file");
        }
        let written = write_chrome_trace(&path).unwrap();
        set_chrome(false);
        assert_eq!(written, 1);
        let body = std::fs::read_to_string(&path).unwrap();
        assert_json_array_of_objects(&body, 1);
        // The temp file the atomic write staged through is gone.
        let mut tmp = path.clone();
        let mut name = tmp.file_name().unwrap().to_os_string();
        name.push(".tmp");
        tmp.set_file_name(name);
        assert!(!tmp.exists(), "staging file left behind: {}", tmp.display());
        std::fs::remove_file(&path).unwrap();
        done(guard);
    }

    #[test]
    fn query_traces_round_trip_through_worker_flushes() {
        let guard = exclusive();
        set_qtrace(2);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                s.spawn(move || {
                    for id in (0..8).filter(|i| i % 2 == t) {
                        if qtrace_sampled(id) {
                            record_query_trace(QueryTrace {
                                kind: "lookup",
                                id,
                                epoch: 1,
                                cache_shard: Some(0),
                                cache: CacheOutcome::Miss,
                                levels_visited: 3,
                                found_level: Some(2),
                                probes: 5,
                                hops: 2,
                                stages: vec![("cache", 10), ("walk", 100)],
                            });
                        }
                    }
                    flush();
                });
            }
        });
        set_qtrace(0);
        let traces = drain_query_traces();
        // Rate 2 samples ids 0,2,4,6 — drained in id order no matter
        // which thread recorded them.
        assert_eq!(
            traces.iter().map(|t| t.id).collect::<Vec<_>>(),
            [0, 2, 4, 6]
        );
        let lat = LatencyAttribution::from_traces(&traces);
        assert_eq!(lat.owner("lookup", 0.99), Some("walk"));
        assert!(
            drain_query_traces().is_empty(),
            "drain consumed the records"
        );
        done(guard);
    }

    #[test]
    fn peek_snapshots_without_consuming() {
        let guard = exclusive();
        count("peek.calls", 2);
        let live = peek();
        assert_eq!(live.counter("peek.calls"), 2);
        count("peek.calls", 1);
        let drained = drain();
        assert_eq!(
            drained.counter("peek.calls"),
            3,
            "peek must not steal records"
        );
        done(guard);
    }

    #[test]
    fn timeseries_ticks_capture_thinned_labeled_snapshots() {
        let guard = exclusive();
        count("ts.work", 1);
        timeseries_tick("stage:a");
        count("ts.work", 4);
        timeseries_tick("stage:a");
        // A hot label: 100 ticks keep 1..=8 and the powers of two.
        for _ in 0..100 {
            timeseries_tick("stage:hot");
        }
        let points = take_timeseries();
        let a_points: Vec<_> = points.iter().filter(|p| p.label == "stage:a").collect();
        assert_eq!(a_points.len(), 2);
        assert_eq!(a_points[0].registry.counter("ts.work"), 1);
        assert_eq!(a_points[1].registry.counter("ts.work"), 5);
        assert!(a_points[0].tick < a_points[1].tick);
        let hot = points.iter().filter(|p| p.label == "stage:hot").count();
        assert_eq!(hot, 8 + 3, "1..=8 plus 16, 32, 64");
        // CSV: header + 5 fields per row, commas in labels made safe.
        let csv = timeseries_csv(&points);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("tick,label,kind,name,value"));
        for line in lines {
            assert_eq!(line.split(',').count(), 5, "row {line}");
        }
        assert_json_object(&format!("{{\"ts\":{}}}", timeseries_json(&points)));
        assert!(take_timeseries().is_empty());
        done(guard);
    }

    #[test]
    fn stage_guard_exit_ticks_the_series() {
        let guard = exclusive();
        {
            let _s = stage("nets");
            count("oracle.calls", 7);
        }
        let points = take_timeseries();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].label, "stage:nets");
        assert_eq!(points[0].registry.counter("oracle.calls/nets"), 7);
        done(guard);
    }

    #[test]
    fn metrics_server_answers_over_tcp() {
        use std::io::{Read as _, Write as _};
        let guard = exclusive();
        count("wire.requests", 3);
        observe("wire.latency_ns", 512);
        // Scrapes run on handler threads and see the global store:
        // recording threads must have flushed (workers already do).
        flush();
        let mut server = MetricsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let fetch = |path: &str| -> String {
            let mut conn = std::net::TcpStream::connect(addr).unwrap();
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut body = String::new();
            conn.read_to_string(&mut body).unwrap();
            body
        };
        let health = fetch("/health");
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("ok\n"));
        let metrics = fetch("/metrics");
        assert!(metrics.contains("ron_counter{key=\"wire.requests\"} 3\n"));
        assert!(metrics.contains("ron_latency_count{key=\"wire.latency_ns\"} 1\n"));
        assert!(fetch("/nope").starts_with("HTTP/1.1 404"));

        server.shutdown();
        server.shutdown(); // idempotent
        assert!(std::net::TcpStream::connect(addr).map_or(true, |mut c| {
            // Accept loop is gone: the connection may open but nothing
            // answers.
            let _ = write!(c, "GET /health HTTP/1.1\r\n\r\n");
            let mut s = String::new();
            c.read_to_string(&mut s).unwrap_or(0) == 0
        }));
        // Serving peeked, never drained: the records are still here.
        assert_eq!(drain().counter("wire.requests"), 3);
        done(guard);
    }

    #[test]
    fn serve_from_env_is_off_without_the_variable() {
        // RON_METRICS_ADDR is not set in the test environment.
        assert!(serve_from_env().is_none());
    }

    /// Minimal JSON checker: validates one value and returns the rest.
    fn skip_json_value(s: &str) -> &str {
        let s = s.trim_start();
        let mut chars = s.char_indices();
        match chars.next().map(|(_, c)| c) {
            Some('{') => {
                let mut rest = s[1..].trim_start();
                if let Some(r) = rest.strip_prefix('}') {
                    return r;
                }
                loop {
                    rest = rest.trim_start();
                    assert!(
                        rest.starts_with('"'),
                        "object key must be a string: {rest:.40}"
                    );
                    rest = skip_json_value(rest);
                    rest = rest.trim_start();
                    rest = rest.strip_prefix(':').expect("missing ':' in object");
                    rest = skip_json_value(rest);
                    rest = rest.trim_start();
                    if let Some(r) = rest.strip_prefix(',') {
                        rest = r;
                    } else {
                        return rest.strip_prefix('}').expect("missing '}'");
                    }
                }
            }
            Some('[') => {
                let mut rest = s[1..].trim_start();
                if let Some(r) = rest.strip_prefix(']') {
                    return r;
                }
                loop {
                    rest = skip_json_value(rest);
                    rest = rest.trim_start();
                    if let Some(r) = rest.strip_prefix(',') {
                        rest = r;
                    } else {
                        return rest.strip_prefix(']').expect("missing ']'");
                    }
                }
            }
            Some('"') => {
                let mut escaped = false;
                for (i, c) in chars {
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        return &s[i + 1..];
                    }
                }
                panic!("unterminated string");
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let end = s
                    .find(|c: char| !(c.is_ascii_digit() || ".eE+-".contains(c)))
                    .unwrap_or(s.len());
                s[..end].parse::<f64>().expect("bad number");
                &s[end..]
            }
            _ => {
                for lit in ["true", "false", "null"] {
                    if let Some(r) = s.strip_prefix(lit) {
                        return r;
                    }
                }
                panic!("unrecognised JSON value: {s:.40}");
            }
        }
    }

    fn assert_json_object(s: &str) {
        assert!(s.trim_start().starts_with('{'));
        assert!(skip_json_value(s).trim().is_empty(), "trailing garbage");
    }

    fn assert_json_array_of_objects(s: &str, expected: usize) {
        assert!(s.trim_start().starts_with('['));
        assert!(skip_json_value(s).trim().is_empty(), "trailing garbage");
        let events = s
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .count();
        assert_eq!(events, expected, "expected {expected} events in {s}");
    }
}
