//! # ron-obs — zero-dependency observability for the rings stack
//!
//! A hand-rolled (no registry access, like the `rand`/`proptest`
//! shims) metrics and tracing layer the whole workspace sits on:
//!
//! * **[`Registry`]** — named counters, high-water-mark gauges, and
//!   [`Pow2Histogram`]s, recorded through thread-local collectors and
//!   drained into a deterministic label-sorted snapshot.
//! * **Spans** — [`span()`]`("directory.lookup")` (or the
//!   [`span!`](crate::span!) macro) returns a guard that records its
//!   scope's duration into a histogram; [`start`]/[`finish`] are the
//!   hot-path variant. [`stage`] attributes everything recorded inside
//!   a scope — across `par` worker threads — to a named stage.
//! * **Exporters** — [`Registry::render`] (aligned text),
//!   [`Registry::to_json`] (folded into `BENCH_report.json` by
//!   `ron-bench`), and an opt-in Chrome-trace dump
//!   ([`write_chrome_trace`], enabled by `RON_TRACE=chrome`).
//!
//! Everything is **off by default**: each instrumentation point costs
//! one relaxed atomic load until [`set_enabled`]/[`init_from_env`]
//! turns recording on, and recording never influences protocol logic,
//! RNG draws, or event ordering — the simulator's trace fingerprints
//! are byte-identical with observability on or off (property-tested in
//! `ron-sim`).
//!
//! ```
//! ron_obs::reset();
//! ron_obs::set_enabled(true);
//! {
//!     let _stage = ron_obs::stage("nets");
//!     ron_obs::count("oracle.ball.sparse", 3);
//!     ron_obs::observe("directory.publish.fanout", 17);
//! }
//! let reg = ron_obs::drain();
//! assert_eq!(reg.counter("oracle.ball.sparse/nets"), 3);
//! assert_eq!(reg.histogram("directory.publish.fanout/nets").unwrap().count(), 1);
//! ron_obs::set_enabled(false);
//! ```

mod chrome;
mod hist;
mod registry;
mod span;

pub use chrome::{chrome_trace_json, write_chrome_trace};
pub use hist::Pow2Histogram;
pub use registry::{
    chrome_enabled, count, count_labeled, drain, enabled, flush, gauge_max, init_from_env, label,
    observe, observe_labeled, reset, set_chrome, set_enabled, Label, Registry,
};
pub use span::{finish, span, span_labeled, stage, start, SpanGuard, StageGuard};

pub(crate) use registry::label_text as label_name;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    // The registry is process-global state; tests that enable it must
    // not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        guard
    }

    fn done(guard: MutexGuard<'static, ()>) {
        set_enabled(false);
        reset();
        drop(guard);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let guard = exclusive();
        set_enabled(false);
        count("c", 1);
        gauge_max("g", 9);
        observe("h", 3);
        let _span = span("s");
        drop(_span);
        assert!(drain().is_empty());
        done(guard);
    }

    #[test]
    fn drain_is_identical_no_matter_which_threads_recorded() {
        let guard = exclusive();
        // Everything on one thread.
        for i in 0..10u64 {
            count("work.calls", 1);
            observe("work.size", i);
        }
        gauge_max("work.peak", 7);
        let single = drain();
        // The same records spread over four threads.
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..10u64 {
                        if i % 4 == t {
                            count("work.calls", 1);
                            observe("work.size", i);
                        }
                    }
                    if t == 2 {
                        gauge_max("work.peak", 7);
                    }
                    // Flush before the closure returns: scope() can
                    // observe a thread as finished before its TLS
                    // destructors run, so the drop-flush alone would
                    // race the spawner's drain.
                    flush();
                });
            }
        });
        let sharded = drain();
        assert_eq!(single, sharded);
        assert_eq!(single.counter("work.calls"), 10);
        assert_eq!(single.gauges["work.peak"], 7);
        assert_eq!(single.histograms["work.size"].count(), 10);
        done(guard);
    }

    #[test]
    fn stage_and_label_compose_into_sorted_keys() {
        let guard = exclusive();
        let shard = label("shard3");
        {
            let _s = stage("publish");
            count("oracle.ball", 2);
            count_labeled("cache.hit", shard, 5);
        }
        count("oracle.ball", 1); // no stage
        count_labeled("cache.hit", Label::Static("w0"), 4);
        let reg = drain();
        let keys: Vec<&str> = reg.counters.keys().map(String::as_str).collect();
        assert_eq!(
            keys,
            vec![
                "cache.hit/publish/shard3",
                "cache.hit/w0",
                "oracle.ball",
                "oracle.ball/publish"
            ]
        );
        assert_eq!(reg.counter_prefix_sum("oracle.ball"), 3);
        assert_eq!(reg.counter_prefix_sum("cache.hit"), 9);
        done(guard);
    }

    #[test]
    fn spans_record_durations_and_registry_merge_is_deterministic() {
        let guard = exclusive();
        {
            let _g = span!("unit.span");
            std::hint::black_box(0u64);
        }
        finish("unit.hot", start());
        let a = drain();
        assert_eq!(a.histograms["unit.span"].count(), 1);
        assert_eq!(a.histograms["unit.hot"].count(), 1);

        count("m", 1);
        observe("d", 4);
        let b = drain();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "registry merge must be order-independent");
        assert_eq!(ab.counter("m"), 1);
        assert_eq!(ab.histograms["unit.span"].count(), 1);
        done(guard);
    }

    #[test]
    fn json_export_is_well_formed() {
        let guard = exclusive();
        count("a.calls", 3);
        gauge_max("b.depth", 12);
        observe("c.lat", 0);
        observe("c.lat", 900);
        let reg = drain();
        let json = reg.to_json();
        assert_json_object(&json);
        assert!(json.contains("\"a.calls\":3"));
        assert!(json.contains("\"b.depth\":12"));
        assert!(json.contains("\"count\":2"));
        done(guard);
    }

    #[test]
    fn chrome_trace_is_well_formed_json() {
        let guard = exclusive();
        set_chrome(true);
        {
            let _a = span("trace.outer");
            let _b = span_labeled("trace.inner", label("phase1"));
        }
        let json = chrome_trace_json();
        set_chrome(false);
        // An array of one-object-per-line complete events.
        assert_json_array_of_objects(&json, 2);
        assert!(json.contains("\"name\":\"trace.inner/phase1\""));
        assert!(json.contains("\"ph\":\"X\""));
        // Draining consumed the events.
        assert_eq!(chrome_trace_json().trim(), "[\n]");
        done(guard);
    }

    /// Minimal JSON checker: validates one value and returns the rest.
    fn skip_json_value(s: &str) -> &str {
        let s = s.trim_start();
        let mut chars = s.char_indices();
        match chars.next().map(|(_, c)| c) {
            Some('{') => {
                let mut rest = s[1..].trim_start();
                if let Some(r) = rest.strip_prefix('}') {
                    return r;
                }
                loop {
                    rest = rest.trim_start();
                    assert!(
                        rest.starts_with('"'),
                        "object key must be a string: {rest:.40}"
                    );
                    rest = skip_json_value(rest);
                    rest = rest.trim_start();
                    rest = rest.strip_prefix(':').expect("missing ':' in object");
                    rest = skip_json_value(rest);
                    rest = rest.trim_start();
                    if let Some(r) = rest.strip_prefix(',') {
                        rest = r;
                    } else {
                        return rest.strip_prefix('}').expect("missing '}'");
                    }
                }
            }
            Some('[') => {
                let mut rest = s[1..].trim_start();
                if let Some(r) = rest.strip_prefix(']') {
                    return r;
                }
                loop {
                    rest = skip_json_value(rest);
                    rest = rest.trim_start();
                    if let Some(r) = rest.strip_prefix(',') {
                        rest = r;
                    } else {
                        return rest.strip_prefix(']').expect("missing ']'");
                    }
                }
            }
            Some('"') => {
                let mut escaped = false;
                for (i, c) in chars {
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        return &s[i + 1..];
                    }
                }
                panic!("unterminated string");
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let end = s
                    .find(|c: char| !(c.is_ascii_digit() || ".eE+-".contains(c)))
                    .unwrap_or(s.len());
                s[..end].parse::<f64>().expect("bad number");
                &s[end..]
            }
            _ => {
                for lit in ["true", "false", "null"] {
                    if let Some(r) = s.strip_prefix(lit) {
                        return r;
                    }
                }
                panic!("unrecognised JSON value: {s:.40}");
            }
        }
    }

    fn assert_json_object(s: &str) {
        assert!(s.trim_start().starts_with('{'));
        assert!(skip_json_value(s).trim().is_empty(), "trailing garbage");
    }

    fn assert_json_array_of_objects(s: &str, expected: usize) {
        assert!(s.trim_start().starts_with('['));
        assert!(skip_json_value(s).trim().is_empty(), "trailing garbage");
        let events = s
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .count();
        assert_eq!(events, expected, "expected {expected} events in {s}");
    }
}
