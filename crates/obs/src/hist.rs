//! Power-of-two bucket histograms.
//!
//! The bucket convention is shared with the simulator's per-node load
//! histogram (`ron_sim::SimReport::load_histogram_pow2`): bucket 0
//! counts the value 0 and bucket `k >= 1` counts values in
//! `[2^(k-1), 2^k)`. Buckets grow on demand, so a histogram costs a
//! handful of words until something large is recorded, and merging two
//! histograms is bucket-wise addition — associative and commutative, so
//! per-thread shards merge to the same totals in any order.

/// A histogram over `u64` values with power-of-two buckets.
///
/// Tracks count, sum, min, and max exactly; the distribution itself is
/// quantised to pow2 buckets, which is plenty for latency-shape and
/// fan-out-shape questions while keeping `record` allocation-free in
/// the steady state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Pow2Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<u64>,
}

impl Pow2Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index for `value`: 0 for 0, else `64 - leading_zeros`,
    /// i.e. `k` such that `value` is in `[2^(k-1), 2^k)`.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The closed value range `[lo, hi]` covered by bucket `bucket`.
    #[must_use]
    pub fn bucket_range(bucket: usize) -> (u64, u64) {
        if bucket == 0 {
            (0, 0)
        } else {
            (1u64 << (bucket - 1), ((1u128 << bucket) - 1) as u64)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = Self::bucket_of(value);
        if bucket >= self.buckets.len() {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Adds every observation of `other` into `self` (bucket-wise sum).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts; index with [`Pow2Histogram::bucket_range`].
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate nearest-rank quantile: the lower bound of the bucket
    /// holding the `ceil(q * count)`-th smallest observation. Exact for
    /// values 0 and 1; within 2x above that. `None` when empty.
    #[must_use]
    pub fn quantile_lower_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_range(bucket).0);
            }
        }
        Some(Self::bucket_range(self.buckets.len().saturating_sub(1)).0)
    }

    /// Compact `range:count` rendering of the non-empty buckets, in the
    /// same format as the simulator's load histogram: `0:12 1:30 2-3:51`.
    #[must_use]
    pub fn render_compact(&self) -> String {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(bucket, &c)| {
                let (lo, hi) = Self::bucket_range(bucket);
                if lo == hi {
                    format!("{lo}:{c}")
                } else {
                    format!("{lo}-{hi}:{c}")
                }
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// One-line summary: count, mean, approximate p50/p99, max, and the
    /// compact bucket rendering.
    #[must_use]
    pub fn render_summary(&self) -> String {
        if self.count == 0 {
            return "count=0".to_string();
        }
        format!(
            "count={} mean={:.1} p50~{} p99~{} max={}  [{}]",
            self.count,
            self.mean(),
            self.quantile_lower_bound(0.50).unwrap_or(0),
            self.quantile_lower_bound(0.99).unwrap_or(0),
            self.max,
            self.render_compact()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_follow_the_pow2_convention() {
        assert_eq!(Pow2Histogram::bucket_of(0), 0);
        assert_eq!(Pow2Histogram::bucket_of(1), 1);
        assert_eq!(Pow2Histogram::bucket_of(2), 2);
        assert_eq!(Pow2Histogram::bucket_of(3), 2);
        assert_eq!(Pow2Histogram::bucket_of(4), 3);
        assert_eq!(Pow2Histogram::bucket_of(u64::MAX), 64);
        for bucket in 1..64 {
            let (lo, hi) = Pow2Histogram::bucket_range(bucket);
            assert_eq!(Pow2Histogram::bucket_of(lo), bucket);
            assert_eq!(Pow2Histogram::bucket_of(hi), bucket);
        }
    }

    #[test]
    fn record_tracks_exact_moments() {
        let mut h = Pow2Histogram::new();
        for v in [0, 1, 2, 3, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 20);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.render_compact(), "0:1 1:1 2-3:2 4-7:1 8-15:1");
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let values_a = [0u64, 1, 7, 900, 900, 3];
        let values_b = [2u64, 2, 65536, 1];
        let mut merged = Pow2Histogram::new();
        let mut a = Pow2Histogram::new();
        let mut b = Pow2Histogram::new();
        for &v in &values_a {
            a.record(v);
            merged.record(v);
        }
        for &v in &values_b {
            b.record(v);
            merged.record(v);
        }
        // Merge in both orders: the result is identical (commutative).
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, merged);
        assert_eq!(ba, merged);
        // Merging an empty histogram is the identity.
        ab.merge(&Pow2Histogram::new());
        assert_eq!(ab, merged);
    }

    #[test]
    fn quantiles_are_bucket_lower_bounds() {
        let mut h = Pow2Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // p50 of 1..=100 is 50, which lives in bucket [32, 63].
        assert_eq!(h.quantile_lower_bound(0.50), Some(32));
        assert_eq!(h.quantile_lower_bound(1.0), Some(64));
        assert_eq!(h.quantile_lower_bound(0.0), Some(1));
        assert_eq!(Pow2Histogram::new().quantile_lower_bound(0.5), None);
    }
}
