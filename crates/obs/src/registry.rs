//! The metrics registry: thread-local collectors merged into a global
//! store, drained deterministically.
//!
//! Recording is always done against a thread-local [`Collector`] — no
//! lock, no contention, and nothing observable from other threads. A
//! collector merges itself into the process-wide store when [`flush`]
//! is called on its thread, with a TLS-drop flush at thread exit as a
//! backstop. Worker pools must call [`flush`] at the end of the worker
//! closure (the `par` executor and the `QueryEngine` both do): joining
//! via `std::thread::scope` can observe a thread as finished before
//! its TLS destructors have run, so the drop-flush alone would race
//! the spawner's [`drain`]. Merging is keyed by
//! `(name, stage, label)` and commutative (counter addition, gauge max,
//! histogram bucket sums), and [`drain`] composes keys into strings and
//! sorts them, so the drained [`Registry`] is byte-identical no matter
//! how records were spread across threads (`RON_THREADS`-stable).
//!
//! When disabled — the default — every record call is a single relaxed
//! atomic load and a branch.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;

use crate::chrome::ChromeEvent;
use crate::hist::Pow2Histogram;
use crate::querytrace::QueryTrace;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CHROME: AtomicBool = AtomicBool::new(false);

/// Whether metric recording is on. One relaxed load; this is the whole
/// cost of an instrumentation point when observability is off.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    // ordering: Relaxed -- an independent on/off flag; it publishes no
    // data of its own, and callers that need records visible flush()
    // through the mutex-guarded global store.
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off. Off is the default; already
/// collected records are kept (use [`reset`] to discard them).
pub fn set_enabled(on: bool) {
    // ordering: Relaxed -- flag toggled before work is spawned; the
    // thread spawn itself provides the happens-before edge workers need.
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether Chrome-trace event capture is on (implies [`enabled`]).
#[inline]
#[must_use]
pub fn chrome_enabled() -> bool {
    // ordering: Relaxed -- same independent-flag discipline as ENABLED.
    CHROME.load(Ordering::Relaxed)
}

/// Turns Chrome-trace capture on or off; enabling it also enables
/// metric recording so span durations land in both places.
pub fn set_chrome(on: bool) {
    // ordering: Relaxed -- flag set during single-threaded setup, read
    // by workers only after they are spawned (spawn synchronizes).
    CHROME.store(on, Ordering::Relaxed);
    if on {
        set_enabled(true);
        crate::chrome::init_epoch();
    }
}

/// Applies the observability environment knobs: `RON_TRACE=chrome`
/// enables Chrome-trace capture (and with it metric recording),
/// `RON_OBS=1`/`RON_OBS=on` enables metric recording alone, and
/// `RON_QTRACE=k` turns on per-query flight records at a 1-in-`k`
/// deterministic sampling rate (see [`crate::set_qtrace`]; `k = 1`
/// traces every query, unparsable values warn and leave tracing off).
pub fn init_from_env() {
    if std::env::var("RON_TRACE").is_ok_and(|v| v == "chrome") {
        set_chrome(true);
    }
    if std::env::var("RON_OBS").is_ok_and(|v| v == "1" || v == "on") {
        set_enabled(true);
    }
    if let Ok(v) = std::env::var("RON_QTRACE") {
        match v.parse::<u64>() {
            Ok(rate) => crate::querytrace::set_qtrace(rate),
            Err(_) => eprintln!("RON_QTRACE={v} is not an integer sampling rate; ignored"),
        }
    }
}

/// A metric label: nothing, a static string, or an interned dynamic
/// string (see [`label`]). `Copy`, hashable, and cheap to pass around.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Label {
    /// No label; the metric name stands alone.
    #[default]
    None,
    /// A compile-time label, e.g. a gram type or worker class.
    Static(&'static str),
    /// An interned runtime label; create via [`label`].
    Dyn(u32),
}

#[derive(Default)]
struct Interner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

static INTERNER: Mutex<Option<Interner>> = Mutex::new(None);

/// Interns a runtime string (a shard index, a sim phase name, a worker
/// id) into a `Copy` label. Interning takes a lock — do it once per
/// scope and reuse the returned [`Label`] on the hot path.
#[must_use]
pub fn label(name: &str) -> Label {
    let mut guard = INTERNER.lock().unwrap();
    let interner = guard.get_or_insert_with(Interner::default);
    if let Some(&id) = interner.by_name.get(name) {
        return Label::Dyn(id);
    }
    let id = u32::try_from(interner.names.len()).expect("label interner overflow");
    interner.names.push(name.to_string());
    interner.by_name.insert(name.to_string(), id);
    Label::Dyn(id)
}

pub(crate) fn label_text(l: Label) -> Option<String> {
    match l {
        Label::None => None,
        Label::Static(s) => Some(s.to_string()),
        Label::Dyn(id) => {
            let guard = INTERNER.lock().unwrap();
            let name = guard
                .as_ref()
                .and_then(|i| i.names.get(id as usize))
                .map(|s| s.as_str())
                .unwrap_or("?");
            Some(name.to_string())
        }
    }
}

/// The current attribution stage, process-global so records made on
/// `par` worker threads inside a staged scope (index rows, ring
/// scatter, publish batches) land under the stage no matter which
/// thread does the work — which also keeps drained keys identical
/// across `RON_THREADS`. Stages are meant to be set from a single
/// orchestrating thread at a time (the builders all do).
static CURRENT_STAGE: AtomicU32 = AtomicU32::new(0);
static STAGE_NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Sets the process stage to `name`, returning the previous stage id
/// for [`restore_stage`]. Used by the [`stage`](crate::stage) guard.
pub(crate) fn swap_stage(name: &'static str) -> u32 {
    let mut names = STAGE_NAMES.lock().unwrap();
    if names.is_empty() {
        names.push("");
    }
    let id = match names.iter().position(|&s| s == name) {
        Some(i) => i as u32,
        None => {
            names.push(name);
            (names.len() - 1) as u32
        }
    };
    // ordering: Relaxed -- stages are set by the single orchestrating
    // thread; workers spawned inside the staged scope observe the store
    // through the scope-spawn happens-before edge, so no fence is
    // needed here (audited: upgrading to Release would add nothing).
    CURRENT_STAGE.swap(id, Ordering::Relaxed)
}

pub(crate) fn restore_stage(id: u32) {
    // ordering: Relaxed -- see swap_stage; restore runs on the same
    // orchestrating thread that set the stage.
    CURRENT_STAGE.store(id, Ordering::Relaxed);
}

fn stage_text(id: u32) -> &'static str {
    STAGE_NAMES
        .lock()
        .unwrap()
        .get(id as usize)
        .copied()
        .unwrap_or("")
}

/// The full key of a record: metric name, the stage active when it was
/// recorded (id 0 = none), and the label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Key {
    name: &'static str,
    stage: u32,
    label: Label,
}

impl Key {
    /// Composes the key into the flat `name[/stage][/label]` form used
    /// in drained output. String composition (not intern or stage ids)
    /// is what gets sorted, so output order is independent of the
    /// order names were first seen.
    fn compose(&self) -> String {
        let mut out = String::from(self.name);
        let stage = stage_text(self.stage);
        if !stage.is_empty() {
            out.push('/');
            out.push_str(stage);
        }
        if let Some(l) = label_text(self.label) {
            out.push('/');
            out.push_str(&l);
        }
        out
    }
}

pub(crate) struct Collector {
    pending_counters: HashMap<Key, u64>,
    pending_gauges: HashMap<Key, u64>,
    pending_hists: HashMap<Key, Pow2Histogram>,
    pub(crate) chrome: Vec<ChromeEvent>,
    pub(crate) qtraces: Vec<QueryTrace>,
    pub(crate) tid: u32,
}

impl Collector {
    fn fresh() -> Self {
        Collector {
            pending_counters: HashMap::new(),
            pending_gauges: HashMap::new(),
            pending_hists: HashMap::new(),
            chrome: Vec::new(),
            qtraces: Vec::new(),
            // Lazily replaced with a process-unique id on the first
            // Chrome event (see chrome::push_event).
            tid: u32::MAX,
        }
    }

    fn merge_into_global(&mut self) {
        if self.pending_counters.is_empty()
            && self.pending_gauges.is_empty()
            && self.pending_hists.is_empty()
            && self.chrome.is_empty()
            && self.qtraces.is_empty()
        {
            return;
        }
        let mut global = GLOBAL.lock().unwrap();
        // ron-lint: allow(map-order): drain order cannot escape -- the
        // merges below are commutative (sum, max, per-bucket add) into
        // the BTreeMap-keyed global store, which drains sorted.
        for (k, v) in self.pending_counters.drain() {
            *global.counters.entry(k).or_insert(0) += v;
        }
        // ron-lint: allow(map-order): commutative max-merge into the
        // sorted global store; visit order is unobservable.
        for (k, v) in self.pending_gauges.drain() {
            let slot = global.gauges.entry(k).or_insert(0);
            *slot = (*slot).max(v);
        }
        // ron-lint: allow(map-order): per-bucket addition commutes;
        // the global store is a BTreeMap and drains sorted.
        for (k, h) in self.pending_hists.drain() {
            global.hists.entry(k).or_default().merge(&h);
        }
        global.chrome.append(&mut self.chrome);
        global.qtraces.append(&mut self.qtraces);
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        self.merge_into_global();
    }
}

thread_local! {
    static TLS: RefCell<Collector> = RefCell::new(Collector::fresh());
}

/// Runs `f` with the calling thread's collector. Silently a no-op if
/// the TLS slot is already torn down (thread exit edge case).
pub(crate) fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    TLS.try_with(|c| f(&mut c.borrow_mut())).ok()
}

#[derive(Default)]
struct GlobalStore {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, u64>,
    hists: BTreeMap<Key, Pow2Histogram>,
    chrome: Vec<ChromeEvent>,
    qtraces: Vec<QueryTrace>,
}

static GLOBAL: Mutex<GlobalStore> = Mutex::new(GlobalStore {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    hists: BTreeMap::new(),
    chrome: Vec::new(),
    qtraces: Vec::new(),
});

/// Adds `by` to the counter `name` (attributed to the current stage).
#[inline]
pub fn count(name: &'static str, by: u64) {
    count_labeled(name, Label::None, by);
}

/// Adds `by` to the counter `name` under `label`.
#[inline]
pub fn count_labeled(name: &'static str, label: Label, by: u64) {
    if !enabled() {
        return;
    }
    // ordering: Relaxed -- the stage id was stored by the orchestrating
    // thread before this worker was spawned; spawn synchronizes.
    let stage = CURRENT_STAGE.load(Ordering::Relaxed);
    with_collector(|c| {
        let key = Key { name, stage, label };
        *c.pending_counters.entry(key).or_insert(0) += by;
    });
}

/// Raises the gauge `name` to `value` if larger (a high-water mark;
/// max is the only gauge merge that is order-independent across
/// threads, which keeps drains deterministic).
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    // ordering: Relaxed -- see count_labeled.
    let stage = CURRENT_STAGE.load(Ordering::Relaxed);
    with_collector(|c| {
        let key = Key {
            name,
            stage,
            label: Label::None,
        };
        let slot = c.pending_gauges.entry(key).or_insert(0);
        *slot = (*slot).max(value);
    });
}

/// Records `value` into the histogram `name`.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    observe_labeled(name, Label::None, value);
}

/// Records `value` into the histogram `name` under `label`.
#[inline]
pub fn observe_labeled(name: &'static str, label: Label, value: u64) {
    if !enabled() {
        return;
    }
    // ordering: Relaxed -- see count_labeled.
    let stage = CURRENT_STAGE.load(Ordering::Relaxed);
    with_collector(|c| {
        let key = Key { name, stage, label };
        c.pending_hists.entry(key).or_default().record(value);
    });
}

/// Merges the calling thread's collected records into the global store.
/// Worker threads flush automatically when they exit; the main thread
/// should call this (or [`drain`], which does) before exporting.
pub fn flush() {
    with_collector(Collector::merge_into_global);
}

/// Flushes the calling thread and takes the global store as a sorted,
/// composed-key [`Registry`] snapshot, leaving the store empty. Chrome
/// events are left in place (drained by the trace writer instead).
#[must_use]
pub fn drain() -> Registry {
    flush();
    let (counters, gauges, hists) = {
        let mut global = GLOBAL.lock().unwrap();
        (
            std::mem::take(&mut global.counters),
            std::mem::take(&mut global.gauges),
            std::mem::take(&mut global.hists),
        )
    };
    let mut reg = Registry::default();
    for (k, v) in counters {
        *reg.counters.entry(k.compose()).or_insert(0) += v;
    }
    for (k, v) in gauges {
        let slot = reg.gauges.entry(k.compose()).or_insert(0);
        *slot = (*slot).max(v);
    }
    for (k, h) in hists {
        reg.histograms.entry(k.compose()).or_default().merge(&h);
    }
    reg
}

/// Flushes the calling thread and snapshots the global store as a
/// composed-key [`Registry`] **without emptying it** — the live view
/// the time-series sampler and the `/metrics` wire read. Accumulation
/// continues; a later [`drain`] still sees everything.
#[must_use]
pub fn peek() -> Registry {
    flush();
    let global = GLOBAL.lock().unwrap();
    let mut reg = Registry::default();
    for (k, v) in &global.counters {
        *reg.counters.entry(k.compose()).or_insert(0) += v;
    }
    for (k, v) in &global.gauges {
        let slot = reg.gauges.entry(k.compose()).or_insert(0);
        *slot = (*slot).max(*v);
    }
    for (k, h) in &global.hists {
        reg.histograms.entry(k.compose()).or_default().merge(h);
    }
    reg
}

/// Buffers a flight record on the calling thread's collector.
pub(crate) fn push_query_trace(trace: QueryTrace) {
    with_collector(|c| c.qtraces.push(trace));
}

/// Flushes the calling thread and takes every buffered flight record
/// (unsorted; `drain_query_traces` orders them).
pub(crate) fn take_query_traces() -> Vec<QueryTrace> {
    flush();
    std::mem::take(&mut GLOBAL.lock().unwrap().qtraces)
}

/// Discards everything collected so far: the calling thread's pending
/// records, the global store, buffered Chrome events, flight records,
/// and the time-series ring buffer. Other threads' un-flushed records
/// are not reachable and are not cleared.
pub fn reset() {
    with_collector(|c| {
        c.pending_counters.clear();
        c.pending_gauges.clear();
        c.pending_hists.clear();
        c.chrome.clear();
        c.qtraces.clear();
    });
    {
        let mut global = GLOBAL.lock().unwrap();
        global.counters.clear();
        global.gauges.clear();
        global.hists.clear();
        global.chrome.clear();
        global.qtraces.clear();
    }
    crate::timeseries::clear();
}

/// Takes the buffered Chrome events (calling thread flushed first),
/// sorted by start time for a stable dump.
pub(crate) fn take_chrome_events() -> Vec<ChromeEvent> {
    flush();
    let mut events = std::mem::take(&mut GLOBAL.lock().unwrap().chrome);
    events.sort_by_key(|e| (e.ts_ns, e.tid, e.dur_ns));
    events
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A drained, immutable snapshot of the registry: composed
/// `name[/stage][/label]` keys mapped to their merged values, in
/// lexicographic order. This is what the exporters render.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Registry {
    /// Monotonic counters (call counts, cache hits, grams by type).
    pub counters: BTreeMap<String, u64>,
    /// High-water-mark gauges (event-queue depth).
    pub gauges: BTreeMap<String, u64>,
    /// Distributions (span durations in ns, hop counts, fan-out sizes).
    pub histograms: BTreeMap<String, Pow2Histogram>,
}

impl Registry {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The counter under the composed key `name`, or 0.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sums every counter whose composed key starts with `prefix`.
    #[must_use]
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// The histogram under the composed key `name`, if recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Pow2Histogram> {
        self.histograms.get(name)
    }

    /// Merges another drained snapshot into this one (label-ordered,
    /// commutative: counter sums, gauge max, histogram bucket sums).
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Renders the snapshot as an aligned text table, one metric per
    /// line, sections in counter/gauge/histogram order.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<44} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges (max):\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<44} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                out.push_str(&format!("  {k:<44} {}\n", h.render_summary()));
            }
        }
        if out.is_empty() {
            out.push_str("(no observations)\n");
        }
        out
    }

    /// Serializes the snapshot as a JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,buckets}}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(k)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets = h
                .buckets()
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{buckets}]}}",
                json_escape(k),
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0),
            ));
        }
        out.push_str("}}");
        out
    }
}
