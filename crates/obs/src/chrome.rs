//! Chrome-trace export: spans captured as complete (`"ph":"X"`) events
//! and dumped in the Chrome trace-event JSON array format — one event
//! per line — loadable in `chrome://tracing`, Perfetto, or Speedscope.
//!
//! Capture is opt-in (`RON_TRACE=chrome` or [`set_chrome`]) on top of
//! metric recording, because trace events cost memory per span rather
//! than per distinct name. Only the coarse [`span`](crate::span) guards
//! emit trace events; the hot-path [`start`](crate::start)/
//! [`finish`](crate::finish) timers feed histograms only.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::registry::{self, Label};

/// One complete span event, timestamps in ns since the process epoch.
#[derive(Clone, Debug)]
pub(crate) struct ChromeEvent {
    pub name: &'static str,
    pub label: Label,
    pub tid: u32,
    pub ts_ns: u64,
    pub dur_ns: u64,
}

static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

/// Pins the process epoch; called when Chrome capture is enabled so
/// timestamps are relative to enablement, not to the first span.
pub(crate) fn init_epoch() {
    let _ = EPOCH.get_or_init(Instant::now);
}

/// Nanoseconds since the process epoch.
pub(crate) fn epoch_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Buffers a finished span as a trace event on the calling thread.
pub(crate) fn push_event(name: &'static str, label: Label, ts_ns: u64, dur_ns: u64) {
    registry::with_collector(|c| {
        if c.tid == u32::MAX {
            // ordering: Relaxed -- a unique-id allocator; only the
            // atomicity of the increment matters, no other memory is
            // published with the id.
            c.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        }
        let tid = c.tid;
        c.chrome.push(ChromeEvent {
            name,
            label,
            tid,
            ts_ns,
            dur_ns,
        });
    });
}

fn render_event(e: &ChromeEvent) -> String {
    let name = match e.label {
        Label::None => e.name.to_string(),
        Label::Static(s) => format!("{}/{s}", e.name),
        l @ Label::Dyn(_) => match crate::label_name(l) {
            Some(s) => format!("{}/{s}", e.name),
            None => e.name.to_string(),
        },
    };
    format!(
        "{{\"name\":\"{}\",\"cat\":\"ron\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
        name.replace('\\', "\\\\").replace('"', "\\\""),
        e.tid,
        e.ts_ns as f64 / 1e3,
        e.dur_ns as f64 / 1e3,
    )
}

/// Serializes and drains the buffered trace events (calling thread
/// flushed first) as a Chrome trace-event JSON array, one event per
/// line. Returns the empty array `"[]"` when nothing was captured.
#[must_use]
pub fn chrome_trace_json() -> String {
    let events = registry::take_chrome_events();
    let mut out = String::from("[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&render_event(e));
    }
    out.push_str("\n]\n");
    out
}

/// Writes [`chrome_trace_json`] to `path`, returning the number of
/// events written. The write is atomic — the JSON goes to a sibling
/// temp file which is renamed over `path` only once fully flushed — so
/// a run that crashes mid-dump never leaves a truncated trace behind.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<usize> {
    let events = registry::take_chrome_events();
    let mut tmp = path.to_path_buf();
    let mut name = path
        .file_name()
        .map_or_else(|| "trace".into(), std::ffi::OsStr::to_os_string);
    name.push(".tmp");
    tmp.set_file_name(name);
    {
        let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        file.write_all(b"[")?;
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                file.write_all(b",")?;
            }
            file.write_all(b"\n")?;
            file.write_all(render_event(e).as_bytes())?;
        }
        file.write_all(b"\n]\n")?;
        file.flush()?;
        file.into_inner()
            .map_err(std::io::IntoInnerError::into_error)?
            .sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_escapes_quotes_and_backslashes_in_names() {
        let e = ChromeEvent {
            name: "walk",
            label: Label::Static("shard\"0\\a"),
            tid: 3,
            ts_ns: 1500,
            dur_ns: 2500,
        };
        let line = render_event(&e);
        assert!(line.contains("\"name\":\"walk/shard\\\"0\\\\a\""), "{line}");
        assert!(line.contains("\"tid\":3"));
        assert!(line.contains("\"ts\":1.500"));
        assert!(line.contains("\"dur\":2.500"));
        // The escaped line is itself a complete one-object JSON value.
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches("shard\\\"0\\\\a").count(), 1);
    }

    #[test]
    fn unlabeled_event_renders_the_bare_name() {
        let e = ChromeEvent {
            name: "directory.capture",
            label: Label::None,
            tid: 1,
            ts_ns: 0,
            dur_ns: 0,
        };
        assert!(render_event(&e).contains("\"name\":\"directory.capture\""));
    }
}
