//! Theorem 2.1: the basic (1+delta)-stretch routing scheme — the paper's
//! short re-derivation of Chan–Gupta–Maggs–Zhou.
//!
//! Construction (proof of Theorem 2.1, adapted to absolute distances):
//! scales `s_j = diameter / 2^j`; at each scale a net `G_j` (from the
//! nested ladder) and per-node rings `Y_uj = B_u(4 s_j / delta) ∩ G_j`.
//! The routing label of `t` encodes its zooming sequence
//! `f_tj = nearest G_j point` via *host enumerations* of the rings (local
//! indices, not global ids); routing tables hold translation functions
//! `zeta_uj` and first-hop pointers. A packet zooms towards intermediate
//! targets `f_tj` that get geometrically closer to `t` (Claim 2.4), each
//! leg following a fixed shortest path via first-hop pointers.

use ron_core::bits::{id_bits, index_bits, SizeReport};
use ron_core::TranslationFn;
use ron_graph::{Apsp, Graph};
use ron_metric::{distance_levels, BallOracle, Metric, Node, Space};
use ron_nets::NestedNets;

use crate::scheme::{RouteError, RouteTrace};

/// The routing label of a target: its zooming sequence in local indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicLabel {
    /// Global identifier of the target (footnote 9 of the paper).
    id: u32,
    /// `seq[j]` = index of `f_tj` in the host enumeration of the `j`-ring
    /// of `f_(t,j-1)` (for `j = 0`: of the shared ring `Y_(·,0)`).
    seq: Vec<u32>,
}

impl BasicLabel {
    /// The labeled target node (the global id of footnote 9).
    #[must_use]
    pub fn node(&self) -> Node {
        Node::new(self.id as usize)
    }
}

/// One ring `Y_uj` with its local data: members in enumeration order,
/// distances, and first-hop pointers.
#[derive(Clone, Debug)]
struct RingTable {
    members: Vec<Node>,
    dists: Vec<f64>,
    /// Out-link slot of the first hop towards each member (`None` when the
    /// member is the node itself, or in overlay mode).
    first_hop: Vec<Option<u32>>,
}

impl RingTable {
    fn index_of(&self, v: Node) -> Option<u32> {
        self.members.binary_search(&v).ok().map(|i| i as u32)
    }
}

/// The Theorem 2.1 routing scheme for one graph (or metric overlay).
///
/// # Example
///
/// ```
/// use ron_graph::{gen, Apsp};
/// use ron_metric::{Node, Space};
/// use ron_routing::BasicScheme;
///
/// let graph = gen::grid_graph(4, 2);
/// let apsp = Apsp::compute(&graph);
/// let space = Space::new(apsp.to_metric()?);
/// let scheme = BasicScheme::build(&space, &graph, &apsp, 0.25);
/// let trace = scheme.route(&graph, Node::new(0), Node::new(15))?;
/// assert!(trace.length <= apsp.dist(Node::new(0), Node::new(15)) * 1.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct BasicScheme {
    delta: f64,
    n: usize,
    dout: usize,
    num_scales: usize,
    k_max: usize,
    /// `rings[u][j]` = `Y_uj`.
    rings: Vec<Vec<RingTable>>,
    /// `zetas[u][j]` translates ring-`j` keys into ring-`j+1` indices.
    zetas: Vec<Vec<TranslationFn>>,
    labels: Vec<BasicLabel>,
}

impl BasicScheme {
    /// Builds the scheme for a connected weighted graph.
    ///
    /// `space` must be the shortest-path metric of `graph` (build it via
    /// [`Apsp::to_metric`]).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)` or the arities mismatch.
    #[must_use]
    pub fn build<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        graph: &Graph,
        apsp: &Apsp,
        delta: f64,
    ) -> Self {
        Self::build_inner(space, Some((graph, apsp)), delta)
    }

    /// Builds the scheme as a routing scheme *on a metric* (Section 4.1):
    /// the rings are the overlay's virtual links and no first-hop pointers
    /// exist. Route with [`BasicScheme::route_overlay`].
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)`.
    #[must_use]
    pub fn build_overlay<M: Metric, I: BallOracle>(space: &Space<M, I>, delta: f64) -> Self {
        Self::build_inner(space, None, delta)
    }

    fn build_inner<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        graph: Option<(&Graph, &Apsp)>,
        delta: f64,
    ) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let n = space.len();
        if let Some((g, _)) = graph {
            assert_eq!(g.len(), n, "graph/space arity mismatch");
        }
        let diameter = space.index().diameter_ub();
        let num_scales = distance_levels(space.index().aspect_ratio()) + 1;
        let nets = NestedNets::build(space);
        let scales: Vec<f64> = (0..num_scales)
            .map(|j| diameter / (2.0f64).powi(j as i32))
            .collect();
        let net_levels: Vec<usize> = scales.iter().map(|&s| nets.level_for_scale(s)).collect();

        // Rings Y_uj.
        let mut k_max = 1usize;
        let rings: Vec<Vec<RingTable>> = space
            .nodes()
            .map(|u| {
                (0..num_scales)
                    .map(|j| {
                        let r = 4.0 * scales[j] / delta;
                        let members = nets.net(net_levels[j]).members_in_ball(space, u, r);
                        let mut members = members;
                        members.sort_unstable();
                        k_max = k_max.max(members.len());
                        let dists = members.iter().map(|&m| space.dist(u, m)).collect();
                        let first_hop = members
                            .iter()
                            .map(|&m| graph.and_then(|(_, apsp)| apsp.first_hop_slot(u, m)))
                            .collect();
                        RingTable {
                            members,
                            dists,
                            first_hop,
                        }
                    })
                    .collect()
            })
            .collect();

        // Zooming sequences and labels.
        let zoom: Vec<Vec<Node>> = space
            .nodes()
            .map(|t| {
                (0..num_scales)
                    .map(|j| nets.net(net_levels[j]).nearest_member(space, t).1)
                    .collect()
            })
            .collect();
        let labels: Vec<BasicLabel> = space
            .nodes()
            .map(|t| {
                let seq: Vec<u32> = (0..num_scales)
                    .map(|j| {
                        let host = if j == 0 { t } else { zoom[t.index()][j - 1] };
                        rings[host.index()][j]
                            .index_of(zoom[t.index()][j])
                            .expect("Claim 2.3: f_tj is a j-ring neighbor of f_(t,j-1)")
                    })
                    .collect();
                BasicLabel {
                    id: t.index() as u32,
                    seq,
                }
            })
            .collect();

        // Translation functions.
        let zetas: Vec<Vec<TranslationFn>> = space
            .nodes()
            .map(|u| {
                (0..num_scales - 1)
                    .map(|j| {
                        let ring_j = &rings[u.index()][j];
                        let ring_next = &rings[u.index()][j + 1];
                        let mut triples = Vec::new();
                        for (fi, &f) in ring_j.members.iter().enumerate() {
                            let f_ring = &rings[f.index()][j + 1];
                            for (zi, &w) in ring_next.members.iter().enumerate() {
                                if let Some(y) = f_ring.index_of(w) {
                                    triples.push((fi as u32, y, zi as u32));
                                }
                            }
                        }
                        TranslationFn::from_triples(triples)
                    })
                    .collect()
            })
            .collect();

        let dout = graph.map_or(0, |(g, _)| g.max_out_degree());
        BasicScheme {
            delta,
            n,
            dout,
            num_scales,
            k_max,
            rings,
            zetas,
            labels,
        }
    }

    /// The construction parameter `delta`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the scheme is empty (never by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of distance scales (`ceil(log2 Delta) + 1`).
    #[must_use]
    pub fn num_scales(&self) -> usize {
        self.num_scales
    }

    /// Largest ring cardinality (the paper's `K = (16/delta)^alpha`).
    #[must_use]
    pub fn max_ring_size(&self) -> usize {
        self.k_max
    }

    /// The routing label of `t`.
    #[must_use]
    pub fn label(&self, t: Node) -> &BasicLabel {
        &self.labels[t.index()]
    }

    /// Decodes, at node `u`, the host-enumeration indices of the zooming
    /// sequence of the labeled target, as far as possible (Claim 2.2):
    /// returns `m` with `m[i] = phi_ui(f_ti)` for `i <= j_ut`.
    fn decode(&self, u: Node, label: &BasicLabel) -> Vec<u32> {
        let mut m = vec![label.seq[0]];
        for i in 0..self.num_scales - 1 {
            match self.zetas[u.index()][i].lookup(m[i], label.seq[i + 1]) {
                Some(z) => m.push(z),
                None => break,
            }
        }
        m
    }

    /// Routes a packet over the graph using only per-node tables and the
    /// packet header (target label + current intermediate scale).
    ///
    /// # Errors
    ///
    /// Returns an error if the packet loops (it cannot, unless the
    /// construction is broken; tests rely on this signal).
    pub fn route(&self, graph: &Graph, src: Node, tgt: Node) -> Result<RouteTrace, RouteError> {
        assert_eq!(graph.len(), self.n, "graph/scheme arity mismatch");
        let label = self.labels[tgt.index()].clone();
        let budget = (self.n + 2) * (self.num_scales + 2);
        let mut path = vec![src];
        let mut length = 0.0;
        let mut cur = src;
        // Header field: the current intermediate scale, None initially.
        let mut level: Option<usize> = None;
        while cur != tgt {
            if path.len() > budget {
                return Err(RouteError::HopBudgetExceeded {
                    stuck_at: cur,
                    budget,
                });
            }
            let m = self.decode(cur, &label);
            let j_ut = m.len() - 1;
            let reselect = match level {
                None => true,
                Some(j) => {
                    if j > j_ut {
                        return Err(RouteError::NoDecision {
                            at: cur,
                            reason: "Claim 2.4b violated: intermediate target undecodable",
                        });
                    }
                    // The current node is the intermediate target iff its
                    // own ring entry has no first hop.
                    self.rings[cur.index()][j].first_hop[m[j] as usize].is_none()
                }
            };
            let j = if reselect {
                j_ut
            } else {
                level.expect("non-reselect has a level")
            };
            let ring = &self.rings[cur.index()][j];
            let idx = m[j] as usize;
            let Some(slot) = ring.first_hop[idx] else {
                return Err(RouteError::NoDecision {
                    at: cur,
                    reason: "selected intermediate target is the current node",
                });
            };
            let (next, w) = graph.link(cur, slot as usize);
            level = Some(j);
            length += w;
            cur = next;
            path.push(cur);
        }
        Ok(RouteTrace { path, length })
    }

    /// Routes over the *overlay* (Section 4.1): each leg jumps directly to
    /// the intermediate target along a virtual link. Works for schemes
    /// built either way.
    ///
    /// # Errors
    ///
    /// Returns an error if the packet loops (construction broken).
    pub fn route_overlay(&self, src: Node, tgt: Node) -> Result<RouteTrace, RouteError> {
        let label = self.labels[tgt.index()].clone();
        let budget = 4 * (self.num_scales + 2);
        let mut path = vec![src];
        let mut length = 0.0;
        let mut cur = src;
        while cur != tgt {
            if path.len() > budget {
                return Err(RouteError::HopBudgetExceeded {
                    stuck_at: cur,
                    budget,
                });
            }
            let m = self.decode(cur, &label);
            let j = m.len() - 1;
            let ring = &self.rings[cur.index()][j];
            let idx = m[j] as usize;
            let next = ring.members[idx];
            if next == cur {
                return Err(RouteError::NoDecision {
                    at: cur,
                    reason: "zooming sequence stalled on the current node",
                });
            }
            length += ring.dists[idx];
            cur = next;
            path.push(cur);
        }
        Ok(RouteTrace { path, length })
    }

    /// Out-degree of the overlay network (distinct ring members), the
    /// §4.1 quantity in Table 2.
    #[must_use]
    pub fn overlay_out_degree(&self) -> usize {
        (0..self.n)
            .map(|i| {
                let mut all: Vec<Node> = self.rings[i]
                    .iter()
                    .flat_map(|r| r.members.iter().copied())
                    .collect();
                all.sort_unstable();
                all.dedup();
                all.len().saturating_sub(1) // links to self are free
            })
            .max()
            .unwrap_or(0)
    }

    /// Routing-table size of `u` in bits under the paper's encoding
    /// (dense `K x K` translation tables plus first-hop pointers).
    #[must_use]
    pub fn table_bits(&self, u: Node) -> SizeReport {
        let mut report = SizeReport::new(format!("basic table of {u}"));
        let k_bits = index_bits(self.k_max + 1); // +1: the null entry
        let mut zeta_bits = 0u64;
        let mut hop_bits = 0u64;
        for (j, ring) in self.rings[u.index()].iter().enumerate() {
            if j + 1 < self.num_scales {
                zeta_bits += ring.members.len() as u64 * self.k_max as u64 * k_bits;
            }
            if self.dout > 0 {
                hop_bits += ring.members.len() as u64 * index_bits(self.dout);
            }
        }
        report.add("translation maps", zeta_bits);
        if self.dout > 0 {
            report.add("first-hop pointers", hop_bits);
        }
        report.add("node id", id_bits(self.n));
        report
    }

    /// Largest routing table over all nodes, in bits.
    #[must_use]
    pub fn max_table_bits(&self) -> u64 {
        (0..self.n)
            .map(|i| self.table_bits(Node::new(i)).total_bits())
            .max()
            .unwrap_or(0)
    }

    /// Packet-header size in bits: the routing label (zooming sequence in
    /// local indices plus the target id) and the current scale.
    #[must_use]
    pub fn header_bits(&self) -> u64 {
        let label = id_bits(self.n) + self.num_scales as u64 * index_bits(self.k_max);
        label + index_bits(self.num_scales + 1)
    }

    /// Splits the scheme into per-node overlay state: `partition()[u]`
    /// holds node `u`'s rings (members and virtual-link lengths) and its
    /// translation functions — everything `u` consults when it forwards a
    /// packet in overlay mode, and nothing belonging to any other node.
    ///
    /// The input format of the message-passing simulator (`ron-sim`).
    /// First-hop pointers are not included: overlay legs jump straight to
    /// the decoded intermediate target (Section 4.1).
    #[must_use]
    pub fn partition(&self) -> Vec<BasicNodeState> {
        (0..self.n)
            .map(|i| BasicNodeState {
                node: Node::new(i),
                num_scales: self.num_scales,
                rings: self.rings[i]
                    .iter()
                    .map(|r| (r.members.clone(), r.dists.clone()))
                    .collect(),
                zetas: self.zetas[i].clone(),
            })
            .collect()
    }
}

/// One node's slice of a [`BasicScheme`] in overlay mode: its rings
/// `Y_uj` (members plus virtual-link lengths) and its translation
/// functions `zeta_uj`. Forwarding decisions are made from this state and
/// the packet's label alone.
#[derive(Clone, Debug)]
pub struct BasicNodeState {
    node: Node,
    num_scales: usize,
    /// `rings[j]` = (members of `Y_uj` in enumeration order, distances).
    rings: Vec<(Vec<Node>, Vec<f64>)>,
    zetas: Vec<TranslationFn>,
}

impl BasicNodeState {
    /// The node this slice belongs to.
    #[must_use]
    pub fn node(&self) -> Node {
        self.node
    }

    /// Ring members plus translation triples resident at this node.
    #[must_use]
    pub fn entries(&self) -> usize {
        let members: usize = self.rings.iter().map(|(m, _)| m.len()).sum();
        let triples: usize = self.zetas.iter().map(TranslationFn::len).sum();
        members + triples
    }

    /// The overlay hop budget of [`BasicScheme::route_overlay`], local to
    /// every node (it depends only on the scale count).
    #[must_use]
    pub fn hop_budget(&self) -> usize {
        4 * (self.num_scales + 2)
    }

    /// Decodes, at this node, the host-enumeration indices of the labeled
    /// target's zooming sequence, as far as translatable (Claim 2.2) —
    /// the same walk as the in-process scheme's decoder.
    fn decode(&self, label: &BasicLabel) -> Vec<u32> {
        let mut m = vec![label.seq[0]];
        for i in 0..self.num_scales - 1 {
            match self.zetas[i].lookup(m[i], label.seq[i + 1]) {
                Some(z) => m.push(z),
                None => break,
            }
        }
        m
    }

    /// The next overlay hop for a packet labeled `label`, with the
    /// virtual-link length, or `None` when the zooming sequence stalls on
    /// this node (broken construction; mirrors the in-process
    /// `NoDecision`). Identical decision to [`BasicScheme::route_overlay`]
    /// at the same node.
    #[must_use]
    pub fn next_overlay_hop(&self, label: &BasicLabel) -> Option<(Node, f64)> {
        let m = self.decode(label);
        let j = m.len() - 1;
        let (members, dists) = &self.rings[j];
        let idx = m[j] as usize;
        let next = members[idx];
        if next == self.node {
            None
        } else {
            Some((next, dists[idx]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::StretchStats;
    use ron_graph::gen;
    use ron_metric::LineMetric;

    fn grid_setup(delta: f64) -> (Graph, Apsp, Space<ron_metric::ExplicitMetric>, BasicScheme) {
        let graph = gen::grid_graph(5, 2);
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let scheme = BasicScheme::build(&space, &graph, &apsp, delta);
        (graph, apsp, space, scheme)
    }

    #[test]
    fn delivers_all_pairs_on_grid() {
        let (graph, apsp, _, scheme) = grid_setup(0.25);
        let stats =
            StretchStats::over_all_pairs(&graph, &apsp, |u, v| scheme.route(&graph, u, v)).unwrap();
        assert_eq!(stats.pairs, 25 * 24);
        assert!(
            stats.max_stretch <= 1.0 + 8.0 * 0.25,
            "stretch {} too large",
            stats.max_stretch
        );
    }

    #[test]
    fn smaller_delta_gives_smaller_stretch() {
        let (graph, apsp, _, loose) = grid_setup(0.5);
        let scheme_tight = {
            let space = Space::new(apsp.to_metric().unwrap());
            BasicScheme::build(&space, &graph, &apsp, 0.05)
        };
        let stats = |s: &BasicScheme| {
            StretchStats::over_all_pairs(&graph, &apsp, |u, v| s.route(&graph, u, v)).unwrap()
        };
        let tight_stats = stats(&scheme_tight);
        let loose_stats = stats(&loose);
        assert!(tight_stats.max_stretch <= loose_stats.max_stretch + 1e-12);
        assert!(tight_stats.max_stretch <= 1.4);
    }

    #[test]
    fn works_on_knn_graphs() {
        let (graph, points) = gen::knn_geometric(40, 2, 3, 7);
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let scheme = BasicScheme::build(&space, &graph, &apsp, 0.25);
        let stats =
            StretchStats::over_all_pairs(&graph, &apsp, |u, v| scheme.route(&graph, u, v)).unwrap();
        assert!(
            stats.max_stretch <= 3.0,
            "stretch {} too large",
            stats.max_stretch
        );
        drop(points);
    }

    #[test]
    fn works_on_exponential_path() {
        // The super-polynomial aspect-ratio regime: many scales, few nodes.
        let graph = gen::exponential_path(16);
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let scheme = BasicScheme::build(&space, &graph, &apsp, 0.25);
        assert!(scheme.num_scales() >= 15);
        let stats =
            StretchStats::over_all_pairs(&graph, &apsp, |u, v| scheme.route(&graph, u, v)).unwrap();
        assert!(
            (stats.max_stretch - 1.0).abs() < 1e-9,
            "paths are unique on a path graph"
        );
    }

    #[test]
    fn overlay_mode_routes_with_low_stretch() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let scheme = BasicScheme::build_overlay(&space, 0.25);
        let mut worst = 1.0f64;
        for u in space.nodes() {
            for v in space.nodes() {
                if u == v {
                    continue;
                }
                let trace = scheme.route_overlay(u, v).unwrap();
                worst = worst.max(trace.stretch(space.dist(u, v)));
                assert_eq!(*trace.path.last().unwrap(), v);
            }
        }
        assert!(worst <= 1.0 + 8.0 * 0.25, "overlay stretch {worst}");
    }

    #[test]
    fn overlay_hops_are_logarithmic_in_aspect() {
        let space = Space::new(LineMetric::uniform(64).unwrap());
        let scheme = BasicScheme::build_overlay(&space, 0.25);
        for u in space.nodes() {
            for v in space.nodes() {
                if u == v {
                    continue;
                }
                let trace = scheme.route_overlay(u, v).unwrap();
                assert!(trace.hops() <= scheme.num_scales() + 2);
            }
        }
    }

    #[test]
    fn storage_accounting_shapes() {
        let (_, _, _, scheme) = grid_setup(0.25);
        assert!(scheme.max_table_bits() > 0);
        assert!(scheme.header_bits() > 0);
        assert!(scheme.overlay_out_degree() > 0);
        // Header is tiny compared to tables.
        assert!(scheme.header_bits() < scheme.max_table_bits());
        let report = scheme.table_bits(Node::new(0));
        assert!(report
            .parts()
            .iter()
            .any(|(name, _)| name == "translation maps"));
    }

    #[test]
    fn header_grows_with_scales_not_n() {
        let small_graph = gen::grid_graph(4, 2);
        let apsp_s = Apsp::compute(&small_graph);
        let space_s = Space::new(apsp_s.to_metric().unwrap());
        let s_small = BasicScheme::build(&space_s, &small_graph, &apsp_s, 0.25);

        let big_graph = gen::grid_graph(6, 2);
        let apsp_b = Apsp::compute(&big_graph);
        let space_b = Space::new(apsp_b.to_metric().unwrap());
        let s_big = BasicScheme::build(&space_b, &big_graph, &apsp_b, 0.25);

        // 16 -> 36 nodes but aspect ratio only 6 -> 10: header grows by a
        // couple of scale slots, far from linearly in n.
        assert!(s_big.header_bits() <= s_small.header_bits() * 2);
    }

    #[test]
    fn partitioned_state_reproduces_overlay_routes() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let scheme = BasicScheme::build_overlay(&space, 0.25);
        let states = scheme.partition();
        assert_eq!(states.len(), 32);
        for u in space.nodes() {
            for v in space.nodes() {
                if u == v {
                    continue;
                }
                let trace = scheme.route_overlay(u, v).unwrap();
                // Walk the same packet through the per-node slices.
                let label = scheme.label(v).clone();
                let mut cur = u;
                let mut path = vec![u];
                let mut length = 0.0f64;
                while cur != v {
                    let (next, d) = states[cur.index()]
                        .next_overlay_hop(&label)
                        .expect("static construction never stalls");
                    length += d;
                    cur = next;
                    path.push(cur);
                    assert!(path.len() <= states[u.index()].hop_budget() + 1);
                }
                assert_eq!(path, trace.path, "{u} -> {v}");
                assert!((length - trace.length).abs() < 1e-12);
            }
        }
        assert_eq!(states[0].node(), Node::new(0));
        assert!(states[0].entries() > 0);
        assert_eq!(scheme.label(Node::new(7)).node(), Node::new(7));
    }

    #[test]
    fn label_sequences_have_scale_length() {
        let (_, _, _, scheme) = grid_setup(0.25);
        for i in 0..scheme.len() {
            assert_eq!(scheme.label(Node::new(i)).seq.len(), scheme.num_scales());
        }
    }
}
