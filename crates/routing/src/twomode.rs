//! Theorem 4.2 / B.1: the two-mode (1+delta)-stretch routing scheme for
//! graphs with large aspect ratio.
//!
//! **Mode M1** elaborates Theorem 2.1's zooming with the label machinery
//! of Theorem 3.4: the routing label of a target `t` carries its zooming
//! sequence and its *friends* — the nearest packing representative `x_ti`
//! per level and the nearest net points `y_tj` at the scales
//! `J_ti = [log(delta r_ti / 4), log(6 r_ti)]` — all addressed by virtual
//! indices, never global ids. A node picks a *good* friend as the next
//! intermediate target (Claim B.2(b)): at the bracket level `i` with
//! `r_ui < 2 d <= r_(u,i-1)`, the friend `x_ti` (if `r_ti <= delta d / 6`)
//! or `y_t,floor(log delta d)` lies within `delta * d` of `t`.
//!
//! **Mode M2** takes over exactly when M1 runs out of resolution — by
//! Lemma B.5 that happens only when `u`'s radius ladder has a gap:
//! `6 r_ui / delta < (4/3) d <= r_(u,i-1)`. Then the packing ball `B` that
//! Lemma A.1 plants within `B_u(6 r_ui)` is dense (`>= n / 2^(i + O(alpha))`
//! nodes), and its members collectively store routes to every node of
//! `B' = B_(rep,i-1) ∋ t`: the packet walks to the ball's representative,
//! descends an [`IdRangeTree`] keyed by `ID(t)` to the member `v_t`
//! responsible for `t`, and follows `v_t`'s stored source route.
//!
//! Deviations from the paper (see DESIGN.md §3): (i) the conditions
//! (c4)/(c5) are applied in the functional form above, reconstructed from
//! Claim B.2(b) and Lemma B.5 (the paper's own statement of (c4) is
//! internally inconsistent with B.2(b) as printed); (ii) the M2 interlude
//! addresses the chosen packing ball by `(level, ball-index)` in the
//! header — `O(log n)` bits, within the header budget that already carries
//! `ID(t)`; (iii) tree hops are source-routed (each member stores
//! slot-paths to its at most `2^O(alpha)` children), and a `NotHere`
//! answer from the range tree escalates to the coarser level, whose
//! level-1 cluster targets all of `V` — delivery is unconditional, and the
//! escalation is counted in [`TwoModeStats`].

use std::collections::BTreeMap;

use ron_core::bits::{id_bits, index_bits, SizeReport};
use ron_core::{Enumeration, TranslationFn};
use ron_graph::{Apsp, Graph, IdRangeTree};
use ron_labels::{DistanceCodec, NeighborSystem};
use ron_metric::{Metric, Node, Space};

use crate::scheme::{RouteError, RouteTrace};

/// Fan-out cap of the cluster trees: keeps per-member child storage at
/// `2^O(alpha)` while the nearest-predecessor attachment keeps tree paths
/// short.
const TREE_FANOUT: usize = 8;

/// Counters describing how a batch of routed packets used the two modes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TwoModeStats {
    /// Intermediate-target selections in mode M1.
    pub m1_selections: usize,
    /// Switches into mode M2.
    pub m2_switches: usize,
    /// Range-tree escalations to a coarser cluster level.
    pub m2_escalations: usize,
}

/// The per-target routing label (M1 friends plus `ID(t)` for M2).
#[derive(Clone, Debug)]
struct TwoLabel {
    id: u32,
    /// `f_idx[0]`: host (block) index of `f_t0`; `f_idx[i]`: virtual index
    /// of `f_ti` in `psi` of `f_(t,i-1)`.
    f_idx: Vec<u32>,
    /// Per level: index of `x_ti` (block index at level 0, virtual above).
    x_idx: Vec<Option<u32>>,
    /// Quantized `d(t, x_ti)`.
    x_dist: Vec<f64>,
    /// Per level: `(net scale j, index, quantized distance)` of `y_tj`,
    /// for `j` in `J_ti`.
    y: Vec<Vec<(u16, u32, f64)>>,
    /// Quantized radii `r_ti`.
    r_t: Vec<f64>,
}

/// The per-node routing table.
#[derive(Clone, Debug)]
struct NodeTable {
    phi: Enumeration,
    dists: Vec<f64>,
    hops: Vec<Option<u32>>,
    zetas: Vec<TranslationFn>,
    r: Vec<f64>,
    /// Witness packing-ball index per level.
    witness: Vec<u32>,
    /// Per level: sorted `(packing ball index, host index of its rep)` for
    /// this node's X-neighbors (resolves M2 ball handles locally).
    x_lookup: Vec<Vec<(u32, u32)>>,
}

/// One M2 cluster: the members of a packing ball, their range tree over
/// the targets of the enclosing ball, child routes and stored routes.
#[derive(Clone, Debug)]
struct Cluster {
    tree: IdRangeTree,
    /// Per member (tree index): `(child, slot route to it)`.
    child_routes: Vec<Vec<(Node, Vec<u32>)>>,
    /// Target id -> slot route from its responsible member.
    routes: BTreeMap<u32, Vec<u32>>,
}

/// The packet header's mode state.
#[derive(Clone, Debug)]
enum Phase {
    /// Zooming via intermediate friends; `None` = pick a new one.
    M1(Option<M1Target>),
    /// Walking to the root of cluster `(level, ball)`.
    ToRoot { level: usize, ball: u32 },
    /// Descending the cluster tree, possibly mid child-route.
    Tree {
        level: usize,
        ball: u32,
        pending: Option<(Vec<u32>, usize)>,
    },
    /// Following the stored source route.
    Source { route: Vec<u32>, pos: usize },
}

#[derive(Clone, Debug)]
struct M1Target {
    /// Friend level `i`.
    i: usize,
    /// `None` = the `x_ti` friend; `Some(j)` = the `y_tj` friend.
    j: Option<u16>,
    /// Quantized `d_uw` at selection time (the paper's `Dest`).
    dest: f64,
}

/// The Theorem B.1 routing scheme.
///
/// # Example
///
/// ```
/// use ron_graph::{gen, Apsp};
/// use ron_metric::{Node, Space};
/// use ron_routing::TwoModeScheme;
///
/// let graph = gen::exponential_path(12);
/// let apsp = Apsp::compute(&graph);
/// let space = Space::new(apsp.to_metric()?);
/// let scheme = TwoModeScheme::build(&space, &graph, &apsp, 0.25);
/// let mut stats = Default::default();
/// let trace = scheme.route(&graph, Node::new(0), Node::new(11), &mut stats)?;
/// assert_eq!(*trace.path.last().unwrap(), Node::new(11));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct TwoModeScheme {
    delta: f64,
    n: usize,
    dout: usize,
    levels: usize,
    codec: DistanceCodec,
    virt_bits: u64,
    ladder_levels: usize,
    tables: Vec<NodeTable>,
    labels: Vec<TwoLabel>,
    /// `clusters[i]` — one per ball of `packing(i)`, for `i >= 1`.
    clusters: Vec<Vec<Cluster>>,
}

impl TwoModeScheme {
    /// Builds the scheme; `space` must be the shortest-path metric of
    /// `graph`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1/2]` or arities mismatch.
    #[must_use]
    pub fn build<M: Metric>(space: &Space<M>, graph: &Graph, apsp: &Apsp, delta: f64) -> Self {
        assert!(delta > 0.0 && delta <= 0.5, "delta must be in (0, 1/2]");
        assert_eq!(graph.len(), space.len(), "graph/space arity mismatch");
        let n = space.len();
        let system = NeighborSystem::build(space, delta);
        let levels = system.levels();
        let nets = system.nets();
        let codec = DistanceCodec::for_delta(delta);
        let diameter = space.index().diameter();

        // Zoom chains (level 0 canonicalized to the diameter scale).
        let zoom: Vec<Vec<Node>> = space
            .nodes()
            .map(|u| {
                (0..levels)
                    .map(|i| {
                        let scale = if i == 0 {
                            diameter / 4.0
                        } else {
                            system.radius(u, i) / 4.0
                        };
                        let level = nets.level_for_scale(scale);
                        nets.net(level).nearest_member(space, u).1
                    })
                    .collect()
            })
            .collect();

        // Friends: x_ti (nearest packing rep) and y_tj for j in J_ti.
        let x_friend: Vec<Vec<Option<Node>>> = space
            .nodes()
            .map(|t| (0..levels).map(|i| system.nearest_x(space, t, i)).collect())
            .collect();
        let j_range = |t: Node, i: usize| -> (usize, usize) {
            let r_ti = system.radius(t, i);
            let lo = nets.level_for_scale(delta * r_ti / 4.0);
            let hi = (nets.level_for_scale(6.0 * r_ti) + 1).min(nets.levels() - 1);
            (lo, hi.max(lo))
        };
        let y_friend = |t: Node, j: usize| -> Node { nets.net(j).nearest_member(space, t).1 };

        // Virtual neighbor sets: reuse the Z-construction of Theorem 3.4
        // (Z_wj over all scales), then force friend memberships.
        let min_dist = space.index().min_distance();
        let mut t_sets: Vec<std::collections::BTreeSet<Node>> = space
            .nodes()
            .map(|w| {
                let mut set = std::collections::BTreeSet::new();
                for j in 1..=(nets.levels() - 1 + 3) {
                    let radius = min_dist * (2.0f64).powi(j as i32);
                    let level = nets.level_for_scale(radius * delta / 64.0);
                    set.extend(nets.net(level).members_in_ball(space, w, radius));
                }
                for i in 0..levels {
                    for h in system.x_neighbors(w, i) {
                        set.insert(h);
                    }
                }
                set
            })
            .collect();
        for t in space.nodes() {
            for i in 1..levels {
                let host = zoom[t.index()][i - 1];
                let set = &mut t_sets[host.index()];
                set.insert(zoom[t.index()][i]);
                if let Some(x) = x_friend[t.index()][i] {
                    set.insert(x);
                }
                let (lo, hi) = j_range(t, i);
                for j in lo..=hi {
                    set.insert(y_friend(t, j));
                }
            }
        }
        let psi: Vec<Enumeration> = t_sets
            .iter()
            .map(|s| Enumeration::new(s.iter().copied().collect()))
            .collect();
        let virt_bits = psi.iter().map(Enumeration::index_bits).max().unwrap_or(0);

        // Host enumerations: canonical block first.
        let block = system.level0_block();
        let block_set: std::collections::BTreeSet<Node> = block.iter().copied().collect();
        let phi: Vec<Enumeration> = space
            .nodes()
            .map(|u| {
                let mut order = block.clone();
                order.extend(
                    system
                        .neighbors_of(u)
                        .into_iter()
                        .filter(|v| !block_set.contains(v)),
                );
                Enumeration::from_ordered(order)
            })
            .collect();

        // Labels.
        let labels: Vec<TwoLabel> = space
            .nodes()
            .map(|t| {
                let q = |d: f64| codec.decode(codec.encode(d));
                let mut f_idx = Vec::with_capacity(levels);
                let mut x_idx = Vec::with_capacity(levels);
                let mut x_dist = Vec::with_capacity(levels);
                let mut y = Vec::with_capacity(levels);
                let mut r_t = Vec::with_capacity(levels);
                for i in 0..levels {
                    r_t.push(q(system.radius(t, i)));
                    let xf = x_friend[t.index()][i];
                    x_dist.push(xf.map_or(f64::INFINITY, |x| q(space.dist(t, x))));
                    let (lo, hi) = j_range(t, i);
                    if i == 0 {
                        let p = &phi[t.index()];
                        f_idx.push(p.index_of(zoom[t.index()][0]).expect("f_t0 in block"));
                        x_idx.push(xf.and_then(|x| p.index_of(x)));
                        y.push(
                            (lo..=hi)
                                .map(|j| {
                                    let w = y_friend(t, j);
                                    (
                                        j as u16,
                                        p.index_of(w).expect("y_t0j in block"),
                                        q(space.dist(t, w)),
                                    )
                                })
                                .collect(),
                        );
                    } else {
                        let host = zoom[t.index()][i - 1];
                        let p = &psi[host.index()];
                        f_idx.push(
                            p.index_of(zoom[t.index()][i])
                                .expect("zoom membership forced"),
                        );
                        x_idx.push(xf.and_then(|x| p.index_of(x)));
                        y.push(
                            (lo..=hi)
                                .map(|j| {
                                    let w = y_friend(t, j);
                                    (
                                        j as u16,
                                        p.index_of(w).expect("friend membership forced"),
                                        q(space.dist(t, w)),
                                    )
                                })
                                .collect(),
                        );
                    }
                }
                TwoLabel {
                    id: t.index() as u32,
                    f_idx,
                    x_idx,
                    x_dist,
                    y,
                    r_t,
                }
            })
            .collect();

        // Tables.
        let tables: Vec<NodeTable> = space
            .nodes()
            .map(|u| {
                let p = &phi[u.index()];
                let dists: Vec<f64> = p.nodes().iter().map(|&v| space.dist(u, v)).collect();
                let hops: Vec<Option<u32>> = p
                    .nodes()
                    .iter()
                    .map(|&v| apsp.first_hop_slot(u, v))
                    .collect();
                let zetas: Vec<TranslationFn> = (0..levels.saturating_sub(1))
                    .map(|i| {
                        let mut level_i: Vec<Node> = system
                            .x_neighbors(u, i)
                            .chain(system.y_neighbors(u, i).iter().copied())
                            .collect();
                        level_i.sort_unstable();
                        level_i.dedup();
                        let mut level_next: Vec<Node> = system
                            .x_neighbors(u, i + 1)
                            .chain(system.y_neighbors(u, i + 1).iter().copied())
                            .collect();
                        level_next.sort_unstable();
                        level_next.dedup();
                        let mut triples = Vec::new();
                        for &v in &level_i {
                            let x = p.index_of(v).expect("level set in host enum");
                            for &w in &level_next {
                                if let Some(y) = psi[v.index()].index_of(w) {
                                    triples.push((
                                        x,
                                        y,
                                        p.index_of(w).expect("level set in host enum"),
                                    ));
                                }
                            }
                        }
                        TranslationFn::from_triples(triples)
                    })
                    .collect();
                let r: Vec<f64> = (0..levels).map(|i| system.radius(u, i)).collect();
                let witness: Vec<u32> = (0..levels)
                    .map(|i| system.packing(i).witness_index(u) as u32)
                    .collect();
                let x_lookup: Vec<Vec<(u32, u32)>> = (0..levels)
                    .map(|i| {
                        let mut v: Vec<(u32, u32)> = system
                            .x_ball_indices(u, i)
                            .iter()
                            .map(|&b| {
                                let rep = system.packing(i).balls()[b as usize].rep;
                                (b, p.index_of(rep).expect("X rep in host enum"))
                            })
                            .collect();
                        v.sort_unstable();
                        v
                    })
                    .collect();
                NodeTable {
                    phi: p.clone(),
                    dists,
                    hops,
                    zetas,
                    r,
                    witness,
                    x_lookup,
                }
            })
            .collect();

        // Clusters for levels >= 1.
        let clusters: Vec<Vec<Cluster>> = (0..levels)
            .map(|i| {
                if i == 0 {
                    return Vec::new();
                }
                system
                    .packing(i)
                    .balls()
                    .iter()
                    .map(|ball| {
                        let rep = ball.rep;
                        // Members ordered by distance from the rep.
                        let mut members: Vec<Node> = ball.members().to_vec();
                        members.sort_by(|&a, &b| {
                            space
                                .dist(rep, a)
                                .total_cmp(&space.dist(rep, b))
                                .then(a.cmp(&b))
                        });
                        // Nearest-predecessor tree with a fan-out cap.
                        let mut parent: Vec<Option<usize>> = vec![None; members.len()];
                        let mut child_count = vec![0usize; members.len()];
                        for k in 1..members.len() {
                            let mut best: Option<(f64, usize)> = None;
                            for pk in 0..k {
                                if child_count[pk] >= TREE_FANOUT {
                                    continue;
                                }
                                let d = space.dist(members[pk], members[k]);
                                if best.is_none_or(|(bd, _)| d < bd) {
                                    best = Some((d, pk));
                                }
                            }
                            let (_, pk) = best.unwrap_or((0.0, 0));
                            parent[k] = Some(pk);
                            child_count[pk] += 1;
                        }
                        let targets: Vec<u32> = space
                            .index()
                            .ball(rep, system.radius(rep, i - 1))
                            .iter()
                            .map(|&(_, v)| v.index() as u32)
                            .collect();
                        let tree = IdRangeTree::new(members.clone(), parent, targets);
                        let child_routes: Vec<Vec<(Node, Vec<u32>)>> = (0..members.len())
                            .map(|k| {
                                tree.children_of(k)
                                    .map(|c| (c, slot_route(graph, apsp, members[k], c)))
                                    .collect()
                            })
                            .collect();
                        let mut routes = BTreeMap::new();
                        for &id in tree.targets() {
                            let owner = tree.responsible(id).expect("target assigned");
                            routes
                                .insert(id, slot_route(graph, apsp, owner, Node::new(id as usize)));
                        }
                        Cluster {
                            tree,
                            child_routes,
                            routes,
                        }
                    })
                    .collect()
            })
            .collect();

        TwoModeScheme {
            delta,
            n,
            dout: graph.max_out_degree(),
            levels,
            codec,
            virt_bits,
            ladder_levels: nets.levels(),
            tables,
            labels,
            clusters,
        }
    }

    /// The construction parameter `delta`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the scheme is empty (never by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Decodes, at node `u`, the host indices of the target's zooming
    /// chain, as far as `u`'s rings allow.
    fn decode_chain(&self, u: Node, label: &TwoLabel) -> Vec<u32> {
        let table = &self.tables[u.index()];
        let mut m = vec![label.f_idx[0]];
        for i in 1..self.levels {
            match table.zetas[i - 1].lookup(m[i - 1], label.f_idx[i]) {
                Some(z) => m.push(z),
                None => break,
            }
        }
        m
    }

    /// Estimates `d_ut` from `u`'s table and `t`'s label: the best
    /// `d_uw + d_wt` over identified common beacons (block friends, chain
    /// points, and `zeta`-translated friends).
    fn estimate(&self, u: Node, label: &TwoLabel) -> f64 {
        let table = &self.tables[u.index()];
        let mut best = f64::INFINITY;
        let consider = |idx: u32, d_wt: f64, best: &mut f64| {
            let d_uw = table.dists[idx as usize];
            *best = best.min(d_uw + d_wt);
        };
        // Level-0 friends are block members: indices coincide.
        if let Some(x0) = label.x_idx[0] {
            consider(x0, label.x_dist[0], &mut best);
        }
        for &(_, idx, d) in &label.y[0] {
            consider(idx, d, &mut best);
        }
        // Chain points (common neighbors while decodable, Claim 3.6) and
        // translated friends at each level.
        let m = self.decode_chain(u, label);
        for (i, &fi) in m.iter().enumerate() {
            // d(t, f_ti) <= r_ti / 4 by construction of the zoom chain.
            let zoom_dist = label.r_t[i] / 4.0;
            consider(fi, zoom_dist, &mut best);
            if i + 1 < self.levels && i < m.len() {
                let zeta = &self.tables[u.index()].zetas[i];
                if let Some(xi) = label.x_idx[i + 1] {
                    if let Some(z) = zeta.lookup(fi, xi) {
                        consider(z, label.x_dist[i + 1], &mut best);
                    }
                }
                for &(_, yi, d) in &label.y[i + 1] {
                    if let Some(z) = zeta.lookup(fi, yi) {
                        consider(z, d, &mut best);
                    }
                }
            }
        }
        best
    }

    /// Picks a good intermediate friend at `u` per Claim B.2(b); returns
    /// `(host index of w, M1Target)` or `None` (switch to M2).
    fn select_good(&self, u: Node, label: &TwoLabel) -> Option<(u32, M1Target)> {
        let table = &self.tables[u.index()];
        let est = self.estimate(u, label);
        if !est.is_finite() || est <= 0.0 {
            return None;
        }
        // Bracket level: max i with r_(u,i-1) >= 2 * est (r_(u,-1) = inf).
        let mut i = 0usize;
        while i + 1 < self.levels && table.r[i] >= 2.0 * est {
            i += 1;
        }
        // Gap test (Lemma B.5 direction): M1 works iff r_ui is not tiny
        // relative to delta * d. The estimate overshoots by (1+2 delta),
        // so compare against the deflated value.
        let d_lo = est / (1.0 + 2.0 * self.delta);
        if table.r[i] < self.delta * d_lo / 6.0 {
            return None;
        }
        let m = self.decode_chain(u, label);
        if m.len() < i.max(1) {
            return None; // cannot identify level-i friends here
        }
        // Friend choice per Claim B.2(b).
        let r_ti = label.r_t[i];
        let (j, idx_opt, d_wt) = if r_ti <= self.delta * est / 6.0 {
            (None, label.x_idx[i], label.x_dist[i])
        } else {
            let want = self.level_for_scale_est(self.delta * d_lo);
            let found = label.y[i]
                .iter()
                .filter(|&&(j, _, _)| (j as usize) <= want)
                .max_by_key(|&&(j, _, _)| j)
                .or_else(|| label.y[i].first());
            match found {
                Some(&(j, idx, d)) => (Some(j), Some(idx), d),
                None => (None, None, f64::INFINITY),
            }
        };
        let idx = idx_opt?;
        // Identify w in u's host enumeration.
        let host = if i == 0 {
            idx // block index
        } else {
            table.zetas[i - 1].lookup(m[i - 1], idx)?
        };
        let dest = table.dists[host as usize];
        if dest <= 0.0 {
            return None; // w == u: no progress possible in M1
        }
        // Progress check: the friend must actually be closer to t.
        if d_wt > 0.75 * est {
            return None;
        }
        Some((host, M1Target { i, j, dest }))
    }

    /// Scale exponent for a distance (mirrors `NestedNets::level_for_scale`
    /// using only table-free constants).
    fn level_for_scale_est(&self, scale: f64) -> usize {
        if !(scale.is_finite() && scale > 0.0) {
            return 0;
        }
        let j = scale.log2().floor();
        if j < 0.0 {
            0
        } else {
            (j as usize).min(self.ladder_levels - 1)
        }
    }

    /// Re-identifies the current M1 intermediate target at node `v`.
    fn identify_target(&self, v: Node, label: &TwoLabel, t: &M1Target) -> Option<u32> {
        let table = &self.tables[v.index()];
        let idx = match t.j {
            None => label.x_idx[t.i]?,
            Some(j) => label.y[t.i]
                .iter()
                .find(|&&(jj, _, _)| jj == j)
                .map(|&(_, idx, _)| idx)?,
        };
        if t.i == 0 {
            Some(idx)
        } else {
            let m = self.decode_chain(v, label);
            if m.len() < t.i {
                return None;
            }
            table.zetas[t.i - 1].lookup(m[t.i - 1], idx)
        }
    }

    /// Chooses the M2 entry level at `u`: the bracket level of the
    /// estimate, clamped to `>= 1`.
    fn m2_level(&self, u: Node, label: &TwoLabel) -> usize {
        let table = &self.tables[u.index()];
        let est = self.estimate(u, label).max(table.r[self.levels - 1]);
        let mut i = 0usize;
        while i + 1 < self.levels && table.r[i] >= 2.0 * est {
            i += 1;
        }
        i.max(1)
    }

    /// Routes a packet, accumulating mode statistics into `stats`.
    ///
    /// # Errors
    ///
    /// Returns an error if the packet loops or an invariant breaks.
    pub fn route(
        &self,
        graph: &Graph,
        src: Node,
        tgt: Node,
        stats: &mut TwoModeStats,
    ) -> Result<RouteTrace, RouteError> {
        assert_eq!(graph.len(), self.n, "graph/scheme arity mismatch");
        let label = self.labels[tgt.index()].clone();
        let budget = (self.n + 4) * (self.levels + 6);
        let mut path = vec![src];
        let mut length = 0.0;
        let mut cur = src;
        let mut phase = Phase::M1(None);
        let delta_p = self.delta / (1.0 - self.delta);
        while cur != tgt {
            if path.len() > budget {
                return Err(RouteError::HopBudgetExceeded {
                    stuck_at: cur,
                    budget,
                });
            }
            let table = &self.tables[cur.index()];
            // Every arm below either assigns a slot or `continue`s after a
            // phase change; the initial value is never read.
            #[allow(unused_assignments)]
            let mut forward_slot: Option<u32> = None;
            match &mut phase {
                Phase::M1(intermediate) => {
                    let action = match intermediate {
                        Some(t) => self.identify_target(cur, &label, t).map(|h| (h, t.clone())),
                        None => self.select_good(cur, &label),
                    };
                    match action {
                        Some((host, t)) => {
                            let d_vw = table.dists[host as usize];
                            if d_vw == 0.0 {
                                // Arrived at the intermediate target:
                                // reselect on the next loop turn.
                                *intermediate = None;
                                continue;
                            }
                            let slot = table.hops[host as usize].ok_or(RouteError::NoDecision {
                                at: cur,
                                reason: "missing first-hop pointer to intermediate target",
                            })?;
                            let (_, w_edge) = graph.link(cur, slot as usize);
                            let was_new = intermediate.is_none();
                            if was_new {
                                stats.m1_selections += 1;
                            }
                            // Handoff rule: clear the intermediate id when
                            // the leg is nearly complete.
                            if d_vw - w_edge <= 2.0 * delta_p * t.dest {
                                *intermediate = None;
                            } else {
                                *intermediate = Some(t);
                            }
                            forward_slot = Some(slot);
                        }
                        None => {
                            // Mode switch.
                            stats.m2_switches += 1;
                            let level = self.m2_level(cur, &label);
                            let ball = table.witness[level];
                            phase = Phase::ToRoot { level, ball };
                            continue;
                        }
                    }
                }
                Phase::ToRoot { level, ball } => {
                    let lv = *level;
                    let bl = *ball;
                    let cluster = &self.clusters[lv][bl as usize];
                    if cluster.tree.member_index(cur).is_some_and(|k| k == 0) {
                        phase = Phase::Tree {
                            level: lv,
                            ball: bl,
                            pending: None,
                        };
                        continue;
                    }
                    let lookup = &table.x_lookup[lv];
                    let host = lookup
                        .binary_search_by_key(&bl, |&(b, _)| b)
                        .ok()
                        .map(|k| lookup[k].1)
                        .ok_or(RouteError::NoDecision {
                            at: cur,
                            reason: "M2 ball handle not resolvable (X-transfer broken)",
                        })?;
                    let slot = table.hops[host as usize].ok_or(RouteError::NoDecision {
                        at: cur,
                        reason: "missing first-hop pointer to cluster root",
                    })?;
                    forward_slot = Some(slot);
                }
                Phase::Tree {
                    level,
                    ball,
                    pending,
                } => {
                    let lv = *level;
                    let bl = *ball;
                    if let Some((route, pos)) = pending {
                        if *pos < route.len() {
                            let slot = route[*pos];
                            *pos += 1;
                            forward_slot = Some(slot);
                        } else {
                            *pending = None;
                            continue;
                        }
                    } else {
                        let cluster = &self.clusters[lv][bl as usize];
                        let k = cluster
                            .tree
                            .member_index(cur)
                            .ok_or(RouteError::NoDecision {
                                at: cur,
                                reason: "tree phase at a non-member node",
                            })?;
                        match cluster.tree.route_step(k, label.id) {
                            ron_graph::RangeStep::Responsible => {
                                let route =
                                    cluster.routes.get(&label.id).cloned().unwrap_or_default();
                                phase = Phase::Source { route, pos: 0 };
                                continue;
                            }
                            ron_graph::RangeStep::Descend(child) => {
                                let (_, route) = cluster.child_routes[k]
                                    .iter()
                                    .find(|(c, _)| *c == child)
                                    .cloned()
                                    .ok_or(RouteError::NoDecision {
                                        at: cur,
                                        reason: "missing child route",
                                    })?;
                                phase = Phase::Tree {
                                    level: lv,
                                    ball: bl,
                                    pending: Some((route, 0)),
                                };
                                continue;
                            }
                            ron_graph::RangeStep::NotHere => {
                                // Escalate to a coarser cluster (level 1
                                // targets everything, so this terminates).
                                stats.m2_escalations += 1;
                                if lv <= 1 {
                                    return Err(RouteError::NoDecision {
                                        at: cur,
                                        reason: "level-1 cluster missing target (impossible)",
                                    });
                                }
                                let level = lv - 1;
                                let ball = table.witness[level];
                                phase = Phase::ToRoot { level, ball };
                                continue;
                            }
                        }
                    }
                }
                Phase::Source { route, pos } => {
                    if *pos >= route.len() {
                        return Err(RouteError::NoDecision {
                            at: cur,
                            reason: "source route exhausted before the target",
                        });
                    }
                    let slot = route[*pos];
                    *pos += 1;
                    forward_slot = Some(slot);
                }
            }
            if let Some(slot) = forward_slot {
                let (next, w) = graph.link(cur, slot as usize);
                length += w;
                cur = next;
                path.push(cur);
            }
        }
        Ok(RouteTrace { path, length })
    }

    /// Routing-table bits of `u`, split into M1 and M2 components
    /// (Table 3 of the paper).
    #[must_use]
    pub fn table_bits(&self, u: Node) -> SizeReport {
        let table = &self.tables[u.index()];
        let mut report = SizeReport::new(format!("two-mode table of {u}"));
        let host_bits = index_bits(table.phi.len());
        let dist_bits = self.codec.bits_per_distance(1e9); // exponent field sized below
        let _ = dist_bits;
        let dbits = self.codec.mantissa_bits() as u64 + index_bits(self.ladder_levels + 4);
        report.add("M1 neighbor distances", table.phi.len() as u64 * dbits);
        report.add(
            "M1 first-hop pointers",
            table.phi.len() as u64 * index_bits(self.dout),
        );
        let mut zeta_bits = 0u64;
        for z in &table.zetas {
            zeta_bits += z.len() as u64 * (2 * host_bits + self.virt_bits);
        }
        report.add("M1 translation maps", zeta_bits);
        report.add("M1 radii", self.levels as u64 * dbits);
        report.add("M2 witness handles", self.levels as u64 * id_bits(self.n));
        // M2 cluster membership: children routes, ranges, stored routes.
        let mut m2_bits = 0u64;
        for (i, per_level) in self.clusters.iter().enumerate() {
            let _ = i;
            for cluster in per_level {
                if let Some(k) = cluster.tree.member_index(u) {
                    for (_, route) in &cluster.child_routes[k] {
                        m2_bits += route.len() as u64 * index_bits(self.dout) + 2 * id_bits(self.n);
                        // the range boundaries
                    }
                    for &id in cluster.tree.targets() {
                        if cluster.tree.responsible(id) == Some(u) {
                            if let Some(route) = cluster.routes.get(&id) {
                                m2_bits +=
                                    route.len() as u64 * index_bits(self.dout) + id_bits(self.n);
                            }
                        }
                    }
                }
            }
        }
        report.add("M2 cluster storage", m2_bits);
        report
    }

    /// Largest routing table over all nodes, in bits.
    #[must_use]
    pub fn max_table_bits(&self) -> u64 {
        (0..self.n)
            .map(|i| self.table_bits(Node::new(i)).total_bits())
            .max()
            .unwrap_or(0)
    }

    /// Routing-label bits of `t` (the M1 friend data plus `ID(t)`).
    #[must_use]
    pub fn label_bits(&self, t: Node) -> SizeReport {
        let label = &self.labels[t.index()];
        let mut report = SizeReport::new(format!("two-mode label of {t}"));
        let dbits = self.codec.mantissa_bits() as u64 + index_bits(self.ladder_levels + 4);
        report.add("target id", id_bits(self.n));
        report.add("zoom chain", label.f_idx.len() as u64 * self.virt_bits);
        report.add(
            "x friends",
            label.x_idx.len() as u64 * (self.virt_bits + dbits),
        );
        let y_count: u64 = label.y.iter().map(|v| v.len() as u64).sum();
        report.add(
            "y friends",
            y_count * (self.virt_bits + dbits)
                + self.levels as u64 * 2 * index_bits(self.ladder_levels),
        );
        report.add("radii", self.levels as u64 * dbits);
        report
    }

    /// Largest routing label, in bits.
    #[must_use]
    pub fn max_label_bits(&self) -> u64 {
        (0..self.n)
            .map(|i| self.label_bits(Node::new(i)).total_bits())
            .max()
            .unwrap_or(0)
    }

    /// Packet-header bits: label plus mode fields plus the largest source
    /// route (the `N_delta * ceil(log Dout)` term of Theorem B.1).
    #[must_use]
    pub fn header_bits(&self) -> u64 {
        let mode_bits = index_bits(self.levels + 1)
            + index_bits(self.ladder_levels + 1)
            + id_bits(self.n) // ball handle
            + (self.codec.mantissa_bits() as u64 + index_bits(self.ladder_levels + 4));
        let max_route = self
            .clusters
            .iter()
            .flatten()
            .flat_map(|c| c.routes.values().map(Vec::len))
            .max()
            .unwrap_or(0) as u64;
        self.max_label_bits() + mode_bits + max_route * index_bits(self.dout)
    }
}

/// The slot-by-slot shortest route between two nodes (each entry is the
/// out-link slot to take at the corresponding path node).
fn slot_route(graph: &Graph, apsp: &Apsp, from: Node, to: Node) -> Vec<u32> {
    let mut slots = Vec::new();
    let mut cur = from;
    while cur != to {
        let slot = apsp.first_hop_slot(cur, to).expect("connected graph");
        slots.push(slot);
        cur = graph.link(cur, slot as usize).0;
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::StretchStats;
    use ron_graph::gen;

    fn setup(graph: Graph, delta: f64) -> (Graph, Apsp, TwoModeScheme) {
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let scheme = TwoModeScheme::build(&space, &graph, &apsp, delta);
        (graph, apsp, scheme)
    }

    #[test]
    fn delivers_all_pairs_on_grid() {
        let (graph, apsp, scheme) = setup(gen::grid_graph(4, 2), 0.25);
        let mut stats = TwoModeStats::default();
        let s = StretchStats::over_all_pairs(&graph, &apsp, |u, v| {
            scheme.route(&graph, u, v, &mut stats)
        })
        .unwrap();
        assert_eq!(s.pairs, 16 * 15);
        assert!(s.max_stretch <= 3.0, "stretch {}", s.max_stretch);
    }

    #[test]
    fn delivers_on_exponential_path() {
        // The large-aspect-ratio regime this scheme exists for.
        let (graph, apsp, scheme) = setup(gen::exponential_path(14), 0.25);
        let mut stats = TwoModeStats::default();
        let s = StretchStats::over_all_pairs(&graph, &apsp, |u, v| {
            scheme.route(&graph, u, v, &mut stats)
        })
        .unwrap();
        assert_eq!(s.pairs, 14 * 13);
        assert!(s.max_stretch <= 3.0, "stretch {}", s.max_stretch);
    }

    #[test]
    fn delivers_on_knn_graph() {
        let (graph, apsp, scheme) = setup(gen::knn_geometric(36, 2, 3, 3).0, 0.25);
        let mut stats = TwoModeStats::default();
        let s = StretchStats::over_all_pairs(&graph, &apsp, |u, v| {
            scheme.route(&graph, u, v, &mut stats)
        })
        .unwrap();
        assert!(s.max_stretch <= 3.0, "stretch {}", s.max_stretch);
    }

    #[test]
    fn mode_stats_accumulate() {
        let (graph, _, scheme) = setup(gen::exponential_path(12), 0.25);
        let mut stats = TwoModeStats::default();
        for i in 0..12 {
            for j in 0..12 {
                if i != j {
                    scheme
                        .route(&graph, Node::new(i), Node::new(j), &mut stats)
                        .unwrap();
                }
            }
        }
        // Some mode activity must have occurred.
        assert!(stats.m1_selections + stats.m2_switches > 0);
    }

    #[test]
    fn storage_reports_split_modes() {
        let (_, _, scheme) = setup(gen::grid_graph(3, 2), 0.25);
        let report = scheme.table_bits(Node::new(0));
        let names: Vec<&str> = report.parts().iter().map(|(p, _)| p.as_str()).collect();
        assert!(names.iter().any(|p| p.starts_with("M1")));
        assert!(names.iter().any(|p| p.starts_with("M2")));
        assert!(scheme.max_table_bits() > 0);
        assert!(scheme.header_bits() > 0);
        assert!(scheme.max_label_bits() > 0);
    }

    #[test]
    fn header_includes_source_route_budget() {
        let (_, _, scheme) = setup(gen::grid_graph(3, 2), 0.25);
        assert!(scheme.header_bits() >= scheme.max_label_bits());
    }
}
