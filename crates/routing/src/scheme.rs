//! Shared routing-simulation types: traces, errors and stretch statistics.

use std::error::Error;
use std::fmt;

use ron_graph::{Apsp, Graph};
use ron_metric::Node;

/// The outcome of routing one packet.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteTrace {
    /// Nodes visited, starting at the source and ending at the target.
    pub path: Vec<Node>,
    /// Total weighted length of the traversed path.
    pub length: f64,
}

impl RouteTrace {
    /// Number of edges traversed.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Stretch relative to the true shortest-path distance (1.0 for
    /// source == target).
    #[must_use]
    pub fn stretch(&self, shortest: f64) -> f64 {
        if shortest <= 0.0 {
            1.0
        } else {
            self.length / shortest
        }
    }
}

/// Errors during packet simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RouteError {
    /// The packet exceeded the hop budget (routing loop).
    HopBudgetExceeded {
        /// Node where the packet was when the budget ran out.
        stuck_at: Node,
        /// The budget that was exceeded.
        budget: usize,
    },
    /// A node could not make a forwarding decision (broken invariant).
    NoDecision {
        /// The node without a next hop.
        at: Node,
        /// Human-readable description of the failed step.
        reason: &'static str,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::HopBudgetExceeded { stuck_at, budget } => {
                write!(f, "packet exceeded {budget} hops, stuck near {stuck_at}")
            }
            RouteError::NoDecision { at, reason } => {
                write!(f, "no forwarding decision at {at}: {reason}")
            }
        }
    }
}

impl Error for RouteError {}

/// Aggregate stretch statistics over a set of routed pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StretchStats {
    /// Number of pairs routed.
    pub pairs: usize,
    /// Worst stretch observed.
    pub max_stretch: f64,
    /// Mean stretch.
    pub mean_stretch: f64,
    /// Worst hop count observed.
    pub max_hops: usize,
}

impl StretchStats {
    /// Routes every ordered pair with `route` and accumulates statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first routing failure.
    pub fn over_all_pairs(
        graph: &Graph,
        apsp: &Apsp,
        mut route: impl FnMut(Node, Node) -> Result<RouteTrace, RouteError>,
    ) -> Result<StretchStats, RouteError> {
        let n = graph.len();
        let mut stats = StretchStats {
            pairs: 0,
            max_stretch: 1.0,
            mean_stretch: 0.0,
            max_hops: 0,
        };
        let mut sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (u, v) = (Node::new(i), Node::new(j));
                let trace = route(u, v)?;
                let s = trace.stretch(apsp.dist(u, v));
                stats.pairs += 1;
                stats.max_stretch = stats.max_stretch.max(s);
                stats.max_hops = stats.max_hops.max(trace.hops());
                sum += s;
            }
        }
        if stats.pairs > 0 {
            stats.mean_stretch = sum / stats.pairs as f64;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_statistics() {
        let trace = RouteTrace {
            path: vec![Node::new(0), Node::new(1), Node::new(2)],
            length: 3.0,
        };
        assert_eq!(trace.hops(), 2);
        assert_eq!(trace.stretch(2.0), 1.5);
        assert_eq!(trace.stretch(0.0), 1.0);
    }

    #[test]
    fn errors_display() {
        let e = RouteError::HopBudgetExceeded {
            stuck_at: Node::new(3),
            budget: 10,
        };
        assert!(e.to_string().contains("10 hops"));
        let e = RouteError::NoDecision {
            at: Node::new(1),
            reason: "test",
        };
        assert!(e.to_string().contains("test"));
    }

    #[test]
    fn stats_over_pairs() {
        use ron_graph::gen;
        let graph = gen::grid_graph(3, 2);
        let apsp = Apsp::compute(&graph);
        // "Routing" that just walks true first hops: stretch exactly 1.
        let stats = StretchStats::over_all_pairs(&graph, &apsp, |u, v| {
            let path = apsp.walk_first_hops(&graph, u, v).unwrap();
            let length = graph.path_length(&path).unwrap();
            Ok(RouteTrace { path, length })
        })
        .unwrap();
        assert_eq!(stats.pairs, 72);
        assert!((stats.max_stretch - 1.0).abs() < 1e-12);
        assert!((stats.mean_stretch - 1.0).abs() < 1e-12);
        assert_eq!(stats.max_hops, 4);
    }
}
