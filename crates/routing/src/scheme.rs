//! Shared routing-simulation types: traces, errors and stretch statistics.

use std::error::Error;
use std::fmt;

use ron_graph::{Apsp, Graph};
use ron_metric::Node;

/// The outcome of routing one packet.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteTrace {
    /// Nodes visited, starting at the source and ending at the target.
    pub path: Vec<Node>,
    /// Total weighted length of the traversed path.
    pub length: f64,
}

impl RouteTrace {
    /// Number of edges traversed.
    #[must_use]
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Stretch relative to the true shortest-path distance (1.0 for
    /// source == target).
    #[must_use]
    pub fn stretch(&self, shortest: f64) -> f64 {
        if shortest <= 0.0 {
            1.0
        } else {
            self.length / shortest
        }
    }
}

/// Errors during packet simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RouteError {
    /// The packet exceeded the hop budget (routing loop).
    HopBudgetExceeded {
        /// Node where the packet was when the budget ran out.
        stuck_at: Node,
        /// The budget that was exceeded.
        budget: usize,
    },
    /// A node could not make a forwarding decision (broken invariant).
    NoDecision {
        /// The node without a next hop.
        at: Node,
        /// Human-readable description of the failed step.
        reason: &'static str,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::HopBudgetExceeded { stuck_at, budget } => {
                write!(f, "packet exceeded {budget} hops, stuck near {stuck_at}")
            }
            RouteError::NoDecision { at, reason } => {
                write!(f, "no forwarding decision at {at}: {reason}")
            }
        }
    }
}

impl Error for RouteError {}

/// Incremental hops/stretch accounting over a set of traversed paths.
///
/// One `record` call per path; the same arithmetic serves the routing
/// schemes (via [`StretchStats`]) and the object-location lookups of
/// `ron-location`, so the stretch convention (`1.0` when the true distance
/// is zero) is defined in exactly one place. Accumulators from different
/// workers can be [`merge`](PathStats::merge)d.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathStats {
    /// Number of paths recorded.
    pub count: usize,
    /// Worst stretch observed (`0.0` until the first record).
    pub max_stretch: f64,
    /// Worst hop count observed.
    pub max_hops: usize,
    /// Sum of traversed path lengths.
    pub total_length: f64,
    sum_stretch: f64,
}

impl PathStats {
    /// Records one traversed path of weighted `length` and `hops` edges
    /// against the true shortest-path distance `shortest`.
    pub fn record(&mut self, length: f64, shortest: f64, hops: usize) {
        let stretch = if shortest <= 0.0 {
            1.0
        } else {
            length / shortest
        };
        self.count += 1;
        self.max_stretch = self.max_stretch.max(stretch);
        self.max_hops = self.max_hops.max(hops);
        self.total_length += length;
        self.sum_stretch += stretch;
    }

    /// Records a [`RouteTrace`] against the true distance `shortest`.
    pub fn record_trace(&mut self, trace: &RouteTrace, shortest: f64) {
        self.record(trace.length, shortest, trace.hops());
    }

    /// Folds another accumulator into this one (for per-worker stats).
    pub fn merge(&mut self, other: &PathStats) {
        self.count += other.count;
        self.max_stretch = self.max_stretch.max(other.max_stretch);
        self.max_hops = self.max_hops.max(other.max_hops);
        self.total_length += other.total_length;
        self.sum_stretch += other.sum_stretch;
    }

    /// Mean stretch over the recorded paths (`1.0` when empty).
    #[must_use]
    pub fn mean_stretch(&self) -> f64 {
        if self.count == 0 {
            1.0
        } else {
            self.sum_stretch / self.count as f64
        }
    }
}

/// Aggregate stretch statistics over a set of routed pairs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StretchStats {
    /// Number of pairs routed.
    pub pairs: usize,
    /// Worst stretch observed.
    pub max_stretch: f64,
    /// Mean stretch.
    pub mean_stretch: f64,
    /// Worst hop count observed.
    pub max_hops: usize,
}

impl StretchStats {
    /// Routes every ordered pair with `route` and accumulates statistics.
    ///
    /// # Errors
    ///
    /// Propagates the first routing failure.
    pub fn over_all_pairs(
        graph: &Graph,
        apsp: &Apsp,
        mut route: impl FnMut(Node, Node) -> Result<RouteTrace, RouteError>,
    ) -> Result<StretchStats, RouteError> {
        let n = graph.len();
        let mut paths = PathStats::default();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (u, v) = (Node::new(i), Node::new(j));
                let trace = route(u, v)?;
                paths.record_trace(&trace, apsp.dist(u, v));
            }
        }
        Ok(StretchStats {
            pairs: paths.count,
            max_stretch: paths.max_stretch.max(1.0),
            mean_stretch: if paths.count == 0 {
                0.0
            } else {
                paths.mean_stretch()
            },
            max_hops: paths.max_hops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_statistics() {
        let trace = RouteTrace {
            path: vec![Node::new(0), Node::new(1), Node::new(2)],
            length: 3.0,
        };
        assert_eq!(trace.hops(), 2);
        assert_eq!(trace.stretch(2.0), 1.5);
        assert_eq!(trace.stretch(0.0), 1.0);
    }

    #[test]
    fn errors_display() {
        let e = RouteError::HopBudgetExceeded {
            stuck_at: Node::new(3),
            budget: 10,
        };
        assert!(e.to_string().contains("10 hops"));
        let e = RouteError::NoDecision {
            at: Node::new(1),
            reason: "test",
        };
        assert!(e.to_string().contains("test"));
    }

    #[test]
    fn path_stats_accumulate_and_merge() {
        let mut a = PathStats::default();
        a.record(3.0, 2.0, 2);
        a.record(2.0, 2.0, 1);
        assert_eq!(a.count, 2);
        assert_eq!(a.max_stretch, 1.5);
        assert_eq!(a.max_hops, 2);
        assert_eq!(a.total_length, 5.0);
        assert!((a.mean_stretch() - 1.25).abs() < 1e-12);
        // Zero true distance is neutral stretch 1.0, same as RouteTrace.
        a.record(0.5, 0.0, 1);
        assert_eq!(a.max_stretch, 1.5);
        let mut b = PathStats::default();
        assert_eq!(b.mean_stretch(), 1.0);
        b.record(8.0, 2.0, 7);
        b.merge(&a);
        assert_eq!(b.count, 4);
        assert_eq!(b.max_stretch, 4.0);
        assert_eq!(b.max_hops, 7);
    }

    #[test]
    fn stats_over_pairs() {
        use ron_graph::gen;
        let graph = gen::grid_graph(3, 2);
        let apsp = Apsp::compute(&graph);
        // "Routing" that just walks true first hops: stretch exactly 1.
        let stats = StretchStats::over_all_pairs(&graph, &apsp, |u, v| {
            let path = apsp.walk_first_hops(&graph, u, v).unwrap();
            let length = graph.path_length(&path).unwrap();
            Ok(RouteTrace { path, length })
        })
        .unwrap();
        assert_eq!(stats.pairs, 72);
        assert!((stats.max_stretch - 1.0).abs() < 1e-12);
        assert!((stats.mean_stretch - 1.0).abs() < 1e-12);
        assert_eq!(stats.max_hops, 4);
    }
}
