//! (1+delta)-stretch compact routing schemes on doubling graphs and
//! metrics (Theorems 2.1, 4.1 and 4.2/B.1 of Slivkins, PODC 2005).
//!
//! Three schemes, sharing the rings-of-neighbors machinery:
//!
//! * [`BasicScheme`] (**Theorem 2.1**): the short re-derivation of Chan,
//!   Gupta, Maggs & Zhou — net rings `Y_uj = B_u(r_j) ∩ G_j` at every
//!   distance scale, zooming sequences as routing labels, host
//!   enumerations plus translation functions instead of global ids, and
//!   first-hop pointers connecting virtual links to graph edges. Tables
//!   cost `(1/delta)^O(alpha) (log Delta)(log Dout)` bits;
//! * [`SimpleScheme`] (**Theorem 4.1**): distance labels (Theorem 3.4) as
//!   a black box — each node stores labels of its net neighbors and greedily
//!   forwards towards the neighbor whose label looks closest to the target;
//! * [`TwoModeScheme`] (**Theorem 4.2 / B.1**): the large-aspect-ratio
//!   scheme; mode M1 zooms in via *landmarks* and *good nodes*, and when
//!   M1 runs out of resolution, mode M2 routes through a dense packing
//!   ball whose members collectively store routes to everything nearby
//!   (ID-range trees plus hop-bounded source routes).
//!
//! Each scheme exposes [`route`](BasicScheme::route)-style simulation that
//! uses only the current node's table and the packet header (locality is
//! structural: the simulator has no other inputs), plus bit-level storage
//! reports matching the paper's encodings. [`FullTableBaseline`] is the
//! trivial stretch-1 scheme whose `Omega(n log n)`-bit tables motivate the
//! whole line of work. Section 4.1's routing-on-metrics variants are the
//! same constructions with virtual links priced as overlay edges; see
//! each scheme's `overlay_*` methods.

mod baseline;
mod basic;
pub mod scheme;
mod simple;
mod twomode;

pub use baseline::FullTableBaseline;
pub use basic::{BasicLabel, BasicNodeState, BasicScheme};
pub use scheme::{PathStats, RouteError, RouteTrace, StretchStats};
pub use simple::{SimpleNodeState, SimpleScheme};
pub use twomode::{TwoModeScheme, TwoModeStats};
