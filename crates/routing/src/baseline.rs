//! The trivial stretch-1 routing scheme (full shortest-path tables).
//!
//! Every node stores a first-hop pointer for all `n - 1` targets:
//! `Omega(n log n)` bits per table, stretch exactly 1. This is the
//! baseline whose storage cost motivates compact routing (Section 1), and
//! the benchmarks print it alongside Theorems 2.1/4.1/B.1.

use ron_core::bits::{id_bits, index_bits, SizeReport};
use ron_graph::{Apsp, Graph};
use ron_metric::Node;

use crate::scheme::{RouteError, RouteTrace};

/// Full-table routing: per-target first-hop pointers at every node.
///
/// # Example
///
/// ```
/// use ron_graph::{gen, Apsp};
/// use ron_metric::Node;
/// use ron_routing::FullTableBaseline;
///
/// let graph = gen::grid_graph(3, 2);
/// let apsp = Apsp::compute(&graph);
/// let baseline = FullTableBaseline::build(&graph, &apsp);
/// let trace = baseline.route(&graph, Node::new(0), Node::new(8))?;
/// assert_eq!(trace.length, 4.0); // stretch exactly 1
/// # Ok::<(), ron_routing::RouteError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FullTableBaseline {
    n: usize,
    dout: usize,
    /// `slots[u * n + v]` = first-hop slot at `u` towards `v`.
    slots: Vec<u32>,
}

const NO_SLOT: u32 = u32::MAX;

impl FullTableBaseline {
    /// Snapshots the APSP first-hop matrix.
    #[must_use]
    pub fn build(graph: &Graph, apsp: &Apsp) -> Self {
        let n = graph.len();
        let mut slots = vec![NO_SLOT; n * n];
        for i in 0..n {
            for j in 0..n {
                if let Some(s) = apsp.first_hop_slot(Node::new(i), Node::new(j)) {
                    slots[i * n + j] = s;
                }
            }
        }
        FullTableBaseline {
            n,
            dout: graph.max_out_degree(),
            slots,
        }
    }

    /// Routes with stretch exactly 1 by following stored first hops.
    ///
    /// # Errors
    ///
    /// Returns [`RouteError::NoDecision`] if the target is unreachable.
    pub fn route(&self, graph: &Graph, src: Node, tgt: Node) -> Result<RouteTrace, RouteError> {
        let mut path = vec![src];
        let mut length = 0.0;
        let mut cur = src;
        while cur != tgt {
            let slot = self.slots[cur.index() * self.n + tgt.index()];
            if slot == NO_SLOT {
                return Err(RouteError::NoDecision {
                    at: cur,
                    reason: "target unreachable",
                });
            }
            let (next, w) = graph.link(cur, slot as usize);
            length += w;
            cur = next;
            path.push(cur);
            if path.len() > self.n {
                return Err(RouteError::HopBudgetExceeded {
                    stuck_at: cur,
                    budget: self.n,
                });
            }
        }
        Ok(RouteTrace { path, length })
    }

    /// Table size: `(n - 1)` first-hop pointers (the trivial scheme's
    /// `Omega(n log n)`-ish cost; pointers are `ceil(log Dout)` bits, and
    /// the table is indexed by target id).
    #[must_use]
    pub fn table_bits(&self) -> SizeReport {
        let mut report = SizeReport::new("full-table baseline");
        report.add(
            "first-hop pointers",
            (self.n as u64 - 1) * index_bits(self.dout),
        );
        report.add("node id", id_bits(self.n));
        report
    }

    /// Header size: just the target id.
    #[must_use]
    pub fn header_bits(&self) -> u64 {
        id_bits(self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::StretchStats;
    use ron_graph::gen;

    #[test]
    fn stretch_is_exactly_one() {
        let graph = gen::grid_graph(4, 2);
        let apsp = Apsp::compute(&graph);
        let baseline = FullTableBaseline::build(&graph, &apsp);
        let stats =
            StretchStats::over_all_pairs(&graph, &apsp, |u, v| baseline.route(&graph, u, v))
                .unwrap();
        assert!((stats.max_stretch - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_grows_linearly_with_n() {
        let small = {
            let g = gen::grid_graph(3, 2);
            FullTableBaseline::build(&g, &Apsp::compute(&g))
                .table_bits()
                .total_bits()
        };
        let big = {
            let g = gen::grid_graph(6, 2);
            FullTableBaseline::build(&g, &Apsp::compute(&g))
                .table_bits()
                .total_bits()
        };
        // 9 -> 36 nodes: tables grow ~4x.
        assert!(big >= small * 3);
    }

    #[test]
    fn unreachable_is_reported() {
        use ron_graph::GraphBuilder;
        let mut b = GraphBuilder::new(3);
        b.add_undirected(Node::new(0), Node::new(1), 1.0).unwrap();
        let graph = b.build();
        let apsp = Apsp::compute(&graph);
        let baseline = FullTableBaseline::build(&graph, &apsp);
        assert!(matches!(
            baseline.route(&graph, Node::new(0), Node::new(2)),
            Err(RouteError::NoDecision { .. })
        ));
    }
}
