//! Theorem 4.1: the "really simple" (1+delta)-stretch routing scheme that
//! uses distance labels as a black box.
//!
//! Fix a 3/2-approximate, non-contracting distance labeling (Theorem 3.4
//! with an internal `delta` small enough; our labels over-estimate by
//! construction, so non-contraction is structural). For each scale `j`, a
//! node's *`j`-level neighbors* are the net points `F_j(u) = B_u(2^(j+2)/
//! delta) ∩ F_j`. The routing table stores each neighbor's *label* and a
//! first-hop pointer; a packet header carries the target's label and the
//! current intermediate target's id. The current intermediate target
//! selects the neighbor whose label-distance to the target is smallest,
//! which is within `(3/2) delta d` of the target — geometric progress
//! without any of Theorem 2.1's translation machinery.

use ron_core::bits::{id_bits, index_bits, SizeReport};
use ron_graph::{Apsp, Graph};
use ron_labels::{CompactLabel, CompactScheme, LabelEstimator, NeighborSystem};
use ron_metric::{distance_levels, BallOracle, Metric, Node, Space};
use ron_nets::NestedNets;

use crate::scheme::{RouteError, RouteTrace};

/// Internal DLS parameter: estimates inflate by at most
/// `(1 + 2*0.125)(1 + 0.125) ~ 1.41 <= 3/2`, the approximation Theorem 4.1
/// asks of its black-box labels.
const DLS_DELTA: f64 = 0.125;

/// The Theorem 4.1 routing scheme.
///
/// # Example
///
/// ```
/// use ron_graph::{gen, Apsp};
/// use ron_metric::{Node, Space};
/// use ron_routing::SimpleScheme;
///
/// let graph = gen::grid_graph(4, 2);
/// let apsp = Apsp::compute(&graph);
/// let space = Space::new(apsp.to_metric()?);
/// let scheme = SimpleScheme::build(&space, &graph, &apsp, 0.25);
/// let trace = scheme.route(&graph, Node::new(0), Node::new(15))?;
/// assert!(trace.length <= apsp.dist(Node::new(0), Node::new(15)) * 2.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct SimpleScheme {
    delta: f64,
    n: usize,
    dout: usize,
    num_scales: usize,
    dls: CompactScheme,
    /// Per node: sorted list of distinct neighbors across levels, with
    /// first-hop slots (None in overlay mode or for self).
    neighbors: Vec<Vec<(Node, Option<u32>)>>,
    /// Largest per-node neighbor count.
    max_degree: usize,
}

impl SimpleScheme {
    /// Builds the scheme for a connected weighted graph; `space` must be
    /// its shortest-path metric.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)` or arities mismatch.
    #[must_use]
    pub fn build<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        graph: &Graph,
        apsp: &Apsp,
        delta: f64,
    ) -> Self {
        Self::build_inner(space, Some((graph, apsp)), delta)
    }

    /// Builds the overlay variant (routing on a metric, Section 4.1):
    /// virtual links replace first-hop pointers.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)`.
    #[must_use]
    pub fn build_overlay<M: Metric, I: BallOracle>(space: &Space<M, I>, delta: f64) -> Self {
        Self::build_inner(space, None, delta)
    }

    fn build_inner<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        graph: Option<(&Graph, &Apsp)>,
        delta: f64,
    ) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let n = space.len();
        if let Some((g, _)) = graph {
            assert_eq!(g.len(), n, "graph/space arity mismatch");
        }
        // Black-box distance labels at fixed internal precision.
        let system = NeighborSystem::build(space, DLS_DELTA);
        let dls = CompactScheme::from_system(space, &system);

        let nets = NestedNets::build(space);
        let min_dist = space.index().min_distance();
        let num_scales = distance_levels(space.index().aspect_ratio()) + 1;
        let mut max_degree = 0usize;
        let neighbors: Vec<Vec<(Node, Option<u32>)>> = space
            .nodes()
            .map(|u| {
                let mut all: Vec<Node> = Vec::new();
                for j in 0..num_scales {
                    // F_j = 2^j-net; r_j = 2^(j+2)/delta (normalized by the
                    // minimum distance).
                    let level = j.min(nets.levels() - 1);
                    let r = min_dist * (2.0f64).powi(j as i32 + 2) / delta;
                    all.extend(nets.net(level).members_in_ball(space, u, r));
                }
                all.sort_unstable();
                all.dedup();
                max_degree = max_degree.max(all.len());
                all.into_iter()
                    .map(|v| {
                        let hop = graph.and_then(|(_, apsp)| apsp.first_hop_slot(u, v));
                        (v, hop)
                    })
                    .collect()
            })
            .collect();

        let dout = graph.map_or(0, |(g, _)| g.max_out_degree());
        SimpleScheme {
            delta,
            n,
            dout,
            num_scales,
            dls,
            neighbors,
            max_degree,
        }
    }

    /// The construction parameter `delta`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the scheme is empty (never by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Largest per-node neighbor count (the §4.1 overlay out-degree).
    #[must_use]
    pub fn overlay_out_degree(&self) -> usize {
        self.max_degree.saturating_sub(1)
    }

    /// Selects, at node `u`, the neighbor minimizing the label distance to
    /// the target (excluding `u` itself), using labels only.
    fn select_intermediate(&self, u: Node, tgt_label_owner: Node) -> Option<Node> {
        let tgt_label = self.dls.label(tgt_label_owner);
        self.neighbors[u.index()]
            .iter()
            .filter(|&&(v, _)| v != u)
            .map(|&(v, _)| (self.dls.estimate_labels(self.dls.label(v), tgt_label), v))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, v)| v)
    }

    /// Routes a packet over the graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the packet loops or an intermediate target is
    /// not a neighbor of a node on its path (broken invariant).
    pub fn route(&self, graph: &Graph, src: Node, tgt: Node) -> Result<RouteTrace, RouteError> {
        assert_eq!(graph.len(), self.n, "graph/scheme arity mismatch");
        let budget = (self.n + 2) * (self.num_scales + 2);
        let mut path = vec![src];
        let mut length = 0.0;
        let mut cur = src;
        let mut intermediate: Option<Node> = None;
        while cur != tgt {
            if path.len() > budget {
                return Err(RouteError::HopBudgetExceeded {
                    stuck_at: cur,
                    budget,
                });
            }
            let t_prime = match intermediate {
                Some(t_prime) if t_prime != cur => t_prime,
                _ => {
                    let Some(v) = self.select_intermediate(cur, tgt) else {
                        return Err(RouteError::NoDecision {
                            at: cur,
                            reason: "no neighbor to select as intermediate target",
                        });
                    };
                    intermediate = Some(v);
                    v
                }
            };
            let Some(&(_, slot)) = self.neighbors[cur.index()]
                .iter()
                .find(|&&(v, _)| v == t_prime)
            else {
                return Err(RouteError::NoDecision {
                    at: cur,
                    reason: "intermediate target is not a neighbor (invariant broken)",
                });
            };
            let Some(slot) = slot else {
                return Err(RouteError::NoDecision {
                    at: cur,
                    reason: "missing first-hop pointer",
                });
            };
            let (next, w) = graph.link(cur, slot as usize);
            length += w;
            cur = next;
            path.push(cur);
        }
        Ok(RouteTrace { path, length })
    }

    /// Routes over the overlay (Section 4.1): every leg is one virtual
    /// link straight to the selected intermediate target.
    ///
    /// # Errors
    ///
    /// Returns an error if the packet loops (construction broken).
    pub fn route_overlay<M: Metric, I>(
        &self,
        space: &Space<M, I>,
        src: Node,
        tgt: Node,
    ) -> Result<RouteTrace, RouteError> {
        assert_eq!(space.len(), self.n, "space/scheme arity mismatch");
        let budget = 4 * (self.num_scales + 4);
        let mut path = vec![src];
        let mut length = 0.0;
        let mut cur = src;
        while cur != tgt {
            if path.len() > budget {
                return Err(RouteError::HopBudgetExceeded {
                    stuck_at: cur,
                    budget,
                });
            }
            let Some(v) = self.select_intermediate(cur, tgt) else {
                return Err(RouteError::NoDecision {
                    at: cur,
                    reason: "no neighbor to select as intermediate target",
                });
            };
            length += space.dist(cur, v);
            cur = v;
            path.push(cur);
        }
        Ok(RouteTrace { path, length })
    }

    /// Routing-table bits: every neighbor's distance label plus a
    /// first-hop pointer.
    #[must_use]
    pub fn table_bits(&self, u: Node) -> SizeReport {
        let mut report = SizeReport::new(format!("simple table of {u}"));
        let mut label_bits = 0u64;
        for &(v, _) in &self.neighbors[u.index()] {
            label_bits += self.dls.label_bits(v).total_bits();
        }
        report.add("neighbor labels", label_bits);
        if self.dout > 0 {
            report.add(
                "first-hop pointers",
                self.neighbors[u.index()].len() as u64 * index_bits(self.dout),
            );
        }
        report.add("node id", id_bits(self.n));
        report
    }

    /// Largest routing table over all nodes, in bits.
    #[must_use]
    pub fn max_table_bits(&self) -> u64 {
        (0..self.n)
            .map(|i| self.table_bits(Node::new(i)).total_bits())
            .max()
            .unwrap_or(0)
    }

    /// Packet-header bits: the target's distance label plus the
    /// intermediate target id.
    #[must_use]
    pub fn header_bits(&self) -> u64 {
        self.dls.max_label_bits() + id_bits(self.n)
    }

    /// An owned copy of `t`'s distance label — what a packet addressed to
    /// `t` carries in its header.
    #[must_use]
    pub fn target_label(&self, t: Node) -> CompactLabel {
        self.dls.label(t).clone()
    }

    /// Splits the scheme into per-node overlay state: `partition()[u]`
    /// holds node `u`'s neighbor list *with each neighbor's distance
    /// label* (exactly what Theorem 4.1 says the routing table stores)
    /// plus the label-decoding constants — and no other node's state.
    ///
    /// The input format of the message-passing simulator (`ron-sim`).
    #[must_use]
    pub fn partition(&self) -> Vec<SimpleNodeState> {
        let estimator = self.dls.estimator();
        (0..self.n)
            .map(|i| SimpleNodeState {
                node: Node::new(i),
                num_scales: self.num_scales,
                estimator,
                neighbors: self.neighbors[i]
                    .iter()
                    .map(|&(v, _)| (v, self.dls.label(v).clone()))
                    .collect(),
            })
            .collect()
    }
}

/// One node's slice of a [`SimpleScheme`] in overlay mode: its neighbors'
/// distance labels and the shared decoding constants. Forwarding picks
/// the neighbor whose label-distance to the packet's target label is
/// smallest — a strongly local decision.
#[derive(Clone, Debug)]
pub struct SimpleNodeState {
    node: Node,
    num_scales: usize,
    estimator: LabelEstimator,
    neighbors: Vec<(Node, CompactLabel)>,
}

impl SimpleNodeState {
    /// The node this slice belongs to.
    #[must_use]
    pub fn node(&self) -> Node {
        self.node
    }

    /// Neighbor labels resident at this node.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.neighbors.len()
    }

    /// The overlay hop budget of [`SimpleScheme::route_overlay`], local
    /// to every node.
    #[must_use]
    pub fn hop_budget(&self) -> usize {
        4 * (self.num_scales + 4)
    }

    /// The next overlay hop for a packet whose target carries `label`:
    /// the neighbor minimizing the label-distance estimate (ties by node
    /// id), or `None` if this node has no neighbor but itself. Identical
    /// decision to the in-process `select_intermediate`.
    #[must_use]
    pub fn next_overlay_hop(&self, label: &CompactLabel) -> Option<Node> {
        self.neighbors
            .iter()
            .filter(|&&(v, _)| v != self.node)
            .map(|(v, l)| (self.estimator.estimate(l, label), *v))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::StretchStats;
    use ron_graph::gen;
    use ron_metric::LineMetric;

    #[test]
    fn delivers_all_pairs_on_grid() {
        let graph = gen::grid_graph(4, 2);
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let scheme = SimpleScheme::build(&space, &graph, &apsp, 0.25);
        let stats =
            StretchStats::over_all_pairs(&graph, &apsp, |u, v| scheme.route(&graph, u, v)).unwrap();
        assert_eq!(stats.pairs, 16 * 15);
        // Each intermediate leg may add (3/2) delta; allow generous slack.
        assert!(
            stats.max_stretch <= 1.0 + 8.0 * 0.25,
            "stretch {}",
            stats.max_stretch
        );
    }

    #[test]
    fn delivers_on_knn_graph() {
        let (graph, _) = gen::knn_geometric(32, 2, 3, 5);
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let scheme = SimpleScheme::build(&space, &graph, &apsp, 0.25);
        let stats =
            StretchStats::over_all_pairs(&graph, &apsp, |u, v| scheme.route(&graph, u, v)).unwrap();
        assert!(stats.max_stretch <= 3.0, "stretch {}", stats.max_stretch);
    }

    #[test]
    fn overlay_routing_on_metric() {
        let space = Space::new(LineMetric::uniform(32).unwrap());
        let scheme = SimpleScheme::build_overlay(&space, 0.25);
        let mut worst = 1.0f64;
        for u in space.nodes() {
            for v in space.nodes() {
                if u == v {
                    continue;
                }
                let trace = scheme.route_overlay(&space, u, v).unwrap();
                assert_eq!(*trace.path.last().unwrap(), v);
                worst = worst.max(trace.stretch(space.dist(u, v)));
            }
        }
        assert!(worst <= 3.0, "overlay stretch {worst}");
    }

    #[test]
    fn header_dominated_by_label_bits() {
        let graph = gen::grid_graph(4, 2);
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let scheme = SimpleScheme::build(&space, &graph, &apsp, 0.25);
        assert!(scheme.header_bits() > id_bits(16));
        assert!(scheme.max_table_bits() > scheme.header_bits());
        let report = scheme.table_bits(Node::new(0));
        assert!(report.parts().iter().any(|(p, _)| p == "neighbor labels"));
    }

    #[test]
    fn exponential_path_is_routable() {
        let graph = gen::exponential_path(12);
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let scheme = SimpleScheme::build(&space, &graph, &apsp, 0.25);
        let stats =
            StretchStats::over_all_pairs(&graph, &apsp, |u, v| scheme.route(&graph, u, v)).unwrap();
        assert!((stats.max_stretch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partitioned_state_reproduces_overlay_routes() {
        let space = Space::new(LineMetric::uniform(24).unwrap());
        let scheme = SimpleScheme::build_overlay(&space, 0.25);
        let states = scheme.partition();
        for u in space.nodes() {
            for v in space.nodes() {
                if u == v {
                    continue;
                }
                let trace = scheme.route_overlay(&space, u, v).unwrap();
                let label = scheme.target_label(v);
                let mut cur = u;
                let mut path = vec![u];
                while cur != v {
                    cur = states[cur.index()]
                        .next_overlay_hop(&label)
                        .expect("neighbors exist");
                    path.push(cur);
                    assert!(path.len() <= states[u.index()].hop_budget() + 1);
                }
                assert_eq!(path, trace.path, "{u} -> {v}");
            }
        }
        assert_eq!(states[3].node(), Node::new(3));
        assert!(states[3].entries() > 0);
    }

    #[test]
    fn degree_accounting() {
        let space = Space::new(LineMetric::uniform(24).unwrap());
        let scheme = SimpleScheme::build_overlay(&space, 0.5);
        assert!(scheme.overlay_out_degree() >= 1);
        assert!(scheme.overlay_out_degree() < 24);
    }
}
