//! Property-based tests for the routing schemes: delivery and stretch on
//! randomized connected graphs.

use proptest::prelude::*;
use ron_graph::{gen, Apsp};
use ron_metric::Space;
use ron_routing::{BasicScheme, SimpleScheme, StretchStats, TwoModeScheme};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Theorem 2.1 delivers every packet within 1 + O(delta) on random
    /// k-NN graphs.
    #[test]
    fn basic_scheme_random_graphs(n in 10usize..28, seed in 0u64..300) {
        let (graph, _) = gen::knn_geometric(n, 2, 3, seed);
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let delta = 0.25;
        let scheme = BasicScheme::build(&space, &graph, &apsp, delta);
        let stats = StretchStats::over_all_pairs(&graph, &apsp, |u, v| {
            scheme.route(&graph, u, v)
        });
        let stats = stats.unwrap();
        prop_assert!(stats.max_stretch <= 1.0 + 8.0 * delta);
    }

    /// Theorem 4.1 likewise.
    #[test]
    fn simple_scheme_random_graphs(n in 10usize..24, seed in 0u64..300) {
        let (graph, _) = gen::knn_geometric(n, 2, 3, seed);
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let delta = 0.25;
        let scheme = SimpleScheme::build(&space, &graph, &apsp, delta);
        let stats = StretchStats::over_all_pairs(&graph, &apsp, |u, v| {
            scheme.route(&graph, u, v)
        });
        let stats = stats.unwrap();
        prop_assert!(stats.max_stretch <= 1.0 + 8.0 * delta);
    }

    /// Theorem B.1 delivers unconditionally on random ring-with-chords
    /// graphs (exercising both modes).
    #[test]
    fn twomode_scheme_random_rings(n in 8usize..20, chords in 0usize..10, seed in 0u64..200) {
        let graph = gen::ring_with_chords(n.max(3), chords, seed);
        let apsp = Apsp::compute(&graph);
        let space = Space::new(apsp.to_metric().unwrap());
        let scheme = TwoModeScheme::build(&space, &graph, &apsp, 0.25);
        let mut modes = Default::default();
        let stats = StretchStats::over_all_pairs(&graph, &apsp, |u, v| {
            scheme.route(&graph, u, v, &mut modes)
        });
        let stats = stats.unwrap();
        prop_assert!(stats.max_stretch <= 3.0, "stretch {}", stats.max_stretch);
    }
}
