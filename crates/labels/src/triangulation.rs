//! (0, delta)-triangulation (Theorem 3.2) and the global-id distance
//! labeling scheme derived from it.

use ron_core::bits::{id_bits, SizeReport};
use ron_core::par;
use ron_metric::{BallOracle, Metric, Node, Space};

use crate::{DistanceCodec, NeighborSystem};

/// The triangle-inequality bounds computed from two beacon labels.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Estimate {
    /// `D+ = min over common beacons b of (d_ub + d_vb)` — an upper bound.
    pub upper: f64,
    /// `D- = max over common beacons b of |d_ub - d_vb|` — a lower bound.
    pub lower: f64,
    /// Number of common beacons used.
    pub common: usize,
}

impl Estimate {
    /// The quality ratio `D+/D-` (infinite when `D- = 0`, i.e. `u = v` or
    /// a beacon is equidistant).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.lower <= 0.0 {
            f64::INFINITY
        } else {
            self.upper / self.lower
        }
    }
}

/// A `(0, delta)`-triangulation of order `(1/delta)^O(alpha) log n`
/// (Theorem 3.2).
///
/// Every node's beacon set is its X- and Y-neighbors from the
/// [`NeighborSystem`]; the theorem guarantees that **every** pair `(u, v)`
/// has a common beacon within `delta * d_uv` of `u` or `v`, hence
/// `D+/D- <= (1 + 2 delta) / (1 - 2 delta)` for every pair (for
/// `delta < 1/2`); both bounds double as `(1 + O(delta))`-approximate
/// distance estimates with a per-pair quality certificate (`D+/D-`).
///
/// # Example
///
/// ```
/// use ron_labels::Triangulation;
/// use ron_metric::{gen, Node, Space};
///
/// let space = Space::new(gen::uniform_cube(48, 2, 7));
/// let tri = Triangulation::build(&space, 0.2);
/// let (u, v) = (Node::new(0), Node::new(47));
/// let est = tri.estimate(u, v);
/// let d = space.dist(u, v);
/// assert!(est.lower <= d && d <= est.upper);
/// ```
#[derive(Clone, Debug)]
pub struct Triangulation {
    delta: f64,
    /// Per node: `(beacon, true distance)`, sorted by beacon id.
    labels: Vec<Vec<(Node, f64)>>,
}

impl Triangulation {
    /// Builds the triangulation at parameter `delta` (building a fresh
    /// [`NeighborSystem`]).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)`.
    #[must_use]
    pub fn build<M: Metric, I: BallOracle>(space: &Space<M, I>, delta: f64) -> Self {
        let system = NeighborSystem::build(space, delta);
        Self::from_system(space, &system)
    }

    /// Builds the triangulation from an existing neighbor system (one
    /// label per node, computed in parallel on [`par`] and merged in node
    /// order).
    #[must_use]
    pub fn from_system<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        system: &NeighborSystem,
    ) -> Self {
        let labels = par::map(space.len(), |ui| {
            let u = Node::new(ui);
            system
                .neighbors_of(u)
                .into_iter()
                .map(|b| (b, space.dist(u, b)))
                .collect::<Vec<_>>()
        });
        Triangulation {
            delta: system.delta(),
            labels,
        }
    }

    /// The construction parameter `delta`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the triangulation is empty (never by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The beacon set of `u` with true distances, sorted by beacon id.
    #[must_use]
    pub fn label(&self, u: Node) -> &[(Node, f64)] {
        &self.labels[u.index()]
    }

    /// The triangulation order: the largest beacon set.
    #[must_use]
    pub fn order(&self) -> usize {
        self.labels.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Computes `D+` and `D-` for a pair from the two labels only.
    ///
    /// # Panics
    ///
    /// Panics if the pair has no common beacon — impossible for labels
    /// built by this type, whose level-0 beacons are shared by every node.
    #[must_use]
    pub fn estimate(&self, u: Node, v: Node) -> Estimate {
        estimate_from_labels(self.label(u), self.label(v))
    }

    /// The largest `D+/D-` ratio over all pairs — the quantity Theorem 3.2
    /// bounds by `1 + O(delta)`. Exhaustive: `O(n^2 * order)`.
    #[must_use]
    pub fn max_ratio(&self) -> f64 {
        let n = self.len();
        let mut worst: f64 = 1.0;
        for i in 0..n {
            for j in (i + 1)..n {
                worst = worst.max(self.estimate(Node::new(i), Node::new(j)).ratio());
            }
        }
        worst
    }
}

/// Computes `D+`/`D-` from two sorted beacon lists (the "labels" of the
/// triangulation; no other information is consulted).
///
/// # Panics
///
/// Panics if there is no common beacon.
#[must_use]
pub(crate) fn estimate_from_labels(a: &[(Node, f64)], b: &[(Node, f64)]) -> Estimate {
    let mut upper = f64::INFINITY;
    let mut lower = 0.0f64;
    let mut common = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (du, dv) = (a[i].1, b[j].1);
                upper = upper.min(du + dv);
                lower = lower.max((du - dv).abs());
                common += 1;
                i += 1;
                j += 1;
            }
        }
    }
    assert!(common > 0, "no common beacon between labels");
    Estimate {
        upper,
        lower,
        common,
    }
}

/// The `(1 + O(delta))`-approximate distance labeling scheme obtained from
/// the triangulation by storing `(global id, quantized distance)` pairs —
/// the paper's corollary matching Mendel–Har-Peled.
///
/// Labels cost `order * (ceil(log n) + O(log 1/delta) + O(log log Delta))`
/// bits; the estimate is the upper bound `D+` (footnote 11: `D-` is not
/// protected under quantization).
#[derive(Clone, Debug)]
pub struct GlobalIdDls {
    codec: DistanceCodec,
    aspect_ratio: f64,
    n: usize,
    /// Per node: `(beacon, quantized distance)`, sorted by beacon id.
    labels: Vec<Vec<(Node, f64)>>,
}

impl GlobalIdDls {
    /// Builds the DLS from a triangulation, quantizing distances at the
    /// triangulation's `delta`.
    #[must_use]
    pub fn from_triangulation<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        tri: &Triangulation,
    ) -> Self {
        let codec = DistanceCodec::for_delta(tri.delta());
        let labels = par::map(space.len(), |ui| {
            tri.label(Node::new(ui))
                .iter()
                .map(|&(b, d)| (b, codec.decode(codec.encode(d))))
                .collect()
        });
        GlobalIdDls {
            codec,
            aspect_ratio: space.index().aspect_ratio(),
            n: space.len(),
            labels,
        }
    }

    /// The `(1 + O(delta))`-approximate distance estimate `D+` computed
    /// from the two labels.
    #[must_use]
    pub fn estimate(&self, u: Node, v: Node) -> f64 {
        estimate_from_labels(&self.labels[u.index()], &self.labels[v.index()]).upper
    }

    /// Bit size of `u`'s label under the paper's encoding.
    #[must_use]
    pub fn label_bits(&self, u: Node) -> SizeReport {
        let mut report = SizeReport::new(format!("dls label of {u}"));
        let beacons = self.labels[u.index()].len() as u64;
        report.add("beacon ids", beacons * id_bits(self.n));
        report.add(
            "distances",
            beacons * self.codec.bits_per_distance(self.aspect_ratio),
        );
        report
    }

    /// The largest label size over all nodes, in bits.
    #[must_use]
    pub fn max_label_bits(&self) -> u64 {
        (0..self.labels.len())
            .map(|i| self.label_bits(Node::new(i)).total_bits())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    fn exhaustive_check<M: Metric>(space: &Space<M>, delta: f64) {
        let tri = Triangulation::build(space, delta);
        let bound = (1.0 + 2.0 * delta) / (1.0 - 2.0 * delta);
        for u in space.nodes() {
            for v in space.nodes() {
                if u >= v {
                    continue;
                }
                let d = space.dist(u, v);
                let est = tri.estimate(u, v);
                assert!(
                    est.lower <= d * (1.0 + 1e-9) && d <= est.upper * (1.0 + 1e-9),
                    "bracket fails at ({u},{v}): {} <= {d} <= {}",
                    est.lower,
                    est.upper
                );
                assert!(
                    est.ratio() <= bound * (1.0 + 1e-9),
                    "(0,delta) guarantee fails at ({u},{v}): ratio {} > {bound}",
                    est.ratio()
                );
            }
        }
    }

    #[test]
    fn zero_delta_triangulation_on_uniform_line() {
        let space = Space::new(LineMetric::uniform(48).unwrap());
        exhaustive_check(&space, 0.25);
    }

    #[test]
    fn zero_delta_triangulation_on_cube() {
        let space = Space::new(gen::uniform_cube(48, 2, 11));
        exhaustive_check(&space, 0.2);
    }

    #[test]
    fn zero_delta_triangulation_on_clusters() {
        let space = Space::new(gen::clustered(48, 2, 5, 0.02, 3));
        exhaustive_check(&space, 0.2);
    }

    #[test]
    fn zero_delta_triangulation_on_exponential_line() {
        let space = Space::new(LineMetric::exponential(24).unwrap());
        exhaustive_check(&space, 0.25);
    }

    #[test]
    fn common_beacon_within_delta_d() {
        // The stronger structural property behind the ratio bound.
        let space = Space::new(gen::uniform_cube(40, 2, 29));
        let delta = 0.3;
        let tri = Triangulation::build(&space, delta);
        for u in space.nodes() {
            for v in space.nodes() {
                if u >= v {
                    continue;
                }
                let d = space.dist(u, v);
                let (a, b) = (tri.label(u), tri.label(v));
                let mut best = f64::INFINITY;
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].0.cmp(&b[j].0) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            best = best.min(a[i].1.min(b[j].1));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                assert!(
                    best <= delta * d + 1e-9,
                    "no common beacon within {delta}*{d} of ({u},{v}): best {best}"
                );
            }
        }
    }

    #[test]
    fn order_is_per_level_bounded() {
        // Theorem 3.2: order = (1/delta)^O(alpha) * log n. The constant is
        // large (the Y rings span a 12/delta ball over a delta/4-scale
        // net), but per level it cannot exceed the Lemma 1.4 cap; on the
        // uniform line with delta = 0.5 that cap is (4 * 24 / (1/16)) ~
        // 1536 per level at alpha = 1.
        let delta = 0.5;
        let t512 = Triangulation::build(&Space::new(LineMetric::uniform(512).unwrap()), delta);
        let levels = 9usize; // ceil(log2 512)
        assert!(
            t512.order() <= 1536 * levels,
            "order {} exceeds the per-level cap",
            t512.order()
        );
        // On the exponential line the rings are sparse and order tracks
        // the level count closely.
        let e64 = Triangulation::build(&Space::new(LineMetric::exponential(64).unwrap()), delta);
        let e_levels = 6usize;
        assert!(
            e64.order() <= 24 * e_levels,
            "exponential-line order {} too large",
            e64.order()
        );
    }

    #[test]
    fn estimates_are_symmetric() {
        let space = Space::new(gen::uniform_cube(32, 2, 4));
        let tri = Triangulation::build(&space, 0.25);
        for u in space.nodes() {
            for v in space.nodes() {
                let a = tri.estimate(u, v);
                let b = tri.estimate(v, u);
                assert_eq!(a.upper, b.upper);
                assert_eq!(a.lower, b.lower);
            }
        }
    }

    #[test]
    fn dls_estimate_is_one_plus_delta() {
        let space = Space::new(gen::uniform_cube(40, 2, 8));
        let delta = 0.2;
        let tri = Triangulation::build(&space, delta);
        let dls = GlobalIdDls::from_triangulation(&space, &tri);
        // D+ with a beacon within delta*d gives upper <= (1+2delta)(1+q).
        let factor = (1.0 + 2.0 * delta) * (1.0 + delta);
        for u in space.nodes() {
            for v in space.nodes() {
                if u >= v {
                    continue;
                }
                let d = space.dist(u, v);
                let est = dls.estimate(u, v);
                assert!(est >= d - 1e-9, "estimate {est} below true {d}");
                assert!(
                    est <= d * factor * (1.0 + 1e-9),
                    "estimate {est} above {factor}*{d}"
                );
            }
        }
    }

    #[test]
    fn dls_label_bits_accounting() {
        let space = Space::new(gen::uniform_cube(32, 2, 8));
        let tri = Triangulation::build(&space, 0.25);
        let dls = GlobalIdDls::from_triangulation(&space, &tri);
        let bits = dls.max_label_bits();
        assert!(bits > 0);
        // Sanity: at most order * (id + distance) bits.
        let codec = DistanceCodec::for_delta(0.25);
        let per = id_bits(32) + codec.bits_per_distance(space.index().aspect_ratio());
        assert!(bits <= (tri.order() as u64) * per);
    }

    #[test]
    fn max_ratio_reports_worst_pair() {
        let space = Space::new(LineMetric::uniform(24).unwrap());
        let tri = Triangulation::build(&space, 0.25);
        let bound = (1.0 + 0.5) / (1.0 - 0.5);
        assert!(tri.max_ratio() <= bound + 1e-9);
    }
}
