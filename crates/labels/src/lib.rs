//! Triangulation and distance labeling on doubling metrics
//! (Section 3 of Slivkins, PODC 2005).
//!
//! Three schemes, in increasing sophistication:
//!
//! * [`Triangulation`] (**Theorem 3.2**): a `(0, delta)`-triangulation of
//!   order `(1/delta)^O(alpha) * log n` — every node gets a beacon set
//!   (its X- and Y-neighbors) such that for **every** pair `(u, v)` the
//!   triangle-inequality bounds `D+` and `D-` computed from common beacons
//!   satisfy `D+/D- <= (1+2 delta)/(1-2 delta)`;
//! * [`GlobalIdDls`]: the `(1+O(delta))`-approximate distance labeling
//!   scheme obtained from the triangulation by storing `(id, distance)`
//!   pairs — the paper's re-derivation of Mendel–Har-Peled, costing a
//!   `ceil(log n)`-bit identifier per beacon;
//! * [`CompactScheme`] (**Theorem 3.4**): the identifier-free labels of
//!   `O_(alpha,delta)(log n)(log log Delta)` bits, which replace global ids
//!   with zooming sequences, virtual neighbors and translation functions.
//!
//! Also here: [`DistanceCodec`] (the mantissa/exponent distance encoding
//! both labeling schemes charge for) and [`SharedBeaconTriangulation`]
//! (the `(eps, delta)`-triangulation baseline of Kleinberg–Slivkins–Wexler
//! \[33], which leaves an `eps`-fraction of pairs unguaranteed — the flaw
//! Theorem 3.2 repairs).

mod baseline;
mod compact;
mod qdist;
mod system;
mod triangulation;

pub use baseline::SharedBeaconTriangulation;
pub use compact::{CompactLabel, CompactScheme, LabelEstimator};
pub use qdist::{DistanceCodec, EncodedDistance};
pub use system::NeighborSystem;
pub use triangulation::{Estimate, GlobalIdDls, Triangulation};
