//! The shared X/Y-neighbor system of Theorems 3.2, 3.4 and B.1.
//!
//! For a parameter `delta`, every node `u` gets, per cardinality level
//! `i in [log n]` (with `r_ui = r_u(2^-i)` the radius of the smallest ball
//! holding an `2^-i` fraction of the nodes):
//!
//! * **X-neighbors** `X_ui`: representatives `h_B` of the balls of the
//!   `(2^-i, mu)`-packing `F_i` (counting measure) that fit inside `u`'s
//!   previous-level ball: `d(u, h_B) + radius(B) <= r_(u,i-1)` (the
//!   formulation of Theorem B.1, which implies Theorem 3.2's containment);
//! * **Y-neighbors** `Y_ui`: the net points of `G_j`,
//!   `j = floor(log2(delta * r_ui / 4))` (clamped to the ladder), inside
//!   the ball `B_u(12 r_ui / delta)`.
//!
//! Level 0 is canonicalized with `r_u0 := diameter` so the level-0 sets
//! (and hence their enumerations) coincide across nodes, as the paper
//! requires for the decoding base case.

use ron_core::par;
use ron_measure::{NodeMeasure, Packing};
use ron_metric::{cardinality_levels, BallOracle, Metric, Node, Space};
use ron_nets::NestedNets;

/// The per-node, per-level X/Y-neighbor structure shared by the labeling
/// and routing results.
///
/// # Example
///
/// ```
/// use ron_labels::NeighborSystem;
/// use ron_metric::{gen, Node, Space};
///
/// let space = Space::new(gen::uniform_cube(32, 2, 3));
/// let sys = NeighborSystem::build(&space, 0.5);
/// let u = Node::new(0);
/// // Every node has itself among its neighbors at the deepest level.
/// assert!(sys.neighbors_of(u).contains(&u) || !sys.neighbors_of(u).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct NeighborSystem {
    delta: f64,
    levels: usize,
    /// `r[u][i]`; `r[u][0]` is the diameter for every `u` (canonical).
    r: Vec<Vec<f64>>,
    nets: NestedNets,
    packings: Vec<Packing>,
    /// `x[u][i]`: indices into `packings[i].balls()`, sorted by rep id.
    x: Vec<Vec<Vec<u32>>>,
    /// `y[u][i]`: nodes, sorted by id.
    y: Vec<Vec<Vec<Node>>>,
    /// Net-ladder level backing `Y_ui`.
    y_level: Vec<Vec<usize>>,
}

impl NeighborSystem {
    /// Builds the system. `O(n^2 log n)`-ish work: one `(2^-i, mu)`-packing
    /// and one ball scan per level, with the per-node loops (radii and X/Y
    /// sets) fanned out on [`par`] and merged in node order, so the result
    /// is identical for every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)`.
    #[must_use]
    pub fn build<M: Metric, I: BallOracle>(space: &Space<M, I>, delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let n = space.len();
        let levels = cardinality_levels(n);
        let diameter = space.index().diameter_ub();
        let counting = NodeMeasure::counting(n);
        let nets = NestedNets::build(space);

        let r: Vec<Vec<f64>> = par::map(n, |ui| {
            let u = Node::new(ui);
            (0..levels)
                .map(|i| {
                    if i == 0 {
                        diameter
                    } else {
                        space.index().r_fraction(u, (0.5f64).powi(i as i32))
                    }
                })
                .collect()
        });

        let packings: Vec<Packing> = (0..levels)
            .map(|i| Packing::build(space, &counting, (0.5f64).powi(i as i32)))
            .collect();

        type NodeLevels = (Vec<Vec<u32>>, Vec<Vec<Node>>, Vec<usize>);
        let per_node: Vec<NodeLevels> = par::map(n, |ui| {
            let u = Node::new(ui);
            let mut xs_all = Vec::with_capacity(levels);
            let mut ys_all = Vec::with_capacity(levels);
            let mut y_levels = Vec::with_capacity(levels);
            for i in 0..levels {
                // X_ui: packing balls with d(u, h_B) + r_B below the
                // previous-level radius (infinite for i = 0).
                let limit = if i == 0 { f64::INFINITY } else { r[ui][i - 1] };
                let mut xs: Vec<u32> = packings[i]
                    .balls()
                    .iter()
                    .enumerate()
                    .filter(|(_, b)| space.dist(u, b.rep) + b.radius <= limit)
                    .map(|(k, _)| k as u32)
                    .collect();
                xs.sort_by_key(|&k| packings[i].balls()[k as usize].rep);
                xs_all.push(xs);

                // Y_ui: net points at scale delta*r_ui/4 within 12 r_ui/delta.
                let rui = r[ui][i];
                let level = nets.level_for_scale(delta * rui / 4.0);
                let mut members = nets
                    .net(level)
                    .members_in_ball(space, u, 12.0 * rui / delta);
                members.sort_unstable();
                ys_all.push(members);
                y_levels.push(level);
            }
            (xs_all, ys_all, y_levels)
        });
        let mut x: Vec<Vec<Vec<u32>>> = Vec::with_capacity(n);
        let mut y: Vec<Vec<Vec<Node>>> = Vec::with_capacity(n);
        let mut y_level: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (xs_all, ys_all, y_levels) in per_node {
            x.push(xs_all);
            y.push(ys_all);
            y_level.push(y_levels);
        }
        NeighborSystem {
            delta,
            levels,
            r,
            nets,
            packings,
            x,
            y,
            y_level,
        }
    }

    /// The construction parameter `delta`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of cardinality levels `ceil(log2 n)`.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// Whether the system is empty (never: construction panics earlier).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// The radius `r_ui` (level 0 canonicalized to the diameter).
    #[must_use]
    pub fn radius(&self, u: Node, i: usize) -> f64 {
        self.r[u.index()][i]
    }

    /// The nested net ladder.
    #[must_use]
    pub fn nets(&self) -> &NestedNets {
        &self.nets
    }

    /// The `(2^-i, mu)`-packing at level `i`.
    #[must_use]
    pub fn packing(&self, i: usize) -> &Packing {
        &self.packings[i]
    }

    /// Indices (into `packing(i).balls()`) of `u`'s level-`i` X-balls.
    #[must_use]
    pub fn x_ball_indices(&self, u: Node, i: usize) -> &[u32] {
        &self.x[u.index()][i]
    }

    /// The X-neighbors `X_ui` (ball representatives), in rep-id order.
    pub fn x_neighbors(&self, u: Node, i: usize) -> impl Iterator<Item = Node> + '_ {
        self.x[u.index()][i]
            .iter()
            .map(move |&k| self.packings[i].balls()[k as usize].rep)
    }

    /// The Y-neighbors `Y_ui`, in node-id order.
    #[must_use]
    pub fn y_neighbors(&self, u: Node, i: usize) -> &[Node] {
        &self.y[u.index()][i]
    }

    /// Net-ladder level backing `Y_ui`.
    #[must_use]
    pub fn y_net_level(&self, u: Node, i: usize) -> usize {
        self.y_level[u.index()][i]
    }

    /// The nearest X-neighbor `x_ui` of `u` at level `i` (by distance, ties
    /// by node id), if any.
    #[must_use]
    pub fn nearest_x<M: Metric, I>(&self, space: &Space<M, I>, u: Node, i: usize) -> Option<Node> {
        self.x_neighbors(u, i)
            .map(|h| (space.dist(u, h), h))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, h)| h)
    }

    /// All distinct neighbors of `u` (X and Y, all levels), sorted by id.
    #[must_use]
    pub fn neighbors_of(&self, u: Node) -> Vec<Node> {
        let mut all: Vec<Node> = (0..self.levels)
            .flat_map(|i| {
                self.x_neighbors(u, i)
                    .chain(self.y_neighbors(u, i).iter().copied())
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// The canonical level-0 neighbor set `X_0 ∪ Y_0`, identical for every
    /// node (sorted by id).
    #[must_use]
    pub fn level0_block(&self) -> Vec<Node> {
        let u = Node::new(0);
        let mut block: Vec<Node> = self
            .x_neighbors(u, 0)
            .chain(self.y_neighbors(u, 0).iter().copied())
            .collect();
        block.sort_unstable();
        block.dedup();
        block
    }

    /// Maximum number of distinct neighbors over all nodes — the
    /// triangulation *order* of Theorem 3.2.
    #[must_use]
    pub fn order(&self) -> usize {
        (0..self.len())
            .map(|i| self.neighbors_of(Node::new(i)).len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric, MetricExt};

    fn sys(n: usize, delta: f64) -> (Space<LineMetric>, NeighborSystem) {
        let space = Space::new(LineMetric::uniform(n).unwrap());
        let s = NeighborSystem::build(&space, delta);
        (space, s)
    }

    #[test]
    fn level0_sets_coincide() {
        let (space, s) = sys(32, 0.5);
        let block = s.level0_block();
        for u in space.nodes() {
            let x0: Vec<Node> = s.x_neighbors(u, 0).collect();
            let y0 = s.y_neighbors(u, 0);
            let mut all: Vec<Node> = x0.into_iter().chain(y0.iter().copied()).collect();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all, block, "level-0 block differs at {u}");
        }
    }

    #[test]
    fn y_neighbors_lie_in_their_ball_and_net() {
        let (space, s) = sys(64, 0.5);
        for u in space.nodes() {
            for i in 0..s.levels() {
                let rui = s.radius(u, i);
                let level = s.y_net_level(u, i);
                for &w in s.y_neighbors(u, i) {
                    assert!(space.dist(u, w) <= 12.0 * rui / s.delta() + 1e-9);
                    assert!(s.nets().net(level).contains(w));
                }
            }
        }
    }

    #[test]
    fn x_neighbors_respect_prev_radius() {
        let (space, s) = sys(64, 0.5);
        for u in space.nodes() {
            for i in 1..s.levels() {
                let limit = s.radius(u, i - 1);
                for &k in s.x_ball_indices(u, i) {
                    let b = &s.packing(i).balls()[k as usize];
                    assert!(space.dist(u, b.rep) + b.radius <= limit + 1e-9);
                }
            }
        }
    }

    #[test]
    fn radii_non_increasing_in_level() {
        let (space, s) = sys(64, 0.5);
        for u in space.nodes() {
            for i in 1..s.levels() {
                assert!(s.radius(u, i) <= s.radius(u, i - 1) + 1e-12);
            }
        }
    }

    #[test]
    fn claim_3_3_radius_lipschitz() {
        // |r_ui - r_vi| <= d_uv for i >= 1 (level 0 is canonicalized).
        let space = Space::new(gen::uniform_cube(48, 2, 5));
        let s = NeighborSystem::build(&space, 0.5);
        for u in space.nodes() {
            for v in space.nodes() {
                let d = space.dist(u, v);
                for i in 1..s.levels() {
                    let gap = (s.radius(u, i) - s.radius(v, i)).abs();
                    assert!(gap <= d + 1e-9, "Claim 3.3 fails: |{gap}| > {d}");
                }
            }
        }
    }

    #[test]
    fn y_rings_obey_lemma_1_4() {
        // |Y_ui| <= (4 * ball_radius / net_radius)^alpha for the net that
        // backs the ring; alpha ~ 1 on the line, allow 1.6 for finite-size
        // effects. This is the real content of the (1/delta)^O(alpha)
        // order bound — the constant is large but n-independent.
        let (space, s) = sys(256, 0.5);
        for u in space.nodes() {
            for i in 0..s.levels() {
                let count = s.y_neighbors(u, i).len() as f64;
                let ball_r = 12.0 * s.radius(u, i) / s.delta();
                let net_r = s.nets().radius(s.y_net_level(u, i));
                if ball_r < net_r {
                    continue; // Lemma 1.4 needs r' >= r
                }
                let bound = (4.0 * ball_r / net_r).powf(1.6);
                assert!(
                    count <= bound,
                    "Y ring too large at ({u},{i}): {count} > {bound}"
                );
            }
        }
    }

    #[test]
    fn order_saturates_on_exponential_line() {
        // On the exponential line rings are tiny (points are geometrically
        // sparse), so the order tracks the level count, not n.
        let small = Space::new(LineMetric::exponential(16).unwrap());
        let large = Space::new(LineMetric::exponential(64).unwrap());
        let s_small = NeighborSystem::build(&small, 0.5);
        let s_large = NeighborSystem::build(&large, 0.5);
        let per_level_small = s_small.order() as f64 / s_small.levels() as f64;
        let per_level_large = s_large.order() as f64 / s_large.levels() as f64;
        assert!(
            per_level_large <= per_level_small * 3.0,
            "per-level order grew with n: {per_level_small} -> {per_level_large}"
        );
    }

    #[test]
    fn nearest_x_is_nearest() {
        let (space, s) = sys(64, 0.5);
        for u in space.nodes() {
            for i in 0..s.levels() {
                if let Some(h) = s.nearest_x(&space, u, i) {
                    let dh = space.dist(u, h);
                    for other in s.x_neighbors(u, i) {
                        assert!(dh <= space.dist(u, other) + 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn works_on_exponential_line() {
        let space = Space::new(LineMetric::exponential(24).unwrap());
        let s = NeighborSystem::build(&space, 0.25);
        assert_eq!(s.levels(), 5); // ceil(log2 24)
        assert!(s.order() >= 1);
        assert_eq!(space.metric().aspect_ratio(), (2.0f64).powi(23) - 1.0);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        let space = Space::new(LineMetric::uniform(4).unwrap());
        let _ = NeighborSystem::build(&space, 1.5);
    }
}
