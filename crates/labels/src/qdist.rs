use ron_core::bits::index_bits;

/// A distance quantized to a mantissa/exponent pair (proofs of
/// Theorems 3.2 and 3.4).
///
/// The paper stores distances "as a `O(log 1/delta)`-bit mantissa and
/// `O(log log Delta)`-bit exponent": enough precision that sums of two
/// encoded distances stay `(1+delta)`-accurate (footnote 11 warns that
/// *differences* are not protected, which is why the labeling schemes use
/// the upper bound `D+` only).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct EncodedDistance {
    /// Power-of-two exponent, `i32::MIN` encodes the distance 0.
    exp: i32,
    /// Mantissa in `[2^mb, 2^(mb+1))` for mantissa bits `mb`.
    man: u32,
}

impl EncodedDistance {
    /// The encoding of distance zero.
    pub const ZERO: EncodedDistance = EncodedDistance {
        exp: i32::MIN,
        man: 0,
    };

    /// Whether this encodes the distance 0.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.exp == i32::MIN
    }
}

/// Encoder/decoder for quantized distances with a fixed mantissa width.
///
/// Encoding **rounds up**, so decoded values never undershoot: the label
/// estimates stay valid upper bounds, and Theorem 4.1's requirement of a
/// *non-contracting* distance function on labels holds by construction.
///
/// # Example
///
/// ```
/// use ron_labels::DistanceCodec;
///
/// let codec = DistanceCodec::for_delta(0.1);
/// let d = 123.456;
/// let round_trip = codec.decode(codec.encode(d));
/// assert!(round_trip >= d);
/// assert!(round_trip <= d * 1.1);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DistanceCodec {
    mantissa_bits: u32,
}

impl DistanceCodec {
    /// A codec whose relative error is at most `delta` (in fact at most
    /// `2^-(ceil(log2(1/delta)))` `<= delta`).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)`.
    #[must_use]
    pub fn for_delta(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        let mantissa_bits = (1.0 / delta).log2().ceil().max(1.0) as u32;
        Self::with_mantissa_bits(mantissa_bits)
    }

    /// A codec with an explicit mantissa width (1..=32 bits).
    ///
    /// # Panics
    ///
    /// Panics if `mantissa_bits` is 0 or exceeds 31.
    #[must_use]
    pub fn with_mantissa_bits(mantissa_bits: u32) -> Self {
        assert!(
            (1..=31).contains(&mantissa_bits),
            "mantissa width out of range"
        );
        DistanceCodec { mantissa_bits }
    }

    /// The mantissa width in bits.
    #[must_use]
    pub fn mantissa_bits(self) -> u32 {
        self.mantissa_bits
    }

    /// Worst-case relative error of `decode(encode(d)) / d - 1`.
    #[must_use]
    pub fn relative_error(self) -> f64 {
        (0.5f64).powi(self.mantissa_bits as i32)
    }

    /// Encodes a nonnegative finite distance, rounding up.
    ///
    /// # Panics
    ///
    /// Panics if `d` is negative or not finite.
    #[must_use]
    pub fn encode(self, d: f64) -> EncodedDistance {
        assert!(
            d.is_finite() && d >= 0.0,
            "distance must be finite and nonnegative"
        );
        if d == 0.0 {
            return EncodedDistance::ZERO;
        }
        let mb = self.mantissa_bits;
        // d = frac * 2^exp with frac in [1, 2).
        let exp = d.log2().floor() as i32;
        let frac = d / (2.0f64).powi(exp);
        // Round the mantissa up to keep decode >= d.
        let man = (frac * (1u64 << mb) as f64).ceil() as u64;
        if man >= (1u64 << (mb + 1)) {
            // Rounding crossed a power of two.
            EncodedDistance {
                exp: exp + 1,
                man: 1u32 << mb,
            }
        } else {
            EncodedDistance {
                exp,
                man: man as u32,
            }
        }
    }

    /// Decodes a quantized distance.
    #[must_use]
    pub fn decode(self, e: EncodedDistance) -> f64 {
        if e.is_zero() {
            return 0.0;
        }
        let mb = self.mantissa_bits;
        e.man as f64 / (1u64 << mb) as f64 * (2.0f64).powi(e.exp)
    }

    /// Bits per stored distance under the paper's encoding: the mantissa
    /// plus an exponent field covering the `log2(Delta) + O(1)` distinct
    /// scales of a metric with aspect ratio `Delta` — i.e.
    /// `O(log 1/delta) + O(log log Delta)` bits.
    #[must_use]
    pub fn bits_per_distance(self, aspect_ratio: f64) -> u64 {
        let scales = aspect_ratio.max(2.0).log2().ceil() as usize + 2;
        self.mantissa_bits as u64 + index_bits(scales)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_round_trips() {
        let codec = DistanceCodec::for_delta(0.25);
        assert_eq!(codec.decode(codec.encode(0.0)), 0.0);
        assert!(codec.encode(0.0).is_zero());
    }

    #[test]
    fn decode_never_undershoots() {
        let codec = DistanceCodec::for_delta(0.1);
        for &d in &[1e-9, 0.3, 1.0, 1.999, 2.0, 123.456, 1e18] {
            let r = codec.decode(codec.encode(d));
            assert!(r >= d, "decode({d}) = {r} undershoots");
            assert!(r <= d * (1.0 + codec.relative_error()) * (1.0 + 1e-12));
        }
    }

    #[test]
    fn power_of_two_boundary() {
        let codec = DistanceCodec::with_mantissa_bits(4);
        // A value just below 2.0 rounds up across the boundary.
        let e = codec.encode(1.9999999);
        assert_eq!(codec.decode(e), 2.0);
    }

    #[test]
    fn exact_powers_encode_exactly() {
        let codec = DistanceCodec::with_mantissa_bits(8);
        for p in [-5i32, 0, 1, 10] {
            let d = (2.0f64).powi(p);
            assert_eq!(codec.decode(codec.encode(d)), d);
        }
    }

    #[test]
    fn delta_controls_error() {
        for delta in [0.5, 0.25, 0.1, 0.01] {
            let codec = DistanceCodec::for_delta(delta);
            assert!(codec.relative_error() <= delta);
        }
    }

    #[test]
    fn sums_of_encoded_distances_stay_accurate() {
        // The paper's observation: if x', y' are (1+delta)-approximations
        // from above, x' + y' approximates x + y within (1+delta).
        let codec = DistanceCodec::for_delta(0.05);
        let (x, y) = (3.7, 91.2);
        let sum = codec.decode(codec.encode(x)) + codec.decode(codec.encode(y));
        assert!(sum >= x + y);
        assert!(sum <= (x + y) * 1.05);
    }

    #[test]
    fn bits_accounting_grows_with_log_log_aspect() {
        let codec = DistanceCodec::for_delta(0.25);
        let small = codec.bits_per_distance(16.0);
        let huge = codec.bits_per_distance(1e30);
        assert!(small < huge);
        // log2(1e30) ~ 100 scales -> 7 exponent bits.
        assert_eq!(huge, codec.mantissa_bits() as u64 + 7);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_infinite_distance() {
        let _ = DistanceCodec::for_delta(0.5).encode(f64::INFINITY);
    }
}
