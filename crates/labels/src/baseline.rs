//! The shared-beacon `(eps, delta)`-triangulation baseline
//! (Kleinberg–Slivkins–Wexler [33], Slivkins [50]).
//!
//! All nodes share one random beacon set; `D+`/`D-` are computed the same
//! way as in Theorem 3.2, but the guarantee only holds for all but an
//! `eps`-fraction of pairs — the "obvious flaw" (paper's words) that the
//! `(0, delta)`-triangulation of Theorem 3.2 repairs. The benchmarks
//! measure that failing fraction side by side with Theorem 3.2's zero.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ron_metric::{Metric, Node, Space};

use crate::triangulation::{estimate_from_labels, Estimate};

/// A triangulation where every node stores distances to the same `k`
/// random beacons.
///
/// # Example
///
/// ```
/// use ron_labels::SharedBeaconTriangulation;
/// use ron_metric::{gen, Node, Space};
///
/// let space = Space::new(gen::uniform_cube(64, 2, 5));
/// let tri = SharedBeaconTriangulation::build(&space, 8, 42);
/// let est = tri.estimate(Node::new(0), Node::new(1));
/// assert!(est.lower <= est.upper);
/// ```
#[derive(Clone, Debug)]
pub struct SharedBeaconTriangulation {
    beacons: Vec<Node>,
    /// Per node: `(beacon, distance)` sorted by beacon id.
    labels: Vec<Vec<(Node, f64)>>,
}

impl SharedBeaconTriangulation {
    /// Samples `k` beacons uniformly without replacement and stores every
    /// node's distances to them.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds the node count.
    #[must_use]
    pub fn build<M: Metric>(space: &Space<M>, k: usize, seed: u64) -> Self {
        let n = space.len();
        assert!(k >= 1 && k <= n, "beacon count {k} out of range 1..={n}");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<Node> = space.nodes().collect();
        all.shuffle(&mut rng);
        let mut beacons = all[..k].to_vec();
        beacons.sort_unstable();
        let labels = space
            .nodes()
            .map(|u| beacons.iter().map(|&b| (b, space.dist(u, b))).collect())
            .collect();
        SharedBeaconTriangulation { beacons, labels }
    }

    /// The shared beacon set (the *order* of this triangulation).
    #[must_use]
    pub fn beacons(&self) -> &[Node] {
        &self.beacons
    }

    /// `D+`/`D-` for a pair (all beacons are common here).
    #[must_use]
    pub fn estimate(&self, u: Node, v: Node) -> Estimate {
        estimate_from_labels(&self.labels[u.index()], &self.labels[v.index()])
    }

    /// Fraction of node pairs whose `D+/D-` ratio exceeds `1 + delta` —
    /// the `eps` this baseline actually achieves (Theorem 3.2's
    /// construction achieves 0 by design).
    #[must_use]
    pub fn failing_fraction(&self, delta: f64) -> f64 {
        let n = self.labels.len();
        if n < 2 {
            return 0.0;
        }
        let mut bad = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                total += 1;
                if self.estimate(Node::new(i), Node::new(j)).ratio() > 1.0 + delta {
                    bad += 1;
                }
            }
        }
        bad as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triangulation;
    use ron_metric::gen;

    #[test]
    fn estimates_bracket_true_distance() {
        let space = Space::new(gen::uniform_cube(40, 2, 9));
        let tri = SharedBeaconTriangulation::build(&space, 6, 1);
        for u in space.nodes() {
            for v in space.nodes() {
                if u >= v {
                    continue;
                }
                let d = space.dist(u, v);
                let est = tri.estimate(u, v);
                assert!(est.lower <= d + 1e-9);
                assert!(est.upper >= d - 1e-9);
            }
        }
    }

    #[test]
    fn beacon_count_is_respected() {
        let space = Space::new(gen::uniform_cube(30, 2, 2));
        let tri = SharedBeaconTriangulation::build(&space, 5, 7);
        assert_eq!(tri.beacons().len(), 5);
    }

    #[test]
    fn some_pairs_fail_with_few_beacons() {
        // On a clustered metric, a handful of shared beacons cannot certify
        // intra-cluster distances: the failing fraction is visibly nonzero,
        // while Theorem 3.2's triangulation has zero failures.
        let space = Space::new(gen::clustered(60, 2, 6, 0.01, 4));
        let delta = 0.3;
        let baseline = SharedBeaconTriangulation::build(&space, 6, 11);
        let ours = Triangulation::build(&space, delta / 3.0);
        let eps_baseline = baseline.failing_fraction(delta);
        let bound = (1.0 + 2.0 * delta / 3.0) / (1.0 - 2.0 * delta / 3.0);
        assert!(ours.max_ratio() <= bound + 1e-9);
        assert!(
            eps_baseline > 0.0,
            "expected the shared-beacon baseline to fail on some pairs"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let space = Space::new(gen::uniform_cube(20, 2, 3));
        let a = SharedBeaconTriangulation::build(&space, 4, 5);
        let b = SharedBeaconTriangulation::build(&space, 4, 5);
        assert_eq!(a.beacons(), b.beacons());
    }
}
