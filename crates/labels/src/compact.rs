//! Compact (1+delta)-approximate distance labels without global
//! identifiers (Theorem 3.4).
//!
//! The global-id scheme ([`GlobalIdDls`](crate::GlobalIdDls)) pays
//! `ceil(log n)` bits per beacon. Theorem 3.4 removes them: a label knows
//! its beacons only through *local indices*, and two labels find a common
//! beacon by walking the target's **zooming sequence** `f_u0, f_u1, ...`
//! and translating, level by level, between each other's enumerations:
//!
//! * every node `u` fixes a *host enumeration* `phi_u` of its X/Y-neighbor
//!   set, laid out so the canonical level-0 block gets identical indices
//!   at every node (the decoding base case);
//! * every node `w` fixes a *virtual enumeration* `psi_w` of its virtual
//!   neighbors `T_w = X_w ∪ Z_w ∪ (∪_{v in X_w} Z_v)`, where
//!   `Z_wj = B_w(2^j) ∩ G_(floor(log2(2^j delta/64)))`; zooming steps are
//!   stored as `psi` indices (`O(log(K^2 log n log Delta))` bits each);
//! * the *translation functions* `zeta_ui(phi_u(v), psi_v(w)) = phi_u(w)`
//!   convert a `psi` index at a known neighbor into a host index.
//!
//! Decoding collects every common beacon it can identify (the level-0
//! block, the chain points themselves — common by Claim 3.6 — and the
//! `zeta` joins at each level) and returns the best `D+`. The proof of
//! Theorem 3.4 guarantees a common beacon within `delta * d` is always
//! among them.
//!
//! Two deviations from the paper's text, per DESIGN.md §3 item 6: the
//! `Z`-sets extend 3 scale levels past the top of the ladder (absorbing
//! constant-factor slack in Claim 3.5's rounding), and zoom-chain
//! memberships `f_(u,i) ∈ T_(f_(u,i-1))` (Claim 3.5(c)) are enforced by
//! explicit insertion — the count of such insertions is reported by
//! [`CompactScheme::forced_virtual_insertions`] and observed to be zero or
//! negligible in tests.

use std::collections::BTreeSet;

use ron_core::bits::{index_bits, SizeReport};
use ron_core::{par, Enumeration, TranslationFn};
use ron_metric::{BallOracle, Metric, Node, Space};

use crate::{DistanceCodec, EncodedDistance, NeighborSystem};

/// Divisor in the net scale of the virtual-neighbor sets
/// `Z_wj = B_w(2^j) ∩ G_(floor(log2(2^j delta / Z_SCALE_DIVISOR)))`.
const Z_SCALE_DIVISOR: f64 = 64.0;

/// Extra scale levels past the ladder top for the `Z`-sets (the paper's
/// `j <= log Delta` plus slack for `x + d_uf` overshooting the diameter).
const Z_EXTRA_LEVELS: usize = 3;

/// The label of one node under Theorem 3.4.
///
/// Contains everything the decoder may read: quantized distances to the
/// host neighbors, the translation maps, and the zooming sequence encoded
/// via virtual indices. No global node identifiers appear.
#[derive(Clone, Debug)]
pub struct CompactLabel {
    /// Quantized distance to the host neighbor at each host index.
    host_dists: Vec<EncodedDistance>,
    /// `zeta[i]` translates level-`i` keys: entries
    /// `(phi_u(v), psi_v(w), phi_u(w))`.
    zeta: Vec<TranslationFn>,
    /// `phi_u(f_u0)` — inside the canonical level-0 block.
    zoom_first: u32,
    /// `zoom_virtual[i-1] = psi_(f_(u,i-1))(f_ui)` for `i >= 1`.
    zoom_virtual: Vec<u32>,
}

impl CompactLabel {
    /// Number of host neighbors.
    #[must_use]
    pub fn host_len(&self) -> usize {
        self.host_dists.len()
    }

    /// Number of translation-map entries across levels.
    #[must_use]
    pub fn zeta_entries(&self) -> usize {
        self.zeta.iter().map(TranslationFn::len).sum()
    }
}

/// The Theorem 3.4 labeling scheme for one metric space.
///
/// # Example
///
/// ```
/// use ron_labels::CompactScheme;
/// use ron_metric::{gen, Node, Space};
///
/// let space = Space::new(gen::uniform_cube(32, 2, 3));
/// let scheme = CompactScheme::build(&space, 0.2);
/// let (u, v) = (Node::new(0), Node::new(31));
/// let est = scheme.estimate(u, v);
/// let d = space.dist(u, v);
/// assert!(est >= d && est <= d * 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct CompactScheme {
    codec: DistanceCodec,
    levels: usize,
    level0_len: u32,
    aspect_ratio: f64,
    /// Bits for one virtual-enumeration index (global max `|T_w|`).
    virt_bits: u64,
    labels: Vec<CompactLabel>,
    forced_insertions: usize,
}

impl CompactScheme {
    /// Builds the scheme at parameter `delta` (with a fresh
    /// [`NeighborSystem`]).
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)`.
    #[must_use]
    pub fn build<M: Metric, I: BallOracle>(space: &Space<M, I>, delta: f64) -> Self {
        let system = NeighborSystem::build(space, delta);
        Self::from_system(space, &system)
    }

    /// Builds the scheme from an existing neighbor system.
    ///
    /// The per-node stages (zoom chains, `Z`-sets, virtual unions, label
    /// assembly) each fan out on [`par`] and merge in node order, so the
    /// labels are identical for every thread count.
    #[must_use]
    pub fn from_system<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        system: &NeighborSystem,
    ) -> Self {
        let _n = space.len();
        let levels = system.levels();
        let delta = system.delta();
        let nets = system.nets();
        let diameter = space.index().diameter_ub();
        let min_dist = space.index().min_distance();
        let codec = DistanceCodec::for_delta(delta);

        // --- Zooming chains: f[u][i], the nearest net point at scale
        // r_ui / 4 (level 0 canonicalized to the diameter).
        let zoom: Vec<Vec<Node>> = par::map(space.len(), |ui| {
            let u = Node::new(ui);
            (0..levels)
                .map(|i| {
                    let scale = system.radius(u, i) / 4.0;
                    let scale = if i == 0 { diameter / 4.0 } else { scale };
                    let level = nets.level_for_scale(scale);
                    nets.net(level).nearest_member(space, u).1
                })
                .collect()
        });

        // --- Z-sets: Z_w = union over j of B_w(2^j) ∩ G_(z-level(j)).
        let ladder_top = nets.levels() - 1 + Z_EXTRA_LEVELS;
        let z_sets: Vec<BTreeSet<Node>> = par::map(space.len(), |wi| {
            let w = Node::new(wi);
            let mut set = BTreeSet::new();
            for j in 1..=ladder_top {
                let radius = min_dist * (2.0f64).powi(j as i32);
                let level = nets.level_for_scale(radius * delta / Z_SCALE_DIVISOR);
                for m in nets.net(level).members_in_ball(space, w, radius) {
                    set.insert(m);
                }
            }
            set
        });

        // --- Virtual neighbor sets T_u = X_u ∪ Z_u ∪ (∪_{v in X_u} Z_v).
        let mut t_sets: Vec<BTreeSet<Node>> = par::map(space.len(), |ui| {
            let u = Node::new(ui);
            let mut t = z_sets[ui].clone();
            for i in 0..levels {
                for h in system.x_neighbors(u, i) {
                    t.insert(h);
                    t.extend(z_sets[h.index()].iter().copied());
                }
            }
            t
        });

        // --- Enforce Claim 3.5(c): f_(u,i) ∈ T_(f_(u,i-1)).
        let mut forced_insertions = 0usize;
        for u in space.nodes() {
            for i in 1..levels {
                let prev = zoom[u.index()][i - 1];
                let cur = zoom[u.index()][i];
                if t_sets[prev.index()].insert(cur) {
                    forced_insertions += 1;
                }
            }
        }

        let psi: Vec<Enumeration> = t_sets
            .iter()
            .map(|t| Enumeration::new(t.iter().copied().collect()))
            .collect();
        let virt_bits = psi.iter().map(Enumeration::index_bits).max().unwrap_or(0);

        // --- Host enumerations: canonical level-0 block first.
        let block = system.level0_block();
        let level0_len = block.len() as u32;
        let block_set: BTreeSet<Node> = block.iter().copied().collect();
        let phi: Vec<Enumeration> = par::map(space.len(), |ui| {
            let mut order = block.clone();
            order.extend(
                system
                    .neighbors_of(Node::new(ui))
                    .into_iter()
                    .filter(|v| !block_set.contains(v)),
            );
            Enumeration::from_ordered(order)
        });

        // --- Per-node labels.
        let labels: Vec<CompactLabel> = par::map(space.len(), |ui| {
            let u = Node::new(ui);
            let phi_u = &phi[u.index()];
            let host_dists: Vec<EncodedDistance> = phi_u
                .nodes()
                .iter()
                .map(|&v| codec.encode(space.dist(u, v)))
                .collect();

            // Translation maps zeta_ui, i in 0..levels-1.
            let zeta: Vec<TranslationFn> = (0..levels.saturating_sub(1))
                .map(|i| {
                    let mut triples = Vec::new();
                    let mut level_i: Vec<Node> = system
                        .x_neighbors(u, i)
                        .chain(system.y_neighbors(u, i).iter().copied())
                        .collect();
                    level_i.sort_unstable();
                    level_i.dedup();
                    let mut level_next: Vec<Node> = system
                        .x_neighbors(u, i + 1)
                        .chain(system.y_neighbors(u, i + 1).iter().copied())
                        .collect();
                    level_next.sort_unstable();
                    level_next.dedup();
                    for &v in &level_i {
                        let x = phi_u.index_of(v).expect("level set is in host enum");
                        let psi_v = &psi[v.index()];
                        for &w in &level_next {
                            if let Some(y) = psi_v.index_of(w) {
                                let z = phi_u.index_of(w).expect("level set is in host enum");
                                triples.push((x, y, z));
                            }
                        }
                    }
                    TranslationFn::from_triples(triples)
                })
                .collect();

            // Zooming sequence encoding.
            let f0 = zoom[u.index()][0];
            let zoom_first = phi_u
                .index_of(f0)
                .expect("f_u0 lies in the canonical level-0 block");
            debug_assert!(zoom_first < level0_len, "f_u0 outside the level-0 block");
            let zoom_virtual: Vec<u32> = (1..levels)
                .map(|i| {
                    let prev = zoom[u.index()][i - 1];
                    let cur = zoom[u.index()][i];
                    psi[prev.index()]
                        .index_of(cur)
                        .expect("zoom membership was enforced")
                })
                .collect();

            CompactLabel {
                host_dists,
                zeta,
                zoom_first,
                zoom_virtual,
            }
        });

        CompactScheme {
            codec,
            levels,
            level0_len,
            aspect_ratio: space.index().aspect_ratio(),
            virt_bits,
            labels,
            forced_insertions,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the scheme is empty (never by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of cardinality levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The label of `u`.
    #[must_use]
    pub fn label(&self, u: Node) -> &CompactLabel {
        &self.labels[u.index()]
    }

    /// How many zoom memberships had to be inserted into `T`-sets beyond
    /// the paper's definition (Claim 3.5(c) predicts 0; see module docs).
    #[must_use]
    pub fn forced_virtual_insertions(&self) -> usize {
        self.forced_insertions
    }

    /// The `(1 + O(delta))`-approximate distance estimate `D+`, computed
    /// **from the two labels only**.
    #[must_use]
    pub fn estimate(&self, u: Node, v: Node) -> f64 {
        self.estimate_labels(self.label(u), self.label(v))
    }

    /// Label-only estimation: decodes a `D+` upper bound from two labels.
    ///
    /// Walks both zooming chains, translating through `zeta` maps, and
    /// takes the best sum over every identified common beacon.
    #[must_use]
    pub fn estimate_labels(&self, a: &CompactLabel, b: &CompactLabel) -> f64 {
        self.estimator().estimate(a, b)
    }

    /// The scheme's decoding constants, detached from the label store.
    ///
    /// In a distributed deployment every node carries these few words of
    /// protocol configuration and the *labels it has learned* — never the
    /// whole label table — so per-node routing state (e.g.
    /// `ron_routing::SimpleNodeState`) embeds a [`LabelEstimator`] instead
    /// of a back-reference to the scheme.
    #[must_use]
    pub fn estimator(&self) -> LabelEstimator {
        LabelEstimator {
            codec: self.codec,
            levels: self.levels,
            level0_len: self.level0_len,
        }
    }
}

/// The label-decoding protocol constants of a [`CompactScheme`]: the
/// distance codec, the level count and the canonical level-0 block
/// length. `estimate` is a pure function of two labels given these
/// constants — no access to the scheme's label table — which is what
/// makes label-based routing *strongly local*.
#[derive(Clone, Copy, Debug)]
pub struct LabelEstimator {
    codec: DistanceCodec,
    levels: usize,
    level0_len: u32,
}

impl LabelEstimator {
    /// Decodes a `D+` upper bound from two labels (same arithmetic as
    /// [`CompactScheme::estimate_labels`]).
    #[must_use]
    pub fn estimate(&self, a: &CompactLabel, b: &CompactLabel) -> f64 {
        let mut best = f64::INFINITY;
        // Candidates from the canonical level-0 block (indices coincide).
        for k in 0..self.level0_len as usize {
            let s = self.codec.decode(a.host_dists[k]) + self.codec.decode(b.host_dists[k]);
            best = best.min(s);
        }
        // Candidates from the two zooming chains.
        best = best.min(self.chain_candidates(a, b));
        best = best.min(self.chain_candidates(b, a));
        best
    }

    /// Walks `own`'s zooming chain, translating into `other`'s host
    /// enumeration, harvesting common beacons along the way. Returns the
    /// best `D+` candidate found.
    fn chain_candidates(&self, own: &CompactLabel, other: &CompactLabel) -> f64 {
        let mut best = f64::INFINITY;
        // Level-0 chain point: indices coincide on the canonical block.
        let mut f_own = own.zoom_first;
        let mut f_other = own.zoom_first;
        let add = |o: u32, t: u32, best: &mut f64| {
            let s = self.codec.decode(own.host_dists[o as usize])
                + self.codec.decode(other.host_dists[t as usize]);
            *best = best.min(s);
        };
        add(f_own, f_other, &mut best);
        for i in 1..self.levels {
            let zeta_own = &own.zeta[i - 1];
            let zeta_other = &other.zeta[i - 1];
            // Harvest: join both maps' entries under the current chain
            // point on the shared virtual index y.
            let ea = zeta_own.entries_for(f_own);
            let eb = zeta_other.entries_for(f_other);
            let (mut p, mut q) = (0usize, 0usize);
            while p < ea.len() && q < eb.len() {
                match ea[p].1.cmp(&eb[q].1) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        add(ea[p].2, eb[q].2, &mut best);
                        p += 1;
                        q += 1;
                    }
                }
            }
            // Advance the chain.
            let y = own.zoom_virtual[i - 1];
            let next_own = zeta_own
                .lookup(f_own, y)
                .expect("own chain is always translatable (Claims 3.5c/3.6)");
            let Some(next_other) = zeta_other.lookup(f_other, y) else {
                break; // chain left the other node's neighbor sets
            };
            f_own = next_own;
            f_other = next_other;
            add(f_own, f_other, &mut best);
        }
        best
    }
}

impl CompactScheme {
    /// Bit size of `u`'s label under the paper's encoding.
    #[must_use]
    pub fn label_bits(&self, u: Node) -> SizeReport {
        let label = self.label(u);
        let host_bits = index_bits(label.host_len());
        let mut report = SizeReport::new(format!("compact label of {u}"));
        report.add(
            "distances",
            label.host_len() as u64 * self.codec.bits_per_distance(self.aspect_ratio),
        );
        let mut zeta_bits = 0u64;
        for z in &label.zeta {
            zeta_bits += z.len() as u64 * (host_bits + self.virt_bits + host_bits);
        }
        report.add("translation maps", zeta_bits);
        report.add(
            "zooming sequence",
            host_bits + label.zoom_virtual.len() as u64 * self.virt_bits,
        );
        report
    }

    /// The largest label size over all nodes, in bits.
    #[must_use]
    pub fn max_label_bits(&self) -> u64 {
        (0..self.len())
            .map(|i| self.label_bits(Node::new(i)).total_bits())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    fn exhaustive_check<M: Metric>(space: &Space<M>, delta: f64) -> CompactScheme {
        let scheme = CompactScheme::build(space, delta);
        // Upper bound from a beacon within delta*d, plus quantization.
        let factor = (1.0 + 2.0 * delta) * (1.0 + delta);
        for u in space.nodes() {
            for v in space.nodes() {
                if u >= v {
                    continue;
                }
                let d = space.dist(u, v);
                let est = scheme.estimate(u, v);
                assert!(est >= d - 1e-9, "({u},{v}): estimate {est} below true {d}");
                assert!(
                    est <= d * factor * (1.0 + 1e-9),
                    "({u},{v}): estimate {est} exceeds {factor} * {d}"
                );
            }
        }
        scheme
    }

    #[test]
    fn accurate_on_uniform_line() {
        let space = Space::new(LineMetric::uniform(48).unwrap());
        exhaustive_check(&space, 0.25);
    }

    #[test]
    fn accurate_on_cube() {
        let space = Space::new(gen::uniform_cube(48, 2, 21));
        exhaustive_check(&space, 0.2);
    }

    #[test]
    fn accurate_on_clusters() {
        let space = Space::new(gen::clustered(48, 2, 5, 0.02, 13));
        exhaustive_check(&space, 0.2);
    }

    #[test]
    fn accurate_on_exponential_line() {
        let space = Space::new(LineMetric::exponential(24).unwrap());
        exhaustive_check(&space, 0.25);
    }

    #[test]
    fn forced_insertions_are_negligible() {
        // Claim 3.5(c) predicts the zoom chain is already inside the
        // virtual sets; allow a tiny fraction for constant-factor slack.
        let space = Space::new(gen::uniform_cube(64, 2, 2));
        let scheme = CompactScheme::build(&space, 0.25);
        let total_chain = 64 * (scheme.levels() - 1);
        assert!(
            scheme.forced_virtual_insertions() * 10 <= total_chain,
            "too many forced insertions: {}/{}",
            scheme.forced_virtual_insertions(),
            total_chain
        );
    }

    #[test]
    fn estimate_is_symmetric() {
        let space = Space::new(gen::uniform_cube(32, 2, 6));
        let scheme = CompactScheme::build(&space, 0.25);
        for u in space.nodes() {
            for v in space.nodes() {
                let a = scheme.estimate(u, v);
                let b = scheme.estimate(v, u);
                assert!((a - b).abs() < 1e-12, "asymmetric estimate at ({u},{v})");
            }
        }
    }

    #[test]
    fn self_estimate_is_zero() {
        let space = Space::new(gen::uniform_cube(24, 2, 6));
        let scheme = CompactScheme::build(&space, 0.25);
        for u in space.nodes() {
            assert_eq!(scheme.estimate(u, u), 0.0);
        }
    }

    #[test]
    fn label_bits_beat_global_ids_when_aspect_is_tame() {
        use crate::{GlobalIdDls, Triangulation};
        // Theorem 3.4's advantage: no ceil(log n) factor per beacon. On a
        // cube (log log Delta << log n at scale), the compact labels should
        // not exceed the global-id labels by more than the zeta overhead;
        // we check at least that both accountings are produced and the
        // compact per-beacon id cost is below ceil(log n).
        let space = Space::new(gen::uniform_cube(64, 2, 9));
        let delta = 0.25;
        let scheme = CompactScheme::build(&space, delta);
        let tri = Triangulation::build(&space, delta);
        let dls = GlobalIdDls::from_triangulation(&space, &tri);
        assert!(scheme.max_label_bits() > 0);
        assert!(dls.max_label_bits() > 0);
        // The zoom chain stores levels-1 virtual indices; each must be
        // far below a global id times levels.
        let label = scheme.label(Node::new(0));
        assert_eq!(label.zoom_virtual.len(), scheme.levels() - 1);
    }

    #[test]
    fn labels_expose_sizes() {
        let space = Space::new(gen::uniform_cube(24, 2, 1));
        let scheme = CompactScheme::build(&space, 0.3);
        let label = scheme.label(Node::new(3));
        assert!(label.host_len() > 0);
        let report = scheme.label_bits(Node::new(3));
        assert!(report.total_bits() > 0);
        assert_eq!(report.parts().len(), 3);
        let _ = label.zeta_entries();
    }

    #[test]
    fn two_node_space() {
        let space = Space::new(LineMetric::new(vec![0.0, 5.0]).unwrap());
        let scheme = CompactScheme::build(&space, 0.25);
        let est = scheme.estimate(Node::new(0), Node::new(1));
        assert!((5.0..=5.0 * 1.9).contains(&est));
    }
}
