//! Property-based tests for triangulation and distance labels: the
//! theorem guarantees hold on randomized instances, not just the seeded
//! families of the unit tests.

use proptest::prelude::*;
use ron_labels::{CompactScheme, DistanceCodec, Triangulation};
use ron_metric::{gen, Node, Space};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 3.2 on random cubes: bracket and ratio for every pair.
    #[test]
    fn triangulation_guarantee_random_cubes(n in 8usize..28, seed in 0u64..400) {
        let space = Space::new(gen::uniform_cube(n, 2, seed));
        let delta = 0.25;
        let tri = Triangulation::build(&space, delta);
        let bound = (1.0 + 2.0 * delta) / (1.0 - 2.0 * delta);
        for u in space.nodes() {
            for v in space.nodes() {
                if u >= v {
                    continue;
                }
                let d = space.dist(u, v);
                let est = tri.estimate(u, v);
                prop_assert!(est.lower <= d * (1.0 + 1e-9));
                prop_assert!(d <= est.upper * (1.0 + 1e-9));
                prop_assert!(est.ratio() <= bound * (1.0 + 1e-9));
            }
        }
    }

    /// Theorem 3.4 on random clustered metrics: estimates bracket within
    /// (1 + O(delta)) for every pair, decoded from labels alone.
    #[test]
    fn compact_labels_random_clusters(
        n in 8usize..24,
        clusters in 2usize..5,
        seed in 0u64..400,
    ) {
        let space = Space::new(gen::clustered(n, 2, clusters, 0.03, seed));
        let delta = 0.25;
        let scheme = CompactScheme::build(&space, delta);
        let factor = (1.0 + 2.0 * delta) * (1.0 + delta);
        for u in space.nodes() {
            for v in space.nodes() {
                if u >= v {
                    continue;
                }
                let d = space.dist(u, v);
                let est = scheme.estimate(u, v);
                prop_assert!(est >= d - 1e-9, "({},{}) est {} < d {}", u, v, est, d);
                prop_assert!(
                    est <= d * factor * (1.0 + 1e-9),
                    "({},{}) est {} > {} * d {}",
                    u, v, est, factor, d
                );
            }
        }
    }

    /// The distance codec never undershoots and bounds relative error,
    /// over the full dynamic range of f64 magnitudes.
    #[test]
    fn codec_round_trip(mantissa in 1u32..20, exp in -200i32..200, frac in 1.0f64..2.0) {
        let codec = DistanceCodec::with_mantissa_bits(mantissa);
        let d = frac * (2.0f64).powi(exp);
        let r = codec.decode(codec.encode(d));
        prop_assert!(r >= d);
        prop_assert!(r <= d * (1.0 + codec.relative_error()) * (1.0 + 1e-12));
    }

    /// Estimates are symmetric and zero on the diagonal for random cubes.
    #[test]
    fn estimates_symmetric(n in 6usize..16, seed in 0u64..200) {
        let space = Space::new(gen::uniform_cube(n, 2, seed));
        let scheme = CompactScheme::build(&space, 0.3);
        for i in 0..n {
            prop_assert_eq!(scheme.estimate(Node::new(i), Node::new(i)), 0.0);
            for j in 0..n {
                let a = scheme.estimate(Node::new(i), Node::new(j));
                let b = scheme.estimate(Node::new(j), Node::new(i));
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }
}

/// Parallel label construction is byte-identical to single-threaded: the
/// per-node loops of the neighbor system, triangulation and compact
/// scheme all merge in node order.
#[test]
fn parallel_label_builds_are_identical() {
    use ron_core::par;
    use ron_labels::NeighborSystem;
    let space = Space::new(gen::uniform_cube(40, 2, 17));
    let delta = 0.25;
    let (sys1, tri1, cmp1) = par::with_threads(1, || {
        let sys = NeighborSystem::build(&space, delta);
        let tri = Triangulation::from_system(&space, &sys);
        let cmp = CompactScheme::from_system(&space, &sys);
        (sys, tri, cmp)
    });
    let (sys4, tri4, cmp4) = par::with_threads(4, || {
        let sys = NeighborSystem::build(&space, delta);
        let tri = Triangulation::from_system(&space, &sys);
        let cmp = CompactScheme::from_system(&space, &sys);
        (sys, tri, cmp)
    });
    assert_eq!(sys1.order(), sys4.order());
    assert_eq!(cmp1.max_label_bits(), cmp4.max_label_bits());
    assert_eq!(
        cmp1.forced_virtual_insertions(),
        cmp4.forced_virtual_insertions()
    );
    for u in space.nodes() {
        assert_eq!(tri1.label(u), tri4.label(u), "triangulation label of {u}");
        for i in 0..sys1.levels() {
            assert_eq!(sys1.y_neighbors(u, i), sys4.y_neighbors(u, i));
            assert_eq!(sys1.x_ball_indices(u, i), sys4.x_ball_indices(u, i));
        }
        assert_eq!(
            cmp1.label_bits(u).total_bits(),
            cmp4.label_bits(u).total_bits()
        );
        for v in space.nodes() {
            assert_eq!(cmp1.estimate(u, v), cmp4.estimate(u, v));
        }
    }
}

/// Labels built on the sparse backend still satisfy Theorem 3.2's
/// bracket (the ladder may differ by one level from the dense backend,
/// so the comparison is against the guarantee, not the dense artifact).
#[test]
fn triangulation_on_sparse_backend_brackets_distances() {
    let space = Space::new_sparse(gen::uniform_cube(32, 2, 23));
    let delta = 0.25;
    let tri = Triangulation::build(&space, delta);
    let bound = (1.0 + 2.0 * delta) / (1.0 - 2.0 * delta);
    for u in space.nodes() {
        for v in space.nodes() {
            if u >= v {
                continue;
            }
            let d = space.dist(u, v);
            let est = tri.estimate(u, v);
            assert!(est.lower <= d * (1.0 + 1e-9) && d <= est.upper * (1.0 + 1e-9));
            assert!(est.ratio() <= bound * (1.0 + 1e-9));
        }
    }
}
