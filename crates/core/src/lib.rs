//! Rings of neighbors — the unifying technique of Slivkins (PODC 2005).
//!
//! Every construction in the paper stores, at each node `u`, pointers to
//! some nodes ("neighbors") partitioned into *rings*: for an increasing
//! sequence of balls `{B_i}` around `u`, the `i`-ring neighbors lie inside
//! `B_i`. The radii and the selection rule vary per application:
//!
//! * **net rings** (`Y`-type): `Y_uj = B_u(r_j) ∩ G_j` for a net ladder
//!   `{G_j}` — Theorems 2.1, 3.2, 4.1;
//! * **cardinality rings** (`X`-type): uniform samples from the smallest
//!   ball holding `n/2^i` nodes, or representatives of an
//!   `(eps, mu)`-packing — Theorems 3.2 and 5.2;
//! * **measure rings**: samples drawn proportionally to a doubling measure
//!   from balls of geometric radii — Section 5.
//!
//! This crate provides the shared machinery:
//!
//! * [`RingFamily`] / [`Ring`]: the per-node partitioned pointer sets with
//!   degree statistics and overlay-graph export;
//! * [`Enumeration`] and [`TranslationFn`]: the *host/virtual enumeration*
//!   trick that replaces `ceil(log n)`-bit global identifiers with
//!   `log K`-bit local indices (proofs of Theorems 2.1 and 3.4);
//! * [`zoom`]: zooming sequences — per-target chains of net points whose
//!   distance to the target shrinks geometrically;
//! * [`sample`]: deterministic weighted/uniform ball sampling used by the
//!   small-world models;
//! * [`bits`]: bit-size accounting for tables, labels and headers, so the
//!   benchmarks report the storage the paper's encodings would use;
//! * [`stats`]: the shared nearest-rank quantile every report summarizes
//!   with (one convention for the simulator and the serving engine);
//! * [`publish`]: the epoch-stamped publication cell ([`publish::EpochCell`])
//!   behind serve-during-repair — writers build successor state off to the
//!   side and swap it in atomically, readers clone an `Arc` and keep
//!   serving;
//! * [`par`]: the scoped-thread executor behind every parallel
//!   construction loop (re-exported from `ron-metric`, where it lives so
//!   the index builds can use it too; `RON_THREADS` overrides the worker
//!   count).

pub mod bits;
mod enumeration;
pub mod publish;
pub mod rings;
pub mod sample;
pub mod stats;
pub mod zoom;

pub use enumeration::{Enumeration, TranslationFn};
pub use rings::{NodeRings, Ring, RingFamily, RingView};
pub use ron_metric::par;
