//! Shared sample statistics: the nearest-rank quantile every report in
//! the workspace summarizes with.
//!
//! The simulator's `Percentiles` and the location engine's
//! `LatencySummary` used to round ranks with different conventions
//! (`(n*q) as usize` vs `((n-1)*q).round()`), which disagreed on every
//! pinned table and reported each p50 one rank high. The single
//! convention here is **nearest-rank**: the `q`-quantile of `n` samples
//! is the `ceil(q * n)`-th smallest sample (1-indexed), i.e.
//! `sorted[ceil(q * n) - 1]` — the smallest sample `x` such that at
//! least a `q`-fraction of the samples are `<= x`.
//!
//! Histograms follow the same consolidation: the power-of-two bucket
//! histogram every layer used to hand-roll (the simulator's per-node
//! load, the observability registry's distributions) is
//! [`ron_obs::Pow2Histogram`], re-exported here so stats consumers get
//! one bucket convention (bucket 0 = value 0, bucket `k >= 1` =
//! `[2^(k-1), 2^k)`) and one merge rule.

pub use ron_obs::Pow2Histogram;

/// Zero-based index of the nearest-rank `q`-quantile in a sorted sample
/// of `count` elements: `ceil(q * count) - 1`, clamped into range.
///
/// # Panics
///
/// Panics if `count == 0` or `q` is not in `(0, 1]`.
#[must_use]
pub fn nearest_rank_index(count: usize, q: f64) -> usize {
    assert!(count > 0, "quantile of an empty sample");
    assert!(q > 0.0 && q <= 1.0, "quantile {q} out of (0, 1]");
    let rank = (q * count as f64).ceil() as usize;
    rank.clamp(1, count) - 1
}

/// The nearest-rank `q`-quantile of an ascending-sorted sample.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is not in `(0, 1]` (and debug
/// builds assert the slice is actually sorted).
#[must_use]
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1] || w[1].is_nan()),
        "samples must be sorted ascending"
    );
    sorted[nearest_rank_index(sorted.len(), q)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_one_to_hundred() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        // ceil(q * 100) - 1: the p50 of 1..=100 is 50, not 51.
        assert_eq!(nearest_rank(&samples, 0.50), 50.0);
        assert_eq!(nearest_rank(&samples, 0.90), 90.0);
        assert_eq!(nearest_rank(&samples, 0.99), 99.0);
        assert_eq!(nearest_rank(&samples, 1.0), 100.0);
        assert_eq!(nearest_rank(&samples, 0.001), 1.0);
    }

    #[test]
    fn nearest_rank_is_the_smallest_sample_covering_q() {
        // Reference definition: smallest x with |{y <= x}| >= ceil(q n).
        let samples = [1.0, 1.0, 2.0, 5.0, 9.0];
        for q in [0.2, 0.4, 0.5, 0.6, 0.8, 0.9, 1.0] {
            let x = nearest_rank(&samples, q);
            let need = (q * samples.len() as f64).ceil() as usize;
            let covered = samples.iter().filter(|&&y| y <= x).count();
            assert!(covered >= need, "q = {q}");
            let smaller = samples.iter().filter(|&&y| y < x).count();
            assert!(smaller < need, "q = {q}: {x} is not the smallest");
        }
    }

    #[test]
    fn single_sample_is_every_quantile() {
        assert_eq!(nearest_rank(&[7.5], 0.5), 7.5);
        assert_eq!(nearest_rank_index(1, 1.0), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_rejected() {
        let _ = nearest_rank_index(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn zero_quantile_rejected() {
        let _ = nearest_rank_index(4, 0.0);
    }
}
