use ron_metric::Node;

use crate::bits::index_bits;

/// A canonical bijection between a finite node set and `[k] = {0..k-1}`.
///
/// The paper replaces `ceil(log n)`-bit global identifiers with indices
/// into per-node *host enumerations* (of a node's neighbors) and *virtual
/// enumerations* (of its virtual neighbors). An index costs only
/// `ceil(log K)` bits where `K` bounds the set size — the key to the
/// storage bounds of Theorems 2.1 and 3.4.
///
/// Enumerations are canonical: nodes are ordered by id. Hence two nodes
/// whose sets coincide have identical enumerations, which the paper uses
/// for the level-0 rings ("the host enumerations `phi_u0` coincide").
///
/// # Example
///
/// ```
/// use ron_core::Enumeration;
/// use ron_metric::Node;
///
/// let e = Enumeration::new(vec![Node::new(9), Node::new(3), Node::new(7)]);
/// assert_eq!(e.index_of(Node::new(7)), Some(1)); // sorted order: 3,7,9
/// assert_eq!(e.node_at(2), Node::new(9));
/// assert_eq!(e.len(), 3);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Enumeration {
    nodes: Vec<Node>,
    /// `(node, index)` pairs sorted by node, for `index_of` lookups.
    lookup: Vec<(Node, u32)>,
}

impl Enumeration {
    /// Builds the canonical enumeration of a node set (sorted, deduped).
    #[must_use]
    pub fn new(mut nodes: Vec<Node>) -> Self {
        nodes.sort_unstable();
        nodes.dedup();
        Self::from_ordered(nodes)
    }

    /// Builds an enumeration preserving the given order (first occurrence
    /// wins for duplicates).
    ///
    /// Theorem 3.4's host enumerations put the canonical level-0 block
    /// first so its indices coincide across all nodes; this constructor
    /// supports that layout.
    #[must_use]
    pub fn from_ordered(nodes: Vec<Node>) -> Self {
        let mut seen = std::collections::BTreeSet::new();
        let nodes: Vec<Node> = nodes.into_iter().filter(|&v| seen.insert(v)).collect();
        let mut lookup: Vec<(Node, u32)> = nodes
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        lookup.sort_unstable_by_key(|&(v, _)| v);
        Enumeration { nodes, lookup }
    }

    /// Number of enumerated nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the enumeration is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The index of `node`, or `None` if it is not in the set.
    #[must_use]
    pub fn index_of(&self, node: Node) -> Option<u32> {
        self.lookup
            .binary_search_by_key(&node, |&(v, _)| v)
            .ok()
            .map(|i| self.lookup[i].1)
    }

    /// The node at index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[must_use]
    pub fn node_at(&self, idx: u32) -> Node {
        self.nodes[idx as usize]
    }

    /// The enumerated nodes, in index order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Whether `node` is in the enumerated set.
    #[must_use]
    pub fn contains(&self, node: Node) -> bool {
        self.index_of(node).is_some()
    }

    /// Bits to store one index into this enumeration.
    #[must_use]
    pub fn index_bits(&self) -> u64 {
        index_bits(self.len())
    }
}

impl FromIterator<Node> for Enumeration {
    fn from_iter<T: IntoIterator<Item = Node>>(iter: T) -> Self {
        Enumeration::new(iter.into_iter().collect())
    }
}

/// A translation function `zeta: [A] x [B] -> [C] ∪ {null}` stored as
/// sorted triples, as in the proofs of Theorems 2.1 and 3.4.
///
/// `zeta_u(x, y) = z` translates "the node with index `y` in some *other*
/// enumeration reachable through my neighbor with host index `x`" into "my
/// own host index `z` for that node". Nodes build them at preprocessing
/// time (when global knowledge is available); at query/routing time only
/// `lookup` is used — on data that lives inside a single label or table.
///
/// # Example
///
/// ```
/// use ron_core::TranslationFn;
///
/// let zeta = TranslationFn::from_triples(vec![(0, 2, 5), (1, 0, 3)]);
/// assert_eq!(zeta.lookup(0, 2), Some(5));
/// assert_eq!(zeta.lookup(0, 3), None); // null
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TranslationFn {
    /// Sorted by (x, y).
    triples: Vec<(u32, u32, u32)>,
}

impl TranslationFn {
    /// Builds from explicit `(x, y, z)` triples (duplicates on `(x, y)`
    /// keep the smallest `z`, deterministically).
    #[must_use]
    pub fn from_triples(mut triples: Vec<(u32, u32, u32)>) -> Self {
        triples.sort_unstable();
        triples.dedup_by_key(|t| (t.0, t.1));
        TranslationFn { triples }
    }

    /// The translation of `(x, y)`, or `None` (the paper's "null").
    #[must_use]
    pub fn lookup(&self, x: u32, y: u32) -> Option<u32> {
        self.triples
            .binary_search_by_key(&(x, y), |&(a, b, _)| (a, b))
            .ok()
            .map(|i| self.triples[i].2)
    }

    /// All entries `(x, y, z)` with the given `x`, in `y` order.
    ///
    /// Used by the label decoder of Theorem 3.4, which scans "all entries
    /// of the form `(f, ·)`".
    #[must_use]
    pub fn entries_for(&self, x: u32) -> &[(u32, u32, u32)] {
        let lo = self.triples.partition_point(|&(a, _, _)| a < x);
        let hi = self.triples.partition_point(|&(a, _, _)| a <= x);
        &self.triples[lo..hi]
    }

    /// Number of non-null entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the function is empty (all-null).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Storage in bits: each triple costs `x_bits + y_bits + z_bits`, the
    /// index widths of the three coordinate spaces.
    #[must_use]
    pub fn storage_bits(&self, x_space: usize, y_space: usize, z_space: usize) -> u64 {
        self.triples.len() as u64
            * (index_bits(x_space) + index_bits(y_space) + index_bits(z_space))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_canonical() {
        let a = Enumeration::new(vec![Node::new(5), Node::new(1), Node::new(5)]);
        let b: Enumeration = [Node::new(1), Node::new(5)].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.index_of(Node::new(1)), Some(0));
        assert_eq!(a.index_of(Node::new(5)), Some(1));
        assert_eq!(a.index_of(Node::new(2)), None);
        assert!(a.contains(Node::new(5)));
    }

    #[test]
    fn equal_sets_give_equal_enumerations() {
        let a = Enumeration::new(vec![Node::new(3), Node::new(8), Node::new(0)]);
        let b = Enumeration::new(vec![Node::new(8), Node::new(0), Node::new(3)]);
        for i in 0..3 {
            assert_eq!(a.node_at(i), b.node_at(i));
        }
    }

    #[test]
    fn enumeration_index_bits() {
        assert_eq!(Enumeration::new(vec![]).index_bits(), 0);
        assert_eq!(Enumeration::new(vec![Node::new(0)]).index_bits(), 0);
        let e = Enumeration::new((0..5).map(Node::new).collect());
        assert_eq!(e.index_bits(), 3);
    }

    #[test]
    fn translation_lookup_and_null() {
        let zeta = TranslationFn::from_triples(vec![(1, 1, 9), (0, 0, 4), (1, 0, 2)]);
        assert_eq!(zeta.lookup(0, 0), Some(4));
        assert_eq!(zeta.lookup(1, 0), Some(2));
        assert_eq!(zeta.lookup(1, 1), Some(9));
        assert_eq!(zeta.lookup(2, 0), None);
        assert_eq!(zeta.len(), 3);
    }

    #[test]
    fn translation_entries_for_prefix() {
        let zeta = TranslationFn::from_triples(vec![(1, 1, 9), (0, 0, 4), (1, 0, 2), (2, 5, 1)]);
        assert_eq!(zeta.entries_for(1), &[(1, 0, 2), (1, 1, 9)]);
        assert_eq!(zeta.entries_for(3), &[]);
    }

    #[test]
    fn translation_storage_bits() {
        let zeta = TranslationFn::from_triples(vec![(0, 0, 0), (1, 1, 1)]);
        // 2 triples, each 2+3+4 bits.
        assert_eq!(zeta.storage_bits(4, 8, 16), 2 * (2 + 3 + 4));
    }

    #[test]
    fn duplicate_keys_keep_smallest() {
        let zeta = TranslationFn::from_triples(vec![(0, 0, 7), (0, 0, 3)]);
        assert_eq!(zeta.lookup(0, 0), Some(3));
        assert_eq!(zeta.len(), 1);
    }

    #[test]
    fn ordered_enumeration_preserves_layout() {
        let e = Enumeration::from_ordered(vec![
            Node::new(9),
            Node::new(2),
            Node::new(9), // duplicate: first occurrence wins
            Node::new(4),
        ]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.node_at(0), Node::new(9));
        assert_eq!(e.node_at(1), Node::new(2));
        assert_eq!(e.node_at(2), Node::new(4));
        assert_eq!(e.index_of(Node::new(9)), Some(0));
        assert_eq!(e.index_of(Node::new(4)), Some(2));
        assert_eq!(e.index_of(Node::new(5)), None);
    }

    #[test]
    fn shared_prefix_blocks_coincide() {
        // Two enumerations with the same first block have equal indices on it.
        let block = vec![Node::new(3), Node::new(7)];
        let mut a_rest = block.clone();
        a_rest.extend([Node::new(1)]);
        let mut b_rest = block.clone();
        b_rest.extend([Node::new(9), Node::new(0)]);
        let a = Enumeration::from_ordered(a_rest);
        let b = Enumeration::from_ordered(b_rest);
        for &v in &block {
            assert_eq!(a.index_of(v), b.index_of(v));
        }
    }
}
