//! Bit-size accounting for the paper's storage bounds.
//!
//! The paper measures routing tables, routing labels and packet headers in
//! bits, under concrete encodings (e.g. a translation function costs
//! `K^2 ceil(log K)` bits, a first-hop pointer `ceil(log Dout)` bits, a
//! quantized distance a mantissa plus exponent). The benchmark harness
//! recomputes every table of the paper with these encodings applied to the
//! *actual* data structures, via the helpers here.

use std::fmt;

/// Bits needed to index one of `k` alternatives: `ceil(log2 k)`, with the
/// conventions `index_bits(0) = index_bits(1) = 0`.
///
/// # Example
///
/// ```
/// use ron_core::bits::index_bits;
///
/// assert_eq!(index_bits(1), 0);
/// assert_eq!(index_bits(2), 1);
/// assert_eq!(index_bits(5), 3);
/// assert_eq!(index_bits(1024), 10);
/// ```
#[must_use]
pub fn index_bits(k: usize) -> u64 {
    if k <= 1 {
        return 0;
    }
    let mut bits = 0u64;
    let mut cap = 1usize;
    while cap < k {
        // cap < k <= usize::MAX, and k is reachable by doubling from 1,
        // saturating to avoid overflow at the top bit.
        cap = cap.saturating_mul(2);
        bits += 1;
    }
    bits
}

/// Bits for a global node identifier among `n` nodes: `ceil(log2 n)`, at
/// least 1 (an ID field exists even for tiny networks).
#[must_use]
pub fn id_bits(n: usize) -> u64 {
    index_bits(n).max(1)
}

/// An itemized bit count with named components.
///
/// Reports render like
/// `first-hop pointers: 420 bits; translation maps: 1337 bits`.
///
/// # Example
///
/// ```
/// use ron_core::bits::SizeReport;
///
/// let mut report = SizeReport::new("routing table");
/// report.add("pointers", 420);
/// report.add("maps", 1337);
/// assert_eq!(report.total_bits(), 1757);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SizeReport {
    name: String,
    parts: Vec<(String, u64)>,
}

impl SizeReport {
    /// Starts an empty report with a display name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        SizeReport {
            name: name.into(),
            parts: Vec::new(),
        }
    }

    /// Adds a named component (accumulates if the name repeats).
    pub fn add(&mut self, part: impl Into<String>, bits: u64) {
        let part = part.into();
        if let Some(entry) = self.parts.iter_mut().find(|(p, _)| *p == part) {
            entry.1 += bits;
        } else {
            self.parts.push((part, bits));
        }
    }

    /// Merges another report's components into this one.
    pub fn merge(&mut self, other: &SizeReport) {
        for (part, bits) in &other.parts {
            self.add(part.clone(), *bits);
        }
    }

    /// The report's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The named components in insertion order.
    #[must_use]
    pub fn parts(&self) -> &[(String, u64)] {
        &self.parts
    }

    /// Sum of all components, in bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.parts.iter().map(|(_, b)| b).sum()
    }

    /// Total rounded up to whole bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }
}

impl fmt::Display for SizeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} bits", self.name, self.total_bits())?;
        if !self.parts.is_empty() {
            write!(f, " (")?;
            for (i, (part, bits)) in self.parts.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{part}: {bits}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_bits_edge_cases() {
        assert_eq!(index_bits(0), 0);
        assert_eq!(index_bits(1), 0);
        assert_eq!(index_bits(2), 1);
        assert_eq!(index_bits(3), 2);
        assert_eq!(index_bits(4), 2);
        assert_eq!(index_bits(usize::MAX), usize::BITS as u64);
    }

    #[test]
    fn id_bits_has_floor_one() {
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(2), 1);
        assert_eq!(id_bits(1000), 10);
    }

    #[test]
    fn report_accumulates_and_merges() {
        let mut a = SizeReport::new("a");
        a.add("x", 10);
        a.add("x", 5);
        a.add("y", 1);
        assert_eq!(a.total_bits(), 16);
        assert_eq!(a.parts().len(), 2);

        let mut b = SizeReport::new("b");
        b.add("y", 9);
        a.merge(&b);
        assert_eq!(a.total_bits(), 25);
        assert_eq!(a.total_bytes(), 4);
    }

    #[test]
    fn display_mentions_components() {
        let mut r = SizeReport::new("table");
        r.add("ptrs", 8);
        let text = r.to_string();
        assert!(text.contains("table"));
        assert!(text.contains("ptrs: 8"));
    }
}
