//! Zooming sequences (proofs of Theorems 2.1, 3.4, B.1).
//!
//! The *zooming sequence* of a target `t` is a chain of net points
//! `f_t0, f_t1, ...` at geometrically shrinking scales, each within the
//! scale's distance of `t`: routing and label decoding walk this chain to
//! "zoom in" on `t` without global identifiers. The chain exists because
//! each net covers the space at its radius: `f_tj` is simply the net point
//! nearest to `t` at the level matching scale `s_j`.

use ron_metric::{BallOracle, Metric, Node, Space};
use ron_nets::NestedNets;

/// A target's zooming sequence: `points[j]` is the paper's `f_tj`.
///
/// # Example
///
/// ```
/// use ron_core::zoom::{geometric_scales, ZoomSequence};
/// use ron_metric::{LineMetric, Node, Space};
/// use ron_nets::NestedNets;
///
/// let space = Space::new(LineMetric::uniform(64)?);
/// let nets = NestedNets::build(&space);
/// let t = Node::new(17);
/// let scales = geometric_scales(space.index().diameter(), nets.levels());
/// let zoom = ZoomSequence::towards(&space, &nets, t, &scales);
/// // The chain zooms in: the last point at scale <= min distance is t itself.
/// assert_eq!(*zoom.points().last().unwrap(), t);
/// # Ok::<(), ron_metric::MetricError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ZoomSequence {
    target: Node,
    points: Vec<Node>,
    levels: Vec<usize>,
}

impl ZoomSequence {
    /// Builds the sequence for `target`: for each scale `s_j`, the nearest
    /// member of the net at level `level_for_scale(s_j)`.
    ///
    /// Covering guarantees `d(f_tj, t) <=` the chosen net's radius `<= s_j`
    /// (clamped at the ladder bottom, where the net is all of `V` and
    /// `f_tj = t`).
    #[must_use]
    pub fn towards<M: Metric, I: BallOracle>(
        space: &Space<M, I>,
        nets: &NestedNets,
        target: Node,
        scales: &[f64],
    ) -> Self {
        let mut points = Vec::with_capacity(scales.len());
        let mut levels = Vec::with_capacity(scales.len());
        for &s in scales {
            let level = nets.level_for_scale(s);
            let (_, f) = nets.net(level).nearest_member(space, target);
            points.push(f);
            levels.push(level);
        }
        ZoomSequence {
            target,
            points,
            levels,
        }
    }

    /// The target node `t`.
    #[must_use]
    pub fn target(&self) -> Node {
        self.target
    }

    /// The chain `f_t0, f_t1, ...`.
    #[must_use]
    pub fn points(&self) -> &[Node] {
        &self.points
    }

    /// The net-ladder level used at each position.
    #[must_use]
    pub fn levels(&self) -> &[usize] {
        &self.levels
    }

    /// Number of positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest ratio `d(f_tj, t) / s_j` over the sequence — at most 1 when
    /// the scales match the ladder (tests pin this).
    #[must_use]
    pub fn max_scale_ratio<M: Metric, I>(&self, space: &Space<M, I>, scales: &[f64]) -> f64 {
        self.points
            .iter()
            .zip(scales)
            .map(|(&f, &s)| space.dist(f, self.target) / s)
            .fold(0.0, f64::max)
    }
}

/// The scale chain `diameter / 2^j` for `j in [levels]` — the paper's
/// `Delta/2^j` ladder of Theorem 2.1 in absolute distances.
#[must_use]
pub fn geometric_scales(diameter: f64, levels: usize) -> Vec<f64> {
    (0..levels)
        .map(|j| diameter / (2.0f64).powi(j as i32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ron_metric::{gen, LineMetric};

    fn setup(n: usize) -> (Space<LineMetric>, NestedNets) {
        let space = Space::new(LineMetric::uniform(n).unwrap());
        let nets = NestedNets::build(&space);
        (space, nets)
    }

    #[test]
    fn zoom_points_respect_scales() {
        let (space, nets) = setup(64);
        let scales = geometric_scales(space.index().diameter(), nets.levels());
        for t in space.nodes() {
            let zoom = ZoomSequence::towards(&space, &nets, t, &scales);
            assert!(
                zoom.max_scale_ratio(&space, &scales) <= 1.0 + 1e-12,
                "zoom point too far at target {t}"
            );
        }
    }

    #[test]
    fn zoom_ends_at_target() {
        let (space, nets) = setup(64);
        let mut scales = geometric_scales(space.index().diameter(), nets.levels());
        // Push one extra scale below the min distance: the net there is V,
        // so the nearest member is the target itself.
        scales.push(space.index().min_distance() * 0.5);
        for t in space.nodes() {
            let zoom = ZoomSequence::towards(&space, &nets, t, &scales);
            assert_eq!(*zoom.points().last().unwrap(), t);
        }
    }

    #[test]
    fn zoom_distances_shrink_geometrically() {
        let (space, nets) = setup(128);
        let scales = geometric_scales(space.index().diameter(), nets.levels());
        let t = Node::new(77);
        let zoom = ZoomSequence::towards(&space, &nets, t, &scales);
        for (j, &f) in zoom.points().iter().enumerate() {
            assert!(space.dist(f, t) <= scales[j] + 1e-12);
        }
    }

    #[test]
    fn works_on_random_cube() {
        let space = Space::new(gen::uniform_cube(64, 2, 23));
        let nets = NestedNets::build(&space);
        let scales = geometric_scales(space.index().diameter(), nets.levels());
        for t in space.nodes() {
            let zoom = ZoomSequence::towards(&space, &nets, t, &scales);
            assert!(zoom.max_scale_ratio(&space, &scales) <= 1.0 + 1e-12);
            assert_eq!(zoom.len(), scales.len());
            assert!(!zoom.is_empty());
        }
    }

    #[test]
    fn geometric_scales_halve() {
        let scales = geometric_scales(16.0, 5);
        assert_eq!(scales, vec![16.0, 8.0, 4.0, 2.0, 1.0]);
    }
}
