//! Epoch-stamped atomic publication: the copy-on-write cell behind
//! serve-during-repair.
//!
//! An [`EpochCell`] holds one `Arc`-wrapped value — a *published* state —
//! together with a monotonically increasing epoch counter. Writers build
//! a successor value entirely off to the side (no lock held), then
//! [`publish`](EpochCell::publish) it with a single pointer swap; readers
//! [`load`](EpochCell::load) the current `Arc` and serve from it for as
//! long as they like. A reader therefore always observes one complete
//! published state — never a half-applied mutation — and the epoch tells
//! it *which* one, so per-epoch caches can reject entries that predate
//! the latest publication.
//!
//! Under the vendored-shim constraint there is no `arc-swap` crate, so
//! the swap is guarded by a [`std::sync::RwLock`]: writers serialize on
//! the write lock (held only for the pointer swap — successor
//! construction happens outside), and a read is a shared lock held just
//! long enough to clone the `Arc` — effectively wait-free, since no
//! writer ever holds the lock across real work.

use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, RwLock};

/// A published value: a shared handle to one epoch's state.
///
/// Dereferences to `T`. Cloning is an `Arc` clone; the handle keeps the
/// epoch's state alive even after later publications replace it in the
/// cell (readers mid-flight finish on the state they loaded).
pub struct Published<T> {
    value: Arc<T>,
    epoch: u64,
}

impl<T> Published<T> {
    /// The cell epoch this state was published at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl<T> Clone for Published<T> {
    fn clone(&self) -> Self {
        Published {
            value: Arc::clone(&self.value),
            epoch: self.epoch,
        }
    }
}

impl<T> Deref for Published<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for Published<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Published")
            .field("epoch", &self.epoch)
            .field("value", &*self.value)
            .finish()
    }
}

/// The publication cell: an atomically swappable `Arc<T>` plus a
/// monotonically increasing epoch counter.
///
/// # Example
///
/// ```
/// use ron_core::publish::EpochCell;
///
/// let cell = EpochCell::new(vec![1, 2, 3]);
/// let reader = cell.load(); // serve from this for as long as needed
/// assert_eq!(reader.epoch(), 0);
///
/// let successor = vec![4, 5, 6]; // built off to the side
/// assert_eq!(cell.publish(successor), 1);
///
/// assert_eq!(*reader, vec![1, 2, 3]); // old readers are undisturbed
/// assert_eq!(*cell.load(), vec![4, 5, 6]); // new loads see epoch 1
/// ```
pub struct EpochCell<T> {
    slot: RwLock<Published<T>>,
}

impl<T> EpochCell<T> {
    /// Creates the cell with `value` as the epoch-0 publication.
    #[must_use]
    pub fn new(value: T) -> Self {
        EpochCell {
            slot: RwLock::new(Published {
                value: Arc::new(value),
                epoch: 0,
            }),
        }
    }

    /// Loads the currently published state (a shared-lock `Arc` clone).
    #[must_use]
    pub fn load(&self) -> Published<T> {
        self.slot.read().expect("publish cell poisoned").clone()
    }

    /// The current epoch: the number of publications since [`new`].
    ///
    /// [`new`]: EpochCell::new
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.slot.read().expect("publish cell poisoned").epoch
    }

    /// Publishes `value` as the new current state, returning its epoch.
    /// Readers holding earlier states are undisturbed; new loads see the
    /// successor.
    pub fn publish(&self, value: T) -> u64 {
        let mut slot = self.slot.write().expect("publish cell poisoned");
        slot.epoch += 1;
        slot.value = Arc::new(value);
        slot.epoch
    }
}

impl<T: fmt::Debug> fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochCell")
            .field(
                "current",
                &*self.slot.read().expect("publish cell poisoned"),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_increase_monotonically() {
        let cell = EpochCell::new(0u32);
        assert_eq!(cell.epoch(), 0);
        for k in 1..=5 {
            assert_eq!(cell.publish(k), u64::from(k));
            assert_eq!(cell.epoch(), u64::from(k));
            assert_eq!(*cell.load(), k);
        }
    }

    #[test]
    fn old_readers_survive_a_publish() {
        let cell = EpochCell::new(String::from("before"));
        let old = cell.load();
        cell.publish(String::from("after"));
        assert_eq!(&*old, "before");
        assert_eq!(old.epoch(), 0);
        let new = cell.load();
        assert_eq!(&*new, "after");
        assert_eq!(new.epoch(), 1);
    }

    #[test]
    fn concurrent_readers_always_see_a_complete_state() {
        // Publish pairs (k, k); a torn read would observe (k, k') with
        // k != k'.
        let cell = EpochCell::new((0u64, 0u64));
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(|| {
                        let mut last_epoch = 0;
                        for _ in 0..2000 {
                            let state = cell.load();
                            assert_eq!(state.0, state.1, "torn state");
                            assert!(state.epoch() >= last_epoch, "epoch went backwards");
                            last_epoch = state.epoch();
                        }
                    })
                })
                .collect();
            for k in 1..=500u64 {
                cell.publish((k, k));
            }
            for r in readers {
                r.join().expect("reader panicked");
            }
        });
    }

    #[test]
    fn debug_formats_mention_the_epoch() {
        let cell = EpochCell::new(7u8);
        let text = format!("{cell:?}");
        assert!(text.contains("epoch"), "{text}");
        assert!(text.contains('7'), "{text}");
    }
}
